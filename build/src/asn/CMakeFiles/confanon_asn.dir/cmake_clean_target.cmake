file(REMOVE_RECURSE
  "libconfanon_asn.a"
)
