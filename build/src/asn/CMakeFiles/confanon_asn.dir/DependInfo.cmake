
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/asn/asn_map.cpp" "src/asn/CMakeFiles/confanon_asn.dir/asn_map.cpp.o" "gcc" "src/asn/CMakeFiles/confanon_asn.dir/asn_map.cpp.o.d"
  "/root/repo/src/asn/community.cpp" "src/asn/CMakeFiles/confanon_asn.dir/community.cpp.o" "gcc" "src/asn/CMakeFiles/confanon_asn.dir/community.cpp.o.d"
  "/root/repo/src/asn/regex_rewrite.cpp" "src/asn/CMakeFiles/confanon_asn.dir/regex_rewrite.cpp.o" "gcc" "src/asn/CMakeFiles/confanon_asn.dir/regex_rewrite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/regex/CMakeFiles/confanon_regex.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/confanon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
