file(REMOVE_RECURSE
  "CMakeFiles/confanon_asn.dir/asn_map.cpp.o"
  "CMakeFiles/confanon_asn.dir/asn_map.cpp.o.d"
  "CMakeFiles/confanon_asn.dir/community.cpp.o"
  "CMakeFiles/confanon_asn.dir/community.cpp.o.d"
  "CMakeFiles/confanon_asn.dir/regex_rewrite.cpp.o"
  "CMakeFiles/confanon_asn.dir/regex_rewrite.cpp.o.d"
  "libconfanon_asn.a"
  "libconfanon_asn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confanon_asn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
