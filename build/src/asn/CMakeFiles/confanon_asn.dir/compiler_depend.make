# Empty compiler generated dependencies file for confanon_asn.
# This may be replaced when dependencies are built.
