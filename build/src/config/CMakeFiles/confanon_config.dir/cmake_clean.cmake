file(REMOVE_RECURSE
  "CMakeFiles/confanon_config.dir/dialect.cpp.o"
  "CMakeFiles/confanon_config.dir/dialect.cpp.o.d"
  "CMakeFiles/confanon_config.dir/document.cpp.o"
  "CMakeFiles/confanon_config.dir/document.cpp.o.d"
  "CMakeFiles/confanon_config.dir/tokenizer.cpp.o"
  "CMakeFiles/confanon_config.dir/tokenizer.cpp.o.d"
  "libconfanon_config.a"
  "libconfanon_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confanon_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
