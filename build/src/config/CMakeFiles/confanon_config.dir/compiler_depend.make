# Empty compiler generated dependencies file for confanon_config.
# This may be replaced when dependencies are built.
