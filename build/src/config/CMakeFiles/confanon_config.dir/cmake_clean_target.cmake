file(REMOVE_RECURSE
  "libconfanon_config.a"
)
