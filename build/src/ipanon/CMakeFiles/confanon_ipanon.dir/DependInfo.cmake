
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ipanon/cryptopan.cpp" "src/ipanon/CMakeFiles/confanon_ipanon.dir/cryptopan.cpp.o" "gcc" "src/ipanon/CMakeFiles/confanon_ipanon.dir/cryptopan.cpp.o.d"
  "/root/repo/src/ipanon/ip_anonymizer.cpp" "src/ipanon/CMakeFiles/confanon_ipanon.dir/ip_anonymizer.cpp.o" "gcc" "src/ipanon/CMakeFiles/confanon_ipanon.dir/ip_anonymizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/confanon_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/confanon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
