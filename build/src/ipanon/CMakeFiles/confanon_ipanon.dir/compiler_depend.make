# Empty compiler generated dependencies file for confanon_ipanon.
# This may be replaced when dependencies are built.
