file(REMOVE_RECURSE
  "libconfanon_ipanon.a"
)
