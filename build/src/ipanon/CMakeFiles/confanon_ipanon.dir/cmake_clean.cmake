file(REMOVE_RECURSE
  "CMakeFiles/confanon_ipanon.dir/cryptopan.cpp.o"
  "CMakeFiles/confanon_ipanon.dir/cryptopan.cpp.o.d"
  "CMakeFiles/confanon_ipanon.dir/ip_anonymizer.cpp.o"
  "CMakeFiles/confanon_ipanon.dir/ip_anonymizer.cpp.o.d"
  "libconfanon_ipanon.a"
  "libconfanon_ipanon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confanon_ipanon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
