# CMake generated Testfile for 
# Source directory: /root/repo/src/ipanon
# Build directory: /root/repo/build/src/ipanon
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
