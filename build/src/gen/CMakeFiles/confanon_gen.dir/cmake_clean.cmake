file(REMOVE_RECURSE
  "CMakeFiles/confanon_gen.dir/addressing.cpp.o"
  "CMakeFiles/confanon_gen.dir/addressing.cpp.o.d"
  "CMakeFiles/confanon_gen.dir/config_writer.cpp.o"
  "CMakeFiles/confanon_gen.dir/config_writer.cpp.o.d"
  "CMakeFiles/confanon_gen.dir/names.cpp.o"
  "CMakeFiles/confanon_gen.dir/names.cpp.o.d"
  "CMakeFiles/confanon_gen.dir/network_gen.cpp.o"
  "CMakeFiles/confanon_gen.dir/network_gen.cpp.o.d"
  "libconfanon_gen.a"
  "libconfanon_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confanon_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
