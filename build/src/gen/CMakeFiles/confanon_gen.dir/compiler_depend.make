# Empty compiler generated dependencies file for confanon_gen.
# This may be replaced when dependencies are built.
