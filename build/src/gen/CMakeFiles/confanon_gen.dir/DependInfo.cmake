
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/addressing.cpp" "src/gen/CMakeFiles/confanon_gen.dir/addressing.cpp.o" "gcc" "src/gen/CMakeFiles/confanon_gen.dir/addressing.cpp.o.d"
  "/root/repo/src/gen/config_writer.cpp" "src/gen/CMakeFiles/confanon_gen.dir/config_writer.cpp.o" "gcc" "src/gen/CMakeFiles/confanon_gen.dir/config_writer.cpp.o.d"
  "/root/repo/src/gen/names.cpp" "src/gen/CMakeFiles/confanon_gen.dir/names.cpp.o" "gcc" "src/gen/CMakeFiles/confanon_gen.dir/names.cpp.o.d"
  "/root/repo/src/gen/network_gen.cpp" "src/gen/CMakeFiles/confanon_gen.dir/network_gen.cpp.o" "gcc" "src/gen/CMakeFiles/confanon_gen.dir/network_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/config/CMakeFiles/confanon_config.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/confanon_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/confanon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
