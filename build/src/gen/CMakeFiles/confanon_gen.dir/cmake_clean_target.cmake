file(REMOVE_RECURSE
  "libconfanon_gen.a"
)
