file(REMOVE_RECURSE
  "libconfanon_core.a"
)
