file(REMOVE_RECURSE
  "CMakeFiles/confanon_core.dir/anonymizer.cpp.o"
  "CMakeFiles/confanon_core.dir/anonymizer.cpp.o.d"
  "CMakeFiles/confanon_core.dir/leak_detector.cpp.o"
  "CMakeFiles/confanon_core.dir/leak_detector.cpp.o.d"
  "CMakeFiles/confanon_core.dir/report.cpp.o"
  "CMakeFiles/confanon_core.dir/report.cpp.o.d"
  "CMakeFiles/confanon_core.dir/string_hasher.cpp.o"
  "CMakeFiles/confanon_core.dir/string_hasher.cpp.o.d"
  "libconfanon_core.a"
  "libconfanon_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confanon_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
