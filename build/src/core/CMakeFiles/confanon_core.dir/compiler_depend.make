# Empty compiler generated dependencies file for confanon_core.
# This may be replaced when dependencies are built.
