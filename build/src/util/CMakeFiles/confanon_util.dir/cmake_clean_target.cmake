file(REMOVE_RECURSE
  "libconfanon_util.a"
)
