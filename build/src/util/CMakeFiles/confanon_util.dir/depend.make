# Empty dependencies file for confanon_util.
# This may be replaced when dependencies are built.
