file(REMOVE_RECURSE
  "CMakeFiles/confanon_util.dir/aho_corasick.cpp.o"
  "CMakeFiles/confanon_util.dir/aho_corasick.cpp.o.d"
  "CMakeFiles/confanon_util.dir/rng.cpp.o"
  "CMakeFiles/confanon_util.dir/rng.cpp.o.d"
  "CMakeFiles/confanon_util.dir/sha1.cpp.o"
  "CMakeFiles/confanon_util.dir/sha1.cpp.o.d"
  "CMakeFiles/confanon_util.dir/stats.cpp.o"
  "CMakeFiles/confanon_util.dir/stats.cpp.o.d"
  "CMakeFiles/confanon_util.dir/strings.cpp.o"
  "CMakeFiles/confanon_util.dir/strings.cpp.o.d"
  "libconfanon_util.a"
  "libconfanon_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confanon_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
