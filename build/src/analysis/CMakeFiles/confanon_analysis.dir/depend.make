# Empty dependencies file for confanon_analysis.
# This may be replaced when dependencies are built.
