
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/characteristics.cpp" "src/analysis/CMakeFiles/confanon_analysis.dir/characteristics.cpp.o" "gcc" "src/analysis/CMakeFiles/confanon_analysis.dir/characteristics.cpp.o.d"
  "/root/repo/src/analysis/compartment.cpp" "src/analysis/CMakeFiles/confanon_analysis.dir/compartment.cpp.o" "gcc" "src/analysis/CMakeFiles/confanon_analysis.dir/compartment.cpp.o.d"
  "/root/repo/src/analysis/design_extract.cpp" "src/analysis/CMakeFiles/confanon_analysis.dir/design_extract.cpp.o" "gcc" "src/analysis/CMakeFiles/confanon_analysis.dir/design_extract.cpp.o.d"
  "/root/repo/src/analysis/fingerprint.cpp" "src/analysis/CMakeFiles/confanon_analysis.dir/fingerprint.cpp.o" "gcc" "src/analysis/CMakeFiles/confanon_analysis.dir/fingerprint.cpp.o.d"
  "/root/repo/src/analysis/linkage.cpp" "src/analysis/CMakeFiles/confanon_analysis.dir/linkage.cpp.o" "gcc" "src/analysis/CMakeFiles/confanon_analysis.dir/linkage.cpp.o.d"
  "/root/repo/src/analysis/probe_attack.cpp" "src/analysis/CMakeFiles/confanon_analysis.dir/probe_attack.cpp.o" "gcc" "src/analysis/CMakeFiles/confanon_analysis.dir/probe_attack.cpp.o.d"
  "/root/repo/src/analysis/reachability.cpp" "src/analysis/CMakeFiles/confanon_analysis.dir/reachability.cpp.o" "gcc" "src/analysis/CMakeFiles/confanon_analysis.dir/reachability.cpp.o.d"
  "/root/repo/src/analysis/regex_usage.cpp" "src/analysis/CMakeFiles/confanon_analysis.dir/regex_usage.cpp.o" "gcc" "src/analysis/CMakeFiles/confanon_analysis.dir/regex_usage.cpp.o.d"
  "/root/repo/src/analysis/validate.cpp" "src/analysis/CMakeFiles/confanon_analysis.dir/validate.cpp.o" "gcc" "src/analysis/CMakeFiles/confanon_analysis.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/confanon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/asn/CMakeFiles/confanon_asn.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/confanon_config.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/confanon_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/confanon_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ipanon/CMakeFiles/confanon_ipanon.dir/DependInfo.cmake"
  "/root/repo/build/src/passlist/CMakeFiles/confanon_passlist.dir/DependInfo.cmake"
  "/root/repo/build/src/regex/CMakeFiles/confanon_regex.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
