file(REMOVE_RECURSE
  "libconfanon_analysis.a"
)
