file(REMOVE_RECURSE
  "CMakeFiles/confanon_analysis.dir/characteristics.cpp.o"
  "CMakeFiles/confanon_analysis.dir/characteristics.cpp.o.d"
  "CMakeFiles/confanon_analysis.dir/compartment.cpp.o"
  "CMakeFiles/confanon_analysis.dir/compartment.cpp.o.d"
  "CMakeFiles/confanon_analysis.dir/design_extract.cpp.o"
  "CMakeFiles/confanon_analysis.dir/design_extract.cpp.o.d"
  "CMakeFiles/confanon_analysis.dir/fingerprint.cpp.o"
  "CMakeFiles/confanon_analysis.dir/fingerprint.cpp.o.d"
  "CMakeFiles/confanon_analysis.dir/linkage.cpp.o"
  "CMakeFiles/confanon_analysis.dir/linkage.cpp.o.d"
  "CMakeFiles/confanon_analysis.dir/probe_attack.cpp.o"
  "CMakeFiles/confanon_analysis.dir/probe_attack.cpp.o.d"
  "CMakeFiles/confanon_analysis.dir/reachability.cpp.o"
  "CMakeFiles/confanon_analysis.dir/reachability.cpp.o.d"
  "CMakeFiles/confanon_analysis.dir/regex_usage.cpp.o"
  "CMakeFiles/confanon_analysis.dir/regex_usage.cpp.o.d"
  "CMakeFiles/confanon_analysis.dir/validate.cpp.o"
  "CMakeFiles/confanon_analysis.dir/validate.cpp.o.d"
  "libconfanon_analysis.a"
  "libconfanon_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confanon_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
