file(REMOVE_RECURSE
  "CMakeFiles/confanon_passlist.dir/builtin_corpus.cpp.o"
  "CMakeFiles/confanon_passlist.dir/builtin_corpus.cpp.o.d"
  "CMakeFiles/confanon_passlist.dir/passlist.cpp.o"
  "CMakeFiles/confanon_passlist.dir/passlist.cpp.o.d"
  "libconfanon_passlist.a"
  "libconfanon_passlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confanon_passlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
