# Empty dependencies file for confanon_passlist.
# This may be replaced when dependencies are built.
