file(REMOVE_RECURSE
  "libconfanon_passlist.a"
)
