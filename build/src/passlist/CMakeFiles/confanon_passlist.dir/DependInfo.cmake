
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/passlist/builtin_corpus.cpp" "src/passlist/CMakeFiles/confanon_passlist.dir/builtin_corpus.cpp.o" "gcc" "src/passlist/CMakeFiles/confanon_passlist.dir/builtin_corpus.cpp.o.d"
  "/root/repo/src/passlist/passlist.cpp" "src/passlist/CMakeFiles/confanon_passlist.dir/passlist.cpp.o" "gcc" "src/passlist/CMakeFiles/confanon_passlist.dir/passlist.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/confanon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
