file(REMOVE_RECURSE
  "CMakeFiles/confanon_net.dir/ipv4.cpp.o"
  "CMakeFiles/confanon_net.dir/ipv4.cpp.o.d"
  "CMakeFiles/confanon_net.dir/prefix.cpp.o"
  "CMakeFiles/confanon_net.dir/prefix.cpp.o.d"
  "CMakeFiles/confanon_net.dir/special.cpp.o"
  "CMakeFiles/confanon_net.dir/special.cpp.o.d"
  "libconfanon_net.a"
  "libconfanon_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confanon_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
