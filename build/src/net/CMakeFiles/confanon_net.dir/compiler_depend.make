# Empty compiler generated dependencies file for confanon_net.
# This may be replaced when dependencies are built.
