file(REMOVE_RECURSE
  "libconfanon_net.a"
)
