file(REMOVE_RECURSE
  "CMakeFiles/confanon_junos.dir/anonymizer.cpp.o"
  "CMakeFiles/confanon_junos.dir/anonymizer.cpp.o.d"
  "CMakeFiles/confanon_junos.dir/design_extract.cpp.o"
  "CMakeFiles/confanon_junos.dir/design_extract.cpp.o.d"
  "CMakeFiles/confanon_junos.dir/tokenizer.cpp.o"
  "CMakeFiles/confanon_junos.dir/tokenizer.cpp.o.d"
  "CMakeFiles/confanon_junos.dir/validate.cpp.o"
  "CMakeFiles/confanon_junos.dir/validate.cpp.o.d"
  "CMakeFiles/confanon_junos.dir/writer.cpp.o"
  "CMakeFiles/confanon_junos.dir/writer.cpp.o.d"
  "libconfanon_junos.a"
  "libconfanon_junos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confanon_junos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
