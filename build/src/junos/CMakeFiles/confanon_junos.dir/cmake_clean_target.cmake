file(REMOVE_RECURSE
  "libconfanon_junos.a"
)
