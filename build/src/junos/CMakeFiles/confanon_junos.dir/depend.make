# Empty dependencies file for confanon_junos.
# This may be replaced when dependencies are built.
