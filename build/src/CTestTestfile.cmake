# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("net")
subdirs("regex")
subdirs("ipanon")
subdirs("asn")
subdirs("passlist")
subdirs("config")
subdirs("core")
subdirs("gen")
subdirs("junos")
subdirs("analysis")
