file(REMOVE_RECURSE
  "libconfanon_regex.a"
)
