file(REMOVE_RECURSE
  "CMakeFiles/confanon_regex.dir/ast.cpp.o"
  "CMakeFiles/confanon_regex.dir/ast.cpp.o.d"
  "CMakeFiles/confanon_regex.dir/charset.cpp.o"
  "CMakeFiles/confanon_regex.dir/charset.cpp.o.d"
  "CMakeFiles/confanon_regex.dir/dfa.cpp.o"
  "CMakeFiles/confanon_regex.dir/dfa.cpp.o.d"
  "CMakeFiles/confanon_regex.dir/dfa_to_regex.cpp.o"
  "CMakeFiles/confanon_regex.dir/dfa_to_regex.cpp.o.d"
  "CMakeFiles/confanon_regex.dir/nfa.cpp.o"
  "CMakeFiles/confanon_regex.dir/nfa.cpp.o.d"
  "CMakeFiles/confanon_regex.dir/parser.cpp.o"
  "CMakeFiles/confanon_regex.dir/parser.cpp.o.d"
  "CMakeFiles/confanon_regex.dir/regex.cpp.o"
  "CMakeFiles/confanon_regex.dir/regex.cpp.o.d"
  "libconfanon_regex.a"
  "libconfanon_regex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confanon_regex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
