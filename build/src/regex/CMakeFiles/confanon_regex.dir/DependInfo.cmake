
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/regex/ast.cpp" "src/regex/CMakeFiles/confanon_regex.dir/ast.cpp.o" "gcc" "src/regex/CMakeFiles/confanon_regex.dir/ast.cpp.o.d"
  "/root/repo/src/regex/charset.cpp" "src/regex/CMakeFiles/confanon_regex.dir/charset.cpp.o" "gcc" "src/regex/CMakeFiles/confanon_regex.dir/charset.cpp.o.d"
  "/root/repo/src/regex/dfa.cpp" "src/regex/CMakeFiles/confanon_regex.dir/dfa.cpp.o" "gcc" "src/regex/CMakeFiles/confanon_regex.dir/dfa.cpp.o.d"
  "/root/repo/src/regex/dfa_to_regex.cpp" "src/regex/CMakeFiles/confanon_regex.dir/dfa_to_regex.cpp.o" "gcc" "src/regex/CMakeFiles/confanon_regex.dir/dfa_to_regex.cpp.o.d"
  "/root/repo/src/regex/nfa.cpp" "src/regex/CMakeFiles/confanon_regex.dir/nfa.cpp.o" "gcc" "src/regex/CMakeFiles/confanon_regex.dir/nfa.cpp.o.d"
  "/root/repo/src/regex/parser.cpp" "src/regex/CMakeFiles/confanon_regex.dir/parser.cpp.o" "gcc" "src/regex/CMakeFiles/confanon_regex.dir/parser.cpp.o.d"
  "/root/repo/src/regex/regex.cpp" "src/regex/CMakeFiles/confanon_regex.dir/regex.cpp.o" "gcc" "src/regex/CMakeFiles/confanon_regex.dir/regex.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/confanon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
