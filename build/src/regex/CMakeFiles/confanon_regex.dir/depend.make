# Empty dependencies file for confanon_regex.
# This may be replaced when dependencies are built.
