file(REMOVE_RECURSE
  "CMakeFiles/regex_rewrite_demo.dir/regex_rewrite_demo.cpp.o"
  "CMakeFiles/regex_rewrite_demo.dir/regex_rewrite_demo.cpp.o.d"
  "regex_rewrite_demo"
  "regex_rewrite_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regex_rewrite_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
