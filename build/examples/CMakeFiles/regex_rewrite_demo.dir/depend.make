# Empty dependencies file for regex_rewrite_demo.
# This may be replaced when dependencies are built.
