file(REMOVE_RECURSE
  "CMakeFiles/junos_demo.dir/junos_demo.cpp.o"
  "CMakeFiles/junos_demo.dir/junos_demo.cpp.o.d"
  "junos_demo"
  "junos_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/junos_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
