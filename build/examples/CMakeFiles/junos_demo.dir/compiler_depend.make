# Empty compiler generated dependencies file for junos_demo.
# This may be replaced when dependencies are built.
