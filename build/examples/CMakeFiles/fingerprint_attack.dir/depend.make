# Empty dependencies file for fingerprint_attack.
# This may be replaced when dependencies are built.
