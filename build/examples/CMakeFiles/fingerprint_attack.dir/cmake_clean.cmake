file(REMOVE_RECURSE
  "CMakeFiles/fingerprint_attack.dir/fingerprint_attack.cpp.o"
  "CMakeFiles/fingerprint_attack.dir/fingerprint_attack.cpp.o.d"
  "fingerprint_attack"
  "fingerprint_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fingerprint_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
