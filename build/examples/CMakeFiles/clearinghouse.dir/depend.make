# Empty dependencies file for clearinghouse.
# This may be replaced when dependencies are built.
