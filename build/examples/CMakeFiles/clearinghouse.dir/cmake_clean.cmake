file(REMOVE_RECURSE
  "CMakeFiles/clearinghouse.dir/clearinghouse.cpp.o"
  "CMakeFiles/clearinghouse.dir/clearinghouse.cpp.o.d"
  "clearinghouse"
  "clearinghouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clearinghouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
