file(REMOVE_RECURSE
  "CMakeFiles/leak_audit.dir/leak_audit.cpp.o"
  "CMakeFiles/leak_audit.dir/leak_audit.cpp.o.d"
  "leak_audit"
  "leak_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leak_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
