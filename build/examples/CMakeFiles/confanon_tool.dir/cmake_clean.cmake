file(REMOVE_RECURSE
  "CMakeFiles/confanon_tool.dir/confanon_tool.cpp.o"
  "CMakeFiles/confanon_tool.dir/confanon_tool.cpp.o.d"
  "confanon_tool"
  "confanon_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confanon_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
