
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/confanon_tool.cpp" "examples/CMakeFiles/confanon_tool.dir/confanon_tool.cpp.o" "gcc" "examples/CMakeFiles/confanon_tool.dir/confanon_tool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/confanon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/confanon_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/confanon_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/junos/CMakeFiles/confanon_junos.dir/DependInfo.cmake"
  "/root/repo/build/src/asn/CMakeFiles/confanon_asn.dir/DependInfo.cmake"
  "/root/repo/build/src/regex/CMakeFiles/confanon_regex.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/confanon_config.dir/DependInfo.cmake"
  "/root/repo/build/src/ipanon/CMakeFiles/confanon_ipanon.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/confanon_net.dir/DependInfo.cmake"
  "/root/repo/build/src/passlist/CMakeFiles/confanon_passlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/confanon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
