# Empty compiler generated dependencies file for confanon_tool.
# This may be replaced when dependencies are built.
