# Empty dependencies file for anonymize_network.
# This may be replaced when dependencies are built.
