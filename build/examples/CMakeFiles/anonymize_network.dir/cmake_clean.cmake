file(REMOVE_RECURSE
  "CMakeFiles/anonymize_network.dir/anonymize_network.cpp.o"
  "CMakeFiles/anonymize_network.dir/anonymize_network.cpp.o.d"
  "anonymize_network"
  "anonymize_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anonymize_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
