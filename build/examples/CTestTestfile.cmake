# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_anonymize_network "/root/repo/build/examples/anonymize_network" "16" "3")
set_tests_properties(example_anonymize_network PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_regex_rewrite_demo "/root/repo/build/examples/regex_rewrite_demo")
set_tests_properties(example_regex_rewrite_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_leak_audit "/root/repo/build/examples/leak_audit")
set_tests_properties(example_leak_audit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_junos_demo "/root/repo/build/examples/junos_demo")
set_tests_properties(example_junos_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_clearinghouse "/root/repo/build/examples/clearinghouse")
set_tests_properties(example_clearinghouse PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
