# Empty dependencies file for bench_insider.
# This may be replaced when dependencies are built.
