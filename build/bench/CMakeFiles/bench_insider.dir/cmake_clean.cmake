file(REMOVE_RECURSE
  "CMakeFiles/bench_insider.dir/bench_insider.cpp.o"
  "CMakeFiles/bench_insider.dir/bench_insider.cpp.o.d"
  "bench_insider"
  "bench_insider.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_insider.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
