file(REMOVE_RECURSE
  "CMakeFiles/bench_size_dist.dir/bench_size_dist.cpp.o"
  "CMakeFiles/bench_size_dist.dir/bench_size_dist.cpp.o.d"
  "bench_size_dist"
  "bench_size_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_size_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
