file(REMOVE_RECURSE
  "CMakeFiles/bench_comment_frac.dir/bench_comment_frac.cpp.o"
  "CMakeFiles/bench_comment_frac.dir/bench_comment_frac.cpp.o.d"
  "bench_comment_frac"
  "bench_comment_frac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_comment_frac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
