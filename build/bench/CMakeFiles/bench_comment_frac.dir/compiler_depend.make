# Empty compiler generated dependencies file for bench_comment_frac.
# This may be replaced when dependencies are built.
