file(REMOVE_RECURSE
  "CMakeFiles/bench_regex_usage.dir/bench_regex_usage.cpp.o"
  "CMakeFiles/bench_regex_usage.dir/bench_regex_usage.cpp.o.d"
  "bench_regex_usage"
  "bench_regex_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_regex_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
