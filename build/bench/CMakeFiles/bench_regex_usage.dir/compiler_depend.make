# Empty compiler generated dependencies file for bench_regex_usage.
# This may be replaced when dependencies are built.
