# Empty compiler generated dependencies file for confanon_tests.
# This may be replaced when dependencies are built.
