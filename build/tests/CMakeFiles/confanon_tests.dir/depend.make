# Empty dependencies file for confanon_tests.
# This may be replaced when dependencies are built.
