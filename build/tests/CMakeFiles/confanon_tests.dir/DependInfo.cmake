
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_aho_corasick.cpp" "tests/CMakeFiles/confanon_tests.dir/test_aho_corasick.cpp.o" "gcc" "tests/CMakeFiles/confanon_tests.dir/test_aho_corasick.cpp.o.d"
  "/root/repo/tests/test_analysis.cpp" "tests/CMakeFiles/confanon_tests.dir/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/confanon_tests.dir/test_analysis.cpp.o.d"
  "/root/repo/tests/test_analysis_extended.cpp" "tests/CMakeFiles/confanon_tests.dir/test_analysis_extended.cpp.o" "gcc" "tests/CMakeFiles/confanon_tests.dir/test_analysis_extended.cpp.o.d"
  "/root/repo/tests/test_anonymizer.cpp" "tests/CMakeFiles/confanon_tests.dir/test_anonymizer.cpp.o" "gcc" "tests/CMakeFiles/confanon_tests.dir/test_anonymizer.cpp.o.d"
  "/root/repo/tests/test_asn.cpp" "tests/CMakeFiles/confanon_tests.dir/test_asn.cpp.o" "gcc" "tests/CMakeFiles/confanon_tests.dir/test_asn.cpp.o.d"
  "/root/repo/tests/test_config.cpp" "tests/CMakeFiles/confanon_tests.dir/test_config.cpp.o" "gcc" "tests/CMakeFiles/confanon_tests.dir/test_config.cpp.o.d"
  "/root/repo/tests/test_dfa.cpp" "tests/CMakeFiles/confanon_tests.dir/test_dfa.cpp.o" "gcc" "tests/CMakeFiles/confanon_tests.dir/test_dfa.cpp.o.d"
  "/root/repo/tests/test_dfa_to_regex.cpp" "tests/CMakeFiles/confanon_tests.dir/test_dfa_to_regex.cpp.o" "gcc" "tests/CMakeFiles/confanon_tests.dir/test_dfa_to_regex.cpp.o.d"
  "/root/repo/tests/test_end_to_end.cpp" "tests/CMakeFiles/confanon_tests.dir/test_end_to_end.cpp.o" "gcc" "tests/CMakeFiles/confanon_tests.dir/test_end_to_end.cpp.o.d"
  "/root/repo/tests/test_final_coverage.cpp" "tests/CMakeFiles/confanon_tests.dir/test_final_coverage.cpp.o" "gcc" "tests/CMakeFiles/confanon_tests.dir/test_final_coverage.cpp.o.d"
  "/root/repo/tests/test_fuzz_robustness.cpp" "tests/CMakeFiles/confanon_tests.dir/test_fuzz_robustness.cpp.o" "gcc" "tests/CMakeFiles/confanon_tests.dir/test_fuzz_robustness.cpp.o.d"
  "/root/repo/tests/test_gen_internals.cpp" "tests/CMakeFiles/confanon_tests.dir/test_gen_internals.cpp.o" "gcc" "tests/CMakeFiles/confanon_tests.dir/test_gen_internals.cpp.o.d"
  "/root/repo/tests/test_generator.cpp" "tests/CMakeFiles/confanon_tests.dir/test_generator.cpp.o" "gcc" "tests/CMakeFiles/confanon_tests.dir/test_generator.cpp.o.d"
  "/root/repo/tests/test_invariant_sweep.cpp" "tests/CMakeFiles/confanon_tests.dir/test_invariant_sweep.cpp.o" "gcc" "tests/CMakeFiles/confanon_tests.dir/test_invariant_sweep.cpp.o.d"
  "/root/repo/tests/test_ipanon.cpp" "tests/CMakeFiles/confanon_tests.dir/test_ipanon.cpp.o" "gcc" "tests/CMakeFiles/confanon_tests.dir/test_ipanon.cpp.o.d"
  "/root/repo/tests/test_ipv4.cpp" "tests/CMakeFiles/confanon_tests.dir/test_ipv4.cpp.o" "gcc" "tests/CMakeFiles/confanon_tests.dir/test_ipv4.cpp.o.d"
  "/root/repo/tests/test_junos.cpp" "tests/CMakeFiles/confanon_tests.dir/test_junos.cpp.o" "gcc" "tests/CMakeFiles/confanon_tests.dir/test_junos.cpp.o.d"
  "/root/repo/tests/test_junos_design.cpp" "tests/CMakeFiles/confanon_tests.dir/test_junos_design.cpp.o" "gcc" "tests/CMakeFiles/confanon_tests.dir/test_junos_design.cpp.o.d"
  "/root/repo/tests/test_passlist.cpp" "tests/CMakeFiles/confanon_tests.dir/test_passlist.cpp.o" "gcc" "tests/CMakeFiles/confanon_tests.dir/test_passlist.cpp.o.d"
  "/root/repo/tests/test_prefix.cpp" "tests/CMakeFiles/confanon_tests.dir/test_prefix.cpp.o" "gcc" "tests/CMakeFiles/confanon_tests.dir/test_prefix.cpp.o.d"
  "/root/repo/tests/test_probe_attack.cpp" "tests/CMakeFiles/confanon_tests.dir/test_probe_attack.cpp.o" "gcc" "tests/CMakeFiles/confanon_tests.dir/test_probe_attack.cpp.o.d"
  "/root/repo/tests/test_reachability.cpp" "tests/CMakeFiles/confanon_tests.dir/test_reachability.cpp.o" "gcc" "tests/CMakeFiles/confanon_tests.dir/test_reachability.cpp.o.d"
  "/root/repo/tests/test_regex.cpp" "tests/CMakeFiles/confanon_tests.dir/test_regex.cpp.o" "gcc" "tests/CMakeFiles/confanon_tests.dir/test_regex.cpp.o.d"
  "/root/repo/tests/test_regex_rewrite.cpp" "tests/CMakeFiles/confanon_tests.dir/test_regex_rewrite.cpp.o" "gcc" "tests/CMakeFiles/confanon_tests.dir/test_regex_rewrite.cpp.o.d"
  "/root/repo/tests/test_report.cpp" "tests/CMakeFiles/confanon_tests.dir/test_report.cpp.o" "gcc" "tests/CMakeFiles/confanon_tests.dir/test_report.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/confanon_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/confanon_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_rules_matrix.cpp" "tests/CMakeFiles/confanon_tests.dir/test_rules_matrix.cpp.o" "gcc" "tests/CMakeFiles/confanon_tests.dir/test_rules_matrix.cpp.o.d"
  "/root/repo/tests/test_sha1.cpp" "tests/CMakeFiles/confanon_tests.dir/test_sha1.cpp.o" "gcc" "tests/CMakeFiles/confanon_tests.dir/test_sha1.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/confanon_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/confanon_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_strings.cpp" "tests/CMakeFiles/confanon_tests.dir/test_strings.cpp.o" "gcc" "tests/CMakeFiles/confanon_tests.dir/test_strings.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/confanon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gen/CMakeFiles/confanon_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/confanon_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/junos/CMakeFiles/confanon_junos.dir/DependInfo.cmake"
  "/root/repo/build/src/asn/CMakeFiles/confanon_asn.dir/DependInfo.cmake"
  "/root/repo/build/src/regex/CMakeFiles/confanon_regex.dir/DependInfo.cmake"
  "/root/repo/build/src/config/CMakeFiles/confanon_config.dir/DependInfo.cmake"
  "/root/repo/build/src/ipanon/CMakeFiles/confanon_ipanon.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/confanon_net.dir/DependInfo.cmake"
  "/root/repo/build/src/passlist/CMakeFiles/confanon_passlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/confanon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
