# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/confanon_tests[1]_include.cmake")
add_test(tool_anonymizes_sample "/root/repo/build/examples/confanon_tool" "--salt" "test-secret" "--check-leaks" "/root/repo/tests/data/sample.cfg")
set_tests_properties(tool_anonymizes_sample PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;41;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tool_rejects_missing_salt "/root/repo/build/examples/confanon_tool" "/nonexistent")
set_tests_properties(tool_rejects_missing_salt PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;44;add_test;/root/repo/tests/CMakeLists.txt;0;")
