// VAL1 + VAL2 — the paper's Section 5 validation, run over a 31-network
// corpus:
//   suite 1: independent characteristics (# BGP speakers, # interfaces,
//            subnet-size structure, ...) must be identical pre/post;
//   suite 2: the reverse-engineered routing design must be identical
//            pre/post (exactly, once the pre design is pushed through the
//            anonymization maps).
// The paper reports these suites passing on its carrier corpus; the
// reproduction target is 31/31 networks passing both suites.
#include <cstdio>

#include "analysis/validate.h"
#include "core/anonymizer.h"
#include "core/leak_detector.h"
#include "gen/config_writer.h"
#include "gen/network_gen.h"
#include "junos/anonymizer.h"
#include "junos/validate.h"
#include "junos/writer.h"

int main() {
  using namespace confanon;

  gen::GeneratorParams params;
  params.seed = 555;
  const int network_count = 31;
  const auto corpus = gen::GenerateCorpus(params, network_count, 760);

  int suite1_pass = 0, suite2_pass = 0, structural_pass = 0, clean = 0;
  std::size_t total_routers = 0;
  for (int i = 0; i < network_count; ++i) {
    const auto pre = gen::WriteNetworkConfigs(corpus[static_cast<std::size_t>(i)]);
    total_routers += pre.size();

    core::AnonymizerOptions options;
    options.salt = "val-" + std::to_string(i);
    options.regex_form = (i % 2 == 0) ? asn::RewriteForm::kAlternation
                                      : asn::RewriteForm::kMinimizedDfa;
    core::Anonymizer anonymizer(std::move(options));
    const auto post = anonymizer.AnonymizeNetwork(pre);

    const analysis::ValidationResult result =
        analysis::ValidateNetwork(pre, post, anonymizer);
    suite1_pass += result.characteristics_match;
    suite2_pass += result.design_match;
    structural_pass += result.structural_match;
    if (!result.characteristics_match && !result.characteristics_diffs.empty()) {
      std::printf("  network %d suite1 diff: %s\n", i,
                  result.characteristics_diffs[0].c_str());
    }
    if (!result.design_match && !result.design_diffs.empty()) {
      std::printf("  network %d suite2 diff: %s\n", i,
                  result.design_diffs[0].c_str());
    }

    // Textual leak check rides along (Section 6.1): no hashed word may
    // survive. Numeric findings (ASNs, addresses) can be grep false
    // positives — an anonymized value coinciding with some recorded
    // original (the paper's Genuity AS-1 effect, or a mapped address
    // landing on a recorded one). Those are adjudicated: a number finding
    // is a false positive iff the matched text is the map-image of a
    // recorded original.
    bool textual_leak = false;
    for (const auto& finding :
         core::LeakDetector::Scan(post, anonymizer.leak_record())) {
      if (finding.kind == core::LeakFinding::Kind::kHashedWord) {
        textual_leak = true;
        std::printf("  network %d leaked word: %s\n", i,
                    finding.matched.c_str());
      } else if (finding.kind == core::LeakFinding::Kind::kAddress) {
        const auto matched = net::Ipv4Address::Parse(finding.matched);
        bool coincidence = false;
        if (matched) {
          for (const auto& original : anonymizer.leak_record().addresses) {
            const auto parsed = net::Ipv4Address::Parse(original);
            if (parsed && anonymizer.ip_anonymizer().Map(*parsed) == *matched) {
              coincidence = true;
              break;
            }
          }
        }
        if (!coincidence) {
          textual_leak = true;
          std::printf("  network %d leaked address: %s\n", i,
                      finding.matched.c_str());
        }
      }
    }
    clean += !textual_leak;
  }

  std::printf("== VAL: validation suites (paper Section 5) ==\n");
  std::printf("corpus: %d networks, %zu routers\n\n", network_count,
              total_routers);
  std::printf("%-46s %8s %10s\n", "suite", "paper", "measured");
  std::printf("%-46s %8s %6d/%d\n",
              "suite 1: independent characteristics equal", "pass",
              suite1_pass, network_count);
  std::printf("%-46s %8s %6d/%d\n",
              "suite 2: routing design equal (under maps)", "pass",
              suite2_pass, network_count);
  std::printf("%-46s %8s %6d/%d\n",
              "suite 2b: structural projection equal", "pass",
              structural_pass, network_count);
  std::printf("%-46s %8s %6d/%d\n", "no textual identifier survives",
              "pass", clean, network_count);

  // --- the same validation over JunOS renderings (the paper's
  // portability claim, Section 1 footnote 2) ---
  int junos_pass = 0;
  const int junos_count = 10;
  for (int i = 0; i < junos_count; ++i) {
    const auto pre =
        junos::WriteJunosNetworkConfigs(corpus[static_cast<std::size_t>(i)]);
    junos::JunosAnonymizerOptions options;
    options.salt = "junos-val-" + std::to_string(i);
    junos::JunosAnonymizer anonymizer(std::move(options));
    const auto post = anonymizer.AnonymizeNetwork(pre);
    const analysis::ValidationResult result =
        junos::ValidateJunosNetwork(pre, post, anonymizer);
    junos_pass += result.design_match && result.structural_match;
    if (!result.design_match && !result.design_diffs.empty()) {
      std::printf("  junos network %d diff: %s\n", i,
                  result.design_diffs[0].c_str());
    }
  }
  std::printf("%-46s %8s %6d/%d\n",
              "suite 2 over JunOS renderings", "implied", junos_pass,
              junos_count);

  const bool reproduced = suite1_pass == network_count &&
                          suite2_pass == network_count &&
                          structural_pass == network_count &&
                          clean == network_count &&
                          junos_pass == junos_count;
  std::printf("\nresult: %s\n", reproduced ? "REPRODUCED" : "MISMATCH");
  return reproduced ? 0 : 1;
}
