// REGEX — reproduces the regexp-feature usage counts (paper Sections
// 4.4-4.5) over a 31-network corpus:
//   ranges/wildcards on public ASNs:        2 of 31 networks
//   ranges on private ASNs:                 3 of 31
//   alternation in ASN regexps:            10 of 31
//   community regexps:                      5 of 31
//   ranges in community regexps:            2 of 31 (2 of the 5)
//
// The generator plants features at those base rates; the scanner
// re-measures from config text (the paper's methodology — they counted
// what their corpus contained). We also re-scan the post-anonymization
// corpus: ranges must disappear (rewritten to alternations / minimized
// expressions), which is the information trade-off of Section 4.4.
#include <cstdio>

#include "analysis/regex_usage.h"
#include "core/anonymizer.h"
#include "gen/config_writer.h"
#include "gen/network_gen.h"

int main() {
  using namespace confanon;

  const int network_count = 31;
  int pre_public_range = 0, pre_private_range = 0, pre_alternation = 0;
  int pre_community = 0, pre_community_range = 0;
  int post_public_range = 0, post_range_any = 0;

  for (int i = 0; i < network_count; ++i) {
    gen::GeneratorParams params;
    params.seed = 31337;
    params.router_count = 18 + (i % 5) * 6;
    const auto network = gen::GenerateNetwork(params, i);
    const auto pre = gen::WriteNetworkConfigs(network);
    const analysis::RegexUsage usage = analysis::DetectRegexUsage(pre);
    pre_public_range += usage.asn_range_public;
    pre_private_range += usage.asn_range_private;
    pre_alternation += usage.asn_alternation;
    pre_community += usage.community_regex;
    pre_community_range += usage.community_range;

    core::AnonymizerOptions options;
    options.salt = "regex-" + std::to_string(i);
    core::Anonymizer anonymizer(std::move(options));
    const auto post = anonymizer.AnonymizeNetwork(pre);
    const analysis::RegexUsage after = analysis::DetectRegexUsage(post);
    post_public_range += after.asn_range_public;
    post_range_any += after.asn_range_public || after.asn_range_private ||
                      after.community_range;
  }

  std::printf("== REGEX: policy-regexp feature usage (Sections 4.4-4.5) ==\n");
  std::printf("%-42s %10s %10s\n", "feature (networks using it)", "paper",
              "measured");
  std::printf("%-42s %7d/31 %7d/%d\n", "ranges/wildcards over public ASNs", 2,
              pre_public_range, network_count);
  std::printf("%-42s %7d/31 %7d/%d\n", "ranges over private ASNs", 3,
              pre_private_range, network_count);
  std::printf("%-42s %7d/31 %7d/%d\n", "alternation in ASN regexps", 10,
              pre_alternation, network_count);
  std::printf("%-42s %7d/31 %7d/%d\n", "community regexps", 5, pre_community,
              network_count);
  std::printf("%-42s %7d/31 %7d/%d\n", "ranges in community regexps", 2,
              pre_community_range, network_count);
  std::printf("\npost-anonymization: public-ASN ranges remaining: %d "
              "(ranges are rewritten away)\n",
              post_public_range);

  // Shape: rare range usage, common alternation, ranges gone after
  // anonymization.
  const bool shape_holds = pre_public_range <= 6 && pre_alternation >= 5 &&
                           pre_alternation > pre_public_range &&
                           post_public_range == 0;
  std::printf("shape (ranges rare, alternation common, ranges removed): %s\n",
              shape_holds ? "HOLDS" : "DOES NOT HOLD");
  return shape_holds ? 0 : 1;
}
