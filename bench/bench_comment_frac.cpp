// COMM — reproduces the comment-removal statistic (paper Section 4.2):
// "Among a dataset of 173 networks, an average of 1.5% of the words were
// found to be comments and removed (90th percentile 6%)."
//
// We generate 173 networks, anonymize each, and measure the fraction of
// words the comment-stripping rules (C1-C3 plus the comment-like SNMP
// payloads) removed per network.
#include <cstdio>

#include "core/anonymizer.h"
#include "gen/config_writer.h"
#include "gen/network_gen.h"
#include "util/stats.h"

int main() {
  using namespace confanon;

  const int network_count = 173;
  util::Summary fraction_per_network;  // percent
  std::uint64_t words_total = 0, words_removed = 0;

  for (int i = 0; i < network_count; ++i) {
    gen::GeneratorParams params;
    params.seed = 9200 + static_cast<std::uint64_t>(i);
    params.router_count = 4 + (i * 7) % 17;  // small networks, varied sizes
    params.profile = (i % 3 == 2) ? gen::NetworkProfile::kEnterprise
                                  : gen::NetworkProfile::kBackbone;
    const auto network = gen::GenerateNetwork(params, i);
    const auto pre = gen::WriteNetworkConfigs(network);

    core::AnonymizerOptions options;
    options.salt = "comm-" + std::to_string(i);
    core::Anonymizer anonymizer(std::move(options));
    anonymizer.AnonymizeNetwork(pre);
    const core::AnonymizationReport& report = anonymizer.report();
    fraction_per_network.Add(report.CommentWordFraction() * 100.0);
    words_total += report.total_words;
    words_removed += report.comment_words_removed;
  }

  std::printf("== COMM: comment word fraction (paper Section 4.2) ==\n");
  std::printf("networks: %d  words: %llu  removed: %llu\n\n", network_count,
              static_cast<unsigned long long>(words_total),
              static_cast<unsigned long long>(words_removed));
  std::printf("%-36s %10s %10s\n", "metric", "paper", "measured");
  std::printf("%-36s %10s %10.1f%%\n", "mean comment-word fraction", "1.5%",
              fraction_per_network.Mean());
  std::printf("%-36s %10s %10.1f%%\n", "p90 comment-word fraction", "6%",
              fraction_per_network.Percentile(90));
  std::printf("%-36s %10s %10.1f%%\n", "max", "(n/a)",
              fraction_per_network.Max());

  // Shape: a small average with a long tail (p90 several times the mean
  // is the paper's 1.5% -> 6% pattern; we accept p90 >= 1.5x mean).
  const bool shape_holds =
      fraction_per_network.Mean() < 25.0 &&
      fraction_per_network.Percentile(90) >=
          1.2 * fraction_per_network.Mean();
  std::printf("\nshape (small mean, long tail): %s\n",
              shape_holds ? "HOLDS" : "DOES NOT HOLD");
  return shape_holds ? 0 : 1;
}
