// Shared BENCH_perf.json emitter for the bench binaries.
//
// The file is one JSON object:
//   { "schema": "confanon-bench-v1", "bench": "<binary>",
//     "meta": { ... scalar run parameters ... },
//     "metrics": <obs::RunMetrics>,   // counters / gauges / histograms
//     "report":  <AnonymizationReport> }
// The per-phase latency histograms ("core.line_ns", "core.file_ns",
// "asn.rewrite_ns", "leak.scan_ns", ...) carry p50/p90/p95/p99 inline;
// the "rule.*" counters in metrics equal report.rule_fires by
// construction (SyncReportDeltas). See docs/OBSERVABILITY.md.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/report.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace confanon::bench {

inline bool WriteBenchJson(
    const std::string& path, const std::string& bench_name,
    const std::vector<std::pair<std::string, std::int64_t>>& meta,
    const obs::RunMetrics& metrics, const core::AnonymizationReport& report) {
  obs::JsonWriter out;
  out.BeginObject();
  out.Key("schema").Value("confanon-bench-v1");
  out.Key("bench").Value(bench_name);
  out.Key("meta").BeginObject();
  for (const auto& [key, value] : meta) {
    out.Key(key).Value(value);
  }
  out.EndObject();
  out.Key("metrics");
  metrics.WriteJson(out);
  out.Key("report");
  report.WriteJson(out);
  out.EndObject();

  std::ofstream file(path, std::ios::trunc);
  if (!file) {
    std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
    return false;
  }
  file << out.str() << "\n";
  file.close();
  std::printf("wrote %s (%zu metric counters, %zu histograms)\n", path.c_str(),
              metrics.counters.size(), metrics.histograms.size());
  return file.good();
}

/// "--bench-out=PATH" on the command line overrides `default_path`;
/// benches share the BENCH_perf.json default so the CI trajectory always
/// finds one, and pass distinct paths when run back-to-back.
inline std::string BenchOutPath(int argc, char** argv,
                                const std::string& default_path) {
  const std::string flag = "--bench-out=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(flag, 0) == 0) return arg.substr(flag.size());
  }
  return default_path;
}

/// "--threads=N" selects the corpus-pipeline worker count; 0 (and the
/// default when the flag is absent) means hardware concurrency.
inline int BenchThreads(int argc, char** argv, int default_threads = 1) {
  const std::string flag = "--threads=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(flag, 0) == 0) return std::atoi(arg.c_str() + flag.size());
  }
  return default_threads;
}

/// Generic "--NAME=VALUE" lookup ("metrics-listen", "profile-out", ...).
/// Returns an empty string when the flag is absent.
inline std::string BenchStringFlag(int argc, char** argv,
                                   const std::string& name) {
  const std::string flag = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(flag, 0) == 0) return arg.substr(flag.size());
  }
  return {};
}

}  // namespace confanon::bench
