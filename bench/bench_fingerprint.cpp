// FPRINT — runs the fingerprinting-attack experiment the paper poses as
// future work (Sections 6.2-6.3):
//   "The remaining question that we will experimentally evaluate in
//    future work is whether address space usage fingerprints are
//    sufficiently unique to enable the identification of networks."
//   "...it is an open experimental question ... whether there is enough
//    entropy in the peering structures to make them useful as
//    fingerprints. It seems likely that peering structure can be used to
//    fingerprint backbone networks, but not edge networks."
//
// Experiment: a population of networks; the attacker holds one network's
// anonymized configs, computes its fingerprint (identical to the
// pre-anonymization one, since anonymization preserves exactly this
// structure — asserted below), and matches it against externally measured
// fingerprints of all candidates. A network is deanonymized iff its
// fingerprint is unique in the population.
#include <cstdio>
#include <vector>

#include "analysis/fingerprint.h"
#include "analysis/linkage.h"
#include "analysis/probe_attack.h"
#include "analysis/design_extract.h"
#include "core/anonymizer.h"
#include "gen/config_writer.h"
#include "gen/network_gen.h"

int main() {
  using namespace confanon;

  const int population = 120;
  std::vector<util::Histogram> subnet_fps;
  std::vector<analysis::PeeringFingerprint> peering_fps;
  std::vector<util::Histogram> subnet_backbone, subnet_edge;
  std::vector<analysis::PeeringFingerprint> peering_backbone, peering_edge;
  int preserved = 0;

  for (int i = 0; i < population; ++i) {
    gen::GeneratorParams params;
    params.seed = 4242 + static_cast<std::uint64_t>(i);
    const bool backbone = i % 2 == 0;
    params.profile = backbone ? gen::NetworkProfile::kBackbone
                              : gen::NetworkProfile::kEnterprise;
    params.router_count = backbone ? 12 + (i % 7) * 4 : 4 + (i % 5) * 2;
    const auto network = gen::GenerateNetwork(params, i);
    const auto pre = gen::WriteNetworkConfigs(network);

    const util::Histogram subnet_fp = analysis::SubnetSizeFingerprint(pre);
    const analysis::PeeringFingerprint peering_fp =
        analysis::PeeringStructureFingerprint(pre);

    // Attack premise: the anonymized corpus carries the same fingerprint.
    core::AnonymizerOptions options;
    options.salt = "fp-" + std::to_string(i);
    core::Anonymizer anonymizer(std::move(options));
    const auto post = anonymizer.AnonymizeNetwork(pre);
    const bool same =
        analysis::SubnetSizeFingerprint(post) == subnet_fp &&
        analysis::PeeringStructureFingerprint(post) == peering_fp;
    preserved += same;

    subnet_fps.push_back(subnet_fp);
    peering_fps.push_back(peering_fp);
    (backbone ? subnet_backbone : subnet_edge).push_back(subnet_fp);
    (backbone ? peering_backbone : peering_edge).push_back(peering_fp);
  }

  const auto subnet_all = analysis::SubnetFingerprintUniqueness(subnet_fps);
  const auto peering_all =
      analysis::PeeringFingerprintUniqueness(peering_fps);
  const auto peering_bb =
      analysis::PeeringFingerprintUniqueness(peering_backbone);
  const auto peering_edge_result =
      analysis::PeeringFingerprintUniqueness(peering_edge);
  const auto subnet_bb = analysis::SubnetFingerprintUniqueness(subnet_backbone);
  const auto subnet_edge_result =
      analysis::SubnetFingerprintUniqueness(subnet_edge);

  std::printf("== FPRINT: fingerprint uniqueness (Sections 6.2-6.3) ==\n");
  std::printf("population: %d networks (half backbone, half edge)\n", population);
  std::printf("fingerprints preserved through anonymization: %d/%d\n\n",
              preserved, population);
  std::printf("%-40s %14s\n", "fingerprint", "identified");
  std::printf("%-40s %9zu/%zu\n", "subnet-size histogram (all)",
              subnet_all.uniquely_identified, subnet_all.population);
  std::printf("%-40s %9zu/%zu\n", "subnet-size histogram (backbone)",
              subnet_bb.uniquely_identified, subnet_bb.population);
  std::printf("%-40s %9zu/%zu\n", "subnet-size histogram (edge)",
              subnet_edge_result.uniquely_identified,
              subnet_edge_result.population);
  std::printf("%-40s %9zu/%zu\n", "peering structure (all)",
              peering_all.uniquely_identified, peering_all.population);
  std::printf("%-40s %9zu/%zu\n", "peering structure (backbone)",
              peering_bb.uniquely_identified, peering_bb.population);
  std::printf("%-40s %9zu/%zu\n", "peering structure (edge)",
              peering_edge_result.uniquely_identified,
              peering_edge_result.population);

  // Shape per the paper's conjecture: fingerprints preserved exactly;
  // peering structure identifies backbones at a higher rate than edge
  // networks (edge networks have fewer attachment points -> less entropy).
  // --- prefix-linkage analysis (the structural residue of the Ylonen
  // attack the paper cites in Section 6.2) ---
  {
    gen::GeneratorParams params;
    params.seed = 777;
    params.router_count = 40;
    const auto network = gen::GenerateNetwork(params, 0);
    std::vector<net::Ipv4Address> addresses;
    for (const auto& router : network.routers) {
      for (const auto& iface : router.interfaces) {
        addresses.push_back(iface.address);
      }
    }
    std::printf("\nprefix-linkage: attacker compromises k addresses of a "
                "%zu-address network\n",
                addresses.size());
    std::printf("%6s %18s %18s %14s\n", "k", "mean known bits",
                "max known bits", "victims@/24");
    for (std::size_t k : {std::size_t{1}, std::size_t{5}, std::size_t{20},
                          std::size_t{50}}) {
      const analysis::LinkageResult r =
          analysis::MeasurePrefixLinkage(addresses, k);
      std::printf("%6zu %18.1f %18.0f %11zu/%zu\n", r.compromised,
                  r.mean_known_bits, r.max_known_bits, r.victims_within_24,
                  r.victims);
    }
  }

  // --- remote probe-sweep estimation of the subnet fingerprint (the
  // paper's Section 6.2 scenario, including its "extremely challenging"
  // caveat about measurement noise) ---
  {
    std::printf("\nprobe-sweep fingerprint estimation (Section 6.2):\n");
    std::printf("%10s %10s %16s %16s\n", "occupancy", "loss",
                "mean rel. error", "exact matches");
    struct Scenario {
      double occupancy;
      double loss;
    };
    for (const Scenario scenario :
         {Scenario{0.6, 0.0}, Scenario{0.4, 0.1}, Scenario{0.2, 0.3}}) {
      double error_sum = 0;
      int exact = 0;
      const int sample = 30;
      for (int i = 0; i < sample; ++i) {
        gen::GeneratorParams params;
        params.seed = 9000 + static_cast<std::uint64_t>(i);
        params.router_count = 10 + (i % 5) * 4;
        const auto network = gen::GenerateNetwork(params, i);
        const auto design =
            analysis::ExtractDesign(gen::WriteNetworkConfigs(network));
        analysis::ProbeAttackOptions options;
        options.seed = 100 + static_cast<std::uint64_t>(i);
        options.occupancy = scenario.occupancy;
        options.loss = scenario.loss;
        const analysis::ProbeAttackResult attack =
            analysis::SimulateProbeSweep(design, options);
        error_sum += attack.RelativeError();
        exact += attack.L1Error() == 0;
      }
      std::printf("%10.1f %10.1f %15.0f%% %13d/%d\n", scenario.occupancy,
                  scenario.loss, error_sum / sample * 100, exact, sample);
    }
  }

  // Even a noisy estimate may identify via nearest-neighbour matching:
  // the attacker compares his estimated histogram against the *true*
  // fingerprints of all candidates (which anonymization preserves).
  {
    const int candidates = 40;
    std::vector<util::Histogram> truth(static_cast<std::size_t>(candidates));
    std::vector<analysis::NetworkDesign> designs(
        static_cast<std::size_t>(candidates));
    for (int i = 0; i < candidates; ++i) {
      gen::GeneratorParams params;
      params.seed = 9000 + static_cast<std::uint64_t>(i);
      params.router_count = 10 + (i % 5) * 4;
      const auto network = gen::GenerateNetwork(params, i);
      designs[static_cast<std::size_t>(i)] =
          analysis::ExtractDesign(gen::WriteNetworkConfigs(network));
      const auto& design = designs[static_cast<std::size_t>(i)];
      analysis::ProbeAttackOptions options;  // only for the true histogram
      options.seed = 1;
      truth[static_cast<std::size_t>(i)] =
          analysis::SimulateProbeSweep(design, options).true_fingerprint;
    }
    for (double loss : {0.0, 0.1, 0.3}) {
      int identified = 0;
      for (int i = 0; i < candidates; ++i) {
        analysis::ProbeAttackOptions options;
        options.seed = 2000 + static_cast<std::uint64_t>(i);
        options.occupancy = 0.4;
        options.loss = loss;
        const auto attack = analysis::SimulateProbeSweep(
            designs[static_cast<std::size_t>(i)], options);
        std::uint64_t best = ~std::uint64_t{0};
        int best_index = -1;
        bool tie = false;
        for (int j = 0; j < candidates; ++j) {
          const std::uint64_t d = util::Histogram::L1Distance(
              attack.estimated_fingerprint,
              truth[static_cast<std::size_t>(j)]);
          if (d < best) {
            best = d;
            best_index = j;
            tie = false;
          } else if (d == best) {
            tie = true;
          }
        }
        identified += best_index == i && !tie;
      }
      std::printf("nearest-neighbour identification at loss %.1f: %d/%d\n",
                  loss, identified, candidates);
    }
  }

  const double bb_rate = peering_bb.IdentifiedFraction();
  const double edge_rate = peering_edge_result.IdentifiedFraction();
  std::printf("\npeering identification: backbone %.0f%% vs edge %.0f%%\n",
              bb_rate * 100, edge_rate * 100);
  const bool shape_holds = preserved == population && bb_rate >= edge_rate;
  std::printf("shape (preserved; backbones more identifiable): %s\n",
              shape_holds ? "HOLDS" : "DOES NOT HOLD");
  return shape_holds ? 0 : 1;
}
