// ITER — reproduces the iterative rule-refinement methodology of paper
// Section 6.1: "After anonymizing configs, we highlight for a human
// operator lines that seem likely to leak information ... lines they
// believe are dangerous are used to add more rules to the anonymizer.
// Our experience is that the iteration closes quickly, requiring fewer
// than 5 iterations over 3 months to anonymize 4.3 million lines."
//
// We start the anonymizer with six context rules missing, anonymize a
// corpus, run the leak detector (grep-back of recorded ASNs and names,
// exactly the paper's highlighter), and play the operator: each finding
// is mapped to the rule that would have handled its line, that rule is
// enabled, and the corpus is re-anonymized. The reproduction target is
// convergence to zero actionable findings in < 5 iterations.
//
// Also includes the pass-list coverage ablation: with a truncated
// pass-list nothing *leaks more* (hashing is the safe direction) but the
// fraction of structure destroyed (words hashed) rises.
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "core/anonymizer.h"
#include "core/leak_detector.h"
#include "gen/config_writer.h"
#include "gen/network_gen.h"
#include "util/strings.h"

namespace {

using namespace confanon;

/// The operator oracle: which rule would handle this leaking line?
const char* RuleForLine(const std::string& line) {
  const std::string lower = util::ToLower(line);
  if (lower.find("as-path access-list") != std::string::npos) {
    return core::rules::kAsPathRegex;
  }
  if (lower.find("community-list") != std::string::npos) {
    return core::rules::kCommunityListRegex;
  }
  if (lower.find("set community") != std::string::npos) {
    return core::rules::kSetCommunity;
  }
  if (lower.find("confederation") != std::string::npos) {
    return core::rules::kConfedPeers;
  }
  if (lower.find("router bgp") != std::string::npos) {
    return core::rules::kRouterBgp;
  }
  if (lower.find("remote-as") != std::string::npos) {
    return core::rules::kNeighborRemoteAs;
  }
  if (lower.find("dialer") != std::string::npos) {
    return core::rules::kDialerStrings;
  }
  if (lower.find("snmp") != std::string::npos) {
    return core::rules::kSnmpStrings;
  }
  return nullptr;
}

}  // namespace

int main() {
  using namespace confanon;

  // Corpus: a handful of networks with all policy features forced on so
  // every disabled rule has something to miss.
  std::vector<config::ConfigFile> pre;
  for (int i = 0; i < 6; ++i) {
    gen::GeneratorParams params;
    params.seed = 777 + static_cast<std::uint64_t>(i);
    params.router_count = 20;
    params.p_public_range_regex = 1.0;
    params.p_alternation_regex = 1.0;
    params.p_community_regex = 1.0;
    const auto network = gen::GenerateNetwork(params, i);
    for (auto& file : gen::WriteNetworkConfigs(network)) {
      pre.push_back(std::move(file));
    }
  }
  std::size_t total_lines = 0;
  for (const auto& file : pre) total_lines += file.LineCount();

  std::set<std::string> disabled = {
      core::rules::kRouterBgp,       core::rules::kAsPathRegex,
      core::rules::kCommunityListRegex, core::rules::kSetCommunity,
      core::rules::kConfedPeers,     core::rules::kSnmpStrings,
  };

  std::printf("== ITER: leak-closure iteration (paper Section 6.1) ==\n");
  std::printf("corpus: %zu files, %zu lines; starting with %zu rules "
              "disabled\n\n",
              pre.size(), total_lines, disabled.size());

  int iterations = 0;
  std::size_t residual_actionable = 0;
  std::size_t residual_false_positives = 0;
  for (; iterations < 10; ++iterations) {
    core::AnonymizerOptions options;
    options.salt = "iter-salt";
    options.disabled_rules = disabled;
    core::Anonymizer anonymizer(std::move(options));
    const auto post = anonymizer.AnonymizeNetwork(pre);
    const auto findings =
        core::LeakDetector::Scan(post, anonymizer.leak_record());

    // The operator pass: a highlighted line is actionable if a known rule
    // would handle it AND that rule is currently off; the remaining
    // highlights are number collisions — anonymized values that happen to
    // equal some recorded original (the paper's Genuity AS-1 effect,
    // amplified here because rewritten regexps contain many integers).
    std::set<std::string> to_enable;
    std::size_t actionable = 0;
    for (const auto& finding : findings) {
      const char* rule = RuleForLine(finding.line);
      if (rule != nullptr && disabled.contains(rule)) {
        ++actionable;
        to_enable.insert(rule);
      }
    }
    residual_actionable = actionable;
    residual_false_positives = findings.size() - actionable;
    std::printf("iteration %d: %zu highlighted lines (%zu actionable), "
                "operator adds %zu rules\n",
                iterations + 1, findings.size(), actionable,
                to_enable.size());
    if (to_enable.empty()) break;
    for (const auto& rule : to_enable) disabled.erase(rule);
  }

  std::printf("\n%-40s %10s %10s\n", "metric", "paper", "measured");
  std::printf("%-40s %10s %10d\n", "iterations to close", "< 5",
              iterations + 1);
  std::printf("%-40s %10s %10zu\n", "residual actionable findings", "0",
              residual_actionable);
  std::printf("%-40s %10s %10zu\n",
              "residual false-positive highlights", "(some)",
              residual_false_positives);

  // --- pass-list coverage ablation ---
  std::printf("\n-- ablation: pass-list coverage vs structure destroyed --\n");
  std::printf("%-22s %16s %16s\n", "pass-list fraction", "words hashed",
              "words passed");
  bool monotone = true;
  std::uint64_t previous_hashed = 0;
  for (double keep : {1.0, 0.75, 0.5, 0.25}) {
    core::AnonymizerOptions options;
    options.salt = "ablate";
    options.pass_list =
        passlist::PassList::Builtin().Truncated(keep, 0xAB1A7E);
    core::Anonymizer anonymizer(std::move(options));
    anonymizer.AnonymizeNetwork(pre);
    const auto& report = anonymizer.report();
    std::printf("%-22.2f %16llu %16llu\n", keep,
                static_cast<unsigned long long>(report.words_hashed),
                static_cast<unsigned long long>(report.words_passed));
    if (report.words_hashed < previous_hashed) monotone = false;
    previous_hashed = report.words_hashed;
  }
  std::printf("hashing grows as coverage shrinks: %s\n",
              monotone ? "HOLDS" : "DOES NOT HOLD");

  const bool reproduced =
      iterations + 1 < 5 && residual_actionable == 0 && monotone;
  std::printf("\nresult: %s\n", reproduced ? "REPRODUCED" : "MISMATCH");
  return reproduced ? 0 : 1;
}
