// FIG1 — reproduces Figure 1 (paper Section 2) and verifies each of the
// four transformations the paper lists for it, plus the relationships
// that must survive:
//   (1) comments removed;
//   (2) owner's public ASN (1111) transformed;
//   (3) publicly routable addresses transformed, class- and
//       structure-preservingly; netmasks untouched;
//   (4) all external-peer data transformed (neighbor address, AS 701,
//       route-map names, community values, policy regexps).
// Preserved: the "uses" relationship (UUNET-import name), the
// "subnet contains" relationship (RIP network statement vs interface),
// classfulness, and the languages of the rewritten regexps.
#include <cstdio>
#include <string>

#include "asn/regex_rewrite.h"
#include "core/anonymizer.h"
#include "core/leak_detector.h"
#include "net/prefix.h"
#include "util/strings.h"

namespace {

constexpr const char* kFigure1Config = R"(hostname cr1.lax.foo.com
!
banner motd ^C
FooNet contact xxx@foo.com
Access strictly prohibited!
^C
!
interface Ethernet0
 description Foo Corp's LAX Main St offices
 ip address 1.1.1.1 255.255.255.0
!
interface Serial1/0.5 point-to-point
 description cr1.sfo-serial3/0.2
 ip address 1.2.3.4 255.255.255.252
!
router bgp 1111
 redistribute rip
 neighbor 2.2.2.2 remote-as 701
 neighbor 2.2.2.2 route-map UUNET-import in
 neighbor 2.2.2.2 route-map UUNET-export out
!
route-map UUNET-import deny 10
 match as-path 50
 match community 100
route-map UUNET-import permit 20
route-map UUNET-export permit 10
 match ip address 143
 set community 701:7100
!
access-list 143 permit ip 1.1.1.0 0.0.0.255
ip community-list 100 permit 701:7[1-5]..
ip as-path access-list 50 permit (_1239_|_70[2-5]_)
!
router rip
 network 1.0.0.0
)";

int g_failures = 0;

void Check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  if (!ok) ++g_failures;
}

}  // namespace

int main() {
  using namespace confanon;

  std::printf("== FIG1: Figure 1 anonymization (paper Section 2) ==\n");
  config::ConfigFile original =
      config::ConfigFile::FromText("cr1.lax.foo.com", kFigure1Config);
  core::AnonymizerOptions options;
  options.salt = "fig1-salt";
  core::Anonymizer anonymizer(std::move(options));
  const auto post = anonymizer.AnonymizeNetwork({original}).front();
  const std::string text = post.ToText();

  std::printf("\n(1) comments removed:\n");
  Check(text.find("FooNet") == std::string::npos, "banner body gone");
  Check(text.find("Main St") == std::string::npos,
        "description free text gone");
  Check(text.find("xxx@foo.com") == std::string::npos, "contact email gone");

  std::printf("\n(2) owner's public ASN transformed:\n");
  const std::string own_asn = std::to_string(anonymizer.asn_map().Map(1111));
  Check(text.find("router bgp 1111") == std::string::npos, "AS 1111 gone");
  Check(text.find("router bgp " + own_asn) != std::string::npos,
        "permuted ASN present");

  std::printf("\n(3) addresses transformed, structure preserved:\n");
  Check(text.find("1.1.1.1") == std::string::npos, "interface address gone");
  Check(text.find("255.255.255.0") != std::string::npos, "netmask intact");
  Check(text.find("0.0.0.255") != std::string::npos, "wildcard mask intact");
  const auto iface =
      anonymizer.ip_anonymizer().Map(*net::Ipv4Address::Parse("1.1.1.1"));
  const auto rip_net =
      anonymizer.ip_anonymizer().Map(*net::Ipv4Address::Parse("1.0.0.0"));
  Check(iface.GetClass() == net::AddrClass::kA, "class A preserved");
  Check(net::Prefix(rip_net, 8).Contains(iface),
        "subnet-contains (RIP network vs interface) preserved");
  Check(net::TrailingZeroBits(rip_net) >= 24,
        "classful network address stays a subnet address");

  std::printf("\n(4) peer data transformed:\n");
  const std::string peer_asn = std::to_string(anonymizer.asn_map().Map(701));
  Check(text.find("remote-as 701") == std::string::npos, "AS 701 gone");
  Check(text.find("remote-as " + peer_asn) != std::string::npos,
        "permuted peer ASN present");
  Check(text.find("UUNET") == std::string::npos, "route-map names hashed");
  Check(text.find("701:7100") == std::string::npos,
        "community literal transformed");
  Check(text.find("701:7[1-5]..") == std::string::npos,
        "community regexp rewritten");
  Check(text.find("(_1239_|_70[2-5]_)") == std::string::npos,
        "as-path regexp rewritten");

  std::printf("\nreferential integrity:\n");
  const std::string import_hash =
      anonymizer.string_hasher().Hash("UUNET-import");
  std::size_t occurrences = 0;
  for (std::size_t at = text.find(import_hash); at != std::string::npos;
       at = text.find(import_hash, at + 1)) {
    ++occurrences;
  }
  Check(occurrences == 3, "UUNET-import referenced consistently 3 times");

  std::printf("\nregexp language preservation:\n");
  const asn::TokenLanguage rewritten = [&] {
    // Find the rewritten as-path pattern in the output.
    for (const std::string_view line : post.lines()) {
      const auto words = util::SplitWords(line);
      if (words.size() >= 6 && words[1] == "as-path") {
        return asn::TokenLanguage::Compile(words[5]);
      }
    }
    return asn::TokenLanguage::Compile("$^");
  }();
  bool language_ok = true;
  for (std::uint32_t asn : {1239u, 702u, 703u, 704u, 705u}) {
    language_ok &= rewritten.Accepts(anonymizer.asn_map().Map(asn));
  }
  language_ok &= !rewritten.Accepts(anonymizer.asn_map().Map(701));
  Check(language_ok, "rewritten as-path accepts exactly the permuted set");

  const auto findings = core::LeakDetector::Scan(
      {post}, anonymizer.leak_record());
  Check(findings.empty(), "leak detector finds nothing");

  std::printf("\n== FIG1 result: %s (%d failures) ==\n",
              g_failures == 0 ? "REPRODUCED" : "MISMATCH", g_failures);
  return g_failures == 0 ? 0 : 1;
}
