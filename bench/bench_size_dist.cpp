// SIZE — reproduces the paper's dataset-shape statistics (Section 2):
// "Typical configs in production networks vary from 50 to 10,000 lines —
// in our dataset of 7655 routers, the 25th percentile was 183 lines and
// 90th percentile was 1123 lines."
//
// We generate a 31-network corpus (scaled to ~1/10th the router count for
// bench runtime) and report the same order statistics. Absolute numbers
// depend on the generator's size model; the shape to reproduce is a
// heavily right-skewed distribution spanning roughly two orders of
// magnitude with p90/p25 in the vicinity of the paper's ~6x ratio.
#include <cstdio>

#include "gen/config_writer.h"
#include "gen/network_gen.h"
#include "util/stats.h"

int main() {
  using namespace confanon;

  gen::GeneratorParams params;
  params.seed = 20040427;
  const int network_count = 31;
  const int total_routers = 765;  // paper: 7655, scaled 1/10

  util::Summary lines_per_router;
  std::size_t total_lines = 0;
  const auto corpus = gen::GenerateCorpus(params, network_count, total_routers);
  for (const auto& network : corpus) {
    for (const auto& file : gen::WriteNetworkConfigs(network)) {
      lines_per_router.Add(static_cast<double>(file.LineCount()));
      total_lines += file.LineCount();
    }
  }

  std::printf("== SIZE: config size distribution (paper Section 2) ==\n");
  std::printf("networks: %d  routers: %zu  total config lines: %zu\n\n",
              network_count, lines_per_router.Count(), total_lines);
  std::printf("%-28s %12s %12s\n", "metric", "paper", "measured");
  std::printf("%-28s %12s %12.0f\n", "min lines", "~50",
              lines_per_router.Min());
  std::printf("%-28s %12s %12.0f\n", "p25 lines", "183",
              lines_per_router.Percentile(25));
  std::printf("%-28s %12s %12.0f\n", "median lines", "(n/a)",
              lines_per_router.Median());
  std::printf("%-28s %12s %12.0f\n", "p90 lines", "1123",
              lines_per_router.Percentile(90));
  std::printf("%-28s %12s %12.0f\n", "max lines", "~10000",
              lines_per_router.Max());
  const double ratio =
      lines_per_router.Percentile(90) / lines_per_router.Percentile(25);
  std::printf("%-28s %12.1f %12.1f\n", "p90/p25 skew ratio", 1123.0 / 183.0,
              ratio);

  // Shape check: right-skewed with a paper-like p90/p25 ratio.
  const bool shape_holds = ratio > 2.5 && lines_per_router.Max() >
                                              4 * lines_per_router.Median();
  std::printf("\nshape (right-skewed, paper-like p90/p25): %s\n",
              shape_holds ? "HOLDS" : "DOES NOT HOLD");
  return shape_holds ? 0 : 1;
}
