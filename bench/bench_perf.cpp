// PERF — microbenchmarks of the design choices the paper weighs:
//   * Section 4.3: tree-based (Minshall-style) vs cryptographic (Xu /
//     Crypto-PAn style) prefix-preserving address mapping;
//   * Section 4.1: salted SHA-1 hashing, the per-word cost of the
//     conservative hash-everything-unknown policy;
//   * Section 4.4: regexp rewriting cost, alternation vs minimized-DFA
//     output (the extension path the paper mentions);
//   * end-to-end anonymization throughput (lines/s), which determined
//     whether the paper's 4.3M-line corpus was tractable.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "asn/regex_rewrite.h"
#include "bench_json.h"
#include "core/anonymizer.h"
#include "core/leak_detector.h"
#include "gen/config_writer.h"
#include "gen/network_gen.h"
#include "junos/anonymizer.h"
#include "junos/writer.h"
#include "ipanon/cryptopan.h"
#include "ipanon/ip_anonymizer.h"
#include "config/tokenizer.h"
#include "obs/hooks.h"
#include "pipeline/pipeline.h"
#include "util/aho_corasick.h"
#include "util/charscan.h"
#include "util/rng.h"
#include "util/sha1.h"
#include "util/sha1_batch.h"

namespace {

using namespace confanon;

void BM_Sha1Throughput(benchmark::State& state) {
  const std::string block(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::Sha1::Hash(block));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1Throughput)->Arg(64)->Arg(1024)->Arg(65536);

void BM_SaltedToken(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::SaltedHexToken("salt", "UUNET-import"));
  }
}
BENCHMARK(BM_SaltedToken);

void BM_Sha1Batch4(benchmark::State& state) {
  // Four single-block digests per kernel call — the word-hash batch
  // path. Compare items/s against BM_SaltedToken to see the lane win.
  using namespace std::string_view_literals;
  // sv literals: the embedded salt/word NUL separator must survive.
  const std::string_view messages[util::Sha1Batch::kLanes] = {
      "salt\0UUNET-import"sv, "salt\0cr1.sfo.foocorp.com"sv,
      "salt\0CUST-ACME-in"sv, "salt\0loopback-mgmt"sv};
  util::Sha1::Digest digests[util::Sha1Batch::kLanes];
  for (auto _ : state) {
    util::Sha1Batch::Hash4(messages, digests);
    benchmark::DoNotOptimize(digests);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(util::Sha1Batch::kLanes));
  state.SetLabel(util::Sha1BatchImplName());
}
BENCHMARK(BM_Sha1Batch4);

void BM_TreeIpMap(benchmark::State& state) {
  ipanon::IpAnonymizer anonymizer("bench-salt");
  util::Rng rng(1);
  std::vector<net::Ipv4Address> addresses;
  for (int i = 0; i < 4096; ++i) {
    addresses.emplace_back(static_cast<std::uint32_t>(rng.Next()));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        anonymizer.Map(addresses[i++ & 4095]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TreeIpMap);

void BM_TreeIpMapColdAddresses(benchmark::State& state) {
  // Every address fresh: measures trie growth rather than memo hits.
  ipanon::IpAnonymizer anonymizer("bench-salt-cold");
  util::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        anonymizer.Map(net::Ipv4Address(static_cast<std::uint32_t>(rng.Next()))));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TreeIpMapColdAddresses);

void BM_CryptoPanMap(benchmark::State& state) {
  const ipanon::CryptoPan pan("bench-key");
  util::Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        pan.Map(net::Ipv4Address(static_cast<std::uint32_t>(rng.Next()))));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CryptoPanMap);

void BM_AsnPermutationBuild(benchmark::State& state) {
  int i = 0;
  for (auto _ : state) {
    asn::AsnMap map("salt-" + std::to_string(i++));
    benchmark::DoNotOptimize(map.Map(701));
  }
}
BENCHMARK(BM_AsnPermutationBuild);

void BM_TokenLanguageEnumerate(benchmark::State& state) {
  // The Section 4.4 language computation: apply the regexp to all 2^16
  // ASNs.
  for (auto _ : state) {
    const asn::TokenLanguage language =
        asn::TokenLanguage::Compile("_70[1-5]_");
    benchmark::DoNotOptimize(language.Enumerate());
  }
}
BENCHMARK(BM_TokenLanguageEnumerate);

void BM_RewriteAlternation(benchmark::State& state) {
  const asn::AsnMap map("bench-salt");
  for (auto _ : state) {
    // Fresh rewriter per iteration: measures the full language
    // computation, not the rewrite memo (see BM_RewriteMemoHit).
    const asn::AsnRegexRewriter rewriter(map);
    benchmark::DoNotOptimize(
        rewriter.Rewrite("_7[0-9][0-9]_", asn::RewriteForm::kAlternation));
  }
}
BENCHMARK(BM_RewriteAlternation);

void BM_RewriteMinimizedDfa(benchmark::State& state) {
  const asn::AsnMap map("bench-salt");
  for (auto _ : state) {
    const asn::AsnRegexRewriter rewriter(map);
    benchmark::DoNotOptimize(
        rewriter.Rewrite("_7[0-9][0-9]_", asn::RewriteForm::kMinimizedDfa));
  }
}
BENCHMARK(BM_RewriteMinimizedDfa);

void BM_RewriteMemoHit(benchmark::State& state) {
  // The repeated-pattern path: after the first call every Rewrite of the
  // same (pattern, form) is an LRU lookup under a mutex.
  const asn::AsnMap map("bench-salt");
  const asn::AsnRegexRewriter rewriter(map);
  benchmark::DoNotOptimize(
      rewriter.Rewrite("_7[0-9][0-9]_", asn::RewriteForm::kAlternation));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rewriter.Rewrite("_7[0-9][0-9]_", asn::RewriteForm::kAlternation));
  }
  state.counters["memo_hits"] =
      static_cast<double>(rewriter.memo().hits());
}
BENCHMARK(BM_RewriteMemoHit);

void BM_TokenizeLine(benchmark::State& state) {
  // The tokenizer hot path over representative IOS lines, using the
  // buffer-reusing *Into form the engines use (zero allocations once
  // the vectors reach capacity).
  const std::vector<std::string> lines = {
      " ip address 203.0.113.77 255.255.255.0",
      " neighbor 198.51.100.9 route-map UUNET-import in",
      "interface GigabitEthernet0/0/1.503",
      "  description\t\tcore uplink  (  do not touch  )",
      "snmp-server community s3cr3t RO 99",
  };
  std::size_t bytes = 0;
  for (const auto& line : lines) bytes += line.size();
  config::LineTokens tokens;
  std::size_t i = 0;
  for (auto _ : state) {
    config::TokenizeLineInto(lines[i++ % lines.size()], tokens);
    benchmark::DoNotOptimize(tokens.words.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes / lines.size()));
  state.SetLabel(util::CharScanImplName());
}
BENCHMARK(BM_TokenizeLine);

void BM_SegmentWord(benchmark::State& state) {
  // Rule T1 segmentation of the identifiers the pass-list check sees.
  const std::vector<std::string> words = {
      "ethernet0/0", "GigabitEthernet0/0/1.503", "UUNET-import",
      "h38c2cc71c4", "255.255.255.0",
  };
  std::vector<config::Segment> segments;
  std::size_t i = 0;
  for (auto _ : state) {
    config::SegmentWordInto(words[i++ % words.size()], segments);
    benchmark::DoNotOptimize(segments.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(util::CharScanImplName());
}
BENCHMARK(BM_SegmentWord);

std::vector<config::ConfigFile> BenchCorpus(int routers) {
  gen::GeneratorParams params;
  params.seed = 99;
  params.router_count = routers;
  // Force the policy-regex features on so the rewriters (and the memo
  // behind asn.rewrite_memo_hits) run on every bench corpus.
  params.p_public_range_regex = 1.0;
  params.p_alternation_regex = 1.0;
  params.p_community_regex = 1.0;
  return gen::WriteNetworkConfigs(gen::GenerateNetwork(params, 0));
}

void BM_AnonymizeNetwork(benchmark::State& state) {
  const auto pre = BenchCorpus(static_cast<int>(state.range(0)));
  std::size_t lines = 0;
  for (const auto& file : pre) lines += file.LineCount();
  for (auto _ : state) {
    core::AnonymizerOptions options;
    options.salt = "perf-salt";
    core::Anonymizer anonymizer(std::move(options));
    benchmark::DoNotOptimize(anonymizer.AnonymizeNetwork(pre));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lines));
  state.counters["lines"] = static_cast<double>(lines);
}
BENCHMARK(BM_AnonymizeNetwork)->Arg(8)->Arg(24)->Arg(48)->Unit(benchmark::kMillisecond);

void BM_AnonymizeJunosNetwork(benchmark::State& state) {
  gen::GeneratorParams params;
  params.seed = 99;
  params.router_count = static_cast<int>(state.range(0));
  const auto pre =
      junos::WriteJunosNetworkConfigs(gen::GenerateNetwork(params, 0));
  std::size_t lines = 0;
  for (const auto& file : pre) lines += file.LineCount();
  for (auto _ : state) {
    junos::JunosAnonymizerOptions options;
    options.salt = "perf-salt";
    junos::JunosAnonymizer anonymizer(std::move(options));
    benchmark::DoNotOptimize(anonymizer.AnonymizeNetwork(pre));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lines));
  state.counters["lines"] = static_cast<double>(lines);
}
BENCHMARK(BM_AnonymizeJunosNetwork)->Arg(24)->Unit(benchmark::kMillisecond);

void BM_LeakScan(benchmark::State& state) {
  const auto pre = BenchCorpus(24);
  core::AnonymizerOptions options;
  options.salt = "perf-salt";
  core::Anonymizer anonymizer(std::move(options));
  const auto post = anonymizer.AnonymizeNetwork(pre);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::LeakDetector::Scan(post, anonymizer.leak_record()));
  }
}
BENCHMARK(BM_LeakScan)->Unit(benchmark::kMillisecond);

void BM_AhoCorasickBuild(benchmark::State& state) {
  std::vector<std::string> patterns;
  util::Rng rng(13);
  for (int i = 0; i < 2000; ++i) {
    patterns.push_back(std::to_string(rng.Below(65536)));
  }
  for (auto _ : state) {
    util::AhoCorasick automaton(patterns);
    benchmark::DoNotOptimize(automaton.PatternCount());
  }
  state.SetLabel("2000 patterns");
}
BENCHMARK(BM_AhoCorasickBuild)->Unit(benchmark::kMillisecond);

void BM_AhoCorasickScanLine(benchmark::State& state) {
  std::vector<std::string> patterns;
  util::Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    patterns.push_back(std::to_string(rng.Below(65536)));
  }
  const util::AhoCorasick automaton(patterns);
  const std::string line =
      " neighbor 203.0.113.77 route-map h38c2cc71c4 in";
  for (auto _ : state) {
    benchmark::DoNotOptimize(automaton.FindAll(line));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AhoCorasickScanLine);

void BM_ExportImportMappings(benchmark::State& state) {
  ipanon::IpAnonymizer anonymizer("bench-salt");
  util::Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    anonymizer.Map(net::Ipv4Address(static_cast<std::uint32_t>(rng.Next())));
  }
  for (auto _ : state) {
    std::stringstream stream;
    anonymizer.ExportMappings(stream);
    ipanon::IpAnonymizer replica("other");
    replica.ImportMappings(stream);
    benchmark::DoNotOptimize(replica.NodeCount());
  }
  state.SetLabel("2000 addresses");
}
BENCHMARK(BM_ExportImportMappings)->Unit(benchmark::kMillisecond);

void BM_PipelineAnonymizeCorpus(benchmark::State& state) {
  const auto pre = BenchCorpus(24);
  std::size_t lines = 0;
  for (const auto& file : pre) lines += file.LineCount();
  for (auto _ : state) {
    core::ServiceOptions options;
    options.base.salt = "perf-salt";
    options.threads = static_cast<int>(state.range(0));
    const auto context = pipeline::MakeServiceContext(std::move(options));
    pipeline::CorpusPipeline pipeline(context, context->CreateSession());
    benchmark::DoNotOptimize(pipeline.AnonymizeCorpus(pre));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lines));
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_PipelineAnonymizeCorpus)
    ->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

/// One fully instrumented end-to-end run (sequential baseline, then the
/// parallel pipeline at `threads` workers, then a leak scan) whose
/// registry snapshot and report become BENCH_perf.json. Kept separate
/// from the timed benchmarks above, which run with observability off —
/// except the wall-clock comparison, which times both paths with hooks
/// uninstalled on the sequential side and only metrics on the pipeline.
bool WritePerfJson(const std::string& path, int threads) {
  const auto pre = BenchCorpus(24);
  std::int64_t lines = 0;
  for (const auto& file : pre) lines += static_cast<std::int64_t>(file.LineCount());

  // Sequential baseline: the classic single-threaded engine.
  core::AnonymizerOptions options;
  options.salt = "perf-salt";
  const auto seq_start = std::chrono::steady_clock::now();
  core::Anonymizer sequential(options);
  const auto seq_post = sequential.AnonymizeNetwork(pre);
  const auto seq_end = std::chrono::steady_clock::now();

  // Parallel pipeline over the same corpus, instrumented: its snapshot
  // (including asn.rewrite_memo_hits and the shared-trie counters) is
  // what lands in the JSON.
  obs::MetricsRegistry registry;
  core::ServiceOptions popts;
  popts.base = options;
  popts.threads = threads;
  const auto context = pipeline::MakeServiceContext(std::move(popts));
  context->install_hooks(obs::Hooks{.metrics = &registry});
  pipeline::CorpusPipeline pipe(context, context->CreateSession());
  const auto par_start = std::chrono::steady_clock::now();
  const auto post = pipe.AnonymizeCorpus(pre);
  const auto par_end = std::chrono::steady_clock::now();

  // The determinism guarantee, asserted on every bench run.
  bool identical = seq_post.size() == post.size();
  for (std::size_t i = 0; identical && i < post.size(); ++i) {
    identical = seq_post[i].ToText() == post[i].ToText();
  }
  if (!identical) {
    std::fprintf(stderr,
                 "bench_perf: parallel output DIVERGED from sequential\n");
  }

  core::LeakDetector::Scan(post, pipe.leak_record(), &registry);

  const auto us = [](auto start, auto end) {
    return std::chrono::duration_cast<std::chrono::microseconds>(end - start)
        .count();
  };
  const std::int64_t seq_us = us(seq_start, seq_end);
  const std::int64_t par_us = std::max<std::int64_t>(us(par_start, par_end), 1);
  const int resolved_threads =
      threads > 0 ? threads
                  : std::max(1u, std::thread::hardware_concurrency());
  std::printf("pipeline threads=%d: sequential %lld us, parallel %lld us "
              "(speedup %.2fx, outputs %s)\n",
              resolved_threads, static_cast<long long>(seq_us),
              static_cast<long long>(par_us),
              static_cast<double>(seq_us) / static_cast<double>(par_us),
              identical ? "identical" : "DIVERGED");

  const bool wrote = bench::WriteBenchJson(
      path, "bench_perf",
      {{"routers", static_cast<std::int64_t>(pre.size())},
       {"lines", lines},
       {"threads", resolved_threads},
       {"sequential_us", seq_us},
       {"parallel_us", par_us},
       {"speedup_x100", seq_us * 100 / par_us},
       {"outputs_identical", identical ? 1 : 0}},
      registry.Snapshot(), pipe.report());
  return wrote && identical;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      confanon::bench::BenchOutPath(argc, argv, "BENCH_perf.json");
  const int threads = confanon::bench::BenchThreads(argc, argv, 1);
  // Strip our flags before handing argv to google-benchmark.
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--bench-out=", 0) == 0) continue;
    if (arg.rfind("--threads=", 0) == 0) continue;
    args.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(args.size());
  ::benchmark::Initialize(&bench_argc, args.data());
  if (::benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return WritePerfJson(out_path, threads) ? 0 : 1;
}
