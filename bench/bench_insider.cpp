// INSIDER — reproduces the compartmentalization observation of paper
// Section 6: "10 of 31 networks we examined use internal
// compartmentalization that would also defeat insider attacks. For
// example, some networks use NATs ..., some use routing policy to prevent
// reachability ..., and others drop traceroutes and other probe traffic."
//
// The generator assigns compartmentalization at the paper's 10/31 rate;
// the detector re-measures it from config text, both pre- and
// post-anonymization (the verdict depends only on structure, so it must
// survive anonymization).
#include <cstdio>

#include "analysis/compartment.h"
#include "analysis/design_extract.h"
#include "analysis/reachability.h"
#include "core/anonymizer.h"
#include "gen/config_writer.h"
#include "gen/network_gen.h"

int main() {
  using namespace confanon;

  const int network_count = 31;
  int truth_compartmentalized = 0;
  int detected_pre = 0;
  int detected_post = 0;
  int verdict_survives = 0;
  int by_kind[4] = {0, 0, 0, 0};

  for (int i = 0; i < network_count; ++i) {
    gen::GeneratorParams params;
    params.seed = 606;
    params.router_count = 12 + (i % 6) * 4;
    params.profile = (i % 3 == 2) ? gen::NetworkProfile::kEnterprise
                                  : gen::NetworkProfile::kBackbone;
    const auto network = gen::GenerateNetwork(params, i);
    const auto pre = gen::WriteNetworkConfigs(network);

    truth_compartmentalized +=
        network.truth.compartmentalization != gen::Compartmentalization::kNone;
    ++by_kind[static_cast<int>(network.truth.compartmentalization)];

    const auto pre_verdict = analysis::DetectCompartmentalization(pre);
    detected_pre += pre_verdict != analysis::CompartmentMechanism::kNone;

    core::AnonymizerOptions options;
    options.salt = "insider-" + std::to_string(i);
    core::Anonymizer anonymizer(std::move(options));
    const auto post = anonymizer.AnonymizeNetwork(pre);
    const auto post_verdict = analysis::DetectCompartmentalization(post);
    detected_post += post_verdict != analysis::CompartmentMechanism::kNone;
    verdict_survives += pre_verdict == post_verdict;
  }

  std::printf("== INSIDER: internal compartmentalization (Section 6) ==\n");
  std::printf("%-46s %8s %10s\n", "metric", "paper", "measured");
  std::printf("%-46s %5d/31 %7d/%d\n", "networks compartmentalized (truth)",
              10, truth_compartmentalized, network_count);
  std::printf("%-46s %8s %7d/%d\n", "detected from pre configs", "(n/a)",
              detected_pre, network_count);
  std::printf("%-46s %8s %7d/%d\n", "detected from anonymized configs",
              "(n/a)", detected_post, network_count);
  std::printf("%-46s %8s %7d/%d\n", "verdict survives anonymization",
              "implied", verdict_survives, network_count);
  std::printf("\nmechanism mix: none=%d nat=%d policy=%d probe-drop=%d\n",
              by_kind[0], by_kind[1], by_kind[2], by_kind[3]);

  // Reachability verification of the Section 6 claim: policy
  // compartmentalization actually prevents route propagation, and the
  // restriction (the full reachability matrix) survives anonymization.
  int policy_networks = 0, restricted = 0, matrix_preserved = 0;
  for (std::uint64_t seed = 1; seed < 120 && policy_networks < 5; ++seed) {
    gen::GeneratorParams params;
    params.seed = seed;
    params.router_count = 16;
    params.p_compartmentalized = 1.0;
    const auto network = gen::GenerateNetwork(params, 0);
    if (network.truth.compartmentalization !=
        gen::Compartmentalization::kPolicy) {
      continue;
    }
    const auto pre = gen::WriteNetworkConfigs(network);
    const analysis::ReachabilityReport pre_report =
        analysis::AnalyzeReachability(analysis::ExtractDesign(pre));
    if (pre_report.filtered_pairs == 0) continue;
    ++policy_networks;
    restricted += pre_report.ReachableFraction() < 1.0;
    core::AnonymizerOptions options;
    options.salt = "insider-reach-" + std::to_string(seed);
    core::Anonymizer anonymizer(std::move(options));
    const auto post = anonymizer.AnonymizeNetwork(pre);
    matrix_preserved +=
        pre_report ==
        analysis::AnalyzeReachability(analysis::ExtractDesign(post));
  }
  std::printf("policy networks verified: %d; reachability restricted: %d; "
              "matrix identical post-anonymization: %d\n",
              policy_networks, restricted, matrix_preserved);

  // Shape: roughly a third compartmentalized, detection consistent
  // across anonymization.
  const bool shape_holds = truth_compartmentalized >= 5 &&
                           truth_compartmentalized <= 16 &&
                           verdict_survives == network_count &&
                           detected_post == detected_pre &&
                           restricted == policy_networks &&
                           matrix_preserved == policy_networks;
  std::printf("\nshape (about a third; verdict stable): %s\n",
              shape_holds ? "HOLDS" : "DOES NOT HOLD");
  return shape_holds ? 0 : 1;
}
