// SCALE — reproduces the paper's headline dataset scale (Sections 1, 6.1):
// "7655 routers in 31 backbone and enterprise networks", "4.3 million
// lines of configuration", "more than 200 different IOS versions" — and
// shows the anonymizer handles that volume in interactive time.
//
// The full run (scale=1.0) generates ~7.6k routers and anonymizes every
// network. Default is scale=0.25 to keep `for b in bench/*; do $b; done`
// quick; pass a scale factor as argv[1] for the full reproduction:
//
//   bench_scale 1.0
//
// Live observability (both optional):
//   --metrics-listen=HOST:PORT  serve Prometheus /metrics + /healthz
//                               for the duration of the run (PORT 0
//                               picks an ephemeral port, printed)
//   --profile-out=FILE          write a flamegraph.pl-compatible folded
//                               stack profile and print the per-phase
//                               wall/IPC table after the run
//
// Disk round-trip mode:
//   --io-dir=DIR                spill the generated corpus to DIR before
//                               the measured window, then measure the
//                               full paper workflow — ingest (mmap-backed
//                               reads) -> anonymize -> audit -> emit
//                               (batched writes) — populating the io.*
//                               counters and the ingest/emit phases.
//                               Without it the corpus stays in memory and
//                               only the anonymize/audit phases run.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>

#include "audit/audit.h"
#include "bench_json.h"
#include "config/dialect.h"
#include "config/document.h"
#include "util/io.h"
#include "core/anonymizer.h"
#include "core/leak_detector.h"
#include "gen/config_writer.h"
#include "gen/network_gen.h"
#include "obs/export.h"
#include "obs/exposition.h"
#include "obs/hooks.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "pipeline/pipeline.h"

namespace {

// Touch every metric family the run will populate so the first /metrics
// scrape — possibly before any file is anonymized — already exposes the
// full schema (Prometheus treats a family appearing mid-run as a new
// series; pre-registration keeps dashboards stable from t=0).
void PreregisterFamilies(confanon::obs::MetricsRegistry& registry) {
  registry.HistogramNamed("core.line_ns");
  registry.HistogramNamed("core.file_ns");
  registry.HistogramNamed("core.tokenize_ns");
  registry.HistogramNamed("hash.batch_ns");
  registry.HistogramNamed("hash.lane_fill");
  registry.CounterNamed("hash.batched_words");
  registry.CounterNamed("hash.batch_flushes");
  registry.CounterNamed("ipanon.cache_hits");
  registry.CounterNamed("ipanon.cache_misses");
  registry.CounterNamed("ipanon.preloaded_addresses");
  registry.GaugeNamed("ipanon.trie_nodes");
  registry.CounterNamed("audit.files");
  registry.CounterNamed("audit.findings");
  registry.HistogramNamed("audit.scan_ns");
  registry.CounterNamed("leak.lines_scanned");
  registry.CounterNamed("leak.findings");
  registry.HistogramNamed("leak.scan_ns");
  registry.CounterNamed("io.bytes_read");
  registry.CounterNamed("io.read_ns");
  registry.CounterNamed("io.mmap_files");
  registry.CounterNamed("io.bytes_written");
  registry.CounterNamed("io.write_ns");
  registry.HistogramNamed("scale.lines_per_s");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace confanon;
  const double scale =
      argc > 1 && argv[1][0] != '-' ? std::atof(argv[1]) : 0.25;
  const std::string out_path =
      bench::BenchOutPath(argc, argv, "BENCH_perf.json");
  const int threads = bench::BenchThreads(argc, argv, 1);
  const std::string metrics_listen =
      bench::BenchStringFlag(argc, argv, "metrics-listen");
  const std::string profile_out =
      bench::BenchStringFlag(argc, argv, "profile-out");
  const std::string io_dir = bench::BenchStringFlag(argc, argv, "io-dir");

  gen::GeneratorParams params;
  params.seed = 765531;
  const int network_count = 31;
  const int total_routers = static_cast<int>(7655 * scale);

  std::printf("== SCALE: dataset-scale anonymization (Sections 1, 6.1) ==\n");
  std::printf("scale %.2f: targeting %d routers across %d networks "
              "(%d worker thread%s shared across networks)\n\n",
              scale, total_routers, network_count, threads,
              threads == 1 ? "" : "s");

  const auto t0 = std::chrono::steady_clock::now();
  const auto corpus =
      gen::GenerateCorpus(params, network_count, total_routers);
  const auto gen_seconds = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - t0).count();

  std::size_t routers = 0, lines = 0;
  std::set<std::string> versions;
  std::size_t textual_leaks = 0;
  std::size_t audit_findings = 0;
  std::uint64_t words_hashed = 0, asns_mapped = 0, addresses_mapped = 0;
  obs::MetricsRegistry registry;
  PreregisterFamilies(registry);
  core::AnonymizationReport merged_report;

  // Live exposition: snapshots are scrape-safe, so the server runs for
  // the whole anonymization window on its own thread.
  obs::SnapshotExporter exporter(&registry);
  obs::ExpositionServer::Options listen_options;
  std::unique_ptr<obs::ExpositionServer> live_server;
  if (!metrics_listen.empty()) {
    if (!obs::ExpositionServer::ParseListenSpec(
            metrics_listen, listen_options.host, listen_options.port)) {
      std::fprintf(stderr, "bench_scale: bad --metrics-listen spec '%s' "
                           "(want HOST:PORT)\n",
                   metrics_listen.c_str());
      return 1;
    }
    live_server = std::make_unique<obs::ExpositionServer>(
        listen_options,
        [&exporter] { return obs::RenderPrometheus(exporter.Capture()); });
    std::string error;
    if (!live_server->Start(&error)) {
      std::fprintf(stderr, "bench_scale: --metrics-listen failed: %s\n",
                   error.c_str());
      return 1;
    }
    std::printf("serving /metrics and /healthz on http://%s:%u/\n\n",
                live_server->host().c_str(), live_server->port());
  }

  // Phase profiler: always brackets the pipeline phases (cheap); span
  // buffering for the folded flamegraph profile only when requested —
  // feeding the trace sink makes every engine emit file/rule spans.
  obs::PhaseProfiler profiler;

  // All networks run concurrently through AnonymizeNetworkSet: one
  // pipeline (one shared mapping) per network, `threads` worker threads
  // shared across the whole set. threads=1 is the sequential baseline
  // (byte-identical by the per-network determinism guarantee).
  std::vector<pipeline::NetworkTask> tasks;
  tasks.reserve(static_cast<std::size_t>(network_count));
  for (int i = 0; i < network_count; ++i) {
    const auto& network = corpus[static_cast<std::size_t>(i)];
    for (const auto& router : network.routers) {
      versions.insert(config::MakeDialect(router.dialect).version_string);
    }
    pipeline::NetworkTask task;
    task.options.base.salt = "scale-" + std::to_string(i);
    task.files = gen::WriteNetworkConfigs(network);
    routers += task.files.size();
    for (const auto& file : task.files) lines += file.LineCount();
    tasks.push_back(std::move(task));
  }

  // Disk round-trip mode: spill the rendered corpus outside the measured
  // window, so the window starts from bytes on disk (ingest) and ends
  // with bytes on disk (emit) — the paper-scale I/O path the io.*
  // counters instrument.
  std::vector<std::vector<std::string>> input_paths;
  if (!io_dir.empty()) {
    input_paths.resize(tasks.size());
    util::BufferedWriter spill;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      const auto dir =
          std::filesystem::path(io_dir) / ("in-" + std::to_string(i));
      std::error_code ec;
      std::filesystem::create_directories(dir, ec);
      if (ec) {
        std::fprintf(stderr, "bench_scale: cannot create %s: %s\n",
                     dir.string().c_str(), ec.message().c_str());
        return 1;
      }
      input_paths[i].reserve(tasks[i].files.size());
      for (const auto& file : tasks[i].files) {
        const std::string path = (dir / (file.name() + ".cfg")).string();
        std::string error;
        if (!spill.Open(path, &error)) {
          std::fprintf(stderr, "bench_scale: %s\n", error.c_str());
          return 1;
        }
        file.AppendTo(spill);
        if (!spill.Close()) {
          std::fprintf(stderr, "bench_scale: %s\n", spill.error().c_str());
          return 1;
        }
        input_paths[i].push_back(path);
      }
      tasks[i].files.clear();  // re-read inside the measured window
    }
  }

  const auto t1 = std::chrono::steady_clock::now();
  if (!io_dir.empty()) {
    const obs::PhaseProfiler::ScopedPhase ingest_phase(&profiler, nullptr,
                                                       "ingest");
    std::uint64_t bytes_read = 0, read_ns = 0, mmap_files = 0;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      tasks[i].files.reserve(input_paths[i].size());
      for (const std::string& path : input_paths[i]) {
        std::string error;
        auto contents = util::ReadFileContents(path, &error);
        if (!contents) {
          std::fprintf(stderr, "bench_scale: %s\n", error.c_str());
          return 1;
        }
        bytes_read += contents->view.size();
        read_ns += contents->read_ns;
        if (contents->mapped) ++mmap_files;
        tasks[i].files.push_back(config::ConfigFile::FromBacking(
            std::filesystem::path(path).stem().string(), contents->view,
            std::move(contents->backing)));
      }
    }
    registry.CounterNamed("io.bytes_read").Add(bytes_read);
    registry.CounterNamed("io.read_ns").Add(read_ns);
    registry.CounterNamed("io.mmap_files").Add(mmap_files);
  }
  core::ServiceOptions set_options;
  set_options.threads = threads;
  const auto set_context = pipeline::MakeServiceContext(std::move(set_options));
  obs::Hooks set_hooks;
  set_hooks.metrics = &registry;
  set_hooks.profiler = &profiler;
  if (!profile_out.empty()) set_hooks.trace = &profiler;
  set_context->install_hooks(set_hooks);
  const auto results = pipeline::AnonymizeNetworkSet(tasks, *set_context);

  // Post-pass over each network's output: residue audit (the "audit"
  // phase, fanned out over the worker pool) and the leak scan.
  audit::AuditOptions audit_options;
  audit_options.threads = threads;
  audit_options.metrics = &registry;
  audit_options.profiler = &profiler;
  for (const auto& result : results) {
    merged_report.Merge(result.report);
    words_hashed += result.report.words_hashed;
    asns_mapped += result.report.asns_mapped;
    addresses_mapped += result.report.addresses_mapped;
    audit_findings +=
        audit::LintCorpus(result.files, audit_options).findings.size();
    obs::PhaseProfiler::ScopedPhase leak_phase(&profiler, nullptr,
                                               "leak-scan");
    for (const auto& finding :
         core::LeakDetector::Scan(result.files, result.leak_record,
                                  &registry)) {
      if (finding.kind == core::LeakFinding::Kind::kHashedWord) {
        ++textual_leaks;
      }
    }
  }
  // Egress leg of the round trip: anonymized output back to disk through
  // the batched writer, inside the measured window.
  if (!io_dir.empty()) {
    const obs::PhaseProfiler::ScopedPhase emit_phase(&profiler, nullptr,
                                                     "emit");
    util::BufferedWriter writer;
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto dir =
          std::filesystem::path(io_dir) / ("out-" + std::to_string(i));
      std::error_code ec;
      std::filesystem::create_directories(dir, ec);
      if (ec) {
        std::fprintf(stderr, "bench_scale: cannot create %s: %s\n",
                     dir.string().c_str(), ec.message().c_str());
        return 1;
      }
      for (const auto& file : results[i].files) {
        std::string error;
        if (!writer.Open((dir / (file.name() + ".cfg")).string(), &error)) {
          std::fprintf(stderr, "bench_scale: %s\n", error.c_str());
          return 1;
        }
        file.AppendTo(writer);
        if (!writer.Close()) {
          std::fprintf(stderr, "bench_scale: %s\n", writer.error().c_str());
          return 1;
        }
      }
    }
    registry.CounterNamed("io.bytes_written").Add(writer.bytes_written());
    registry.CounterNamed("io.write_ns").Add(writer.write_ns());
  }
  const auto t2 = std::chrono::steady_clock::now();
  const double anonymize_seconds =
      std::chrono::duration<double>(t2 - t1).count();
  // One sample per run: the bench gate reads this back as the p50 of a
  // single-entry histogram, giving BENCH_scale.json a throughput metric
  // in the same shape bench_diff.py already consumes.
  registry.HistogramNamed("scale.lines_per_s")
      .Record(static_cast<std::uint64_t>(
          static_cast<double>(lines) / anonymize_seconds));

  std::printf("%-34s %12s %12s\n", "metric", "paper", "measured");
  std::printf("%-34s %12s %12zu\n", "networks", "31", corpus.size());
  std::printf("%-34s %12s %12zu\n", "routers", "7655", routers);
  std::printf("%-34s %12s %12zu\n", "config lines", "4.3M", lines);
  std::printf("%-34s %12s %12zu\n", "distinct IOS versions", "200+",
              versions.size());
  std::printf("%-34s %12s %12s\n", "textual leaks after one pass", "0*",
              std::to_string(textual_leaks).c_str());
  std::printf("\ngenerated in %.1f s; anonymized %zu lines in %.1f s "
              "(%.0f lines/s); hashed %llu "
              "words, mapped %llu ASNs, %llu addresses\n",
              gen_seconds, lines, anonymize_seconds,
              static_cast<double>(lines) / anonymize_seconds,
              static_cast<unsigned long long>(words_hashed),
              static_cast<unsigned long long>(asns_mapped),
              static_cast<unsigned long long>(addresses_mapped));
  std::printf("(* the paper needed <5 operator iterations; our full rule "
              "set is the converged state)\n");
  std::printf("audit: %zu residue findings across %zu networks\n",
              audit_findings, results.size());

  // Phase profile: always print the table; write folded stacks when
  // requested. Coverage = phase wall over the measured window — at
  // threads=1 the phases tile the window, so this should sit near 100%.
  {
    const obs::PhaseProfiler::Profile profile = profiler.Finish();
    const double window_ns =
        std::chrono::duration<double, std::nano>(t2 - t1).count();
    std::printf("\n%s", obs::PhaseProfiler::RenderTable(profile).c_str());
    std::printf("phase coverage: %.1f%% of the %.2fs anonymize window\n",
                static_cast<double>(profile.PhaseWallNsTotal()) / window_ns *
                    100.0,
                window_ns / 1e9);
    if (!profile_out.empty()) {
      std::ofstream folded(profile_out, std::ios::trunc);
      if (folded) {
        obs::PhaseProfiler::WriteFolded(profile, folded);
        std::printf("wrote %s (%zu folded stacks; feed to flamegraph.pl)\n",
                    profile_out.c_str(), profile.spans.size());
      } else {
        std::fprintf(stderr, "bench_scale: cannot write %s\n",
                     profile_out.c_str());
      }
    }
  }
  if (live_server != nullptr) {
    std::printf("served %llu /metrics requests\n",
                static_cast<unsigned long long>(
                    live_server->requests_served()));
    live_server->Stop();
  }

  const bool wrote = bench::WriteBenchJson(
      out_path, "bench_scale",
      {{"scale_percent", static_cast<std::int64_t>(scale * 100.0)},
       {"networks", static_cast<std::int64_t>(corpus.size())},
       {"routers", static_cast<std::int64_t>(routers)},
       {"lines", static_cast<std::int64_t>(lines)},
       {"threads", static_cast<std::int64_t>(threads)},
       {"anonymize_ms",
        static_cast<std::int64_t>(anonymize_seconds * 1000.0)}},
      registry.Snapshot(), merged_report);

  const bool ok = wrote && textual_leaks == 0 && versions.size() >= 100;
  std::printf("\nresult: %s\n", ok ? "REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
