// SCALE — reproduces the paper's headline dataset scale (Sections 1, 6.1):
// "7655 routers in 31 backbone and enterprise networks", "4.3 million
// lines of configuration", "more than 200 different IOS versions" — and
// shows the anonymizer handles that volume in interactive time.
//
// The full run (scale=1.0) generates ~7.6k routers and anonymizes every
// network. Default is scale=0.25 to keep `for b in bench/*; do $b; done`
// quick; pass a scale factor as argv[1] for the full reproduction:
//
//   bench_scale 1.0
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "bench_json.h"
#include "config/dialect.h"
#include "core/anonymizer.h"
#include "core/leak_detector.h"
#include "gen/config_writer.h"
#include "gen/network_gen.h"
#include "obs/hooks.h"
#include "obs/metrics.h"
#include "pipeline/pipeline.h"

int main(int argc, char** argv) {
  using namespace confanon;
  const double scale =
      argc > 1 && argv[1][0] != '-' ? std::atof(argv[1]) : 0.25;
  const std::string out_path =
      bench::BenchOutPath(argc, argv, "BENCH_perf.json");
  const int threads = bench::BenchThreads(argc, argv, 1);

  gen::GeneratorParams params;
  params.seed = 765531;
  const int network_count = 31;
  const int total_routers = static_cast<int>(7655 * scale);

  std::printf("== SCALE: dataset-scale anonymization (Sections 1, 6.1) ==\n");
  std::printf("scale %.2f: targeting %d routers across %d networks "
              "(%d worker thread%s shared across networks)\n\n",
              scale, total_routers, network_count, threads,
              threads == 1 ? "" : "s");

  const auto t0 = std::chrono::steady_clock::now();
  const auto corpus =
      gen::GenerateCorpus(params, network_count, total_routers);
  const auto gen_seconds = std::chrono::duration<double>(
      std::chrono::steady_clock::now() - t0).count();

  std::size_t routers = 0, lines = 0;
  std::set<std::string> versions;
  std::size_t textual_leaks = 0;
  std::uint64_t words_hashed = 0, asns_mapped = 0, addresses_mapped = 0;
  obs::MetricsRegistry registry;
  core::AnonymizationReport merged_report;

  const auto t1 = std::chrono::steady_clock::now();
  // All networks run concurrently through AnonymizeNetworkSet: one
  // pipeline (one shared mapping) per network, `threads` worker threads
  // shared across the whole set. threads=1 is the sequential baseline
  // (byte-identical by the per-network determinism guarantee).
  std::vector<pipeline::NetworkTask> tasks;
  tasks.reserve(static_cast<std::size_t>(network_count));
  for (int i = 0; i < network_count; ++i) {
    const auto& network = corpus[static_cast<std::size_t>(i)];
    for (const auto& router : network.routers) {
      versions.insert(config::MakeDialect(router.dialect).version_string);
    }
    pipeline::NetworkTask task;
    task.options.base.salt = "scale-" + std::to_string(i);
    task.files = gen::WriteNetworkConfigs(network);
    routers += task.files.size();
    for (const auto& file : task.files) lines += file.LineCount();
    tasks.push_back(std::move(task));
  }
  const auto results = pipeline::AnonymizeNetworkSet(
      tasks, {.threads = threads, .metrics = &registry});
  for (const auto& result : results) {
    merged_report.Merge(result.report);
    words_hashed += result.report.words_hashed;
    asns_mapped += result.report.asns_mapped;
    addresses_mapped += result.report.addresses_mapped;
    for (const auto& finding :
         core::LeakDetector::Scan(result.files, result.leak_record,
                                  &registry)) {
      if (finding.kind == core::LeakFinding::Kind::kHashedWord) {
        ++textual_leaks;
      }
    }
  }
  const auto t2 = std::chrono::steady_clock::now();
  const double anonymize_seconds =
      std::chrono::duration<double>(t2 - t1).count();

  std::printf("%-34s %12s %12s\n", "metric", "paper", "measured");
  std::printf("%-34s %12s %12zu\n", "networks", "31", corpus.size());
  std::printf("%-34s %12s %12zu\n", "routers", "7655", routers);
  std::printf("%-34s %12s %12zu\n", "config lines", "4.3M", lines);
  std::printf("%-34s %12s %12zu\n", "distinct IOS versions", "200+",
              versions.size());
  std::printf("%-34s %12s %12s\n", "textual leaks after one pass", "0*",
              std::to_string(textual_leaks).c_str());
  std::printf("\ngenerated in %.1f s; anonymized %zu lines in %.1f s "
              "(%.0f lines/s); hashed %llu "
              "words, mapped %llu ASNs, %llu addresses\n",
              gen_seconds, lines, anonymize_seconds,
              static_cast<double>(lines) / anonymize_seconds,
              static_cast<unsigned long long>(words_hashed),
              static_cast<unsigned long long>(asns_mapped),
              static_cast<unsigned long long>(addresses_mapped));
  std::printf("(* the paper needed <5 operator iterations; our full rule "
              "set is the converged state)\n");

  const bool wrote = bench::WriteBenchJson(
      out_path, "bench_scale",
      {{"scale_percent", static_cast<std::int64_t>(scale * 100.0)},
       {"networks", static_cast<std::int64_t>(corpus.size())},
       {"routers", static_cast<std::int64_t>(routers)},
       {"lines", static_cast<std::int64_t>(lines)},
       {"threads", static_cast<std::int64_t>(threads)},
       {"anonymize_ms",
        static_cast<std::int64_t>(anonymize_seconds * 1000.0)}},
      registry.Snapshot(), merged_report);

  const bool ok = wrote && textual_leaks == 0 && versions.size() >= 100;
  std::printf("\nresult: %s\n", ok ? "REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
