#!/usr/bin/env python3
"""Compare two confanon-bench-v1 JSON files and flag p50 regressions.

Usage:
    bench_diff.py BASELINE.json CURRENT.json [--warn-above PCT] [--fail]

Prints a table of every latency histogram present in both files
(`core.line_ns`, `core.tokenize_ns`, `junos.line_ns`, ...) with the
baseline p50, the current p50 and the relative change. A regression
larger than --warn-above percent (default 25) emits a GitHub Actions
`::warning::` annotation; with --fail it also makes the exit code
nonzero. The default is warn-only: CI bench machines are noisy enough
that a hard gate on shared runners would flake, but the trend should be
visible on every run.

Two special cases for the batched word-hash instrumentation:

  * `*.lane_fill` histograms count lanes per flush, not nanoseconds —
    HIGHER is better, so the warning direction is inverted (a p50 DROP
    beyond the threshold warns).
  * `hash.*` counters (batched_words, batch_flushes) are diffed in a
    separate warn-only table; batching silently turning off
    (baseline > 0, current == 0) warns.
"""

import argparse
import json
import sys


def histogram_p50s(doc):
    return {
        name: snap["p50"]
        for name, snap in doc.get("metrics", {}).get("histograms", {}).items()
        if snap.get("count", 0) > 0 and "p50" in snap
    }


def hash_counters(doc):
    return {
        name: value
        for name, value in doc.get("metrics", {}).get("counters", {}).items()
        if name.startswith("hash.")
    }


def lower_is_better(name):
    # lane_fill counts live lanes per batch flush (max 4): a drop means
    # the batcher is flushing emptier, which is the regression direction.
    return not name.endswith(".lane_fill") and not name == "hash.lane_fill"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--warn-above", type=float, default=25.0,
                        metavar="PCT",
                        help="warn when p50 regresses more than PCT%%")
    parser.add_argument("--fail", action="store_true",
                        help="exit nonzero on regression instead of warning")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    base_p50s = histogram_p50s(baseline)
    cur_p50s = histogram_p50s(current)
    shared = sorted(set(base_p50s) & set(cur_p50s))
    if not shared:
        print("bench_diff: no shared histograms to compare", file=sys.stderr)
        return 1

    regressions = []
    print(f"{'histogram':<24} {'baseline p50':>14} {'current p50':>14} "
          f"{'change':>9}")
    for name in shared:
        base, cur = base_p50s[name], cur_p50s[name]
        change = (cur - base) / base * 100.0 if base > 0 else 0.0
        # Regression = p50 up for latencies, p50 down for lane_fill.
        regressed = (change > args.warn_above if lower_is_better(name)
                     else change < -args.warn_above)
        marker = ""
        if regressed:
            marker = "  <-- regression"
            regressions.append((name, base, cur, change))
        print(f"{name:<24} {base:>14.0f} {cur:>14.0f} {change:>+8.1f}%"
              f"{marker}")

    only = sorted(set(cur_p50s) - set(base_p50s))
    if only:
        print(f"(not in baseline: {', '.join(only)})")

    # hash.* counters: informational diff, warn-only, never fails.
    base_hash = hash_counters(baseline)
    cur_hash = hash_counters(current)
    hash_names = sorted(set(base_hash) | set(cur_hash))
    if hash_names:
        print(f"\n{'hash counter':<24} {'baseline':>14} {'current':>14}")
        for name in hash_names:
            base = base_hash.get(name, 0)
            cur = cur_hash.get(name, 0)
            print(f"{name:<24} {base:>14} {cur:>14}")
            if base > 0 and cur == 0:
                print(f"::warning::bench: {name} dropped to 0 "
                      f"(was {base}) — word-hash batching disabled?")

    for name, base, cur, change in regressions:
        print(f"::warning::bench p50 regression: {name} "
              f"{base:.0f}ns -> {cur:.0f}ns ({change:+.1f}%, "
              f"threshold {args.warn_above:.0f}%)")
    if regressions and args.fail:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
