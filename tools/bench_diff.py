#!/usr/bin/env python3
"""Statistical p50 regression gate over confanon-bench-v1 JSON files.

Usage:
    bench_diff.py BASELINE.json CURRENT.json [CURRENT2.json ...]
                  [--warn-above PCT] [--noise NOISE.json] [--fail]

Compares the baseline against the best of N current runs. Benchmarks on
shared CI runners are min-stable: scheduler preemption and cache
pollution only ever ADD time, so the minimum of several runs estimates
the machine's true capability far more robustly than any single run or
the mean. Passing several CURRENT files takes, per histogram, the
minimum p50 across runs (the maximum for `*.lane_fill`, where higher is
better) before diffing against the baseline.

Tolerances come from a noise file (--noise), a JSON object:

    {
      "default_tolerance_pct": 25.0,
      "metrics": {
        "core.line_ns":  {"tolerance_pct": 25.0, "gate": true},
        "hash.lane_fill": {"tolerance_pct": 10.0},
        "scale.lines_per_s": {"tolerance_pct": 30.0,
                              "higher_is_better": true}
      }
    }

A metric entry may set "higher_is_better": true to invert the regression
direction (a p50 DROP beyond tolerance regresses, and best-of-runs takes
the maximum) — throughput metrics like scale.lines_per_s read this way.
`*.lane_fill` histograms are inverted implicitly for compatibility.

A metric regressing beyond its tolerance emits a GitHub Actions
annotation. Only metrics marked "gate": true fail the run (exit 1)
under --fail — everything else stays warn-only, so one noisy histogram
cannot block CI while the headline metric is still held to a hard gate.
Without --fail every regression is a warning (local use).

Two special cases for the batched word-hash instrumentation:

  * `*.lane_fill` histograms count lanes per flush, not nanoseconds —
    HIGHER is better, so the regression direction is inverted (a p50
    DROP beyond tolerance regresses) and min-of-runs becomes max.
  * `hash.*`, `io.*`, and `scale.*` counters are diffed in a separate
    warn-only table; word-hash batching silently turning off
    (baseline > 0, current == 0) warns.
"""

import argparse
import json
import sys


def histogram_p50s(doc):
    return {
        name: snap["p50"]
        for name, snap in doc.get("metrics", {}).get("histograms", {}).items()
        if snap.get("count", 0) > 0 and "p50" in snap
    }


INFO_COUNTER_PREFIXES = ("hash.", "io.", "scale.")


def info_counters(doc):
    return {
        name: value
        for name, value in doc.get("metrics", {}).get("counters", {}).items()
        if name.startswith(INFO_COUNTER_PREFIXES)
    }


def lower_is_better(name, metric_noise):
    # lane_fill counts live lanes per batch flush (max 4): a drop means
    # the batcher is flushing emptier, which is the regression direction.
    # Throughput metrics declare the same inversion in the noise file via
    # "higher_is_better": true.
    if name.endswith(".lane_fill"):
        return False
    return not metric_noise.get(name, {}).get("higher_is_better", False)


def best_of_runs(runs, name, metric_noise):
    """Min across runs for latencies, max for inverted metrics."""
    values = [p50s[name] for p50s in runs if name in p50s]
    return (min(values) if lower_is_better(name, metric_noise)
            else max(values))


def load_noise(path):
    if path is None:
        return 25.0, {}
    with open(path) as f:
        doc = json.load(f)
    return doc.get("default_tolerance_pct", 25.0), doc.get("metrics", {})


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current", nargs="+",
                        help="one or more current-run JSON files; the "
                             "per-metric best (min) of the runs is diffed")
    parser.add_argument("--warn-above", type=float, default=None,
                        metavar="PCT",
                        help="default tolerance (overrides the noise "
                             "file's default_tolerance_pct)")
    parser.add_argument("--noise", metavar="FILE",
                        help="per-metric tolerance/gate JSON file")
    parser.add_argument("--fail", action="store_true",
                        help="exit nonzero when a gated metric regresses")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    runs = []
    for path in args.current:
        with open(path) as f:
            runs.append(histogram_p50s(json.load(f)))

    default_tol, metric_noise = load_noise(args.noise)
    if args.warn_above is not None:
        default_tol = args.warn_above

    base_p50s = histogram_p50s(baseline)
    current_names = set().union(*runs) if runs else set()
    shared = sorted(set(base_p50s) & current_names)
    if not shared:
        print("bench_diff: no shared histograms to compare", file=sys.stderr)
        return 1

    if len(runs) > 1:
        print(f"(best of {len(runs)} runs per metric: min for latencies, "
              f"max for lane_fill)")

    warned, failed = [], []
    print(f"{'histogram':<24} {'baseline p50':>14} {'current p50':>14} "
          f"{'change':>9} {'tol':>6}")
    for name in shared:
        base = base_p50s[name]
        cur = best_of_runs(runs, name, metric_noise)
        noise = metric_noise.get(name, {})
        tol = noise.get("tolerance_pct", default_tol)
        gated = bool(noise.get("gate", False))
        change = (cur - base) / base * 100.0 if base > 0 else 0.0
        # Regression = p50 up for latencies, p50 down for inverted
        # (higher-is-better) metrics.
        regressed = (change > tol if lower_is_better(name, metric_noise)
                     else change < -tol)
        marker = ""
        if regressed:
            marker = "  <-- regression" + (" (gated)" if gated else "")
            (failed if gated else warned).append((name, base, cur, change,
                                                  tol))
        print(f"{name:<24} {base:>14.0f} {cur:>14.0f} {change:>+8.1f}% "
              f"{tol:>5.0f}%{marker}")

    only = sorted(current_names - set(base_p50s))
    if only:
        print(f"(not in baseline: {', '.join(only)})")

    # hash.* / io.* / scale.* counters: informational diff, warn-only,
    # never fails. Only the first current run is shown — counters are
    # deterministic, so the runs agree.
    base_info = info_counters(baseline)
    with open(args.current[0]) as f:
        cur_info = info_counters(json.load(f))
    info_names = sorted(set(base_info) | set(cur_info))
    if info_names:
        print(f"\n{'counter':<24} {'baseline':>14} {'current':>14}")
        for name in info_names:
            base = base_info.get(name, 0)
            cur = cur_info.get(name, 0)
            print(f"{name:<24} {base:>14} {cur:>14}")
            if name.startswith("hash.") and base > 0 and cur == 0:
                print(f"::warning::bench: {name} dropped to 0 "
                      f"(was {base}) — word-hash batching disabled?")

    for name, base, cur, change, tol in warned:
        print(f"::warning::bench p50 regression: {name} "
              f"{base:.0f} -> {cur:.0f} ({change:+.1f}%, "
              f"tolerance {tol:.0f}%)")
    for name, base, cur, change, tol in failed:
        level = "error" if args.fail else "warning"
        print(f"::{level}::bench p50 regression (gated): {name} "
              f"{base:.0f} -> {cur:.0f} ({change:+.1f}%, "
              f"tolerance {tol:.0f}%)")
    if failed and args.fail:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
