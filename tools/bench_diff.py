#!/usr/bin/env python3
"""Compare two confanon-bench-v1 JSON files and flag p50 regressions.

Usage:
    bench_diff.py BASELINE.json CURRENT.json [--warn-above PCT] [--fail]

Prints a table of every latency histogram present in both files
(`core.line_ns`, `core.tokenize_ns`, `junos.line_ns`, ...) with the
baseline p50, the current p50 and the relative change. A regression
larger than --warn-above percent (default 25) emits a GitHub Actions
`::warning::` annotation; with --fail it also makes the exit code
nonzero. The default is warn-only: CI bench machines are noisy enough
that a hard gate on shared runners would flake, but the trend should be
visible on every run.
"""

import argparse
import json
import sys


def histogram_p50s(doc):
    return {
        name: snap["p50"]
        for name, snap in doc.get("metrics", {}).get("histograms", {}).items()
        if snap.get("count", 0) > 0 and "p50" in snap
    }


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--warn-above", type=float, default=25.0,
                        metavar="PCT",
                        help="warn when p50 regresses more than PCT%%")
    parser.add_argument("--fail", action="store_true",
                        help="exit nonzero on regression instead of warning")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    base_p50s = histogram_p50s(baseline)
    cur_p50s = histogram_p50s(current)
    shared = sorted(set(base_p50s) & set(cur_p50s))
    if not shared:
        print("bench_diff: no shared histograms to compare", file=sys.stderr)
        return 1

    regressions = []
    print(f"{'histogram':<24} {'baseline p50':>14} {'current p50':>14} "
          f"{'change':>9}")
    for name in shared:
        base, cur = base_p50s[name], cur_p50s[name]
        change = (cur - base) / base * 100.0 if base > 0 else 0.0
        marker = ""
        if change > args.warn_above:
            marker = "  <-- regression"
            regressions.append((name, base, cur, change))
        print(f"{name:<24} {base:>14.0f} {cur:>14.0f} {change:>+8.1f}%"
              f"{marker}")

    only = sorted(set(cur_p50s) - set(base_p50s))
    if only:
        print(f"(not in baseline: {', '.join(only)})")

    for name, base, cur, change in regressions:
        print(f"::warning::bench p50 regression: {name} "
              f"{base:.0f}ns -> {cur:.0f}ns ({change:+.1f}%, "
              f"threshold {args.warn_above:.0f}%)")
    if regressions and args.fail:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
