#include "asn/community.h"

#include "util/strings.h"

namespace confanon::asn {

std::string Community::ToString() const {
  return std::to_string(asn) + ":" + std::to_string(value);
}

std::optional<Community> ParseCommunity(std::string_view text) {
  const std::size_t colon = text.find(':');
  if (colon == std::string_view::npos) return std::nullopt;
  std::uint64_t asn = 0;
  std::uint64_t value = 0;
  if (!util::ParseUint(text.substr(0, colon), kMaxAsn, asn) ||
      !util::ParseUint(text.substr(colon + 1), 65535, value)) {
    return std::nullopt;
  }
  return Community{static_cast<std::uint32_t>(asn),
                   static_cast<std::uint32_t>(value)};
}

bool IsWellKnownCommunity(const Community& community) {
  return community.asn == 65535 &&
         (community.value == 65281 || community.value == 65282 ||
          community.value == 65283);
}

Community CommunityAnonymizer::Map(const Community& community) const {
  if (IsWellKnownCommunity(community)) return community;
  return Community{asn_map_.Map(community.asn),
                   value_permutation_.Map(community.value)};
}

std::optional<std::string> CommunityAnonymizer::MapText(
    std::string_view text) const {
  const auto community = ParseCommunity(text);
  if (!community) return std::nullopt;
  return Map(*community).ToString();
}

}  // namespace confanon::asn
