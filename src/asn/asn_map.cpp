#include "asn/asn_map.h"

#include <cassert>
#include <numeric>

#include "util/rng.h"

namespace confanon::asn {

bool IsPrivateAsn(std::uint32_t asn) {
  return asn >= kFirstPrivateAsn && asn <= kMaxAsn;
}

bool IsPublicAsn(std::uint32_t asn) {
  return asn >= 1 && asn < kFirstPrivateAsn;
}

AsnMap::AsnMap(std::string_view salt) {
  // forward_[i] is the image of public ASN i+1; a Fisher-Yates shuffle of
  // the public range seeded from the salt.
  const std::size_t public_count = kFirstPrivateAsn - 1;  // ASNs 1..64511
  forward_.resize(public_count);
  std::iota(forward_.begin(), forward_.end(), std::uint16_t{1});
  util::Rng rng(util::HashSeed(salt), "asn-permutation");
  for (std::size_t i = public_count; i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.Below(i));
    std::swap(forward_[i - 1], forward_[j]);
  }
  inverse_.resize(public_count);
  for (std::size_t i = 0; i < public_count; ++i) {
    inverse_[static_cast<std::size_t>(forward_[i] - 1)] =
        static_cast<std::uint16_t>(i + 1);
  }
}

std::uint32_t AsnMap::Map(std::uint32_t asn) const {
  assert(asn <= kMaxAsn);
  if (!IsPublicAsn(asn)) return asn;
  return forward_[asn - 1];
}

std::uint32_t AsnMap::Unmap(std::uint32_t asn) const {
  assert(asn <= kMaxAsn);
  if (!IsPublicAsn(asn)) return asn;
  return inverse_[asn - 1];
}

Uint16Permutation::Uint16Permutation(std::string_view salt,
                                     std::string_view label) {
  forward_.resize(65536);
  std::iota(forward_.begin(), forward_.end(), std::uint16_t{0});
  util::Rng rng(util::HashSeed(salt), label);
  for (std::size_t i = forward_.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.Below(i));
    std::swap(forward_[i - 1], forward_[j]);
  }
  inverse_.resize(65536);
  for (std::size_t i = 0; i < forward_.size(); ++i) {
    inverse_[forward_[i]] = static_cast<std::uint16_t>(i);
  }
}

std::uint32_t Uint16Permutation::Map(std::uint32_t value) const {
  assert(value <= 65535);
  return forward_[value];
}

std::uint32_t Uint16Permutation::Unmap(std::uint32_t value) const {
  assert(value <= 65535);
  return inverse_[value];
}

}  // namespace confanon::asn
