#include "asn/regex_rewrite.h"

#include <algorithm>
#include <chrono>

#include "regex/dfa_to_regex.h"
#include "regex/nfa.h"
#include "regex/parser.h"

namespace confanon::asn {

namespace {

/// RAII stamp filling RewriteResult's timing on every exit path.
class RewriteStopwatch {
 public:
  explicit RewriteStopwatch(RewriteResult& result)
      : result_(result), start_(std::chrono::steady_clock::now()) {}
  ~RewriteStopwatch() {
    result_.elapsed_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

 private:
  RewriteResult& result_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

std::string RewriteMemo::KeyOf(std::string_view pattern, RewriteForm form) {
  std::string key;
  key.reserve(pattern.size() + 2);
  key += form == RewriteForm::kAlternation ? 'a' : 'd';
  key += pattern;
  return key;
}

std::optional<RewriteResult> RewriteMemo::Lookup(std::string_view pattern,
                                                 RewriteForm form) const {
  const std::string key = KeyOf(pattern, form);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  entries_.splice(entries_.begin(), entries_, it->second);
  RewriteResult result = entries_.front().second;
  result.memo_hit = true;
  result.elapsed_ns = 0;
  return result;
}

void RewriteMemo::Store(std::string_view pattern, RewriteForm form,
                        const RewriteResult& result) const {
  const std::string key = KeyOf(pattern, form);
  std::lock_guard<std::mutex> lock(mutex_);
  if (index_.contains(key)) return;  // racing workers computed it twice
  entries_.emplace_front(key, result);
  entries_.front().second.memo_hit = false;
  index_.emplace(key, entries_.begin());
  if (entries_.size() > capacity_) {
    index_.erase(entries_.back().first);
    entries_.pop_back();
  }
}

std::uint64_t RewriteMemo::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t RewriteMemo::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::size_t RewriteMemo::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

TokenLanguage TokenLanguage::Compile(std::string_view pattern) {
  regex::Ast ast;
  regex::ParseOptions options;
  options.cisco_underscore = true;
  const regex::NodeId body = regex::ParsePattern(pattern, options, ast);

  // Token semantics: the pattern may consume the framing sentinels (so
  // anchors and '_' work) but may not skip over token characters.
  regex::CharSet boundary;
  boundary.Add(regex::kBeginSentinel);
  boundary.Add(regex::kEndSentinel);
  const regex::NodeId left =
      ast.AddRepeat(ast.AddCharSet(boundary), 0, regex::kUnbounded);
  const regex::NodeId right =
      ast.AddRepeat(ast.AddCharSet(boundary), 0, regex::kUnbounded);
  ast.set_root(ast.AddConcat({left, body, right}));

  const regex::Nfa nfa = regex::Nfa::Build(ast);
  TokenLanguage language;
  language.dfa_ = std::make_shared<regex::Dfa>(regex::Dfa::FromNfa(nfa));
  return language;
}

bool TokenLanguage::Accepts(std::uint32_t value) const {
  return dfa_->FullMatch(regex::FrameSubject(std::to_string(value)));
}

std::vector<std::uint32_t> TokenLanguage::Enumerate() const {
  std::vector<std::uint32_t> accepted;
  for (std::uint32_t value = 0; value <= 65535; ++value) {
    if (Accepts(value)) accepted.push_back(value);
  }
  return accepted;
}

int TokenLanguage::StateCount() const { return dfa_->StateCount(); }

std::shared_ptr<const EnumeratedLanguage> EnumerateLanguage(
    std::string_view pattern) {
  struct Cache {
    std::mutex mutex;
    std::unordered_map<std::string,
                       std::shared_ptr<const EnumeratedLanguage>>
        entries;
  };
  // Stop inserting (but keep serving) past this size so a daemon fed
  // adversarial pattern streams cannot grow the cache without bound.
  constexpr std::size_t kMaxEntries = 4096;
  static Cache cache;
  {
    const std::lock_guard<std::mutex> lock(cache.mutex);
    const auto it = cache.entries.find(std::string(pattern));
    if (it != cache.entries.end()) return it->second;
  }
  // Compile and enumerate outside the lock: racing threads may duplicate
  // the work once, but never serialize the 2^16 scan behind the mutex.
  const TokenLanguage language = TokenLanguage::Compile(pattern);
  auto entry = std::make_shared<EnumeratedLanguage>();
  entry->dfa_states = language.StateCount();
  entry->accepted = language.Enumerate();
  const std::lock_guard<std::mutex> lock(cache.mutex);
  const auto [it, inserted] = cache.entries.try_emplace(
      std::string(pattern), std::move(entry));
  if (!inserted) return it->second;  // a racing thread stored first
  if (cache.entries.size() > kMaxEntries) {
    auto result = it->second;
    cache.entries.erase(it);
    return result;
  }
  return it->second;
}

std::string RenderLanguage(const std::vector<std::uint32_t>& values,
                           RewriteForm form) {
  if (values.size() == 1) {
    return std::to_string(values.front());
  }
  if (form == RewriteForm::kAlternation) {
    std::string out = "(";
    for (std::size_t i = 0; i < values.size(); ++i) {
      if (i > 0) out += '|';
      out += std::to_string(values[i]);
    }
    out += ')';
    return out;
  }
  // Minimized-DFA form: build the minimal automaton for the finite
  // language and recover a compact expression by state elimination.
  std::vector<std::string> words;
  words.reserve(values.size());
  for (std::uint32_t value : values) {
    words.push_back(std::to_string(value));
  }
  const regex::Dfa minimal =
      regex::BuildDfaFromStrings(words).Minimize();
  const auto expression = regex::DfaToRegex(minimal);
  // A non-empty language always yields an expression.
  return "(" + expression.value() + ")";
}

std::size_t FindTopLevelColon(std::string_view pattern) {
  int depth = 0;
  bool in_class = false;
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    const char c = pattern[i];
    if (c == '\\') {
      ++i;
      continue;
    }
    if (in_class) {
      if (c == ']') in_class = false;
      continue;
    }
    switch (c) {
      case '[':
        in_class = true;
        break;
      case '(':
        ++depth;
        break;
      case ')':
        --depth;
        break;
      case ':':
        if (depth == 0) return i;
        break;
      default:
        break;
    }
  }
  return std::string_view::npos;
}

RewriteResult AsnRegexRewriter::Rewrite(std::string_view pattern,
                                        RewriteForm form) const {
  if (auto cached = memo_.Lookup(pattern, form)) return *std::move(cached);
  RewriteResult result = RewriteUncached(pattern, form);
  memo_.Store(pattern, form, result);
  return result;
}

RewriteResult AsnRegexRewriter::RewriteUncached(std::string_view pattern,
                                                RewriteForm form) const {
  RewriteResult result;
  result.pattern = std::string(pattern);
  const RewriteStopwatch stopwatch(result);

  const auto language = EnumerateLanguage(pattern);
  result.dfa_states = static_cast<std::size_t>(language->dfa_states);
  const std::vector<std::uint32_t>& accepted = language->accepted;
  result.language_size = accepted.size();
  for (std::uint32_t asn : accepted) {
    if (IsPublicAsn(asn)) ++result.public_members;
  }
  // "If the accepted language includes only private ASNs, which do not
  // need anonymization, no changes are required to the regexp."
  if (result.public_members == 0 || accepted.empty()) {
    return result;
  }

  std::vector<std::uint32_t> mapped;
  mapped.reserve(accepted.size());
  for (std::uint32_t asn : accepted) {
    mapped.push_back(asn_map_.Map(asn));
  }
  std::sort(mapped.begin(), mapped.end());
  if (mapped == accepted) {
    // The permutation fixes the language as a set (e.g. ".*" accepting the
    // whole space); the regexp reveals nothing about individual ASNs.
    return result;
  }

  result.pattern = RenderLanguage(mapped, form);
  result.changed = true;
  return result;
}

RewriteResult CommunityRegexRewriter::Rewrite(std::string_view pattern,
                                              RewriteForm form) const {
  if (auto cached = memo_.Lookup(pattern, form)) return *std::move(cached);
  RewriteResult result = RewriteUncached(pattern, form);
  memo_.Store(pattern, form, result);
  return result;
}

RewriteResult CommunityRegexRewriter::RewriteUncached(
    std::string_view pattern, RewriteForm form) const {
  RewriteResult result;
  result.pattern = std::string(pattern);
  const RewriteStopwatch stopwatch(result);

  const std::size_t colon = FindTopLevelColon(pattern);
  if (colon == std::string_view::npos) {
    // Not in ASN:VALUE shape; the caller flags the line for review instead
    // of guessing at semantics.
    return result;
  }
  const std::string_view asn_part = pattern.substr(0, colon);
  const std::string_view value_part = pattern.substr(colon + 1);

  const auto asn_compiled = EnumerateLanguage(asn_part);
  const auto value_compiled = EnumerateLanguage(value_part);
  result.dfa_states = static_cast<std::size_t>(asn_compiled->dfa_states) +
                      static_cast<std::size_t>(value_compiled->dfa_states);
  const std::vector<std::uint32_t>& asn_language = asn_compiled->accepted;
  const std::vector<std::uint32_t>& value_language = value_compiled->accepted;
  result.language_size = asn_language.size() * value_language.size();
  for (std::uint32_t a : asn_language) {
    if (IsPublicAsn(a)) ++result.public_members;
  }
  if (asn_language.empty() || value_language.empty()) {
    return result;
  }

  std::vector<std::uint32_t> mapped_asns;
  mapped_asns.reserve(asn_language.size());
  for (std::uint32_t a : asn_language) {
    mapped_asns.push_back(asn_map_.Map(a));
  }
  std::sort(mapped_asns.begin(), mapped_asns.end());

  // The value half is always anonymized ("we have chosen to favor
  // anonymity over information wherever such trade-offs must be made").
  std::vector<std::uint32_t> mapped_values;
  mapped_values.reserve(value_language.size());
  for (std::uint32_t v : value_language) {
    mapped_values.push_back(value_permutation_.Map(v));
  }
  std::sort(mapped_values.begin(), mapped_values.end());

  if (mapped_asns == asn_language && mapped_values == value_language) {
    return result;
  }
  result.pattern = RenderLanguage(mapped_asns, form) + ":" +
                   RenderLanguage(mapped_values, form);
  result.changed = true;
  return result;
}

}  // namespace confanon::asn
