// BGP community attribute anonymization (paper Section 4.5).
//
// Communities are written ASN:VALUE (e.g. 701:120). The ASN half goes
// through the network's ASN permutation; the VALUE half must also be
// anonymized ("we must assume that even the integer part ... could identify
// the network owner") and goes through a dedicated 16-bit permutation.
// Well-known communities (no-export and friends) carry protocol meaning,
// not identity, and pass through unchanged — they live in the private-ASN
// 65535:* block the permutation does not disturb on the ASN side, and we
// exempt their value side explicitly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "asn/asn_map.h"

namespace confanon::asn {

/// A parsed ASN:VALUE community.
struct Community {
  std::uint32_t asn = 0;
  std::uint32_t value = 0;

  std::string ToString() const;
  bool operator==(const Community&) const = default;
};

/// Parses "ASN:VALUE" with both halves in 0..65535. Rejects anything else
/// (including the bare 32-bit numeric form, which callers treat as an
/// ordinary integer).
std::optional<Community> ParseCommunity(std::string_view text);

/// Well-known communities from RFC 1997 (no-export = 65535:65281,
/// no-advertise = 65535:65282, local-AS = 65535:65283).
bool IsWellKnownCommunity(const Community& community);

class CommunityAnonymizer {
 public:
  /// Both permutations must outlive the anonymizer.
  CommunityAnonymizer(const AsnMap& asn_map,
                      const Uint16Permutation& value_permutation)
      : asn_map_(asn_map), value_permutation_(value_permutation) {}

  Community Map(const Community& community) const;

  /// Convenience: parse, map, format. Returns nullopt if `text` is not a
  /// community literal.
  std::optional<std::string> MapText(std::string_view text) const;

  const AsnMap& asn_map() const { return asn_map_; }
  const Uint16Permutation& value_permutation() const {
    return value_permutation_;
  }

 private:
  const AsnMap& asn_map_;
  const Uint16Permutation& value_permutation_;
};

}  // namespace confanon::asn
