// Rewriting regular expressions that accept ASNs or communities
// (paper Sections 4.4 and 4.5).
//
// ASNs referenced through digit wildcards/ranges cannot be permuted
// textually, so the paper leverages automata theory: compute the *language*
// the regexp accepts over the 2^16 ASN space, permute every accepted public
// ASN, and emit a regexp accepting exactly the permuted language — as a
// flat alternation by default, or as a compact expression recovered from
// the minimized DFA (the paper's mentioned-but-unbuilt extension, which we
// implement).
//
// Membership semantics ("applying the regexp to a list of all 2^16 ASNs
// and seeing which it accepts") follow the paper's worked example — 70[1-3]
// accepts exactly {701, 702, 703}: the pattern is matched against the ASN
// as a standalone path token, where '^', '$' and '_' may consume the token
// boundaries but plain literals cannot skip digits. So "_701_", "^701$" and
// "701" all accept exactly ASN 701, while "70[1-3]" does not accept 1701.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "asn/asn_map.h"
#include "asn/community.h"
#include "regex/regex.h"

namespace confanon::asn {

/// A compiled token-membership matcher over the 16-bit integer space.
class TokenLanguage {
 public:
  /// Compiles `pattern` with token semantics. Throws regex::ParseError on
  /// malformed patterns.
  static TokenLanguage Compile(std::string_view pattern);

  /// True if the pattern accepts `value` (0..65535) as a standalone token.
  bool Accepts(std::uint32_t value) const;

  /// All accepted values in ascending order.
  std::vector<std::uint32_t> Enumerate() const;

  /// Number of DFA states the compiled pattern uses (instrumentation; the
  /// language computation's cost is linear in states x subject length).
  int StateCount() const;

 private:
  TokenLanguage() = default;
  std::shared_ptr<const regex::Dfa> dfa_;
};

/// A compiled pattern's accepted language over the 2^16 token space plus
/// the DFA size that produced it.
struct EnumeratedLanguage {
  /// Accepted values in ascending order.
  std::vector<std::uint32_t> accepted;
  int dfa_states = 0;
};

/// Compiles `pattern` and enumerates its accepted language, memoized
/// process-wide by pattern text. The language is a pure function of the
/// pattern — unlike RewriteResult it does not depend on any per-network
/// permutation — so one enumeration serves every engine, network, and
/// tenant in the process. Corpora repeat the same handful of as-path and
/// community regexps across networks; without this memo each network
/// re-runs the 2^16-membership scan per pattern. Throws regex::ParseError
/// on malformed patterns (failures are not cached). Thread-safe.
std::shared_ptr<const EnumeratedLanguage> EnumerateLanguage(
    std::string_view pattern);

/// How the rewritten language is rendered.
enum class RewriteForm {
  kAlternation,   // (701|13|4451|...) — the paper's deployed approach
  kMinimizedDfa,  // minimal-DFA -> regex state elimination (the extension)
};

struct RewriteResult {
  /// The pattern to place in the anonymized config. Equal to the input
  /// when no rewrite was needed.
  std::string pattern;
  /// True if the emitted pattern differs from the input.
  bool changed = false;
  /// Size of the accepted language over the 16-bit space.
  std::size_t language_size = 0;
  /// How many accepted values were public ASNs (pre-anonymization).
  std::size_t public_members = 0;
  /// Instrumentation: total DFA states compiled for this rewrite (both
  /// halves for community patterns) and wall time spent in Rewrite().
  std::size_t dfa_states = 0;
  std::uint64_t elapsed_ns = 0;
  /// True when the result was served from the rewriter's memo — no
  /// NFA/DFA work happened, and dfa_states describes the original
  /// compilation, not this call.
  bool memo_hit = false;
};

/// Bounded LRU memo over (pattern, form) -> RewriteResult. Real and
/// generated corpora repeat the same handful of as-path/community
/// regexps across hundreds of routers; since the rewriters are pure
/// functions of their (immutable-after-seed) permutations, the rewrite —
/// parse, NFA, DFA, 2^16-membership enumeration, regex reconstruction —
/// only needs to run once per distinct pattern. Thread-safe: pipeline
/// workers share one memo per rewriter.
class RewriteMemo {
 public:
  explicit RewriteMemo(std::size_t capacity = 1024) : capacity_(capacity) {}

  /// Returns the memoized result (memo_hit set, elapsed_ns zeroed — the
  /// lookup cost is not the rewrite cost) or nullopt on a miss.
  std::optional<RewriteResult> Lookup(std::string_view pattern,
                                      RewriteForm form) const;
  void Store(std::string_view pattern, RewriteForm form,
             const RewriteResult& result) const;

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::size_t size() const;

 private:
  static std::string KeyOf(std::string_view pattern, RewriteForm form);

  std::size_t capacity_;
  mutable std::mutex mutex_;
  /// Most-recently-used at the front.
  mutable std::list<std::pair<std::string, RewriteResult>> entries_;
  mutable std::unordered_map<
      std::string,
      std::list<std::pair<std::string, RewriteResult>>::iterator>
      index_;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
};

/// Rewrites an as-path regexp. Returns the input unchanged when the
/// accepted language contains no public ASNs ("If the accepted language
/// includes only private ASNs ... no changes are required") or when the
/// permuted language equals the original one (e.g. ".*").
class AsnRegexRewriter {
 public:
  explicit AsnRegexRewriter(const AsnMap& asn_map) : asn_map_(asn_map) {}

  RewriteResult Rewrite(std::string_view pattern,
                        RewriteForm form = RewriteForm::kAlternation) const;

  const RewriteMemo& memo() const { return memo_; }

 private:
  RewriteResult RewriteUncached(std::string_view pattern,
                                RewriteForm form) const;

  const AsnMap& asn_map_;
  RewriteMemo memo_;
};

/// Rewrites a community-list regexp of the form ASNRE:VALUERE (split at the
/// first top-level ':'). Each half's language is computed and permuted
/// independently — exactly the cross-product language the original colon
/// form denotes. Patterns without a top-level colon are returned unchanged
/// with changed=false (callers escalate them to the leak report).
class CommunityRegexRewriter {
 public:
  CommunityRegexRewriter(const AsnMap& asn_map,
                         const Uint16Permutation& value_permutation)
      : asn_map_(asn_map), value_permutation_(value_permutation) {}

  RewriteResult Rewrite(std::string_view pattern,
                        RewriteForm form = RewriteForm::kAlternation) const;

  const RewriteMemo& memo() const { return memo_; }

 private:
  RewriteResult RewriteUncached(std::string_view pattern,
                                RewriteForm form) const;

  const AsnMap& asn_map_;
  const Uint16Permutation& value_permutation_;
  RewriteMemo memo_;
};

/// Renders a set of 16-bit values as a regexp in the requested form.
/// Values must be non-empty and sorted ascending.
std::string RenderLanguage(const std::vector<std::uint32_t>& values,
                           RewriteForm form);

/// Finds the first ':' at nesting depth zero (outside classes and groups),
/// or npos.
std::size_t FindTopLevelColon(std::string_view pattern);

}  // namespace confanon::asn
