// Anonymization of Autonomous System Numbers (paper Section 4.4).
//
// Public ASNs are globally unique and publicly attributable, so they are
// anonymized with a keyed random permutation of the public range; private
// ASNs (64512-65535) are not globally unique, leak nothing, and are left
// alone. ASN 0 is reserved and passed through. "There are no semantics and
// no relationships embedded in public ASNs, so a random permutation can be
// used" — the permutation is drawn by a salted Fisher-Yates shuffle, making
// it deterministic per network salt.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace confanon::asn {

/// BGPv4 16-bit ASN space boundaries.
inline constexpr std::uint32_t kMaxAsn = 65535;
inline constexpr std::uint32_t kFirstPrivateAsn = 64512;

/// True for the private range 64512-65535.
bool IsPrivateAsn(std::uint32_t asn);
/// True for 1..64511 (0 is reserved, not public).
bool IsPublicAsn(std::uint32_t asn);

class AsnMap {
 public:
  explicit AsnMap(std::string_view salt);

  /// Permutes public ASNs; identity on private ASNs and on 0. Input must
  /// be <= kMaxAsn.
  std::uint32_t Map(std::uint32_t asn) const;

  /// Inverse of Map (diagnostics; the anonymizer itself never inverts).
  std::uint32_t Unmap(std::uint32_t asn) const;

 private:
  std::vector<std::uint16_t> forward_;  // index 0..64511
  std::vector<std::uint16_t> inverse_;
};

/// Keyed permutation of the full 16-bit integer space, used for the value
/// half of BGP community attributes (paper Section 4.5: "the integer part
/// of community attributes must also be anonymized").
class Uint16Permutation {
 public:
  Uint16Permutation(std::string_view salt, std::string_view label);

  std::uint32_t Map(std::uint32_t value) const;
  std::uint32_t Unmap(std::uint32_t value) const;

 private:
  std::vector<std::uint16_t> forward_;
  std::vector<std::uint16_t> inverse_;
};

}  // namespace confanon::asn
