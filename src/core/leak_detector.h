// Leak detection: the grep-back defence of paper Section 6.1.
//
// "The anonymizer can record all AS numbers it sees before hashing them,
// and then grep out all lines from the anonymized configs that still
// include any of those numbers." We generalize the same trick to every
// identifier class the anonymizer touched: hashed words, original IP
// addresses, and public ASNs. Findings drive the iterative rule-refinement
// loop ("the iteration closes quickly, requiring fewer than 5 iterations
// over 3 months").
//
// Number matching is word-boundary aware but still produces false
// positives when an ASN collides with an unrelated integer — the paper's
// Genuity example (AS 1) is the extreme case. False positives are the
// point: a human (or the ITER bench's oracle) adjudicates them.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "config/document.h"
#include "obs/metrics.h"

namespace confanon::core {

/// Everything the anonymizer replaced, recorded pre-replacement.
struct LeakRecord {
  std::set<std::string> hashed_words;  // originals of hashed identifiers
  std::set<std::string> public_asns;   // decimal strings
  std::set<std::string> addresses;     // original dotted quads

  void Merge(const LeakRecord& other);
};

struct LeakFinding {
  enum class Kind { kHashedWord, kAsn, kAddress };

  std::string file;
  std::size_t line_number = 0;  // zero-based
  std::string line;
  std::string matched;  // the recorded identifier that matched
  Kind kind = Kind::kHashedWord;
};

class LeakDetector {
 public:
  /// Scans anonymized output for residues of recorded identifiers. With a
  /// registry installed, records "leak.patterns" / "leak.lines_scanned" /
  /// "leak.findings" counters and a per-file "leak.scan_ns" latency
  /// histogram; the scan also runs under a GlobalTracer() span
  /// ("leak-scan"), so installing a global trace sink covers it.
  static std::vector<LeakFinding> Scan(
      const std::vector<config::ConfigFile>& anonymized,
      const LeakRecord& record, obs::MetricsRegistry* metrics = nullptr);
};

}  // namespace confanon::core
