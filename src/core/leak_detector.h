// Leak detection: the grep-back defence of paper Section 6.1.
//
// "The anonymizer can record all AS numbers it sees before hashing them,
// and then grep out all lines from the anonymized configs that still
// include any of those numbers." We generalize the same trick to every
// identifier class the anonymizer touched: hashed words, original IP
// addresses, and public ASNs. Findings drive the iterative rule-refinement
// loop ("the iteration closes quickly, requiring fewer than 5 iterations
// over 3 months").
//
// Number matching is word-boundary aware but still produces false
// positives when an ASN collides with an unrelated integer — the paper's
// Genuity example (AS 1) is the extreme case. False positives are the
// point: a human (or the ITER bench's oracle) adjudicates them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "config/document.h"
#include "obs/metrics.h"
#include "util/aho_corasick.h"

namespace confanon::core {

/// Everything the anonymizer replaced, recorded pre-replacement.
struct LeakRecord {
  std::set<std::string> hashed_words;  // originals of hashed identifiers
  std::set<std::string> public_asns;   // decimal strings
  std::set<std::string> addresses;     // original dotted quads

  void Merge(const LeakRecord& other);
};

struct LeakFinding {
  enum class Kind { kHashedWord, kAsn, kAddress };

  std::string file;
  std::size_t line_number = 0;  // zero-based
  std::string line;
  std::string matched;  // the recorded identifier that matched
  Kind kind = Kind::kHashedWord;
};

/// Reusable scanner over one LeakRecord: the Aho-Corasick automaton over
/// all three identifier classes (hashed words, public ASNs, addresses) is
/// built once at construction and every line is walked exactly once. The
/// per-line "report each identifier at most once" dedup uses generation
/// stamps instead of a fresh O(patterns) bitmap per line, and the match
/// buffer is reused across lines — the two allocations that used to
/// dominate leak.scan_ns.
class LeakScanner {
 public:
  explicit LeakScanner(const LeakRecord& record);

  std::size_t pattern_count() const { return patterns_.size(); }

  /// Appends this file's findings. Not thread-safe (owns scratch state);
  /// use one scanner per thread for parallel scans.
  void ScanFile(const config::ConfigFile& file,
                std::vector<LeakFinding>& findings);

 private:
  std::vector<std::string> patterns_;
  std::vector<LeakFinding::Kind> kinds_;
  util::AhoCorasick automaton_;
  // Scratch: match buffer and per-pattern generation stamps (a pattern is
  // reported on the current line iff its stamp equals generation_).
  std::vector<util::AhoCorasick::Match> matches_;
  std::vector<std::uint64_t> reported_generation_;
  std::uint64_t generation_ = 0;
};

class LeakDetector {
 public:
  /// Scans anonymized output for residues of recorded identifiers. With a
  /// registry installed, records "leak.patterns" / "leak.lines_scanned" /
  /// "leak.findings" counters and a per-file "leak.scan_ns" latency
  /// histogram; the scan also runs under a GlobalTracer() span
  /// ("leak-scan"), so installing a global trace sink covers it.
  static std::vector<LeakFinding> Scan(
      const std::vector<config::ConfigFile>& anonymized,
      const LeakRecord& record, obs::MetricsRegistry* metrics = nullptr);
};

}  // namespace confanon::core
