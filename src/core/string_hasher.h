// Salted string hashing with referential integrity (paper Section 4.1).
//
// Every word not cleared by the pass-list is replaced by a token derived
// from its salted SHA-1 digest. Hashing the *word*, not the line, is what
// preserves the "uses" relationship: `route-map UUNET-import` at a BGP
// neighbor and `route-map UUNET-import deny 10` elsewhere hash to the same
// replacement, so the reference still resolves after anonymization.
//
// Replacement tokens are "h" + 10 hex chars: a letter first keeps them
// valid IOS identifiers, and 40 bits of digest make collisions across a
// network's identifier population negligible (and detected: a collision
// between two distinct originals throws, since silently merging two
// identifiers would corrupt the config's structure).
//
// Thread safety: the memo is sharded — originals by their (unsalted)
// string hash, the token->original collision map by the token's first hex
// digit — with one mutex per shard, so pipeline workers anonymizing
// different files of one network can hash concurrently with low
// contention. The token for a word is a pure function of (salt, word), so
// the mapping itself is independent of thread interleaving; sharding only
// protects the memo/collision bookkeeping.
#pragma once

#include <array>
#include <cstddef>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace confanon::core {

class StringHasher {
 public:
  explicit StringHasher(std::string_view salt) : salt_(salt) {}

  /// Returns the anonymized replacement for `word`. Deterministic; memoized.
  /// Throws std::runtime_error on a 40-bit digest collision between two
  /// distinct originals. Safe to call from multiple threads; the returned
  /// reference stays valid for the hasher's lifetime (node-based memo,
  /// never erased).
  const std::string& Hash(std::string_view word);

  /// Memo probe: the token for `word` if it has already been hashed,
  /// nullptr otherwise. Never computes a digest or installs anything.
  /// Thread-safe; the returned pointer stays valid for the hasher's
  /// lifetime.
  const std::string* Find(std::string_view word) const;

  /// Hashes up to Sha1Batch::kLanes *distinct* words in one call, writing
  /// `out[i]` = stable memo token for `words[i]`. Words whose salted
  /// message fits one SHA-1 block go through the 4-way batch kernel
  /// (remainder lanes padded with dummy messages and discarded); oversized
  /// words take the multi-block scalar path. Tokens are byte-identical to
  /// Hash() on each word. Returns the number of words digested by the
  /// batch kernel. Thread-safe (the memo install takes shard locks).
  std::size_t HashBatch(const std::string_view* words, std::size_t count,
                        const std::string** out);

  /// Number of distinct originals hashed so far.
  std::size_t DistinctCount() const;

  /// Every original hashed so far (for the leak detector's grep pass).
  std::vector<std::string> Originals() const;

 private:
  static constexpr std::size_t kShards = 16;

  /// Transparent hash so the memo can be probed with a string_view
  /// without materializing a temporary std::string per lookup.
  struct TransparentHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view text) const noexcept {
      return std::hash<std::string_view>{}(text);
    }
  };

  /// original -> token, sharded by std::hash of the original so the memo
  /// lookup (the hot path: repeated identifiers) takes only its shard's
  /// mutex.
  struct MemoShard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, std::string, TransparentHash,
                       std::equal_to<>>
        memo;
  };
  /// token -> original, sharded by the token's first hex digit. Collision
  /// detection must be global over tokens, and two colliding originals
  /// land in the same token shard by construction.
  struct ReverseShard {
    std::mutex mutex;
    std::unordered_map<std::string, std::string> reverse;
  };

  static std::size_t MemoShardOf(std::string_view word);
  static std::size_t ReverseShardOf(std::string_view token);

  /// Registers `token` for collision detection and memoizes word -> token.
  /// Returns the stable memo string (a racing thread may have installed
  /// the identical token first; its entry wins and is returned).
  const std::string& Install(std::string_view word, std::string token);

  std::string salt_;
  std::array<MemoShard, kShards> memo_shards_;
  std::array<ReverseShard, kShards> reverse_shards_;
};

}  // namespace confanon::core
