// Salted string hashing with referential integrity (paper Section 4.1).
//
// Every word not cleared by the pass-list is replaced by a token derived
// from its salted SHA-1 digest. Hashing the *word*, not the line, is what
// preserves the "uses" relationship: `route-map UUNET-import` at a BGP
// neighbor and `route-map UUNET-import deny 10` elsewhere hash to the same
// replacement, so the reference still resolves after anonymization.
//
// Replacement tokens are "h" + 10 hex chars: a letter first keeps them
// valid IOS identifiers, and 40 bits of digest make collisions across a
// network's identifier population negligible (and detected: a collision
// between two distinct originals throws, since silently merging two
// identifiers would corrupt the config's structure).
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace confanon::core {

class StringHasher {
 public:
  explicit StringHasher(std::string_view salt) : salt_(salt) {}

  /// Returns the anonymized replacement for `word`. Deterministic; memoized.
  /// Throws std::runtime_error on a 40-bit digest collision between two
  /// distinct originals.
  const std::string& Hash(std::string_view word);

  /// Number of distinct originals hashed so far.
  std::size_t DistinctCount() const { return memo_.size(); }

  /// Every original hashed so far (for the leak detector's grep pass).
  std::vector<std::string> Originals() const;

 private:
  std::string salt_;
  std::unordered_map<std::string, std::string> memo_;     // original -> token
  std::unordered_map<std::string, std::string> reverse_;  // token -> original
};

}  // namespace confanon::core
