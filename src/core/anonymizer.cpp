#include "core/anonymizer.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "config/tokenizer.h"
#include "core/session.h"
#include "net/prefix.h"
#include "net/special.h"
#include "util/sha1.h"
#include "util/strings.h"

namespace confanon::core {

using config::LineTokens;

namespace {

/// Renders words[from..] with their original inter-word gaps — used to
/// recover a policy regexp that may contain significant spaces.
std::string JoinTail(const LineTokens& tokens, std::size_t from) {
  std::string out;
  for (std::size_t i = from; i < tokens.words.size(); ++i) {
    if (i > from) out += tokens.gaps[i];
    out += tokens.words[i];
  }
  return out;
}

/// Replaces words[from..] with a single word, keeping the trailing gap.
/// `replacement` must be stable (arena- or memo-backed).
void ReplaceTail(LineTokens& tokens, std::size_t from,
                 std::string_view replacement) {
  tokens.words.resize(from);
  tokens.words.push_back(replacement);
  const std::string_view trailing = tokens.gaps.back();
  tokens.gaps.resize(from + 1);
  tokens.gaps.push_back(trailing);
}

/// Well-known community keywords that may appear where literals do.
bool IsCommunityKeyword(std::string_view lower_word) {
  return lower_word == "additive" || lower_word == "none" ||
         lower_word == "internet" || lower_word == "no-export" ||
         lower_word == "no-advertise" || lower_word == "local-as" ||
         lower_word == "exact" || lower_word == "exact-match";
}

/// Replaces the digits of a dial string with digits derived from its
/// salted hash, preserving length and any punctuation so the line stays a
/// syntactically valid dial string.
std::string PseudoDigits(std::string_view salt, std::string_view original) {
  const util::Sha1::Digest digest = util::SaltedDigest(salt, original);
  std::string out(original);
  std::size_t d = 0;
  for (char& c : out) {
    if (util::IsAsciiDigit(c)) {
      c = static_cast<char>('0' + digest[d % digest.size()] % 10);
      ++d;
    }
  }
  return out;
}

}  // namespace

void Anonymizer::LineCtx::SetWordRef(std::size_t i, std::string_view stable) {
  tokens.words[i] = stable;
  lower[i] = util::ToLowerArena(stable, *arena);
}

void Anonymizer::LineCtx::SetWord(std::size_t i, std::string_view value) {
  SetWordRef(i, arena->Store(value));
}

void Anonymizer::LineCtx::TruncateWords(std::size_t from) {
  tokens.words.resize(from);
  tokens.gaps.resize(from + 1);
  lower.resize(from);
  handled.resize(from);
}

void Anonymizer::LineCtx::ReplaceTailWith(std::size_t from,
                                          std::string_view replacement) {
  ReplaceTail(tokens, from, arena->Store(replacement));
  lower.resize(from);
  lower.push_back(util::ToLowerArena(tokens.words[from], *arena));
  handled.assign(tokens.words.size(), false);
  handled[from] = true;
}

Anonymizer::Anonymizer(AnonymizerOptions options)
    : Anonymizer(std::move(options), nullptr) {}

Anonymizer::Anonymizer(const ServiceContext& context, const Session& session)
    : Anonymizer(context.EngineOptions(session), session.state()) {}

Anonymizer::Anonymizer(AnonymizerOptions options,
                       std::shared_ptr<NetworkState> state)
    : options_(std::move(options)),
      pass_list_(options_.pass_list),
      enabled_{},
      shared_state_(state != nullptr),
      state_(shared_state_ ? std::move(state)
                           : std::make_shared<NetworkState>(options_.salt)),
      batcher_(state_->hasher) {
  pass_list_.Merge(options_.extra_pass_list);
  const auto on = [&](const char* name) {
    return !options_.disabled_rules.contains(name);
  };
  enabled_.segment_words = on(rules::kSegmentWords);
  enabled_.passlist_hash = on(rules::kPasslistHash);
  enabled_.strip_bang_comments = on(rules::kStripBangComments);
  enabled_.strip_free_text = on(rules::kStripFreeText);
  enabled_.strip_banners = on(rules::kStripBanners);
  enabled_.dialer_strings = on(rules::kDialerStrings);
  enabled_.snmp_strings = on(rules::kSnmpStrings);
  enabled_.secrets = on(rules::kSecrets);
  enabled_.name_arguments = on(rules::kNameArguments);
  enabled_.router_bgp = on(rules::kRouterBgp);
  enabled_.neighbor_remote_as = on(rules::kNeighborRemoteAs);
  enabled_.neighbor_local_as = on(rules::kNeighborLocalAs);
  enabled_.confed_identifier = on(rules::kConfedIdentifier);
  enabled_.confed_peers = on(rules::kConfedPeers);
  enabled_.aspath_regex = on(rules::kAsPathRegex);
  enabled_.aspath_prepend = on(rules::kAsPathPrepend);
  enabled_.community_list_literal = on(rules::kCommunityListLiteral);
  enabled_.community_list_regex = on(rules::kCommunityListRegex);
  enabled_.set_community = on(rules::kSetCommunity);
  enabled_.set_extcommunity = on(rules::kSetExtcommunity);
  enabled_.asn_audit = on(rules::kAsnAudit);
  enabled_.map_addresses = on(rules::kMapAddresses);
  enabled_.special_passthrough = on(rules::kSpecialPassthrough);
  enabled_.map_prefixes = on(rules::kMapPrefixes);
  enabled_.address_mask_pairs = on(rules::kAddressMaskPairs);
  enabled_.address_wildcard_pairs = on(rules::kAddressWildcardPairs);
  enabled_.plain_address_args = on(rules::kPlainAddressArgs);
  enabled_.subnet_preload = on(rules::kSubnetPreload);
}

void Anonymizer::CollectFileAddresses(const config::ConfigFile& file,
                                      std::vector<net::Ipv4Address>& out) {
  for (const std::string_view line : file.lines()) {
    for (std::string_view word : util::SplitWords(line)) {
      // CIDR tokens keep their literal (possibly host-bearing) address.
      const std::size_t slash = word.find('/');
      const auto address = net::Ipv4Address::Parse(
          slash == std::string_view::npos ? word : word.substr(0, slash));
      if (address && !net::IsSpecial(*address)) {
        out.push_back(*address);
      }
    }
  }
}

void Anonymizer::CollectHashCandidates(const config::ConfigFile& file,
                                       const passlist::PassList& pass_list,
                                       std::vector<std::string_view>& out) {
  for (const std::string_view line : file.lines()) {
    for (std::string_view word : util::SplitWords(line)) {
      if (word.empty() || config::IsNonAlphabetic(word)) continue;
      for (const config::Segment& segment : config::SegmentWord(word)) {
        if (segment.alpha && !pass_list.Contains(segment.text)) {
          out.push_back(word);
          break;
        }
      }
    }
  }
}

std::vector<config::ConfigFile> Anonymizer::AnonymizeNetwork(
    const std::vector<config::ConfigFile>& files) {
  obs::ScopedTimer network_span(&tracer_, "anonymize-network");
  network_span.AddArg("files", static_cast<std::int64_t>(files.size()));
  network_span.AddArg("phase", "anonymize");
  // Rule I7: preload the whole corpus's addresses in sorted order so the
  // subnet-address-preservation property holds network-wide.
  if (enabled_.subnet_preload &&
      !state_->preloaded.load(std::memory_order_acquire)) {
    obs::ScopedTimer preload_span(&tracer_, "preload.I7");
    preload_span.AddArg("phase", "preload");
    std::vector<net::Ipv4Address> addresses;
    for (const config::ConfigFile& file : files) {
      CollectFileAddresses(file, addresses);
    }
    preload_span.AddArg("addresses",
                        static_cast<std::int64_t>(addresses.size()));
    report_.CountRule(rules::kSubnetPreload, addresses.size());
    state_->ip.Preload(std::move(addresses));
    state_->preloaded.store(true, std::memory_order_release);
  }
  std::vector<config::ConfigFile> out;
  out.reserve(files.size());
  for (const config::ConfigFile& file : files) {
    out.push_back(AnonymizeFile(file));
  }
  SyncMetrics();
  return out;
}

config::ConfigFile Anonymizer::AnonymizeFile(const config::ConfigFile& file) {
  // Standalone streaming use (no corpus-wide pass ran): preload this
  // file's own addresses so rule I7's subnet-address guarantee holds at
  // least file-locally. Within AnonymizeNetwork or the pipeline the
  // corpus preload already ran and this is skipped.
  if (enabled_.subnet_preload &&
      !state_->preloaded.load(std::memory_order_acquire)) {
    std::vector<net::Ipv4Address> addresses;
    CollectFileAddresses(file, addresses);
    report_.CountRule(rules::kSubnetPreload, addresses.size());
    state_->ip.Preload(std::move(addresses));
  }

  const std::vector<config::LineRegion> banners = FindBannerRegions(file);
  std::vector<bool> in_banner(file.lines().size(), false);
  std::vector<bool> banner_start(file.lines().size(), false);
  if (options_.strip_comments && enabled_.strip_banners) {
    for (const config::LineRegion& region : banners) {
      for (std::size_t i = region.begin; i < region.end; ++i) {
        in_banner[i] = true;
      }
      banner_start[region.begin] = true;
    }
  }

  std::vector<std::string> out_lines;
  out_lines.reserve(file.lines().size());

  const bool observing =
      tracer_.enabled() || provenance_ != nullptr || metrics_ != nullptr;
  const std::int64_t file_start_us = tracer_.enabled() ? tracer_.NowUs() : 0;
  const auto file_start = std::chrono::steady_clock::now();
  // Per-rule processing time for this file (traced runs only): the cost
  // of each line is attributed to the rules that fired on it.
  std::map<std::string, std::uint64_t> rule_ns;

  for (std::size_t index = 0; index < file.lines().size(); ++index) {
    if (observing) {
      ObserveLine(file, index, in_banner, banner_start, out_lines, rule_ns);
    } else {
      AnonymizeLine(file, index, in_banner, banner_start, out_lines);
    }
  }
  // Resolve the remaining partial hash batch (dummy-padded lanes) and
  // render the lines waiting on it — the pending words and deferred token
  // views are arena-backed, so this must precede the reset.
  batcher_.FlushAll();
  DrainDeferred(out_lines);
  // Every line has been rendered into an owned output string; no
  // arena-backed view survives past this point.
  arena_.Reset();

  if (observing) {
    const std::int64_t file_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - file_start)
            .count();
    if (file_hist_ != nullptr) {
      file_hist_->Record(static_cast<std::uint64_t>(file_ns));
    }
    if (tracer_.enabled()) {
      const std::int64_t file_end_us =
          file_start_us + std::max<std::int64_t>(file_ns / 1000, 1);
      // Per-rule spans, laid end-to-end inside the file span so viewers
      // nest them under it (timestamp containment). Positions within the
      // file are synthetic; durations are the measured aggregates.
      std::int64_t cursor = file_start_us;
      for (const auto& [rule, ns] : rule_ns) {
        std::int64_t duration = std::max<std::int64_t>(
            static_cast<std::int64_t>(ns) / 1000, 1);
        duration = std::min(duration,
                            std::max<std::int64_t>(file_end_us - cursor, 1));
        tracer_.Complete("rule:" + rule, cursor, duration, "anonymize");
        cursor = std::min(cursor + duration, file_end_us - 1);
      }
      tracer_.Complete("file:" + file.name(), file_start_us,
                       file_end_us - file_start_us, "anonymize");
    }
    SyncMetrics();
  }

  // File names are derived from hostnames; anonymize consistently.
  std::string out_name = file.name();
  if (!out_name.empty() && !pass_list_.Contains(out_name)) {
    out_name = state_->hasher.Hash(out_name);
  }
  return config::ConfigFile(out_name, std::move(out_lines));
}

void Anonymizer::AnonymizeLine(const config::ConfigFile& file,
                               std::size_t index,
                               const std::vector<bool>& in_banner,
                               const std::vector<bool>& banner_start,
                               std::vector<std::string>& out_lines) {
  const std::string_view raw = file.lines()[index];
  ++report_.total_lines;
  LineCtx& ctx = line_ctx_;
  ctx.arena = &arena_;
  if (tokenize_hist_ != nullptr) {
    const auto t0 = std::chrono::steady_clock::now();
    config::TokenizeLineInto(raw, ctx.tokens);
    tokenize_hist_->Record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
  } else {
    config::TokenizeLineInto(raw, ctx.tokens);
  }
  report_.total_words += ctx.tokens.words.size();

  if (in_banner[index]) {
    // Rule C3: the whole banner block is a comment; drop it, leaving a
    // bare '!' where it started so the block boundary stays visible.
    report_.comment_words_removed += ctx.tokens.words.size();
    report_.CountRule(rules::kStripBanners);
    if (banner_start[index]) out_lines.push_back("!");
    return;
  }

  if (!ApplyCommentRules(file, index, raw, in_banner)) {
    // Line fully handled as a comment.
    const config::SplitLine split = config::SplitConfigLine(raw);
    report_.comment_words_removed +=
        split.words.empty() ? 0 : split.words.size() - 1;
    out_lines.push_back(std::string(static_cast<std::size_t>(split.indent),
                                    ' ') +
                        "!");
    return;
  }

  ctx.lower.clear();
  for (const std::string_view word : ctx.tokens.words) {
    ctx.lower.push_back(util::ToLowerArena(word, arena_));
  }
  ctx.handled.assign(ctx.tokens.words.size(), false);
  ctx.pending_slots = 0;
  ApplyWordPasses(ctx);
  if (ctx.pending_slots == 0) {
    out_lines.push_back(ctx.tokens.Render());
  } else {
    // Some hash tokens are still pending in the batcher: park the line
    // (moving the token vectors keeps the slot addresses stable) and
    // reserve its output position. It renders once the batcher's
    // resolved sequence reaches everything this line enqueued.
    deferred_.push_back(DeferredLine{std::move(ctx.tokens), out_lines.size(),
                                     batcher_.enqueued_seq()});
    out_lines.emplace_back();
  }
  // Flush policy: full 4-lane batches flush eagerly; with a provenance
  // log installed everything flushes per line, since the log records
  // post-line word counts and must see the rendered line immediately.
  if (provenance_ != nullptr) {
    batcher_.FlushAll();
  } else {
    batcher_.FlushFull();
  }
  DrainDeferred(out_lines);
}

void Anonymizer::HashWord(LineCtx& ctx, std::size_t i) {
  if (const std::string* token =
          batcher_.Lookup(ctx.tokens.words[i], arena_, &ctx.tokens.words[i])) {
    ctx.SetWordRef(i, *token);
  } else {
    ++ctx.pending_slots;
  }
}

void Anonymizer::DrainDeferred(std::vector<std::string>& out_lines) {
  while (!deferred_.empty() &&
         deferred_.front().seq <= batcher_.resolved_seq()) {
    DeferredLine& line = deferred_.front();
    out_lines[line.out_index] = line.tokens.Render();
    deferred_.pop_front();
  }
}

void Anonymizer::ApplyWordPasses(LineCtx& ctx) {
  // The former five independent passes, fused: one lowercase view
  // computed up front (each pass used to recompute it), the line-shaped
  // rule groups dispatched off it, then a single traversal applying the
  // per-token rules.
  ApplyFreeTextRules(ctx);
  ApplyAsnLineRules(ctx);
  ApplyMiscLineRules(ctx);
  ApplyTokenRules(ctx);
}

void Anonymizer::ObserveLine(const config::ConfigFile& file, std::size_t index,
                             const std::vector<bool>& in_banner,
                             const std::vector<bool>& banner_start,
                             std::vector<std::string>& out_lines,
                             std::map<std::string, std::uint64_t>& rule_ns) {
  const std::uint64_t words_before = report_.total_words;
  const std::size_t out_count = out_lines.size();
  const std::map<std::string, std::uint64_t> fires_before = report_.rule_fires;
  const auto t0 = std::chrono::steady_clock::now();

  AnonymizeLine(file, index, in_banner, banner_start, out_lines);

  const std::uint64_t elapsed_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  if (line_hist_ != nullptr) line_hist_->Record(elapsed_ns);

  const auto tokens_before =
      static_cast<std::uint32_t>(report_.total_words - words_before);
  const auto tokens_after = static_cast<std::uint32_t>(
      out_lines.size() > out_count ? util::SplitWords(out_lines.back()).size()
                                   : 0);

  // Rules whose fire count advanced during this line.
  std::vector<const std::string*> fired;
  for (const auto& [name, count] : report_.rule_fires) {
    const auto before = fires_before.find(name);
    if (before == fires_before.end() || before->second != count) {
      fired.push_back(&name);
    }
  }
  if (fired.empty()) return;
  const std::uint64_t share = elapsed_ns / fired.size();
  for (const std::string* rule : fired) {
    if (tracer_.enabled()) rule_ns[*rule] += share;
    if (provenance_ != nullptr) {
      provenance_->Record(obs::ProvenanceEntry{
          file.name(), static_cast<std::uint64_t>(index), *rule,
          tokens_before, tokens_after});
    }
  }
}

void Anonymizer::install_hooks(const obs::Hooks& hooks) {
  hooks_ = hooks;
  ApplyHooks();
}

void Anonymizer::ApplyHooks() {
  tracer_.set_sink(hooks_.trace);
  provenance_ = hooks_.provenance;
  metrics_ = hooks_.metrics;
  // Resolve every instrument eagerly (including the memo-hit counter, so
  // it appears in snapshots even before the first hit) and touch only
  // atomics on the hot paths.
  line_hist_ = metrics_ != nullptr ? &metrics_->HistogramNamed("core.line_ns")
                                   : nullptr;
  file_hist_ = metrics_ != nullptr ? &metrics_->HistogramNamed("core.file_ns")
                                   : nullptr;
  tokenize_hist_ = metrics_ != nullptr
                       ? &metrics_->HistogramNamed("core.tokenize_ns")
                       : nullptr;
  rewrite_hist_ = metrics_ != nullptr
                      ? &metrics_->HistogramNamed("asn.rewrite_ns")
                      : nullptr;
  dfa_states_total_ =
      metrics_ != nullptr ? &metrics_->CounterNamed("asn.rewrite_dfa_states")
                          : nullptr;
  rewrite_memo_hits_ =
      metrics_ != nullptr ? &metrics_->CounterNamed("asn.rewrite_memo_hits")
                          : nullptr;
  // The batched word-hash instruments are unprefixed ("hash.*"): the
  // hasher is dialect-agnostic shared state, so both engines feed the
  // same instruments.
  if (metrics_ != nullptr) {
    batcher_.set_metrics(&metrics_->HistogramNamed("hash.batch_ns"),
                         &metrics_->CounterNamed("hash.batched_words"),
                         &metrics_->CounterNamed("hash.batch_flushes"),
                         &metrics_->HistogramNamed("hash.lane_fill"));
  } else {
    batcher_.set_metrics(nullptr, nullptr, nullptr, nullptr);
  }
}

void Anonymizer::RecordRewrite(const asn::RewriteResult& result) {
  if (result.memo_hit) {
    // The rewrite was served from the LRU memo: no NFA/DFA work happened,
    // so neither the latency histogram nor the DFA-state total moves.
    if (rewrite_memo_hits_ != nullptr) rewrite_memo_hits_->Add(1);
    return;
  }
  if (rewrite_hist_ != nullptr) rewrite_hist_->Record(result.elapsed_ns);
  if (dfa_states_total_ != nullptr) {
    dfa_states_total_->Add(result.dfa_states);
  }
}

void Anonymizer::SyncMetrics() {
  if (metrics_ == nullptr) return;
  SyncReportDeltas(report_, synced_report_, *metrics_, "");
  const auto sync = [&](const char* name, std::uint64_t current,
                        std::uint64_t& base) {
    if (current > base) {
      metrics_->CounterNamed(name).Add(current - base);
      base = current;
    }
  };
  // The arena is engine-local (one per worker), so its counters sync
  // here even under a shared NetworkState.
  sync("arena.bytes", arena_.bytes_allocated(), synced_arena_bytes_);
  sync("arena.resets", arena_.resets(), synced_arena_resets_);
  if (shared_state_) {
    // The trie/hasher belong to the pipeline's shared NetworkState;
    // per-worker delta syncs would double count, so the pipeline syncs
    // those centrally at join.
    return;
  }
  const ipanon::IpAnonymizer::Stats ip_stats = state_->ip.stats();
  sync("ipanon.cache_hits", ip_stats.cache_hits, synced_ip_.cache_hits);
  sync("ipanon.cache_misses", ip_stats.cache_misses, synced_ip_.cache_misses);
  sync("ipanon.collision_walks", ip_stats.collision_walks,
       synced_ip_.collision_walks);
  sync("ipanon.preloaded_addresses", ip_stats.preloaded, synced_ip_.preloaded);
  metrics_->GaugeNamed("ipanon.trie_nodes")
      .Set(static_cast<std::int64_t>(state_->ip.NodeCount()));
}

bool Anonymizer::ApplyCommentRules(const config::ConfigFile& file,
                                   std::size_t index, std::string_view line,
                                   const std::vector<bool>& in_banner) {
  (void)file;
  (void)index;
  (void)in_banner;
  if (!options_.strip_comments || !enabled_.strip_bang_comments) {
    return true;
  }
  // Rule C1: '!' full-line comments. A bare '!' is a section separator and
  // stays; anything after the '!' is free text and goes.
  const config::SplitLine split = config::SplitConfigLine(line);
  if (!split.words.empty() && split.words[0].front() == '!') {
    if (split.words.size() > 1 || split.words[0].size() > 1) {
      report_.CountRule(rules::kStripBangComments);
      return false;  // caller replaces with bare "!"
    }
  }
  return true;
}

void Anonymizer::ApplyFreeTextRules(LineCtx& ctx) {
  if (!options_.strip_comments || !enabled_.strip_free_text) return;
  if (ctx.tokens.words.empty()) return;
  const std::vector<std::string_view>& lower = ctx.lower;

  // Rule C2: free-text payloads. `description ...` carries arbitrary prose
  // ("Foo Corp's LAX Main St offices"); `remark` inside ACLs likewise. The
  // arrangement of even pass-listed words can leak ("global crossing"), so
  // the whole payload is removed rather than hashed word-by-word.
  std::size_t payload_from = std::string::npos;
  if (lower[0] == "description" || lower[0] == "title") {
    payload_from = 1;
  } else {
    // `remark` and `description` can appear mid-line (`access-list 10
    // remark ...`, `ip prefix-list X description ...`); everything after
    // them is free text.
    for (std::size_t i = 0; i + 1 < lower.size(); ++i) {
      if (lower[i] == "remark" || lower[i] == "description") {
        payload_from = i + 1;
        break;
      }
    }
  }
  if (payload_from != std::string::npos &&
      payload_from < ctx.tokens.words.size()) {
    report_.comment_words_removed += ctx.tokens.words.size() - payload_from;
    report_.CountRule(rules::kStripFreeText);
    ctx.TruncateWords(payload_from);
  }
}

std::string Anonymizer::MapAsnWord(std::string_view word) {
  std::uint64_t asn = 0;
  if (!util::ParseUint(word, asn::kMaxAsn, asn)) {
    return std::string(word);
  }
  RecordAsn(static_cast<std::uint32_t>(asn));
  const std::uint32_t mapped =
      state_->asn_map.Map(static_cast<std::uint32_t>(asn));
  if (mapped != asn) ++report_.asns_mapped;
  return std::to_string(mapped);
}

void Anonymizer::RecordAsn(std::uint32_t asn) {
  if (asn::IsPublicAsn(asn) && enabled_.asn_audit) {
    // Rule A12: remember every public ASN seen so the leak detector can
    // grep the anonymized output for survivors (Section 6.1).
    leak_record_.public_asns.insert(std::to_string(asn));
    report_.CountRule(rules::kAsnAudit);
  }
}

void Anonymizer::ApplyAsnLineRules(LineCtx& ctx) {
  auto& words = ctx.tokens.words;
  if (words.empty()) return;
  const std::vector<std::string_view>& lower = ctx.lower;
  auto& handled = ctx.handled;
  const auto mark = [&](std::size_t i) { handled[i] = true; };

  // Rule A1: `router bgp <asn>`.
  if (enabled_.router_bgp && words.size() >= 3 && lower[0] == "router" &&
      lower[1] == "bgp" && util::IsAllDigits(words[2])) {
    ctx.SetWord(2, MapAsnWord(words[2]));
    mark(2);
    report_.CountRule(rules::kRouterBgp);
    return;
  }

  // Rules A2/A3: `neighbor <peer> remote-as|local-as <asn>`.
  if (words.size() >= 4 && lower[0] == "neighbor") {
    if (enabled_.neighbor_remote_as && lower[2] == "remote-as" &&
        util::IsAllDigits(words[3])) {
      ctx.SetWord(3, MapAsnWord(words[3]));
      mark(3);
      report_.CountRule(rules::kNeighborRemoteAs);
    } else if (enabled_.neighbor_local_as && lower[2] == "local-as" &&
               util::IsAllDigits(words[3])) {
      ctx.SetWord(3, MapAsnWord(words[3]));
      mark(3);
      report_.CountRule(rules::kNeighborLocalAs);
    }
    return;
  }

  // Rules A4/A5: confederation identifier / peer list.
  if (words.size() >= 4 && lower[0] == "bgp" && lower[1] == "confederation") {
    if (enabled_.confed_identifier && lower[2] == "identifier" &&
        util::IsAllDigits(words[3])) {
      ctx.SetWord(3, MapAsnWord(words[3]));
      mark(3);
      report_.CountRule(rules::kConfedIdentifier);
    } else if (enabled_.confed_peers && lower[2] == "peers") {
      for (std::size_t i = 3; i < words.size(); ++i) {
        if (util::IsAllDigits(words[i])) {
          ctx.SetWord(i, MapAsnWord(words[i]));
          mark(i);
        }
      }
      report_.CountRule(rules::kConfedPeers);
    }
    return;
  }

  // Rule A6: `ip as-path access-list <n> permit|deny <regex...>`. The
  // regex is the remainder of the line (it can contain spaces) and is
  // rewritten by language computation.
  if (enabled_.aspath_regex && words.size() >= 5 && lower[0] == "ip" &&
      lower[1] == "as-path" && lower[2] == "access-list" &&
      (lower[4] == "permit" || lower[4] == "deny")) {
    const std::string pattern = JoinTail(ctx.tokens, 5);
    if (!pattern.empty()) {
      asn::RewriteResult result;
      result.pattern = pattern;
      try {
        result = state_->aspath_rewriter.Rewrite(pattern, options_.regex_form);
      } catch (const regex::ParseError&) {
        // Unparseable pattern (possible on exotic IOS syntax): leave it
        // in place — the conservative fallback is the Section 6.1 leak
        // grep, which flags any ASN that survives inside it.
      }
      RecordRewrite(result);
      // Every public ASN the pattern accepted is identity-bearing.
      for (std::uint32_t a : AcceptedPublicAsns(pattern)) RecordAsn(a);
      if (result.changed) {
        // The tail collapses to one rewritten word at index 5; the
        // leading keywords stay for the later passes (they are all
        // pass-listed or numeric).
        ctx.ReplaceTailWith(5, result.pattern);
        ++report_.aspath_regexps_rewritten;
        report_.CountRule(rules::kAsPathRegex);
      } else {
        // Mark regex words handled so generic hashing leaves them alone.
        for (std::size_t i = 5; i < handled.size(); ++i) handled[i] = true;
      }
    }
    return;
  }

  // Rule A7: `set as-path prepend <asn> <asn> ...`.
  if (enabled_.aspath_prepend && words.size() >= 4 && lower[0] == "set" &&
      lower[1] == "as-path" && lower[2] == "prepend") {
    for (std::size_t i = 3; i < words.size(); ++i) {
      if (util::IsAllDigits(words[i])) {
        ctx.SetWord(i, MapAsnWord(words[i]));
        mark(i);
      }
    }
    report_.CountRule(rules::kAsPathPrepend);
    return;
  }

  // Rules A8/A9: `ip community-list <n|name> permit|deny <items...>`.
  if (words.size() >= 4 && lower[0] == "ip" && lower[1] == "community-list") {
    std::size_t action = 0;
    for (std::size_t i = 2; i < lower.size(); ++i) {
      if (lower[i] == "permit" || lower[i] == "deny") {
        action = i;
        break;
      }
    }
    if (action != 0 && action + 1 < words.size()) {
      bool any_literal = false;
      for (std::size_t i = action + 1; i < words.size(); ++i) {
        if (IsCommunityKeyword(lower[i])) continue;
        const auto literal = asn::ParseCommunity(words[i]);
        if (literal && enabled_.community_list_literal) {
          RecordAsn(literal->asn);
          ctx.SetWord(i, state_->community.Map(*literal).ToString());
          mark(i);
          ++report_.communities_mapped;
          any_literal = true;
          continue;
        }
        if (!literal && enabled_.community_list_regex) {
          // Expanded community-list: the remainder is one regex.
          const std::string pattern = JoinTail(ctx.tokens, i);
          asn::RewriteResult result;
          result.pattern = pattern;
          try {
            result =
                state_->community_rewriter.Rewrite(pattern, options_.regex_form);
          } catch (const regex::ParseError&) {
            // As above: leave unparseable patterns for the leak grep.
          }
          RecordRewrite(result);
          if (result.changed) {
            ctx.ReplaceTailWith(i, result.pattern);
            ++report_.community_regexps_rewritten;
            report_.CountRule(rules::kCommunityListRegex);
          } else {
            for (std::size_t j = i; j < handled.size(); ++j) {
              handled[j] = true;
            }
          }
          break;
        }
      }
      if (any_literal) report_.CountRule(rules::kCommunityListLiteral);
    }
    return;
  }

  // Rule A10: `set community <c> <c> ... [additive]`.
  if (enabled_.set_community && words.size() >= 3 && lower[0] == "set" &&
      lower[1] == "community") {
    bool fired = false;
    for (std::size_t i = 2; i < words.size(); ++i) {
      if (IsCommunityKeyword(lower[i])) continue;
      if (const auto literal = asn::ParseCommunity(words[i])) {
        RecordAsn(literal->asn);
        ctx.SetWord(i, state_->community.Map(*literal).ToString());
        mark(i);
        ++report_.communities_mapped;
        fired = true;
      } else if (util::IsAllDigits(words[i])) {
        // Old-style 32-bit numeric community: anonymize the low 16 bits
        // via the value permutation, the high bits as an ASN.
        std::uint64_t value = 0;
        if (util::ParseUint(words[i], 0xFFFFFFFFull, value)) {
          const auto high = static_cast<std::uint32_t>(value >> 16);
          const auto low = static_cast<std::uint32_t>(value & 0xFFFF);
          RecordAsn(high);
          const std::uint64_t mapped =
              (static_cast<std::uint64_t>(state_->asn_map.Map(high)) << 16) |
              state_->community_values.Map(low);
          ctx.SetWord(i, std::to_string(mapped));
          mark(i);
          ++report_.communities_mapped;
          fired = true;
        }
      }
    }
    if (fired) report_.CountRule(rules::kSetCommunity);
    return;
  }

  // Rule A11: `set extcommunity rt|soo <asn:val> ...`.
  if (enabled_.set_extcommunity && words.size() >= 4 && lower[0] == "set" &&
      lower[1] == "extcommunity") {
    bool fired = false;
    for (std::size_t i = 3; i < words.size(); ++i) {
      if (const auto literal = asn::ParseCommunity(words[i])) {
        RecordAsn(literal->asn);
        ctx.SetWord(i, state_->community.Map(*literal).ToString());
        mark(i);
        ++report_.communities_mapped;
        fired = true;
      }
    }
    if (fired) report_.CountRule(rules::kSetExtcommunity);
    return;
  }
}

void Anonymizer::ExportKnownEntities(std::ostream& out) {
  int index = 0;
  for (const AnonymizerOptions::KnownEntity& entity :
       options_.known_entities) {
    out << "entity " << index++ << ": asns";
    for (std::uint32_t asn : entity.asns) {
      out << ' ' << state_->asn_map.Map(asn);
    }
    out << " prefixes";
    for (const net::Prefix& prefix : entity.prefixes) {
      out << ' '
          << net::Prefix(state_->ip.Map(prefix.address()), prefix.length())
                 .ToString();
    }
    out << '\n';
  }
}

std::vector<std::uint32_t> Anonymizer::AcceptedPublicAsns(
    std::string_view pattern) const {
  std::vector<std::uint32_t> result;
  try {
    const auto language = asn::EnumerateLanguage(pattern);
    for (std::uint32_t a : language->accepted) {
      if (asn::IsPublicAsn(a)) result.push_back(a);
    }
  } catch (const regex::ParseError&) {
    // Unparseable pattern: nothing to record; the rewrite left it alone
    // and the leak detector will flag any numeric survivors.
  }
  return result;
}

void Anonymizer::ApplyMiscLineRules(LineCtx& ctx) {
  auto& words = ctx.tokens.words;
  if (words.empty()) return;
  const std::vector<std::string_view>& lower = ctx.lower;
  auto& handled = ctx.handled;

  const auto force_hash = [&](std::size_t i, const char* rule) {
    if (i >= words.size() || handled[i]) return;
    if (!pass_list_.Contains(words[i])) {
      leak_record_.hashed_words.insert(std::string(words[i]));
    }
    // Memo hits rewrite immediately; misses batch through the 4-way
    // SHA-1 kernel and patch the word at flush time.
    HashWord(ctx, i);
    handled[i] = true;
    ++report_.words_hashed;
    report_.CountRule(rule);
  };

  // Rule M1: dial strings are phone numbers.
  if (enabled_.dialer_strings && words.size() >= 3 && lower[0] == "dialer" &&
      (lower[1] == "string" || lower[1] == "called" ||
       lower[1] == "caller")) {
    leak_record_.hashed_words.insert(std::string(words[2]));
    ctx.SetWord(2, PseudoDigits(options_.salt, words[2]));
    handled[2] = true;
    report_.CountRule(rules::kDialerStrings);
    return;
  }

  // Rule M2: SNMP strings (community secrets, contact/location prose).
  if (lower[0] == "snmp-server" && words.size() >= 2 &&
      enabled_.snmp_strings) {
    if (lower[1] == "community" && words.size() >= 3) {
      force_hash(2, rules::kSnmpStrings);
      return;
    }
    if ((lower[1] == "contact" || lower[1] == "location" ||
         lower[1] == "chassis-id") &&
        words.size() >= 3 && options_.strip_comments) {
      report_.comment_words_removed += words.size() - 2;
      ctx.TruncateWords(2);
      report_.CountRule(rules::kSnmpStrings);
      return;
    }
    if (lower[1] == "host" && words.size() >= 4) {
      // `snmp-server host <addr|name> <community>`: the trap community is
      // a secret; the host is handled by the IP pass or hashed below.
      force_hash(3, rules::kSnmpStrings);
      return;
    }
  }

  // Rule M3: passwords and keys.
  if (enabled_.secrets) {
    if (lower[0] == "enable" && words.size() >= 2 &&
        (lower[1] == "secret" || lower[1] == "password")) {
      force_hash(words.size() - 1, rules::kSecrets);
      return;
    }
    if (lower[0] == "username" && words.size() >= 2) {
      force_hash(1, rules::kSecrets);
      for (std::size_t i = 2; i + 1 < words.size(); ++i) {
        if (lower[i] == "password" || lower[i] == "secret") {
          force_hash(words.size() - 1, rules::kSecrets);
          break;
        }
      }
      return;
    }
    if (lower[0] == "neighbor" && words.size() >= 4 &&
        lower[2] == "password") {
      force_hash(words.size() - 1, rules::kSecrets);
      return;
    }
    if (lower[0] == "key-string" && words.size() >= 2) {
      force_hash(1, rules::kSecrets);
      return;
    }
    if ((lower[0] == "tacacs-server" || lower[0] == "radius-server") &&
        words.size() >= 3 && lower[1] == "key") {
      force_hash(2, rules::kSecrets);
      return;
    }
    if (lower[0] == "crypto" && words.size() >= 4 && lower[1] == "isakmp" &&
        lower[2] == "key") {
      // `crypto isakmp key SECRET address A.B.C.D`: the pre-shared key is
      // a secret; the peer address is handled by the IP pass.
      force_hash(3, rules::kSecrets);
      return;
    }
    for (std::size_t i = 0; i + 1 < words.size(); ++i) {
      if (lower[i] == "md5" || lower[i] == "authentication-key" ||
          lower[i] == "key-chain") {
        force_hash(i + 1, rules::kSecrets);
        return;
      }
    }
  }

  // Rule M4: name arguments — commands whose argument is a hostname or
  // domain name that must be anonymized even if its words are innocuous.
  if (enabled_.name_arguments) {
    if (lower[0] == "hostname" && words.size() >= 2) {
      force_hash(1, rules::kNameArguments);
      return;
    }
    if (lower[0] == "ip" && words.size() >= 3 &&
        (lower[1] == "domain-name" ||
         (lower[1] == "domain" && words.size() >= 4 &&
          lower[2] == "name"))) {
      force_hash(words.size() - 1, rules::kNameArguments);
      return;
    }
    if (lower[0] == "ip" && lower.size() >= 3 && lower[1] == "host") {
      force_hash(2, rules::kNameArguments);
      return;
    }
    if (lower[0] == "ntp" && words.size() >= 3 && lower[1] == "server" &&
        !net::Ipv4Address::Parse(words[2])) {
      force_hash(2, rules::kNameArguments);
      return;
    }
  }
}

void Anonymizer::ApplyTokenRules(LineCtx& ctx) {
  auto& words = ctx.tokens.words;
  if (words.empty()) return;
  const std::vector<std::string_view>& lower = ctx.lower;
  auto& handled = ctx.handled;

  // Context accounting for rules I4/I5/I6 (the mapping operation itself is
  // uniform; the context rules exist so the operator-facing report shows
  // which syntactic positions were handled).
  const char* context_rule = nullptr;
  if (lower[0] == "ip" && lower.size() >= 2 &&
      (lower[1] == "address" || lower[1] == "route")) {
    context_rule = rules::kAddressMaskPairs;
  } else if (lower[0] == "access-list" ||
             (lower[0] == "network" && words.size() >= 3)) {
    context_rule = rules::kAddressWildcardPairs;
  } else if (lower[0] == "ntp" || lower[0] == "logging" ||
             lower[0] == "tacacs-server" || lower[0] == "radius-server" ||
             lower[0] == "snmp-server") {
    context_rule = rules::kPlainAddressArgs;
  }

  // Fused traversal: for each token, the IP rules run first; whatever
  // they leave unhandled falls through to generic hashing — the same
  // per-token outcome as the former two sequential whole-line loops,
  // since neither rule group reads any *other* token's rewrite.
  bool fired_context = false;
  for (std::size_t i = 0; i < words.size(); ++i) {
    if (!handled[i]) {
      // --- IP rules (I1/I2/I3) ---
      // Rule I3: CIDR tokens ("a.b.c.d/len"). The literal address is
      // mapped (it may carry host bits, e.g. a JunOS-style interface
      // address) and the length is kept verbatim.
      bool ip_done = false;
      if (enabled_.map_prefixes) {
        const std::size_t slash = words[i].find('/');
        if (slash != std::string::npos) {
          const auto address =
              net::Ipv4Address::Parse(words[i].substr(0, slash));
          std::uint64_t length = 0;
          if (address &&
              util::ParseUint(words[i].substr(slash + 1), 32, length)) {
            if (net::IsSpecial(*address)) {
              handled[i] = true;
              ++report_.addresses_special;
              report_.CountRule(rules::kSpecialPassthrough);
              ip_done = true;
            } else {
              leak_record_.addresses.insert(address->ToString());
              ctx.SetWord(i, state_->ip.Map(*address).ToString() + "/" +
                                 std::to_string(length));
              handled[i] = true;
              ++report_.addresses_mapped;
              report_.CountRule(rules::kMapPrefixes);
              fired_context = true;
              ip_done = true;
            }
          }
        }
      }
      if (!ip_done) {
        if (const auto address = net::Ipv4Address::Parse(words[i])) {
          // Rule I2: special addresses (netmasks, wildcard masks,
          // multicast, loopback, ...) pass through unchanged.
          if (net::IsSpecial(*address)) {
            if (enabled_.special_passthrough) {
              handled[i] = true;
              ++report_.addresses_special;
              report_.CountRule(rules::kSpecialPassthrough);
            }
          } else if (enabled_.map_addresses) {
            // Rule I1: everything else is mapped through the
            // prefix-preserving trie.
            leak_record_.addresses.insert(address->ToString());
            ctx.SetWord(i, state_->ip.Map(*address).ToString());
            handled[i] = true;
            ++report_.addresses_mapped;
            report_.CountRule(rules::kMapAddresses);
            fired_context = true;
          }
        }
      }
    }

    // --- Generic hashing (T1/T2) on whatever is still unhandled ---
    if (handled[i]) continue;
    const std::string_view word = words[i];
    if (word.empty() || config::IsNonAlphabetic(word)) continue;

    // Rule T1: segment the word into alphabetic cores and non-alphabetic
    // remainders; rule T2: the word passes only if every alphabetic
    // segment is on the pass-list.
    bool all_passed = true;
    for (const config::Segment& segment : config::SegmentWord(word)) {
      if (segment.alpha && !pass_list_.Contains(segment.text)) {
        all_passed = false;
        break;
      }
    }
    report_.CountRule(rules::kSegmentWords);
    if (all_passed) {
      ++report_.words_passed;
      continue;
    }
    leak_record_.hashed_words.insert(std::string(word));
    HashWord(ctx, i);
    ++report_.words_hashed;
    report_.CountRule(rules::kPasslistHash);
  }
  if (fired_context && context_rule != nullptr) {
    report_.CountRule(context_rule);
  }
}

}  // namespace confanon::core
