// The configuration anonymizer — the paper's primary contribution.
//
// The anonymizer rewrites a network's config files so that every element
// that could tie the data to the owner is removed or transformed while the
// structure of the information survives:
//
//   * free text (comments, banners, description/remark payloads) is
//     stripped outright (Section 4.2);
//   * every word whose alphabetic segments are not all on the pass-list is
//     replaced by a salted-SHA1 token, consistently across all files of
//     the network (Section 4.1) — this preserves referential integrity of
//     route-map names, ACL names, hostnames and every other identifier;
//   * IP addresses go through the class-, subnet- and prefix-relationship-
//     preserving map of src/ipanon (Section 4.3), with netmasks and other
//     special addresses passed through;
//   * public ASNs go through a keyed random permutation, including ASNs
//     reachable only through regular expressions, which are rewritten via
//     language computation (Section 4.4);
//   * BGP communities are anonymized in both halves, in literals and in
//     regexps (Section 4.5).
//
// Mechanically, the anonymizer is an ordered list of 28 context rules
// (Section 4.2 counts them: 2 tokenization + 3 comment + 4 miscellaneous
// + 12 ASN-location + 7 IP/context rules) applied line by line, with no
// full grammar — by design, since no consistent grammar exists across the
// 200+ IOS versions the tool must survive (Section 3).
//
// All state (hash memo, IP trie, ASN permutation) is shared across the
// files of one Anonymizer instance: one instance == one network.
#pragma once

#include <memory>
#include <ostream>
#include <set>
#include <string>
#include <vector>

#include "asn/asn_map.h"
#include "asn/community.h"
#include "asn/regex_rewrite.h"
#include "config/document.h"
#include "config/tokenizer.h"
#include "core/leak_detector.h"
#include "core/report.h"
#include "core/string_hasher.h"
#include "ipanon/ip_anonymizer.h"
#include "net/prefix.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "obs/trace.h"
#include "passlist/passlist.h"

namespace confanon::core {

struct AnonymizerOptions {
  /// The network owner's secret; drives every mapping.
  std::string salt = "default-salt";
  /// How rewritten policy regexps are rendered.
  asn::RewriteForm regex_form = asn::RewriteForm::kAlternation;
  /// Strip comments/banners/description payloads. On by default; the
  /// ablation benches turn it off to measure what leaks through.
  bool strip_comments = true;
  /// Rule names to disable, for the iterative-refinement experiment
  /// (Section 6.1) where an initially incomplete rule set is grown until
  /// the leak detector comes back clean.
  std::set<std::string> disabled_rules;
  /// The pass-list to consult; defaults to the embedded corpus. The
  /// coverage ablation passes a Truncated() copy.
  passlist::PassList pass_list = passlist::PassList::Builtin();

  /// Known external entities (paper Section 5): "it might be well known
  /// that all addresses used by AS number X have prefix Y ... If the
  /// anonymizer is provided with the well known external information on
  /// which the implicit relationship is based, it can be extended to
  /// preserve these relationships as well." Each declared entity groups
  /// public ASNs and prefixes that belong to one real-world organization;
  /// the anonymizer emits the *anonymized* grouping (ExportKnownEntities)
  /// so researchers can re-link the two mechanisms without learning who
  /// the entity is.
  struct KnownEntity {
    std::string label;  // never emitted; operator-side bookkeeping only
    std::vector<std::uint32_t> asns;
    std::vector<net::Prefix> prefixes;
  };
  std::vector<KnownEntity> known_entities;
};

/// Stable rule names (also the keys in AnonymizationReport::rule_fires).
/// See Section 4.2's accounting of the 28 rules.
namespace rules {
// Tokenization (2)
inline constexpr char kSegmentWords[] = "T1.segment-words";
inline constexpr char kPasslistHash[] = "T2.passlist-hash";
// Comment stripping (3)
inline constexpr char kStripBangComments[] = "C1.strip-bang-comments";
inline constexpr char kStripFreeText[] = "C2.strip-free-text";
inline constexpr char kStripBanners[] = "C3.strip-banners";
// Miscellaneous (4)
inline constexpr char kDialerStrings[] = "M1.dialer-strings";
inline constexpr char kSnmpStrings[] = "M2.snmp-strings";
inline constexpr char kSecrets[] = "M3.secrets";
inline constexpr char kNameArguments[] = "M4.name-arguments";
// ASN location (12)
inline constexpr char kRouterBgp[] = "A1.router-bgp";
inline constexpr char kNeighborRemoteAs[] = "A2.neighbor-remote-as";
inline constexpr char kNeighborLocalAs[] = "A3.neighbor-local-as";
inline constexpr char kConfedIdentifier[] = "A4.confederation-identifier";
inline constexpr char kConfedPeers[] = "A5.confederation-peers";
inline constexpr char kAsPathRegex[] = "A6.as-path-regex";
inline constexpr char kAsPathPrepend[] = "A7.as-path-prepend";
inline constexpr char kCommunityListLiteral[] = "A8.community-list-literal";
inline constexpr char kCommunityListRegex[] = "A9.community-list-regex";
inline constexpr char kSetCommunity[] = "A10.set-community";
inline constexpr char kSetExtcommunity[] = "A11.set-extcommunity";
inline constexpr char kAsnAudit[] = "A12.asn-audit";
// IP handling (7)
inline constexpr char kMapAddresses[] = "I1.map-addresses";
inline constexpr char kSpecialPassthrough[] = "I2.special-passthrough";
inline constexpr char kMapPrefixes[] = "I3.map-cidr-prefixes";
inline constexpr char kAddressMaskPairs[] = "I4.address-mask-pairs";
inline constexpr char kAddressWildcardPairs[] = "I5.address-wildcard-pairs";
inline constexpr char kPlainAddressArgs[] = "I6.plain-address-args";
inline constexpr char kSubnetPreload[] = "I7.subnet-preload";
}  // namespace rules

class Anonymizer {
 public:
  explicit Anonymizer(AnonymizerOptions options);

  /// Anonymizes all files of one network consistently. Performs the
  /// address-preload pass over the whole corpus first (rule I7), then
  /// rewrites each file.
  std::vector<config::ConfigFile> AnonymizeNetwork(
      const std::vector<config::ConfigFile>& files);

  /// Anonymizes a single file using (and extending) the shared state.
  /// Addresses first seen here miss the preload guarantee; prefer
  /// AnonymizeNetwork for whole corpora.
  config::ConfigFile AnonymizeFile(const config::ConfigFile& file);

  /// Writes the anonymized groupings of the declared known entities, one
  /// entity per line: "entity <n>: asns <a1> <a2> ... prefixes <p1> ...".
  /// All values are post-anonymization; labels are never written. This is
  /// the Section 5 extension: the implicit AS-X/prefix-Y relationship is
  /// preserved as an explicit, still-anonymous grouping.
  void ExportKnownEntities(std::ostream& out);

  const AnonymizationReport& report() const { return report_; }
  const LeakRecord& leak_record() const { return leak_record_; }

  // --- observability (all optional, all non-owning) ---
  //
  // With none of these installed the per-line hot path pays a single
  // branch; the benches run in that mode.

  /// Mirrors the report (per-rule fire counts, word/address totals), the
  /// IP trie's hit/miss/size stats, and per-phase latency histograms
  /// ("core.line_ns", "core.file_ns", "asn.rewrite_ns") into `metrics`.
  /// Synced incrementally at every file boundary.
  void set_metrics(obs::MetricsRegistry* metrics);
  /// Emits Chrome-trace spans: the network phase, one span per file, and
  /// per-rule spans nested inside each file span (a rule's span
  /// aggregates the line-processing time of the lines it fired on).
  void set_trace_sink(obs::TraceSink* sink) { tracer_.set_sink(sink); }
  /// Records one ProvenanceEntry per (line, fired rule) with before/after
  /// word counts — the Section 6.1 leak-triage record.
  void set_provenance(obs::ProvenanceLog* provenance) {
    provenance_ = provenance;
  }
  /// Pushes any unreported report/trie deltas into the registry. Called
  /// automatically at file boundaries; idempotent.
  void SyncMetrics();

  const asn::AsnMap& asn_map() const { return asn_map_; }
  const asn::Uint16Permutation& community_values() const {
    return community_values_;
  }
  ipanon::IpAnonymizer& ip_anonymizer() { return ip_; }
  StringHasher& string_hasher() { return hasher_; }
  const passlist::PassList& pass_list() const { return pass_list_; }

 private:
  bool RuleEnabled(const char* name) const {
    return !options_.disabled_rules.contains(name);
  }

  /// Collects every IP address in the corpus for the preload pass.
  void CollectAddresses(const std::vector<config::ConfigFile>& files,
                        std::vector<net::Ipv4Address>& out) const;

  /// Processes one input line end-to-end (comment rules + the five word
  /// passes), appending the anonymized rendering to `out_lines` (or
  /// nothing, for banner continuation lines).
  void AnonymizeLine(const config::ConfigFile& file, std::size_t index,
                     const std::vector<bool>& in_banner,
                     const std::vector<bool>& banner_start,
                     std::vector<std::string>& out_lines);
  /// AnonymizeLine wrapped in timing + rule-fire attribution; accumulates
  /// per-rule nanoseconds into `rule_ns` and feeds the provenance log.
  void ObserveLine(const config::ConfigFile& file, std::size_t index,
                   const std::vector<bool>& in_banner,
                   const std::vector<bool>& banner_start,
                   std::vector<std::string>& out_lines,
                   std::map<std::string, std::uint64_t>& rule_ns);
  /// Records a regexp rewrite's cost into the registry, if installed.
  void RecordRewrite(const asn::RewriteResult& result);

  /// Per-line passes (see .cpp for the rule-to-function mapping).
  /// Returns false when the whole line collapses to a '!' comment.
  bool ApplyCommentRules(const config::ConfigFile& file, std::size_t index,
                         const std::string& line,
                         const std::vector<bool>& in_banner);
  void ApplyFreeTextRules(config::LineTokens& tokens,
                          std::vector<bool>& handled);
  void ApplyAsnLineRules(config::LineTokens& tokens,
                         std::vector<bool>& handled);
  void ApplyMiscLineRules(config::LineTokens& tokens,
                          std::vector<bool>& handled);
  void ApplyIpLineRules(config::LineTokens& tokens,
                        std::vector<bool>& handled);
  void ApplyGenericHashing(config::LineTokens& tokens,
                           std::vector<bool>& handled);

  /// Public ASNs accepted by a policy regexp (for the A12 audit record).
  std::vector<std::uint32_t> AcceptedPublicAsns(
      std::string_view pattern) const;

  std::string MapAsnWord(std::string_view word);
  void RecordAsn(std::uint32_t asn);

  AnonymizerOptions options_;
  passlist::PassList pass_list_;
  StringHasher hasher_;
  ipanon::IpAnonymizer ip_;
  asn::AsnMap asn_map_;
  asn::Uint16Permutation community_values_;
  asn::CommunityAnonymizer community_;
  asn::AsnRegexRewriter aspath_rewriter_;
  asn::CommunityRegexRewriter community_rewriter_;
  AnonymizationReport report_;
  LeakRecord leak_record_;
  bool preloaded_ = false;

  // Observability state. The histogram/counter pointers are resolved once
  // in set_metrics so instrumented paths touch only atomics.
  obs::Tracer tracer_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::ProvenanceLog* provenance_ = nullptr;
  obs::LatencyHistogram* line_hist_ = nullptr;
  obs::LatencyHistogram* file_hist_ = nullptr;
  obs::LatencyHistogram* rewrite_hist_ = nullptr;
  obs::Counter* dfa_states_total_ = nullptr;
  /// Last report/trie state already pushed to the registry (delta base).
  AnonymizationReport synced_report_;
  ipanon::IpAnonymizer::Stats synced_ip_;
};

}  // namespace confanon::core
