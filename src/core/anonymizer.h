// The configuration anonymizer — the paper's primary contribution.
//
// The anonymizer rewrites a network's config files so that every element
// that could tie the data to the owner is removed or transformed while the
// structure of the information survives:
//
//   * free text (comments, banners, description/remark payloads) is
//     stripped outright (Section 4.2);
//   * every word whose alphabetic segments are not all on the pass-list is
//     replaced by a salted-SHA1 token, consistently across all files of
//     the network (Section 4.1) — this preserves referential integrity of
//     route-map names, ACL names, hostnames and every other identifier;
//   * IP addresses go through the class-, subnet- and prefix-relationship-
//     preserving map of src/ipanon (Section 4.3), with netmasks and other
//     special addresses passed through;
//   * public ASNs go through a keyed random permutation, including ASNs
//     reachable only through regular expressions, which are rewritten via
//     language computation (Section 4.4);
//   * BGP communities are anonymized in both halves, in literals and in
//     regexps (Section 4.5).
//
// Mechanically, the anonymizer is an ordered list of 28 context rules
// (Section 4.2 counts them: 2 tokenization + 3 comment + 4 miscellaneous
// + 12 ASN-location + 7 IP/context rules) applied line by line, with no
// full grammar — by design, since no consistent grammar exists across the
// 200+ IOS versions the tool must survive (Section 3).
//
// All mapping state (hash memo, IP trie, ASN permutation) lives in a
// core::NetworkState shared by every engine of one network: one state ==
// one network. An Anonymizer constructed standalone owns a fresh state; a
// pipeline constructs several engines over one shared state so files can
// be anonymized in parallel (and across dialects) with full referential
// integrity.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <ostream>
#include <set>
#include <string>
#include <vector>

#include "asn/asn_map.h"
#include "asn/community.h"
#include "asn/regex_rewrite.h"
#include "config/document.h"
#include "config/tokenizer.h"
#include "core/engine.h"
#include "core/hash_batcher.h"
#include "core/leak_detector.h"
#include "core/network_state.h"
#include "core/report.h"
#include "core/string_hasher.h"
#include "ipanon/ip_anonymizer.h"
#include "net/prefix.h"
#include "obs/hooks.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "obs/trace.h"
#include "passlist/passlist.h"
#include "util/arena.h"

namespace confanon::core {

struct AnonymizerOptions {
  /// The network owner's secret; drives every mapping.
  std::string salt = "default-salt";
  /// How rewritten policy regexps are rendered.
  asn::RewriteForm regex_form = asn::RewriteForm::kAlternation;
  /// Strip comments/banners/description payloads. On by default; the
  /// ablation benches turn it off to measure what leaks through.
  bool strip_comments = true;
  /// Rule names to disable, for the iterative-refinement experiment
  /// (Section 6.1) where an initially incomplete rule set is grown until
  /// the leak detector comes back clean.
  std::set<std::string> disabled_rules;
  /// The pass-list to consult; defaults to the embedded corpus. The
  /// coverage ablation passes a Truncated() copy.
  passlist::PassList pass_list = passlist::PassList::Builtin();
  /// Additional entries merged on top of the dialect baseline. Unlike
  /// `pass_list` (which *replaces* the IOS baseline and is ignored by the
  /// JunOS engine), extras apply in every dialect — this is the field the
  /// daemon's per-tenant pass-lists land in, and the one the static
  /// policy verifier (src/verify) checks before a session may be created.
  passlist::PassList extra_pass_list;

  /// Known external entities (paper Section 5): "it might be well known
  /// that all addresses used by AS number X have prefix Y ... If the
  /// anonymizer is provided with the well known external information on
  /// which the implicit relationship is based, it can be extended to
  /// preserve these relationships as well." Each declared entity groups
  /// public ASNs and prefixes that belong to one real-world organization;
  /// the anonymizer emits the *anonymized* grouping (ExportKnownEntities)
  /// so researchers can re-link the two mechanisms without learning who
  /// the entity is.
  struct KnownEntity {
    std::string label;  // never emitted; operator-side bookkeeping only
    std::vector<std::uint32_t> asns;
    std::vector<net::Prefix> prefixes;
  };
  std::vector<KnownEntity> known_entities;
};

/// Stable rule names (also the keys in AnonymizationReport::rule_fires).
/// See Section 4.2's accounting of the 28 rules.
namespace rules {
// Tokenization (2)
inline constexpr char kSegmentWords[] = "T1.segment-words";
inline constexpr char kPasslistHash[] = "T2.passlist-hash";
// Comment stripping (3)
inline constexpr char kStripBangComments[] = "C1.strip-bang-comments";
inline constexpr char kStripFreeText[] = "C2.strip-free-text";
inline constexpr char kStripBanners[] = "C3.strip-banners";
// Miscellaneous (4)
inline constexpr char kDialerStrings[] = "M1.dialer-strings";
inline constexpr char kSnmpStrings[] = "M2.snmp-strings";
inline constexpr char kSecrets[] = "M3.secrets";
inline constexpr char kNameArguments[] = "M4.name-arguments";
// ASN location (12)
inline constexpr char kRouterBgp[] = "A1.router-bgp";
inline constexpr char kNeighborRemoteAs[] = "A2.neighbor-remote-as";
inline constexpr char kNeighborLocalAs[] = "A3.neighbor-local-as";
inline constexpr char kConfedIdentifier[] = "A4.confederation-identifier";
inline constexpr char kConfedPeers[] = "A5.confederation-peers";
inline constexpr char kAsPathRegex[] = "A6.as-path-regex";
inline constexpr char kAsPathPrepend[] = "A7.as-path-prepend";
inline constexpr char kCommunityListLiteral[] = "A8.community-list-literal";
inline constexpr char kCommunityListRegex[] = "A9.community-list-regex";
inline constexpr char kSetCommunity[] = "A10.set-community";
inline constexpr char kSetExtcommunity[] = "A11.set-extcommunity";
inline constexpr char kAsnAudit[] = "A12.asn-audit";
// IP handling (7)
inline constexpr char kMapAddresses[] = "I1.map-addresses";
inline constexpr char kSpecialPassthrough[] = "I2.special-passthrough";
inline constexpr char kMapPrefixes[] = "I3.map-cidr-prefixes";
inline constexpr char kAddressMaskPairs[] = "I4.address-mask-pairs";
inline constexpr char kAddressWildcardPairs[] = "I5.address-wildcard-pairs";
inline constexpr char kPlainAddressArgs[] = "I6.plain-address-args";
inline constexpr char kSubnetPreload[] = "I7.subnet-preload";
}  // namespace rules

class ServiceContext;
class Session;

class Anonymizer : public AnonymizerEngine {
 public:
  /// Standalone engine owning a fresh NetworkState.
  explicit Anonymizer(AnonymizerOptions options);
  /// Engine over an existing (possibly shared) NetworkState. Used by the
  /// parallel pipeline: each worker gets its own engine (own report, own
  /// observability buffers) over the one shared state. Engines sharing
  /// state do not sync the shared trie's counters into metrics — the
  /// pipeline does that once, centrally, to avoid double counting.
  Anonymizer(AnonymizerOptions options, std::shared_ptr<NetworkState> state);
  /// Session-API form (see core/session.h): an engine over `session`'s
  /// shared state with the context's engine options re-salted for the
  /// session. Equivalent to what the context's kIos factory builds.
  Anonymizer(const ServiceContext& context, const Session& session);

  /// Anonymizes all files of one network consistently. Performs the
  /// address-preload pass over the whole corpus first (rule I7), then
  /// rewrites each file.
  std::vector<config::ConfigFile> AnonymizeNetwork(
      const std::vector<config::ConfigFile>& files) override;

  /// Anonymizes a single file using (and extending) the shared state.
  /// When no corpus-wide preload has happened yet (standalone streaming
  /// use), this file's own addresses are preloaded first, so rule I7's
  /// subnet-address guarantee holds file-locally.
  config::ConfigFile AnonymizeFile(const config::ConfigFile& file) override;

  /// Writes the anonymized groupings of the declared known entities, one
  /// entity per line: "entity <n>: asns <a1> <a2> ... prefixes <p1> ...".
  /// All values are post-anonymization; labels are never written. This is
  /// the Section 5 extension: the implicit AS-X/prefix-Y relationship is
  /// preserved as an explicit, still-anonymous grouping.
  void ExportKnownEntities(std::ostream& out) override;

  const AnonymizationReport& report() const override { return report_; }
  const LeakRecord& leak_record() const override { return leak_record_; }

  // --- observability (all optional, all non-owning) ---
  //
  // With no hooks installed the per-line hot path pays a single branch;
  // the benches run in that mode.

  /// Installs all observability hooks in one shot:
  ///   * hooks.metrics — mirrors the report (per-rule fire counts,
  ///     word/address totals), the IP trie's hit/miss/size stats, the
  ///     arena's allocation counters ("arena.bytes", "arena.resets") and
  ///     per-phase latency histograms ("core.line_ns", "core.file_ns",
  ///     "core.tokenize_ns", "asn.rewrite_ns") into the registry, synced
  ///     at file boundaries;
  ///   * hooks.trace — emits Chrome-trace spans (network phase, one span
  ///     per file, per-rule spans nested inside each file span);
  ///   * hooks.provenance — records one ProvenanceEntry per (line, fired
  ///     rule) with before/after word counts (Section 6.1 leak triage).
  void install_hooks(const obs::Hooks& hooks) override;

  /// Pushes any unreported report/trie deltas into the registry. Called
  /// automatically at file boundaries; idempotent.
  void SyncMetrics() override;

  const std::shared_ptr<NetworkState>& state() const override {
    return state_;
  }

  const asn::AsnMap& asn_map() const { return state_->asn_map; }
  const asn::Uint16Permutation& community_values() const {
    return state_->community_values;
  }
  ipanon::IpAnonymizer& ip_anonymizer() { return state_->ip; }
  StringHasher& string_hasher() { return state_->hasher; }
  const passlist::PassList& pass_list() const { return pass_list_; }

  /// Collects every non-special IP address literal in `file` (the
  /// operand of rule I7's preload). Exposed so the pipeline can run the
  /// corpus-wide preload across dialects without an engine instance.
  static void CollectFileAddresses(const config::ConfigFile& file,
                                   std::vector<net::Ipv4Address>& out);

  /// Collects every word in `file` the T1/T2 pass-list rules would hash
  /// (some alphabetic segment missing from `pass_list`). Views alias
  /// the file's lines. Over-approximates: a collected word that no rule
  /// ends up hashing only costs an unused memo entry, so the pipeline
  /// can prewarm the shared hasher in full 4-lane batches before the
  /// workers start.
  static void CollectHashCandidates(const config::ConfigFile& file,
                                    const passlist::PassList& pass_list,
                                    std::vector<std::string_view>& out);

 private:
  /// Everything the five word passes need for one line, computed once.
  /// `lower` mirrors `tokens.words` lowercased and is kept in sync by
  /// every mutation — exactly the view each pass used to recompute.
  ///
  /// All views are zero-copy: tokens alias the input line, lowercase
  /// mirrors alias the word itself when it carries no uppercase, and
  /// every rewrite repoints the word at bytes owned by either the
  /// hasher's memo (stable for the network's lifetime) or the per-file
  /// arena (stable until the file's lines are rendered).
  struct LineCtx {
    config::LineTokens tokens;
    std::vector<std::string_view> lower;
    std::vector<bool> handled;
    util::Arena* arena = nullptr;
    /// Words whose hash token is still pending in the batcher; when
    /// nonzero at line end the line is deferred instead of rendered.
    std::size_t pending_slots = 0;

    /// Repoints words[i] at `stable` — bytes the caller guarantees
    /// outlive the line (hasher memo entries, string literals).
    void SetWordRef(std::size_t i, std::string_view stable);
    /// Copies `value` into the arena, then repoints words[i] at the
    /// copy. For computed strings (mapped addresses, permuted ASNs).
    void SetWord(std::size_t i, std::string_view value);
    /// Drops words[from..], keeping the trailing gap (free-text strips).
    void TruncateWords(std::size_t from);
    /// Collapses words[from..] to one arena-copied replacement word
    /// (regexp rewrites), resetting `handled` with only the replacement
    /// marked.
    void ReplaceTailWith(std::size_t from, std::string_view replacement);
  };

  /// The rule-enabled predicate, resolved once at construction so the
  /// per-token hot paths test a bool instead of probing a set<string>.
  struct EnabledRules {
    bool segment_words, passlist_hash;
    bool strip_bang_comments, strip_free_text, strip_banners;
    bool dialer_strings, snmp_strings, secrets, name_arguments;
    bool router_bgp, neighbor_remote_as, neighbor_local_as;
    bool confed_identifier, confed_peers, aspath_regex, aspath_prepend;
    bool community_list_literal, community_list_regex;
    bool set_community, set_extcommunity, asn_audit;
    bool map_addresses, special_passthrough, map_prefixes;
    bool address_mask_pairs, address_wildcard_pairs, plain_address_args;
    bool subnet_preload;
  };

  /// Re-resolves the cached metric instrument pointers and pushes the
  /// current hook set into the tracer/provenance members.
  void ApplyHooks();

  /// Processes one input line end-to-end: comment rules, then the fused
  /// single-dispatch word pass over the tokens. Appends the anonymized
  /// rendering to `out_lines` (or nothing, for banner continuation
  /// lines).
  void AnonymizeLine(const config::ConfigFile& file, std::size_t index,
                     const std::vector<bool>& in_banner,
                     const std::vector<bool>& banner_start,
                     std::vector<std::string>& out_lines);
  /// AnonymizeLine wrapped in timing + rule-fire attribution; accumulates
  /// per-rule nanoseconds into `rule_ns` and feeds the provenance log.
  void ObserveLine(const config::ConfigFile& file, std::size_t index,
                   const std::vector<bool>& in_banner,
                   const std::vector<bool>& banner_start,
                   std::vector<std::string>& out_lines,
                   std::map<std::string, std::uint64_t>& rule_ns);
  /// Records a regexp rewrite's cost into the registry, if installed.
  /// Memo-served results count toward "asn.rewrite_memo_hits" instead of
  /// re-adding DFA states / rewrite latency.
  void RecordRewrite(const asn::RewriteResult& result);

  /// Comment rules (C1). Returns false when the whole line collapses to
  /// a '!' comment.
  bool ApplyCommentRules(const config::ConfigFile& file, std::size_t index,
                         std::string_view line,
                         const std::vector<bool>& in_banner);
  /// The five word passes fused into one dispatch: line-shaped rules
  /// (free text, ASN locations, misc) run off the shared lowercase view,
  /// then one loop applies the per-token IP and generic-hashing rules to
  /// each word in a single traversal.
  void ApplyWordPasses(LineCtx& ctx);
  void ApplyFreeTextRules(LineCtx& ctx);
  void ApplyAsnLineRules(LineCtx& ctx);
  void ApplyMiscLineRules(LineCtx& ctx);
  /// Fused per-token pass: IP rules (I1/I2/I3 + I4/I5/I6 context
  /// accounting) and generic hashing (T1/T2) applied to token i before
  /// moving to token i+1.
  void ApplyTokenRules(LineCtx& ctx);

  /// Replaces words[i] with its hash token: memo hits rewrite in place,
  /// misses register the word slot with the batcher and defer the line.
  /// After this call ctx.lower[i] is stale on the miss path; no rule may
  /// read words[i]/lower[i] once token i has been hashed (all current
  /// rules guard reads with !handled[i] or only read leading keywords,
  /// which are never hashed before being read).
  void HashWord(LineCtx& ctx, std::size_t i);

  /// Renders every deferred line whose pending words have all been
  /// resolved by a flush, patching its placeholder in `out_lines`.
  void DrainDeferred(std::vector<std::string>& out_lines);

  /// Public ASNs accepted by a policy regexp (for the A12 audit record).
  std::vector<std::uint32_t> AcceptedPublicAsns(
      std::string_view pattern) const;

  std::string MapAsnWord(std::string_view word);
  void RecordAsn(std::uint32_t asn);

  AnonymizerOptions options_;
  passlist::PassList pass_list_;
  EnabledRules enabled_;
  /// Whether state_ was handed in (pipeline worker) rather than owned.
  bool shared_state_ = false;
  std::shared_ptr<NetworkState> state_;
  AnonymizationReport report_;
  LeakRecord leak_record_;

  // Observability state. The histogram/counter pointers are resolved once
  // in ApplyHooks so instrumented paths touch only atomics.
  obs::Hooks hooks_;
  obs::Tracer tracer_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::ProvenanceLog* provenance_ = nullptr;
  obs::LatencyHistogram* line_hist_ = nullptr;
  obs::LatencyHistogram* file_hist_ = nullptr;
  obs::LatencyHistogram* tokenize_hist_ = nullptr;
  obs::LatencyHistogram* rewrite_hist_ = nullptr;
  obs::Counter* dfa_states_total_ = nullptr;
  obs::Counter* rewrite_memo_hits_ = nullptr;
  /// Last report/trie state already pushed to the registry (delta base).
  AnonymizationReport synced_report_;
  ipanon::IpAnonymizer::Stats synced_ip_;
  std::uint64_t synced_arena_bytes_ = 0;
  std::uint64_t synced_arena_resets_ = 0;

  /// Per-file scratch for rewritten words; reset at file boundaries.
  util::Arena arena_;
  /// Reused across lines so tokenize allocates nothing in steady state.
  LineCtx line_ctx_;

  /// Lines waiting on pending hash tokens: the token vectors are moved
  /// here (element addresses — the batcher's slots — survive the move)
  /// and rendered into their reserved out_lines position once the
  /// batcher's resolved sequence catches up. FIFO: flushes resolve
  /// oldest words first, so lines complete in order.
  struct DeferredLine {
    config::LineTokens tokens;
    std::size_t out_index;
    std::uint64_t seq;
  };
  std::deque<DeferredLine> deferred_;
  /// Cross-line batcher over the shared hasher (declared after state_;
  /// construction order matters).
  HashBatcher batcher_;
};

}  // namespace confanon::core
