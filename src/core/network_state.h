// The per-network anonymization state, factored out of the engines.
//
// One NetworkState == one network's secret-keyed mappings: the word-hash
// memo, the prefix-preserving IP trie, the ASN permutation, the community
// value permutation, and the regexp rewriters (with their shared memo).
// Referential integrity across files — and across *dialects*: a network
// whose corpus mixes IOS and JunOS configs gets one consistent mapping —
// comes from every engine instance holding the same NetworkState.
//
// Concurrency contract (what makes the parallel pipeline sound):
//   * hasher     — internally sharded + locked; Hash() is thread-safe.
//   * ip         — shared_mutex'd trie; Map() is thread-safe.
//   * asn_map, community_values — immutable after construction (a keyed
//     permutation is a pure function); concurrent Map() is trivially safe.
//   * community, aspath_rewriter, community_rewriter — const views over
//     the above; the rewriters' LRU memo is internally locked.
//   * preloaded  — set once by whichever engine/pipeline runs the
//     corpus-wide rule I7 pass; checked by AnonymizeFile to decide
//     whether a standalone single-file preload is still needed.
#pragma once

#include <atomic>
#include <string_view>

#include "asn/asn_map.h"
#include "asn/community.h"
#include "asn/regex_rewrite.h"
#include "core/string_hasher.h"
#include "ipanon/ip_anonymizer.h"

namespace confanon::core {

struct NetworkState {
  /// All mappings are keyed by the network owner's secret salt.
  explicit NetworkState(std::string_view salt);

  NetworkState(const NetworkState&) = delete;
  NetworkState& operator=(const NetworkState&) = delete;

  StringHasher hasher;
  ipanon::IpAnonymizer ip;
  asn::AsnMap asn_map;
  asn::Uint16Permutation community_values;
  asn::CommunityAnonymizer community;
  asn::AsnRegexRewriter aspath_rewriter;
  asn::CommunityRegexRewriter community_rewriter;

  /// True once a corpus-wide address preload (rule I7) has run. Engines
  /// processing files after that point never grow the trie with
  /// un-preloaded addresses, which is what makes parallel file
  /// processing byte-identical to sequential.
  std::atomic<bool> preloaded{false};
};

}  // namespace confanon::core
