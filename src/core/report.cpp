#include "core/report.h"

#include <sstream>

namespace confanon::core {

void AnonymizationReport::Merge(const AnonymizationReport& other) {
  for (const auto& [name, count] : other.rule_fires) {
    rule_fires[name] += count;
  }
  total_lines += other.total_lines;
  total_words += other.total_words;
  comment_words_removed += other.comment_words_removed;
  words_hashed += other.words_hashed;
  words_passed += other.words_passed;
  addresses_mapped += other.addresses_mapped;
  addresses_special += other.addresses_special;
  asns_mapped += other.asns_mapped;
  communities_mapped += other.communities_mapped;
  aspath_regexps_rewritten += other.aspath_regexps_rewritten;
  community_regexps_rewritten += other.community_regexps_rewritten;
}

std::string AnonymizationReport::ToString() const {
  std::ostringstream out;
  out << "lines=" << total_lines << " words=" << total_words
      << " comment_words_removed=" << comment_words_removed << " ("
      << CommentWordFraction() * 100.0 << "%)\n"
      << "words_hashed=" << words_hashed << " words_passed=" << words_passed
      << "\n"
      << "addresses_mapped=" << addresses_mapped
      << " addresses_special=" << addresses_special << "\n"
      << "asns_mapped=" << asns_mapped
      << " communities_mapped=" << communities_mapped << "\n"
      << "aspath_regexps_rewritten=" << aspath_regexps_rewritten
      << " community_regexps_rewritten=" << community_regexps_rewritten
      << "\n";
  for (const auto& [name, count] : rule_fires) {
    out << "  rule " << name << ": " << count << "\n";
  }
  return out.str();
}

}  // namespace confanon::core
