#include "core/report.h"

#include <cstdio>
#include <sstream>

namespace confanon::core {

void AnonymizationReport::Merge(const AnonymizationReport& other) {
  for (const auto& [name, count] : other.rule_fires) {
    rule_fires[name] += count;
  }
  total_lines += other.total_lines;
  total_words += other.total_words;
  comment_words_removed += other.comment_words_removed;
  words_hashed += other.words_hashed;
  words_passed += other.words_passed;
  addresses_mapped += other.addresses_mapped;
  addresses_special += other.addresses_special;
  asns_mapped += other.asns_mapped;
  communities_mapped += other.communities_mapped;
  aspath_regexps_rewritten += other.aspath_regexps_rewritten;
  community_regexps_rewritten += other.community_regexps_rewritten;
}

std::string AnonymizationReport::ToString() const {
  // Two-decimal percent; with no words at all (empty corpus) the fraction
  // is undefined, so render "n/a" rather than a misleading 0.00%.
  char percent[32];
  if (total_words == 0) {
    std::snprintf(percent, sizeof(percent), "n/a");
  } else {
    std::snprintf(percent, sizeof(percent), "%.2f%%",
                  CommentWordFraction() * 100.0);
  }
  std::ostringstream out;
  out << "lines=" << total_lines << " words=" << total_words
      << " comment_words_removed=" << comment_words_removed << " ("
      << percent << ")\n"
      << "words_hashed=" << words_hashed << " words_passed=" << words_passed
      << "\n"
      << "addresses_mapped=" << addresses_mapped
      << " addresses_special=" << addresses_special << "\n"
      << "asns_mapped=" << asns_mapped
      << " communities_mapped=" << communities_mapped << "\n"
      << "aspath_regexps_rewritten=" << aspath_regexps_rewritten
      << " community_regexps_rewritten=" << community_regexps_rewritten
      << "\n";
  for (const auto& [name, count] : rule_fires) {
    out << "  rule " << name << ": " << count << "\n";
  }
  return out.str();
}

void AnonymizationReport::WriteJson(obs::JsonWriter& out) const {
  out.BeginObject();
  out.Key("total_lines").Value(total_lines);
  out.Key("total_words").Value(total_words);
  out.Key("comment_words_removed").Value(comment_words_removed);
  out.Key("comment_word_fraction").Value(CommentWordFraction());
  out.Key("words_hashed").Value(words_hashed);
  out.Key("words_passed").Value(words_passed);
  out.Key("addresses_mapped").Value(addresses_mapped);
  out.Key("addresses_special").Value(addresses_special);
  out.Key("asns_mapped").Value(asns_mapped);
  out.Key("communities_mapped").Value(communities_mapped);
  out.Key("aspath_regexps_rewritten").Value(aspath_regexps_rewritten);
  out.Key("community_regexps_rewritten").Value(community_regexps_rewritten);
  out.Key("rule_fires").BeginObject();
  for (const auto& [name, count] : rule_fires) {
    out.Key(name).Value(count);
  }
  out.EndObject();
  out.EndObject();
}

std::string AnonymizationReport::ToJson() const {
  obs::JsonWriter out;
  WriteJson(out);
  return out.Take();
}

void SyncReportDeltas(const AnonymizationReport& current,
                      AnonymizationReport& base,
                      obs::MetricsRegistry& registry,
                      const std::string& prefix) {
  const auto sync = [&](const char* name, std::uint64_t value,
                        std::uint64_t& prev) {
    if (value > prev) {
      registry.CounterNamed(prefix + ("report." + std::string(name)))
          .Add(value - prev);
      prev = value;
    }
  };
  sync("total_lines", current.total_lines, base.total_lines);
  sync("total_words", current.total_words, base.total_words);
  sync("comment_words_removed", current.comment_words_removed,
       base.comment_words_removed);
  sync("words_hashed", current.words_hashed, base.words_hashed);
  sync("words_passed", current.words_passed, base.words_passed);
  sync("addresses_mapped", current.addresses_mapped, base.addresses_mapped);
  sync("addresses_special", current.addresses_special,
       base.addresses_special);
  sync("asns_mapped", current.asns_mapped, base.asns_mapped);
  sync("communities_mapped", current.communities_mapped,
       base.communities_mapped);
  sync("aspath_regexps_rewritten", current.aspath_regexps_rewritten,
       base.aspath_regexps_rewritten);
  sync("community_regexps_rewritten", current.community_regexps_rewritten,
       base.community_regexps_rewritten);
  for (const auto& [name, count] : current.rule_fires) {
    std::uint64_t& prev = base.rule_fires[name];
    if (count > prev) {
      registry.CounterNamed(prefix + ("rule." + name)).Add(count - prev);
      prev = count;
    }
  }
}

}  // namespace confanon::core
