// The service-shaped public API: process-lifetime context, per-tenant
// session.
//
// Everything long-lived and tenant-independent — the pass-list automaton,
// the dialect engine factories, the observability hooks, the worker
// thread budget — lives in one immutable ServiceContext built once per
// process. Everything salted — the word-hash memo, the prefix-preserving
// IP trie, the ASN/community permutations, the regexp rewrite memo — is a
// core::NetworkState wrapped in a Session, created per tenant (or per
// network in batch mode) and kept warm across requests.
//
// The split follows the batch tools' own shape: a CorpusPipeline always
// was "shared immutable configuration + one NetworkState"; this header
// names those halves so a long-running daemon (confanond), the CLI, and
// the benches all construct the same two objects and differ only in how
// long they keep them alive.
//
// Concurrency contract:
//   * ServiceContext is immutable after setup (RegisterEngineFactory and
//     install_hooks are setup-time calls); any thread may read it.
//   * Session::state() is the internally synchronized NetworkState (see
//     network_state.h); MergeRequest/report() are mutex-guarded, so
//     concurrent requests may merge their accounting freely.
//   * Determinism across requests of one session requires the requests
//     themselves to be serialized (the daemon holds a per-session lock):
//     the trie's address mappings depend on insertion history, so two
//     interleaved requests of the SAME tenant would race randomness
//     consumption. Different sessions never share state and need no
//     ordering.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "config/document.h"
#include "core/anonymizer.h"
#include "core/engine.h"
#include "core/leak_detector.h"
#include "core/network_state.h"
#include "core/report.h"
#include "obs/hooks.h"

namespace confanon::core {

/// Outcome of the static policy verification pass (src/verify) over a
/// context's anonymization policy. Core only carries the verdict — the
/// analyses live in verify, and pipeline::MakeServiceContext runs them —
/// so a context built directly (verified == false) gates nothing.
struct PolicyVerdict {
  /// True once a verification pass actually ran and filled the counts.
  bool verified = false;
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t notes = 0;
  /// "VER-001 <message>" of the most severe finding, for error text.
  std::string first_finding;

  bool Clean() const { return errors == 0 && warnings == 0; }
};

/// Thrown by ServiceContext::CreateSession when the verified policy has
/// error findings (or warnings without allow_policy_warnings): a session
/// over a provably leaky policy must never come into existence.
class PolicyError : public std::runtime_error {
 public:
  PolicyError(const std::string& message, PolicyVerdict verdict)
      : std::runtime_error(message), verdict_(std::move(verdict)) {}
  const PolicyVerdict& verdict() const { return verdict_; }

 private:
  PolicyVerdict verdict_;
};

/// Which rule pack handles a config file. kAuto defers to the per-file
/// brace-structure heuristic (DetectDialect).
enum class ConfigDialect {
  kAuto,
  kIos,
  kJunos,
};

/// Brace-structure heuristic: JunOS configs open blocks with a trailing
/// '{' and close them with a bare '}'; IOS configs never do. Returns
/// kJunos when any line matches, kIos otherwise.
ConfigDialect DetectDialect(const config::ConfigFile& file);

/// Opt-in post-anonymization fingerprint defense (src/defense): inject
/// decoy subnets/interfaces/peering stubs until every router's joint
/// (subnet-size histogram, peering degree) fingerprint is shared by at
/// least k routers of its corpus. Plain data here — the algorithm lives
/// in defense; the pipeline runs it as a profiled "defend" phase when
/// k > 0. Decoys are deterministic per (session salt, seed).
struct DefenseOptions {
  /// Target anonymity-set size; 0 disables the pass.
  int k = 0;
  /// Decoy randomness seed, mixed with the session salt.
  std::uint64_t seed = 0;
  /// Maximum decoy-line overhead as a fraction of the corpus's line
  /// count; padding groups beyond the budget are left untouched (the
  /// report then shows achieved k < target k).
  double budget = 0.35;
};

/// What the defense pass reports back through the Session (and the
/// daemon's /v1/sessions): how anonymous the served corpora actually are.
struct DefenseSummary {
  std::size_t target_k = 0;
  /// Smallest fingerprint class size after padding (min across requests
  /// when merged).
  std::size_t achieved_k = 0;
  std::uint64_t decoy_lines = 0;
  /// decoy_lines / pre-defense corpus lines, of the latest merged run.
  double overhead = 0.0;
};

/// The one options struct consumed by ServiceContext. Consolidates the
/// fields that used to be split (and partially duplicated) across
/// pipeline::PipelineOptions and pipeline::NetworkSetOptions: engine
/// configuration, thread budget, work batching, and dialect routing.
struct ServiceOptions {
  /// Engine options (salt, regexp form, rule toggles, pass-list, known
  /// entities). `base.salt` is the context-wide base secret; sessions
  /// derive their own salt from it (daemon: "base:tenant") or override
  /// it outright via CreateSession(salt).
  AnonymizerOptions base;
  /// Worker threads per corpus/request. 0 picks
  /// std::thread::hardware_concurrency(); 1 runs on the calling thread.
  int threads = 0;
  /// Files per work-queue batch (amortizes the cursor fetch_add).
  std::size_t batch_size = 4;
  /// Dialect routing; kAuto detects per file.
  ConfigDialect dialect = ConfigDialect::kAuto;
  /// Run the static policy verifier (src/verify) at context build time
  /// (honored by pipeline::MakeServiceContext; plain ServiceContext
  /// construction never verifies) and gate CreateSession on the verdict.
  bool verify_policy = true;
  /// Permit sessions when verification produced warnings (never errors).
  bool allow_policy_warnings = false;
  /// Opt-in decoy fingerprint defense (k == 0 leaves output untouched).
  DefenseOptions defense;
};

class Session;

/// Process-lifetime, tenant-independent half of the API. Immutable after
/// setup; every session, pipeline, and daemon request reads the same
/// context. Engine construction is routed through registered per-dialect
/// factories so callers that only see core (no junos link) still drive
/// mixed corpora once the factories are in place —
/// pipeline::MakeServiceContext registers both built-in dialects.
class ServiceContext {
 public:
  /// Builds a dialect engine over a session's shared state. The options
  /// are the context's engine options with the session's salt resolved.
  using EngineFactory = std::function<std::unique_ptr<AnonymizerEngine>(
      const AnonymizerOptions& options,
      std::shared_ptr<NetworkState> state)>;

  /// The IOS factory (core::Anonymizer) is registered by the
  /// constructor; JunOS needs a registration from a layer that links it.
  explicit ServiceContext(ServiceOptions options);

  ServiceContext(const ServiceContext&) = delete;
  ServiceContext& operator=(const ServiceContext&) = delete;

  const ServiceOptions& options() const { return options_; }
  const passlist::PassList& pass_list() const {
    return options_.base.pass_list;
  }

  /// Effective worker count for `items` units of work: <= 0 asks the
  /// hardware, more workers than items just idle.
  int ResolveThreads(std::size_t items) const;

  /// Setup-time: replaces the factory for `dialect` (kAuto is invalid —
  /// resolve it per file first).
  void RegisterEngineFactory(ConfigDialect dialect, EngineFactory factory);
  bool HasEngineFactory(ConfigDialect dialect) const;

  /// Constructs a dialect engine over `session`'s state, with the
  /// context's engine options re-salted for the session. Throws
  /// std::invalid_argument for kAuto or an unregistered dialect.
  std::unique_ptr<AnonymizerEngine> MakeEngine(ConfigDialect dialect,
                                               const Session& session) const;

  /// The context engine options with `session`'s salt substituted.
  AnonymizerOptions EngineOptions(const Session& session) const;

  /// Setup-time: observability shared by everything built on this
  /// context (all substrates are thread-safe; see obs/hooks.h).
  void install_hooks(const obs::Hooks& hooks) { hooks_ = hooks; }
  const obs::Hooks& hooks() const { return hooks_; }

  /// Setup-time: records the static verifier's verdict over this
  /// context's policy (pipeline::MakeServiceContext calls this when
  /// options.verify_policy is set). Until called, the verdict is
  /// unverified and CreateSession gates nothing.
  void SetPolicyVerdict(PolicyVerdict verdict) {
    policy_verdict_ = std::move(verdict);
  }
  const PolicyVerdict& policy_verdict() const { return policy_verdict_; }

  /// A fresh session salted with `salt` (or the base salt). Throws
  /// PolicyError when a recorded policy verdict has errors, or warnings
  /// without options().allow_policy_warnings.
  std::shared_ptr<Session> CreateSession(std::string_view salt) const;
  std::shared_ptr<Session> CreateSession() const;

 private:
  ServiceOptions options_;
  obs::Hooks hooks_;
  PolicyVerdict policy_verdict_;
  std::array<EngineFactory, 3> factories_;  // indexed by ConfigDialect
};

/// Per-tenant half of the API: one salted NetworkState plus the
/// accounting merged across every request served against it. Keeping a
/// Session alive is what keeps a tenant's hash memo, IP trie, and
/// rewrite memo warm between requests — and what gives a multi-request
/// stream the same referential integrity as a batch corpus run.
class Session {
 public:
  Session(const ServiceContext& context, std::string_view salt);

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const std::string& salt() const { return salt_; }
  const std::shared_ptr<NetworkState>& state() const { return state_; }

  /// Installs this session's extra pass-list entries (the daemon's
  /// per-tenant pass-list), merged into every engine's options on top of
  /// the context's own extras. Must be called before the first request —
  /// changing the pass-list mid-stream would break referential
  /// integrity — and throws std::logic_error afterwards. Callers are
  /// expected to verify the combined policy (verify::VerifyPolicy)
  /// before installing.
  void SetExtraPassList(passlist::PassList extras);
  const passlist::PassList& extra_pass_list() const { return extras_; }

  /// Merges one request's (or corpus run's) accounting into the
  /// session-lifetime totals. Thread-safe.
  void MergeRequest(const AnonymizationReport& report,
                    const LeakRecord& leaks);

  /// Merges one defense pass's outcome: decoy lines accumulate,
  /// achieved k takes the minimum across runs (the conservative
  /// "weakest corpus served" reading), target/overhead take the latest
  /// run's values. Thread-safe.
  void MergeDefense(const DefenseSummary& summary);

  /// Session-lifetime copies (mutex-guarded snapshot).
  AnonymizationReport report() const;
  LeakRecord leak_record() const;
  DefenseSummary defense() const;

  /// Requests merged so far.
  std::uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  std::string salt_;
  std::shared_ptr<NetworkState> state_;
  passlist::PassList extras_;
  mutable std::mutex mutex_;
  AnonymizationReport report_;
  LeakRecord leak_record_;
  DefenseSummary defense_;
  std::atomic<std::uint64_t> requests_{0};
};

}  // namespace confanon::core
