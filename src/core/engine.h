// The dialect-agnostic anonymization engine interface.
//
// Both core::Anonymizer (IOS) and junos::JunosAnonymizer implement this,
// so callers — the parallel corpus pipeline, the CLI tool, the benches —
// can drive a mixed-dialect corpus through one call site and one shared
// NetworkState without caring which concrete engine handles which file.
#pragma once

#include <memory>
#include <ostream>
#include <vector>

#include "config/document.h"
#include "core/leak_detector.h"
#include "core/report.h"
#include "obs/hooks.h"

namespace confanon::core {

struct NetworkState;

class AnonymizerEngine {
 public:
  virtual ~AnonymizerEngine() = default;

  /// Anonymizes all files of one network consistently: corpus-wide
  /// address preload (rule I7) first, then each file in order.
  virtual std::vector<config::ConfigFile> AnonymizeNetwork(
      const std::vector<config::ConfigFile>& files) = 0;

  /// Anonymizes a single file using (and extending) the shared state.
  /// When no corpus-wide preload has run yet, the engine preloads this
  /// file's own addresses first so rule I7's subnet-address guarantee
  /// holds at least file-locally.
  virtual config::ConfigFile AnonymizeFile(const config::ConfigFile& file) = 0;

  /// Writes the anonymized groupings of declared known entities
  /// (paper Section 5); a no-op when none were declared.
  virtual void ExportKnownEntities(std::ostream& out) = 0;

  virtual const AnonymizationReport& report() const = 0;
  virtual const LeakRecord& leak_record() const = 0;

  /// Installs the observability hooks (metrics registry, trace sink,
  /// provenance log) in one shot; any member may be null. Replaces the
  /// previously installed set.
  virtual void install_hooks(const obs::Hooks& hooks) = 0;

  /// Pushes any unreported report/trie deltas into the installed metrics
  /// registry. Called automatically at file boundaries; idempotent.
  virtual void SyncMetrics() = 0;

  /// The network-wide mapping state this engine reads and extends.
  /// Engines over the same NetworkState produce referentially consistent
  /// output across files and dialects.
  virtual const std::shared_ptr<NetworkState>& state() const = 0;
};

}  // namespace confanon::core
