#include "core/string_hasher.h"

#include <functional>
#include <stdexcept>

#include "util/sha1.h"

namespace confanon::core {

std::size_t StringHasher::MemoShardOf(std::string_view word) {
  return std::hash<std::string_view>{}(word) % kShards;
}

std::size_t StringHasher::ReverseShardOf(std::string_view token) {
  // token = "h" + hex digits; the first digit spreads uniformly (it is
  // the digest's top nibble).
  const char c = token.size() > 1 ? token[1] : '0';
  return static_cast<std::size_t>(
             c <= '9' ? c - '0' : 10 + (c - 'a')) %
         kShards;
}

const std::string& StringHasher::Hash(std::string_view word) {
  MemoShard& shard = memo_shards_[MemoShardOf(word)];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.memo.find(std::string(word));
    if (it != shard.memo.end()) return it->second;
  }

  // Miss: compute outside any lock (SHA-1 dominates the cost), then
  // register the token for collision detection and memoize.
  // Built via insert (not operator+ on the rvalue) to sidestep GCC 12's
  // bogus -Wrestrict diagnostic on `literal + std::string&&` (PR105651).
  std::string token = util::SaltedHexToken(salt_, word, 10);
  token.insert(0, 1, 'h');
  {
    ReverseShard& rev = reverse_shards_[ReverseShardOf(token)];
    std::lock_guard<std::mutex> lock(rev.mutex);
    const auto [rev_it, fresh] = rev.reverse.emplace(token, std::string(word));
    if (!fresh && rev_it->second != word) {
      // Two different identifiers landing on the same token would silently
      // merge two distinct config objects; refuse loudly instead.
      throw std::runtime_error("hash token collision between '" +
                               rev_it->second + "' and '" + std::string(word) +
                               "'");
    }
  }
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto [memo_it, inserted] =
      shard.memo.emplace(std::string(word), std::move(token));
  // A racing thread may have inserted the same word first; emplace then
  // kept its (identical, deterministic) token.
  return memo_it->second;
}

std::size_t StringHasher::DistinctCount() const {
  std::size_t total = 0;
  for (const MemoShard& shard : memo_shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.memo.size();
  }
  return total;
}

std::vector<std::string> StringHasher::Originals() const {
  std::vector<std::string> out;
  for (const MemoShard& shard : memo_shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [original, token] : shard.memo) {
      out.push_back(original);
    }
  }
  return out;
}

}  // namespace confanon::core
