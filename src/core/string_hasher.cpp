#include "core/string_hasher.h"

#include <cstdint>
#include <cstring>
#include <functional>
#include <stdexcept>

#include "util/sha1.h"
#include "util/sha1_batch.h"

namespace confanon::core {

namespace {

/// Token from a salted digest: "h" + first 10 hex chars. Identical to the
/// scalar path's SaltedHexToken + leading-'h' insert (the letter keeps
/// tokens valid IOS identifiers).
std::string TokenFromDigest(const util::Sha1::Digest& digest) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string token;
  token.reserve(11);
  token.push_back('h');
  for (int i = 0; i < 5; ++i) {
    token.push_back(kHex[digest[i] >> 4]);
    token.push_back(kHex[digest[i] & 0x0F]);
  }
  return token;
}

}  // namespace

std::size_t StringHasher::MemoShardOf(std::string_view word) {
  return std::hash<std::string_view>{}(word) % kShards;
}

std::size_t StringHasher::ReverseShardOf(std::string_view token) {
  // token = "h" + hex digits; the first digit spreads uniformly (it is
  // the digest's top nibble).
  const char c = token.size() > 1 ? token[1] : '0';
  return static_cast<std::size_t>(
             c <= '9' ? c - '0' : 10 + (c - 'a')) %
         kShards;
}

const std::string* StringHasher::Find(std::string_view word) const {
  const MemoShard& shard = memo_shards_[MemoShardOf(word)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.memo.find(word);
  return it == shard.memo.end() ? nullptr : &it->second;
}

const std::string& StringHasher::Install(std::string_view word,
                                         std::string token) {
  {
    ReverseShard& rev = reverse_shards_[ReverseShardOf(token)];
    std::lock_guard<std::mutex> lock(rev.mutex);
    const auto [rev_it, fresh] = rev.reverse.emplace(token, std::string(word));
    if (!fresh && rev_it->second != word) {
      // Two different identifiers landing on the same token would silently
      // merge two distinct config objects; refuse loudly instead.
      throw std::runtime_error("hash token collision between '" +
                               rev_it->second + "' and '" + std::string(word) +
                               "'");
    }
  }
  MemoShard& shard = memo_shards_[MemoShardOf(word)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto [memo_it, inserted] =
      shard.memo.emplace(std::string(word), std::move(token));
  // A racing thread may have inserted the same word first; emplace then
  // kept its (identical, deterministic) token.
  return memo_it->second;
}

const std::string& StringHasher::Hash(std::string_view word) {
  if (const std::string* token = Find(word)) return *token;

  // Miss: compute outside any lock (SHA-1 dominates the cost), then
  // register the token for collision detection and memoize.
  // Built via insert (not operator+ on the rvalue) to sidestep GCC 12's
  // bogus -Wrestrict diagnostic on `literal + std::string&&` (PR105651).
  std::string token = util::SaltedHexToken(salt_, word, 10);
  token.insert(0, 1, 'h');
  return Install(word, std::move(token));
}

std::size_t StringHasher::HashBatch(const std::string_view* words,
                                    std::size_t count,
                                    const std::string** out) {
  using util::Sha1Batch;
  // Assemble the salted single-block messages: salt || 0x00 || word.
  std::uint8_t buffers[Sha1Batch::kLanes][Sha1Batch::kMaxMessageLen];
  std::string_view messages[Sha1Batch::kLanes];
  std::size_t lane_word[Sha1Batch::kLanes];
  std::size_t lanes = 0;
  for (std::size_t i = 0; i < count && i < Sha1Batch::kLanes; ++i) {
    const std::size_t msg_len = salt_.size() + 1 + words[i].size();
    if (msg_len > Sha1Batch::kMaxMessageLen) continue;  // multi-block: scalar
    std::uint8_t* buf = buffers[lanes];
    std::memcpy(buf, salt_.data(), salt_.size());
    buf[salt_.size()] = 0x00;
    if (!words[i].empty()) {
      std::memcpy(buf + salt_.size() + 1, words[i].data(), words[i].size());
    }
    messages[lanes] = std::string_view(reinterpret_cast<const char*>(buf),
                                       msg_len);
    lane_word[lanes] = i;
    ++lanes;
  }

  util::Sha1::Digest digests[Sha1Batch::kLanes];
  if (lanes > 0) {
    // Pad dead lanes with an empty dummy message; its digest is discarded.
    for (std::size_t l = lanes; l < Sha1Batch::kLanes; ++l) {
      messages[l] = std::string_view();
    }
    Sha1Batch::Hash4(messages, digests);
  }
  for (std::size_t l = 0; l < lanes; ++l) {
    out[lane_word[l]] = &Install(words[lane_word[l]],
                                 TokenFromDigest(digests[l]));
  }
  // Oversized words (salted message spans multiple blocks) take the exact
  // scalar path, preserving byte-identical tokens.
  for (std::size_t i = 0; i < count && i < Sha1Batch::kLanes; ++i) {
    if (salt_.size() + 1 + words[i].size() > Sha1Batch::kMaxMessageLen) {
      out[i] = &Hash(words[i]);
    }
  }
  return lanes;
}

std::size_t StringHasher::DistinctCount() const {
  std::size_t total = 0;
  for (const MemoShard& shard : memo_shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.memo.size();
  }
  return total;
}

std::vector<std::string> StringHasher::Originals() const {
  std::vector<std::string> out;
  for (const MemoShard& shard : memo_shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [original, token] : shard.memo) {
      out.push_back(original);
    }
  }
  return out;
}

}  // namespace confanon::core
