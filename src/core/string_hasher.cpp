#include "core/string_hasher.h"

#include <stdexcept>

#include "util/sha1.h"

namespace confanon::core {

const std::string& StringHasher::Hash(std::string_view word) {
  const auto it = memo_.find(std::string(word));
  if (it != memo_.end()) return it->second;

  std::string token = "h" + util::SaltedHexToken(salt_, word, 10);
  const auto [rev_it, fresh] = reverse_.emplace(token, std::string(word));
  if (!fresh && rev_it->second != word) {
    // Two different identifiers landing on the same token would silently
    // merge two distinct config objects; refuse loudly instead.
    throw std::runtime_error("hash token collision between '" +
                             rev_it->second + "' and '" + std::string(word) +
                             "'");
  }
  const auto [memo_it, inserted] =
      memo_.emplace(std::string(word), std::move(token));
  return memo_it->second;
}

std::vector<std::string> StringHasher::Originals() const {
  std::vector<std::string> out;
  out.reserve(memo_.size());
  for (const auto& [original, token] : memo_) {
    out.push_back(original);
  }
  return out;
}

}  // namespace confanon::core
