// Cross-line batching of memo-miss word hashes (paper rule I4, batched).
//
// Memo misses are sparse — a router config re-uses its identifiers, so
// most lines resolve every hashed word from the StringHasher memo. A
// per-line batch would therefore flush mostly 1-live-lane batches and
// waste the 4-way kernel. This batcher instead accumulates misses
// *across* lines: a miss registers the output slot (the string_view that
// will eventually hold the token) and the owning line is deferred,
// rendered only once a later flush resolves its slots. Full 4-lane
// batches flush eagerly; the remainder is flushed — dummy-padded — at
// file end, before the owning engine resets its arena.
//
// Sequencing: every new pending word gets a monotone sequence number, and
// flushes always resolve the oldest pending words first, so a deferred
// line becomes renderable exactly when `resolved_seq() >= ` the sequence
// it observed at its end. Engines drain their deferred lines in order,
// which keeps output order identical to the scalar path.
//
// Single-threaded by design: each engine (and thus each pipeline worker)
// owns one batcher; only the memo install inside StringHasher::HashBatch
// takes locks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/string_hasher.h"
#include "obs/metrics.h"
#include "util/arena.h"
#include "util/sha1_batch.h"

namespace confanon::core {

class HashBatcher {
 public:
  static constexpr std::size_t kLanes = util::Sha1Batch::kLanes;

  explicit HashBatcher(StringHasher& hasher) : hasher_(&hasher) {}

  HashBatcher(const HashBatcher&) = delete;
  HashBatcher& operator=(const HashBatcher&) = delete;

  /// Instrument pointers from the obs registry (any may be null).
  void set_metrics(obs::LatencyHistogram* batch_ns,
                   obs::Counter* batched_words, obs::Counter* batch_flushes,
                   obs::LatencyHistogram* lane_fill);

  /// Memo probe + enqueue. On a memo hit returns the stable token (the
  /// caller rewrites its word immediately, exactly like the scalar path).
  /// On a miss, copies `word` into `arena`, registers `slot` to be patched
  /// at flush time, and returns nullptr — the caller must then defer
  /// rendering of the owning line until `resolved_seq() >= enqueued_seq()`
  /// as observed at the line's end. `slot` must stay valid until the
  /// resolving flush (moving its owning vector is fine; reallocation that
  /// changes element addresses is not).
  ///
  /// With `quote`, a *missed* word's slot is patched with the token
  /// wrapped in double quotes (allocated from `arena`), matching the
  /// JunOS string-token form; on a hit the caller quotes, since it sees
  /// the raw token.
  const std::string* Lookup(std::string_view word, util::Arena& arena,
                            std::string_view* slot, bool quote = false);

  /// Flushes while at least one full 4-lane batch is pending.
  void FlushFull();

  /// Flushes everything, padding the final partial batch with dummy
  /// lanes. Must run before the arena backing the pending words resets.
  void FlushAll();

  /// Sequence number of the most recently enqueued / resolved word.
  std::uint64_t enqueued_seq() const { return enqueued_seq_; }
  std::uint64_t resolved_seq() const { return resolved_seq_; }

  bool HasPending() const { return !pending_.empty(); }

 private:
  struct Slot {
    std::string_view* view;
    util::Arena* quote_arena;  // non-null: patch with "token" (quoted)
  };
  struct Pending {
    std::string_view word;  // arena-backed copy, stable until flush
    std::uint64_t seq;
    std::vector<Slot> slots;
  };

  /// Resolves the oldest min(kLanes, pending) words through the kernel.
  void FlushBatch();

  StringHasher* hasher_;
  std::deque<Pending> pending_;
  /// word -> its pending entry, so duplicate misses of a not-yet-flushed
  /// word attach more slots instead of hashing twice. Deque pointers are
  /// stable under push_back/pop_front.
  std::unordered_map<std::string_view, Pending*> index_;
  std::uint64_t enqueued_seq_ = 0;
  std::uint64_t resolved_seq_ = 0;

  obs::LatencyHistogram* batch_ns_ = nullptr;
  obs::Counter* batched_words_ = nullptr;
  obs::Counter* batch_flushes_ = nullptr;
  obs::LatencyHistogram* lane_fill_ = nullptr;
};

/// Prewarms the hasher's memo with `words` (arbitrary duplicates and
/// memo hits allowed; both are skipped) in full 4-lane batches, feeding
/// the same `hash.*` instruments as HashBatcher when `metrics` is
/// non-null. The pipeline runs this corpus-wide before its workers
/// start, so per-file remainder flushes stop dominating lane fill on
/// corpora whose per-file miss count is small. Single-threaded; returns
/// the number of words hashed.
std::size_t PrewarmHashMemo(StringHasher& hasher,
                            const std::vector<std::string_view>& words,
                            obs::MetricsRegistry* metrics);

}  // namespace confanon::core
