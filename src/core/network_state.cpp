#include "core/network_state.h"

namespace confanon::core {

NetworkState::NetworkState(std::string_view salt)
    : hasher(salt),
      ip(salt),
      asn_map(salt),
      community_values(salt, "community-values"),
      community(asn_map, community_values),
      aspath_rewriter(asn_map),
      community_rewriter(asn_map, community_values) {}

}  // namespace confanon::core
