#include "core/leak_detector.h"

#include "obs/trace.h"
#include "util/aho_corasick.h"
#include "util/strings.h"

namespace confanon::core {

void LeakRecord::Merge(const LeakRecord& other) {
  hashed_words.insert(other.hashed_words.begin(), other.hashed_words.end());
  public_asns.insert(other.public_asns.begin(), other.public_asns.end());
  addresses.insert(other.addresses.begin(), other.addresses.end());
}

namespace {

bool IsWordChar(char c) { return util::IsAsciiAlnum(c) || c == '.'; }

}  // namespace

std::vector<LeakFinding> LeakDetector::Scan(
    const std::vector<config::ConfigFile>& anonymized,
    const LeakRecord& record, obs::MetricsRegistry* metrics) {
  obs::ScopedTimer scan_span(&obs::GlobalTracer(), "leak-scan");
  // One Aho-Corasick automaton over every recorded identifier; a single
  // pass per line replaces the per-identifier grep of a naive scan (the
  // paper's corpus was 4.3M lines — this is what keeps the grep-back
  // defence cheap).
  std::vector<std::string> patterns;
  std::vector<LeakFinding::Kind> kinds;
  const auto add_set = [&](const std::set<std::string>& identifiers,
                           LeakFinding::Kind kind) {
    for (const std::string& identifier : identifiers) {
      patterns.push_back(identifier);
      kinds.push_back(kind);
    }
  };
  add_set(record.hashed_words, LeakFinding::Kind::kHashedWord);
  add_set(record.public_asns, LeakFinding::Kind::kAsn);
  add_set(record.addresses, LeakFinding::Kind::kAddress);

  std::vector<LeakFinding> findings;
  if (metrics != nullptr) {
    metrics->CounterNamed("leak.patterns").Add(patterns.size());
  }
  if (patterns.empty()) return findings;
  const util::AhoCorasick automaton(patterns);
  obs::LatencyHistogram* scan_hist =
      metrics != nullptr ? &metrics->HistogramNamed("leak.scan_ns") : nullptr;
  std::uint64_t lines_scanned = 0;

  for (const config::ConfigFile& file : anonymized) {
    obs::ScopedTimer file_span(nullptr, "leak-scan-file", scan_hist);
    lines_scanned += file.lines().size();
    for (std::size_t i = 0; i < file.lines().size(); ++i) {
      const std::string& line = file.lines()[i];
      if (line.empty()) continue;
      // Each identifier is reported at most once per line (a line with
      // "701 701" is one finding), matching grep -l style triage.
      std::vector<bool> reported(patterns.size(), false);
      for (const util::AhoCorasick::Match& match : automaton.FindAll(line)) {
        if (reported[match.pattern_index]) continue;
        // Word-boundary check: '.'-joined alphanumerics count as one
        // word, so "1.2.3.4" does not fire inside "11.2.3.40" while
        // "701" still fires inside "701:120".
        const bool left_ok =
            match.begin == 0 || !IsWordChar(line[match.begin - 1]);
        const bool right_ok =
            match.end == line.size() || !IsWordChar(line[match.end]);
        if (!left_ok || !right_ok) continue;
        reported[match.pattern_index] = true;
        findings.push_back(LeakFinding{file.name(), i, line,
                                       patterns[match.pattern_index],
                                       kinds[match.pattern_index]});
      }
    }
  }
  if (metrics != nullptr) {
    metrics->CounterNamed("leak.lines_scanned").Add(lines_scanned);
    metrics->CounterNamed("leak.findings").Add(findings.size());
  }
  return findings;
}

}  // namespace confanon::core
