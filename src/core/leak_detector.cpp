#include "core/leak_detector.h"

#include "obs/trace.h"
#include "util/strings.h"

namespace confanon::core {

void LeakRecord::Merge(const LeakRecord& other) {
  hashed_words.insert(other.hashed_words.begin(), other.hashed_words.end());
  public_asns.insert(other.public_asns.begin(), other.public_asns.end());
  addresses.insert(other.addresses.begin(), other.addresses.end());
}

namespace {

bool IsWordChar(char c) { return util::IsAsciiAlnum(c) || c == '.'; }

std::vector<std::string> CollectPatterns(const LeakRecord& record) {
  std::vector<std::string> patterns;
  patterns.reserve(record.hashed_words.size() + record.public_asns.size() +
                   record.addresses.size());
  patterns.insert(patterns.end(), record.hashed_words.begin(),
                  record.hashed_words.end());
  patterns.insert(patterns.end(), record.public_asns.begin(),
                  record.public_asns.end());
  patterns.insert(patterns.end(), record.addresses.begin(),
                  record.addresses.end());
  return patterns;
}

std::vector<LeakFinding::Kind> CollectKinds(const LeakRecord& record) {
  std::vector<LeakFinding::Kind> kinds;
  kinds.reserve(record.hashed_words.size() + record.public_asns.size() +
                record.addresses.size());
  kinds.insert(kinds.end(), record.hashed_words.size(),
               LeakFinding::Kind::kHashedWord);
  kinds.insert(kinds.end(), record.public_asns.size(),
               LeakFinding::Kind::kAsn);
  kinds.insert(kinds.end(), record.addresses.size(),
               LeakFinding::Kind::kAddress);
  return kinds;
}

}  // namespace

LeakScanner::LeakScanner(const LeakRecord& record)
    : patterns_(CollectPatterns(record)),
      kinds_(CollectKinds(record)),
      automaton_(patterns_),
      reported_generation_(patterns_.size(), 0) {}

void LeakScanner::ScanFile(const config::ConfigFile& file,
                           std::vector<LeakFinding>& findings) {
  if (patterns_.empty()) return;
  for (std::size_t i = 0; i < file.lines().size(); ++i) {
    const std::string_view line = file.lines()[i];
    if (line.empty()) continue;
    // Each identifier is reported at most once per line (a line with
    // "701 701" is one finding), matching grep -l style triage.
    ++generation_;
    automaton_.FindAllInto(line, matches_);
    for (const util::AhoCorasick::Match& match : matches_) {
      if (reported_generation_[match.pattern_index] == generation_) continue;
      // Word-boundary check: '.'-joined alphanumerics count as one
      // word, so "1.2.3.4" does not fire inside "11.2.3.40" while
      // "701" still fires inside "701:120".
      const bool left_ok =
          match.begin == 0 || !IsWordChar(line[match.begin - 1]);
      const bool right_ok =
          match.end == line.size() || !IsWordChar(line[match.end]);
      if (!left_ok || !right_ok) continue;
      reported_generation_[match.pattern_index] = generation_;
      findings.push_back(LeakFinding{file.name(), i, std::string(line),
                                     patterns_[match.pattern_index],
                                     kinds_[match.pattern_index]});
    }
  }
}

std::vector<LeakFinding> LeakDetector::Scan(
    const std::vector<config::ConfigFile>& anonymized,
    const LeakRecord& record, obs::MetricsRegistry* metrics) {
  obs::ScopedTimer scan_span(&obs::GlobalTracer(), "leak-scan");
  // One Aho-Corasick automaton over every recorded identifier, built once
  // per corpus; a single pass per line covers all three identifier
  // classes (the paper's corpus was 4.3M lines — this is what keeps the
  // grep-back defence cheap).
  LeakScanner scanner(record);
  std::vector<LeakFinding> findings;
  if (metrics != nullptr) {
    metrics->CounterNamed("leak.patterns").Add(scanner.pattern_count());
  }
  if (scanner.pattern_count() == 0) return findings;
  obs::LatencyHistogram* scan_hist =
      metrics != nullptr ? &metrics->HistogramNamed("leak.scan_ns") : nullptr;
  std::uint64_t lines_scanned = 0;

  for (const config::ConfigFile& file : anonymized) {
    obs::ScopedTimer file_span(nullptr, "leak-scan-file", scan_hist);
    lines_scanned += file.lines().size();
    scanner.ScanFile(file, findings);
  }
  if (metrics != nullptr) {
    metrics->CounterNamed("leak.lines_scanned").Add(lines_scanned);
    metrics->CounterNamed("leak.findings").Add(findings.size());
  }
  return findings;
}

}  // namespace confanon::core
