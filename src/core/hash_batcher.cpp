#include "core/hash_batcher.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <unordered_set>

namespace confanon::core {

void HashBatcher::set_metrics(obs::LatencyHistogram* batch_ns,
                              obs::Counter* batched_words,
                              obs::Counter* batch_flushes,
                              obs::LatencyHistogram* lane_fill) {
  batch_ns_ = batch_ns;
  batched_words_ = batched_words;
  batch_flushes_ = batch_flushes;
  lane_fill_ = lane_fill;
}

const std::string* HashBatcher::Lookup(std::string_view word,
                                       util::Arena& arena,
                                       std::string_view* slot, bool quote) {
  if (const std::string* token = hasher_->Find(word)) return token;

  util::Arena* quote_arena = quote ? &arena : nullptr;
  if (const auto it = index_.find(word); it != index_.end()) {
    it->second->slots.push_back(Slot{slot, quote_arena});
    return nullptr;
  }
  const std::string_view stored = arena.Store(word);
  pending_.push_back(Pending{stored, ++enqueued_seq_, {}});
  Pending& entry = pending_.back();
  entry.slots.push_back(Slot{slot, quote_arena});
  index_.emplace(stored, &entry);
  return nullptr;
}

void HashBatcher::FlushBatch() {
  const std::size_t live = std::min<std::size_t>(kLanes, pending_.size());
  if (live == 0) return;

  const bool timed = batch_ns_ != nullptr;
  const auto t0 = timed ? std::chrono::steady_clock::now()
                        : std::chrono::steady_clock::time_point();

  std::string_view words[kLanes];
  const std::string* tokens[kLanes] = {};
  for (std::size_t i = 0; i < live; ++i) words[i] = pending_[i].word;
  hasher_->HashBatch(words, live, tokens);

  for (std::size_t i = 0; i < live; ++i) {
    const std::string& token = *tokens[i];
    for (const Slot& slot : pending_[i].slots) {
      if (slot.quote_arena != nullptr) {
        char* buf = slot.quote_arena->Allocate(token.size() + 2);
        buf[0] = '"';
        std::memcpy(buf + 1, token.data(), token.size());
        buf[token.size() + 1] = '"';
        *slot.view = std::string_view(buf, token.size() + 2);
      } else {
        *slot.view = token;
      }
    }
  }

  resolved_seq_ = pending_[live - 1].seq;
  for (std::size_t i = 0; i < live; ++i) index_.erase(pending_[i].word);
  pending_.erase(pending_.begin(), pending_.begin() + live);

  if (timed) {
    batch_ns_->Record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
  }
  if (batched_words_ != nullptr) batched_words_->Add(live);
  if (batch_flushes_ != nullptr) batch_flushes_->Add(1);
  if (lane_fill_ != nullptr) lane_fill_->Record(live);
}

void HashBatcher::FlushFull() {
  while (pending_.size() >= kLanes) FlushBatch();
}

void HashBatcher::FlushAll() {
  while (!pending_.empty()) FlushBatch();
}

std::size_t PrewarmHashMemo(StringHasher& hasher,
                            const std::vector<std::string_view>& words,
                            obs::MetricsRegistry* metrics) {
  std::unordered_set<std::string_view> seen;
  seen.reserve(words.size());
  std::vector<std::string_view> fresh;
  for (const std::string_view word : words) {
    if (!seen.insert(word).second) continue;
    if (hasher.Find(word) != nullptr) continue;
    fresh.push_back(word);
  }

  obs::LatencyHistogram* batch_ns =
      metrics != nullptr ? &metrics->HistogramNamed("hash.batch_ns") : nullptr;
  obs::Counter* batched_words =
      metrics != nullptr ? &metrics->CounterNamed("hash.batched_words")
                         : nullptr;
  obs::Counter* batch_flushes =
      metrics != nullptr ? &metrics->CounterNamed("hash.batch_flushes")
                         : nullptr;
  obs::LatencyHistogram* lane_fill =
      metrics != nullptr ? &metrics->HistogramNamed("hash.lane_fill") : nullptr;

  for (std::size_t start = 0; start < fresh.size();
       start += HashBatcher::kLanes) {
    const std::size_t live =
        std::min<std::size_t>(HashBatcher::kLanes, fresh.size() - start);
    const bool timed = batch_ns != nullptr;
    const auto t0 = timed ? std::chrono::steady_clock::now()
                          : std::chrono::steady_clock::time_point();
    std::string_view lane_words[HashBatcher::kLanes];
    const std::string* tokens[HashBatcher::kLanes] = {};
    for (std::size_t i = 0; i < live; ++i) lane_words[i] = fresh[start + i];
    hasher.HashBatch(lane_words, live, tokens);
    if (timed) {
      batch_ns->Record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
    }
    if (batched_words != nullptr) batched_words->Add(live);
    if (batch_flushes != nullptr) batch_flushes->Add(1);
    if (lane_fill != nullptr) lane_fill->Record(live);
  }
  return fresh.size();
}

}  // namespace confanon::core
