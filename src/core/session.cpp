#include "core/session.h"

#include <stdexcept>
#include <thread>
#include <utility>

#include "util/strings.h"

namespace confanon::core {

ConfigDialect DetectDialect(const config::ConfigFile& file) {
  for (const std::string_view line : file.lines()) {
    const std::string_view trimmed = util::Trim(line);
    if (trimmed.empty()) continue;
    if (trimmed.back() == '{' || trimmed == "}") return ConfigDialect::kJunos;
  }
  return ConfigDialect::kIos;
}

ServiceContext::ServiceContext(ServiceOptions options)
    : options_(std::move(options)) {
  // The IOS engine lives in this library, so its factory is always
  // available; JunOS is registered by a layer that links it (the
  // pipeline's MakeServiceContext, or the daemon).
  factories_[static_cast<std::size_t>(ConfigDialect::kIos)] =
      [](const AnonymizerOptions& engine_options,
         std::shared_ptr<NetworkState> state) {
        return std::make_unique<Anonymizer>(engine_options, std::move(state));
      };
}

int ServiceContext::ResolveThreads(std::size_t items) const {
  int threads = options_.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 1;
  }
  if (items > 0 && static_cast<std::size_t>(threads) > items) {
    threads = static_cast<int>(items);
  }
  return threads < 1 ? 1 : threads;
}

void ServiceContext::RegisterEngineFactory(ConfigDialect dialect,
                                           EngineFactory factory) {
  if (dialect == ConfigDialect::kAuto) {
    throw std::invalid_argument("kAuto has no engine factory");
  }
  factories_[static_cast<std::size_t>(dialect)] = std::move(factory);
}

bool ServiceContext::HasEngineFactory(ConfigDialect dialect) const {
  return factories_[static_cast<std::size_t>(dialect)] != nullptr;
}

AnonymizerOptions ServiceContext::EngineOptions(const Session& session) const {
  AnonymizerOptions engine_options = options_.base;
  engine_options.salt = session.salt();
  engine_options.extra_pass_list.Merge(session.extra_pass_list());
  return engine_options;
}

std::unique_ptr<AnonymizerEngine> ServiceContext::MakeEngine(
    ConfigDialect dialect, const Session& session) const {
  if (dialect == ConfigDialect::kAuto) {
    throw std::invalid_argument(
        "resolve kAuto to a concrete dialect before MakeEngine");
  }
  const EngineFactory& factory =
      factories_[static_cast<std::size_t>(dialect)];
  if (factory == nullptr) {
    throw std::invalid_argument("no engine factory registered for dialect");
  }
  return factory(EngineOptions(session), session.state());
}

std::shared_ptr<Session> ServiceContext::CreateSession(
    std::string_view salt) const {
  const PolicyVerdict& verdict = policy_verdict_;
  if (verdict.verified) {
    if (verdict.errors > 0) {
      throw PolicyError(
          "policy verification failed with " +
              std::to_string(verdict.errors) + " error finding(s): " +
              verdict.first_finding,
          verdict);
    }
    if (verdict.warnings > 0 && !options_.allow_policy_warnings) {
      throw PolicyError(
          "policy verification produced " +
              std::to_string(verdict.warnings) +
              " warning(s) (pass --allow-policy-warnings to proceed): " +
              verdict.first_finding,
          verdict);
    }
  }
  return std::make_shared<Session>(*this, salt);
}

std::shared_ptr<Session> ServiceContext::CreateSession() const {
  return CreateSession(options_.base.salt);
}

Session::Session(const ServiceContext& context, std::string_view salt)
    : salt_(salt), state_(std::make_shared<NetworkState>(salt)) {
  (void)context;  // the pairing is the API; nothing is read today
}

void Session::SetExtraPassList(passlist::PassList extras) {
  if (requests() > 0) {
    throw std::logic_error(
        "SetExtraPassList after the session served requests would break "
        "referential integrity");
  }
  extras_ = std::move(extras);
}

void Session::MergeRequest(const AnonymizationReport& report,
                           const LeakRecord& leaks) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    report_.Merge(report);
    leak_record_.Merge(leaks);
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
}

void Session::MergeDefense(const DefenseSummary& summary) {
  const std::lock_guard<std::mutex> lock(mutex_);
  defense_.target_k = summary.target_k;
  defense_.decoy_lines += summary.decoy_lines;
  defense_.overhead = summary.overhead;
  if (defense_.achieved_k == 0 ||
      summary.achieved_k < defense_.achieved_k) {
    defense_.achieved_k = summary.achieved_k;
  }
}

DefenseSummary Session::defense() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return defense_;
}

AnonymizationReport Session::report() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return report_;
}

LeakRecord Session::leak_record() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return leak_record_;
}

}  // namespace confanon::core
