// Anonymization run statistics.
//
// Per-rule fire counts plus the corpus-level measurements the paper
// reports (fraction of words that were comments and removed, Section 4.2;
// counts of regexp rewrites, Sections 4.4-4.5).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "obs/json.h"
#include "obs/metrics.h"

namespace confanon::core {

struct AnonymizationReport {
  /// How many times each named rule changed something.
  std::map<std::string, std::uint64_t> rule_fires;

  std::uint64_t total_lines = 0;
  std::uint64_t total_words = 0;
  /// Words removed by the comment-stripping rules (banner bodies,
  /// description/remark payloads, '!' comment text).
  std::uint64_t comment_words_removed = 0;
  /// Words replaced by the salted hash.
  std::uint64_t words_hashed = 0;
  /// Words cleared by the pass-list.
  std::uint64_t words_passed = 0;
  /// IP addresses rewritten / passed through as special.
  std::uint64_t addresses_mapped = 0;
  std::uint64_t addresses_special = 0;
  /// ASN literals permuted.
  std::uint64_t asns_mapped = 0;
  /// Community literals rewritten.
  std::uint64_t communities_mapped = 0;
  /// Policy regexps rewritten (as-path / community).
  std::uint64_t aspath_regexps_rewritten = 0;
  std::uint64_t community_regexps_rewritten = 0;

  void CountRule(const std::string& rule_name, std::uint64_t n = 1) {
    rule_fires[rule_name] += n;
  }

  double CommentWordFraction() const {
    return total_words == 0
               ? 0.0
               : static_cast<double>(comment_words_removed) /
                     static_cast<double>(total_words);
  }

  /// Merges another report into this one (per-network aggregation).
  void Merge(const AnonymizationReport& other);

  /// Multi-line human-readable rendering.
  std::string ToString() const;

  /// Writes the report as one JSON object: every scalar field by name,
  /// `comment_word_fraction`, and a `rule_fires` sub-object keyed by rule
  /// name. This is the machine-readable counterpart of ToString() and the
  /// shape embedded in BENCH_perf.json.
  void WriteJson(obs::JsonWriter& out) const;
  std::string ToJson() const;
};

/// Pushes the delta between `current` and `base` into `registry` —
/// counters "<prefix>report.<field>" for the scalar fields and
/// "<prefix>rule.<name>" for per-rule fires — then advances `base` to
/// `current`. Calling it repeatedly with the same pair is idempotent, so
/// the anonymizers can sync at every file boundary; the registry's
/// counters then always equal the report's totals.
void SyncReportDeltas(const AnonymizationReport& current,
                      AnonymizationReport& base,
                      obs::MetricsRegistry& registry,
                      const std::string& prefix);

}  // namespace confanon::core
