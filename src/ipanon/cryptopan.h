// Cryptographic, stateless prefix-preserving anonymization in the style of
// Xu et al. (Crypto-PAn), the alternative scheme the paper weighs in
// Section 4.3 before choosing the data-structure-based approach.
//
// anon(a) bit i = a_i XOR PRF_key(a_0 .. a_{i-1}): each output bit flips
// according to a pseudo-random function of the preceding input bits, so
// the scheme is prefix-preserving with *no shared state* beyond the key —
// the property the paper credits it with ("very little state must be
// shared..., making it amenable to parallelization").
//
// Our PRF is the salted SHA-1 of the bit-prefix (the paper's hash of
// choice); real Crypto-PAn uses AES, but only PRF quality matters here.
//
// Deliberately NOT class-preserving, subnet-address-preserving, or
// special-address-aware: it is the baseline for the ablation showing why
// the paper chose a data structure it could shape ("using a
// data-structure-based mapping scheme makes it easier to implement these
// requirements").
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "net/ipv4.h"

namespace confanon::ipanon {

class CryptoPan {
 public:
  explicit CryptoPan(std::string_view key) : key_(key) {}

  /// Stateless prefix-preserving bijection over the full 32-bit space.
  net::Ipv4Address Map(net::Ipv4Address address) const;

 private:
  std::string key_;
};

}  // namespace confanon::ipanon
