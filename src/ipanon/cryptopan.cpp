#include "ipanon/cryptopan.h"

#include "util/sha1.h"

namespace confanon::ipanon {

net::Ipv4Address CryptoPan::Map(net::Ipv4Address address) const {
  const std::uint32_t input = address.value();
  std::uint32_t output = 0;

  // The PRF input is the length-tagged bit prefix packed into 5 bytes:
  // 4 prefix bytes (unused low bits zeroed) plus the prefix length. The
  // length tag keeps prefixes of different lengths from aliasing.
  for (int i = 0; i < 32; ++i) {
    const std::uint32_t kept =
        i == 0 ? 0u : (input & (~std::uint32_t{0} << (32 - i)));
    std::uint8_t prf_input[5];
    prf_input[0] = static_cast<std::uint8_t>(kept >> 24);
    prf_input[1] = static_cast<std::uint8_t>(kept >> 16);
    prf_input[2] = static_cast<std::uint8_t>(kept >> 8);
    prf_input[3] = static_cast<std::uint8_t>(kept);
    prf_input[4] = static_cast<std::uint8_t>(i);

    util::Sha1 hasher;
    hasher.Update(key_);
    hasher.Update(prf_input, sizeof(prf_input));
    const util::Sha1::Digest digest = hasher.Finalize();
    const std::uint32_t flip = digest[0] & 1u;

    const std::uint32_t input_bit = (input >> (31 - i)) & 1u;
    output |= (input_bit ^ flip) << (31 - i);
  }
  return net::Ipv4Address(output);
}

}  // namespace confanon::ipanon
