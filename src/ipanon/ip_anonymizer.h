// Prefix-preserving IP address anonymization (paper Section 4.3).
//
// The scheme is an extended version of Minshall's tcpdpriv "-a50"
// data-structure-based mapping: a binary trie over address bits where each
// node carries a random "flip" bit, and the anonymized address is produced
// by XORing each input bit with the flip bit of the trie node reached by the
// preceding bits. Any such map is automatically prefix-preserving and
// bijective. The paper's extensions, all implemented here:
//
//  * Class preserving: flip bits on the classful "spine" (paths "", "1",
//    "11", "111") are pinned to zero, so A/B/C inputs map within their
//    class and D/E leading patterns cannot be produced from non-D/E inputs.
//  * Special addresses pass through unchanged (netmasks, wildcard masks,
//    multicast, class E, loopback, 0/8 — see net/special.h).
//  * Collisions of a non-special input onto a special output are resolved
//    by recursively re-mapping the output until it is non-special
//    (cycle-walking a bijection, which terminates and stays injective).
//  * Subnet-address preservation: a node created while the remaining input
//    bits are all zero gets flip 0, so an address with an all-zero host
//    part maps to another such address. This is guaranteed when addresses
//    are preloaded (they are inserted in ascending order, so no zero-tail
//    node can have been created by an earlier address) and best-effort for
//    addresses first seen during streaming.
//
// Thread safety: lookups of already-mapped addresses take a shared lock on
// the memo; trie growth (first sight of an address) takes the exclusive
// lock. After a corpus-wide Preload the file-processing phase is
// effectively read-only — every Map() hits the memo — which is what makes
// the parallel corpus pipeline byte-identical to the sequential path: no
// RNG is consumed in any thread-interleaving-dependent order.
#pragma once

#include <atomic>
#include <cstdint>
#include <istream>
#include <ostream>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/ipv4.h"
#include "util/rng.h"

namespace confanon::ipanon {

class IpAnonymizer {
 public:
  /// `salt` is the network owner's secret; it fully determines the mapping
  /// together with the set of addresses inserted and their insertion order.
  explicit IpAnonymizer(std::string_view salt);

  /// Inserts every address (sorted ascending, duplicates ignored) before
  /// any lookup, guaranteeing the subnet-address-preservation property for
  /// the whole set. Idempotent per address; safe to call per-file for
  /// streaming use.
  void Preload(std::vector<net::Ipv4Address> addresses);

  /// Maps one address: identity for special addresses, the trie bijection
  /// with cycle-walking otherwise. Inserts new trie paths on demand.
  /// Thread-safe.
  net::Ipv4Address Map(net::Ipv4Address address);

  /// The raw trie bijection without the special-address rules; exposed for
  /// tests and for the collision-walk implementation. Thread-safe.
  net::Ipv4Address MapRaw(net::Ipv4Address address);

  /// True if mapping `address` required at least one collision-resolution
  /// walk step (diagnostics; the experiments report how rare this is).
  /// Under concurrent Map() calls the value reflects *some* recent call.
  bool LastMapWalked() const {
    return last_map_walked_.load(std::memory_order_relaxed);
  }

  /// Number of trie nodes allocated (memory/DS-size diagnostics).
  std::size_t NodeCount() const;

  /// Instrumentation counters, maintained unconditionally (relaxed atomic
  /// increments on the paths that already pay a hash lookup or trie walk).
  /// The observability layer snapshots these into the metrics registry.
  struct Stats {
    std::uint64_t cache_hits = 0;    // memoized raw mappings served
    std::uint64_t cache_misses = 0;  // raw mappings that walked the trie
    std::uint64_t collision_walks = 0;  // cycle-walk steps taken by Map()
    std::uint64_t preloaded = 0;     // addresses inserted by Preload()
  };
  /// Snapshot of the counters (consistent enough for reporting; each
  /// field is read with relaxed ordering).
  Stats stats() const;

  /// Writes "input output" dotted-quad pairs, one per line, for every
  /// address mapped so far. Another instance can ImportMappings() them to
  /// reproduce the same mapping (e.g. to anonymize a second batch of files
  /// consistently).
  void ExportMappings(std::ostream& out) const;

  /// Replays exported pairs, forcing the trie's flip bits to agree. Throws
  /// std::runtime_error on malformed input or on pairs inconsistent with
  /// flips already fixed. The text form walks line views over the buffer
  /// (no per-line reads or copies — the fast path for file-backed maps);
  /// the stream form slurps the stream once and delegates to it.
  void ImportMappings(std::string_view text);
  void ImportMappings(std::istream& in);

 private:
  struct Node {
    std::int32_t child[2] = {-1, -1};
    std::uint8_t flip = 0;
  };

  /// Walks/extends the trie for `address`, returning the XOR mask of flip
  /// bits. `forced_output`, when non-negative, pins newly created flips so
  /// that address maps to that exact output (used by ImportMappings).
  /// Caller must hold the exclusive lock.
  std::uint32_t FlipMask(std::uint32_t address, std::int64_t forced_output);

  std::int32_t NewNode();

  /// Guards the trie, the raw-mapping memo, and the export log. Reads of
  /// already-memoized mappings take it shared; trie growth exclusive.
  mutable std::shared_mutex mutex_;
  std::vector<Node> nodes_;
  util::Rng rng_;
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
  std::atomic<std::uint64_t> collision_walks_{0};
  std::atomic<std::uint64_t> preloaded_{0};
  std::atomic<bool> last_map_walked_{false};
  /// Raw mapping memo: avoids re-walking the trie for repeated addresses
  /// (configs repeat the same addresses heavily) and deduplicates the
  /// export log.
  std::unordered_map<std::uint32_t, std::uint32_t> raw_cache_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> mapped_log_;
};

}  // namespace confanon::ipanon
