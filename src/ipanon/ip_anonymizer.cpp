#include "ipanon/ip_anonymizer.h"

#include <algorithm>
#include <iterator>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

#include "net/special.h"
#include "util/strings.h"

namespace confanon::ipanon {

IpAnonymizer::IpAnonymizer(std::string_view salt)
    : rng_(util::HashSeed(salt), "ipanon-trie") {
  // Root node: its flip applies to bit 0, which is on the classful spine,
  // so it is pinned to zero.
  nodes_.emplace_back();
  nodes_[0].flip = 0;
}

std::int32_t IpAnonymizer::NewNode() {
  nodes_.emplace_back();
  return static_cast<std::int32_t>(nodes_.size() - 1);
}

std::uint32_t IpAnonymizer::FlipMask(std::uint32_t address,
                                     std::int64_t forced_output) {
  std::uint32_t mask = 0;
  std::int32_t node = 0;
  for (int depth = 0; depth < 32; ++depth) {
    const std::uint32_t bit_mask = 1u << (31 - depth);
    const int input_bit = (address & bit_mask) ? 1 : 0;

    const std::uint8_t flip = nodes_[static_cast<std::size_t>(node)].flip;
    if (forced_output >= 0) {
      const int output_bit =
          (static_cast<std::uint32_t>(forced_output) & bit_mask) ? 1 : 0;
      if ((input_bit ^ flip) != output_bit) {
        throw std::runtime_error(
            "imported mapping conflicts with established flip bits");
      }
    }
    if (flip) mask |= bit_mask;

    if (depth == 31) break;

    std::int32_t next =
        nodes_[static_cast<std::size_t>(node)].child[input_bit];
    if (next < 0) {
      next = NewNode();
      nodes_[static_cast<std::size_t>(node)].child[input_bit] = next;
      // Decide the new node's flip (it applies to bit depth+1).
      const int child_depth = depth + 1;
      std::uint8_t new_flip;
      const std::uint32_t child_bit_mask = 1u << (31 - child_depth);
      if (forced_output >= 0) {
        const int in_b = (address & child_bit_mask) ? 1 : 0;
        const int out_b =
            (static_cast<std::uint32_t>(forced_output) & child_bit_mask) ? 1
                                                                         : 0;
        new_flip = static_cast<std::uint8_t>(in_b ^ out_b);
      } else if (child_depth < 4 &&
                 (address >> (32 - child_depth)) ==
                     ((1u << child_depth) - 1)) {
        // Classful spine: paths "1", "11", "111" keep their bit intact so
        // the address class survives.
        new_flip = 0;
      } else if ((address & (~std::uint32_t{0} >> child_depth)) == 0) {
        // Remaining input bits are all zero: pin the flip so subnet
        // addresses keep their all-zero host part.
        new_flip = 0;
      } else {
        new_flip = static_cast<std::uint8_t>(rng_.Next() & 1u);
      }
      nodes_[static_cast<std::size_t>(next)].flip = new_flip;
    }
    node = next;
  }
  return mask;
}

net::Ipv4Address IpAnonymizer::MapRaw(net::Ipv4Address address) {
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    const auto cached = raw_cache_.find(address.value());
    if (cached != raw_cache_.end()) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      return net::Ipv4Address(cached->second);
    }
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  // Re-check: another thread may have mapped it between the locks.
  const auto cached = raw_cache_.find(address.value());
  if (cached != raw_cache_.end()) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    return net::Ipv4Address(cached->second);
  }
  cache_misses_.fetch_add(1, std::memory_order_relaxed);
  const std::uint32_t mapped =
      address.value() ^ FlipMask(address.value(), -1);
  raw_cache_.emplace(address.value(), mapped);
  mapped_log_.emplace_back(address.value(), mapped);
  return net::Ipv4Address(mapped);
}

net::Ipv4Address IpAnonymizer::Map(net::Ipv4Address address) {
  last_map_walked_.store(false, std::memory_order_relaxed);
  if (net::IsSpecial(address)) {
    return address;
  }
  net::Ipv4Address mapped = MapRaw(address);
  while (net::IsSpecial(mapped)) {
    // Cycle-walk: the trie map is a bijection, so iterating it from a
    // non-special input must leave the (finite) special set before the
    // orbit returns to the input.
    last_map_walked_.store(true, std::memory_order_relaxed);
    collision_walks_.fetch_add(1, std::memory_order_relaxed);
    mapped = MapRaw(mapped);
  }
  return mapped;
}

std::size_t IpAnonymizer::NodeCount() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return nodes_.size();
}

IpAnonymizer::Stats IpAnonymizer::stats() const {
  Stats stats;
  stats.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  stats.cache_misses = cache_misses_.load(std::memory_order_relaxed);
  stats.collision_walks = collision_walks_.load(std::memory_order_relaxed);
  stats.preloaded = preloaded_.load(std::memory_order_relaxed);
  return stats;
}

void IpAnonymizer::Preload(std::vector<net::Ipv4Address> addresses) {
  std::sort(addresses.begin(), addresses.end());
  addresses.erase(std::unique(addresses.begin(), addresses.end()),
                  addresses.end());
  preloaded_.fetch_add(addresses.size(), std::memory_order_relaxed);
  for (net::Ipv4Address address : addresses) {
    Map(address);
  }
}

void IpAnonymizer::ExportMappings(std::ostream& out) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  // Dump the raw trie pairs (including collision-walk intermediates) so a
  // replaying instance reconstructs identical flip bits.
  for (const auto& [input, output] : mapped_log_) {
    out << net::Ipv4Address(input).ToString() << ' '
        << net::Ipv4Address(output).ToString() << '\n';
  }
}

void IpAnonymizer::ImportMappings(std::string_view text) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i != text.size() && text[i] != '\n') continue;
    std::string_view line = text.substr(start, i - start);
    start = i + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    const std::string_view trimmed = util::Trim(line);
    if (trimmed.empty()) continue;
    const auto words = util::SplitWords(trimmed);
    if (words.size() != 2) {
      throw std::runtime_error("malformed mapping line: " +
                               std::string(line));
    }
    const auto input = net::Ipv4Address::Parse(words[0]);
    const auto output = net::Ipv4Address::Parse(words[1]);
    if (!input || !output) {
      throw std::runtime_error("malformed mapping addresses: " +
                               std::string(line));
    }
    FlipMask(input->value(), static_cast<std::int64_t>(output->value()));
    mapped_log_.emplace_back(input->value(), output->value());
  }
}

void IpAnonymizer::ImportMappings(std::istream& in) {
  const std::string text{std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>()};
  ImportMappings(std::string_view(text));
}

}  // namespace confanon::ipanon
