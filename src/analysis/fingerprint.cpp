#include "analysis/fingerprint.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "analysis/characteristics.h"
#include "config/tokenizer.h"
#include "net/prefix.h"
#include "util/strings.h"

namespace confanon::analysis {

util::Histogram SubnetSizeFingerprint(
    const std::vector<config::ConfigFile>& configs) {
  // The characteristics extractor already computes exactly this histogram.
  return ExtractCharacteristics(configs).subnet_sizes;
}

PeeringFingerprint PeeringStructureFingerprint(
    const std::vector<config::ConfigFile>& configs) {
  PeeringFingerprint fingerprint;
  for (const config::ConfigFile& file : configs) {
    bool in_bgp = false;
    std::uint32_t local_asn = 0;
    int external_sessions = 0;
    for (const std::string_view raw : file.lines()) {
      const config::SplitLine split = config::SplitConfigLine(raw);
      const auto& words = split.words;
      if (words.empty()) continue;
      const std::string first = util::ToLower(words[0]);
      if (split.indent == 0) {
        // A new top-level command ends the BGP block (block bodies are
        // indented).
        in_bgp = false;
        if (first == "router" && words.size() >= 3 &&
            util::ToLower(words[1]) == "bgp") {
          in_bgp = true;
          std::uint64_t asn = 0;
          if (util::ParseUint(words[2], 65535, asn)) {
            local_asn = static_cast<std::uint32_t>(asn);
          }
          continue;
        }
      }
      if (in_bgp && first == "neighbor" && words.size() >= 4 &&
          util::ToLower(words[2]) == "remote-as") {
        std::uint64_t asn = 0;
        if (util::ParseUint(words[3], 65535, asn) && asn != local_asn) {
          ++external_sessions;
        }
      }
    }
    if (external_sessions > 0) {
      ++fingerprint.peering_router_count;
      fingerprint.sessions_per_router.push_back(external_sessions);
    }
  }
  std::sort(fingerprint.sessions_per_router.rbegin(),
            fingerprint.sessions_per_router.rend());
  return fingerprint;
}

namespace {

template <typename Fingerprint>
UniquenessResult CountUnique(const std::vector<Fingerprint>& population) {
  UniquenessResult result;
  result.population = population.size();
  for (std::size_t i = 0; i < population.size(); ++i) {
    std::size_t matches = 0;
    for (std::size_t j = 0; j < population.size(); ++j) {
      if (population[i] == population[j]) ++matches;
    }
    if (matches == 1) {
      ++result.uniquely_identified;
    } else {
      ++result.ambiguous;
    }
  }
  return result;
}

}  // namespace

UniquenessResult SubnetFingerprintUniqueness(
    const std::vector<util::Histogram>& population) {
  return CountUnique(population);
}

UniquenessResult PeeringFingerprintUniqueness(
    const std::vector<PeeringFingerprint>& population) {
  return CountUnique(population);
}

namespace {

/// Strips one trailing ';' (JunOS statement terminator) from a token.
std::string_view StripSemicolon(std::string_view token) {
  if (!token.empty() && token.back() == ';') token.remove_suffix(1);
  return token;
}

}  // namespace

std::vector<net::Prefix> CollectInterfaceSubnets(
    const config::ConfigFile& file) {
  std::set<net::Prefix> subnets;
  for (const std::string_view raw : file.lines()) {
    const config::SplitLine split = config::SplitConfigLine(raw);
    const auto& words = split.words;
    if (words.empty()) continue;
    const std::string first = util::ToLower(words[0]);
    // IOS: `ip address A MASK` inside an interface block.
    if (first == "ip" && words.size() >= 4 &&
        util::ToLower(words[1]) == "address") {
      const auto address = net::Ipv4Address::Parse(words[2]);
      const auto mask = net::Ipv4Address::Parse(words[3]);
      if (address && mask) {
        if (const auto prefix =
                net::Prefix::FromAddressAndMask(*address, *mask)) {
          subnets.insert(*prefix);
        }
      }
      continue;
    }
    // JunOS: `address a.b.c.d/len;` under `family inet`.
    if (first == "address" && words.size() >= 2) {
      if (const auto prefix = net::Prefix::Parse(StripSemicolon(words[1]))) {
        subnets.insert(*prefix);
      }
    }
  }
  return {subnets.begin(), subnets.end()};
}

std::string RouterFingerprint::Key() const {
  std::ostringstream key;
  bool first = true;
  for (const int bucket : subnet_sizes.Buckets()) {
    if (!first) key << ',';
    first = false;
    key << bucket << ':' << subnet_sizes.Get(bucket);
  }
  key << '|' << external_sessions;
  return key.str();
}

RouterFingerprint ExtractRouterFingerprint(const config::ConfigFile& file) {
  RouterFingerprint fingerprint;
  for (const net::Prefix& subnet : CollectInterfaceSubnets(file)) {
    fingerprint.subnet_sizes.Add(subnet.length());
  }

  // IOS peering degree: `neighbor A remote-as N` with N != the local ASN,
  // inside a top-level `router bgp <asn>` block (the same state machine
  // PeeringStructureFingerprint runs).
  bool in_bgp = false;
  std::uint32_t local_asn = 0;
  // JunOS peering degree: neighbors of `group X { type external; ... }`
  // blocks directly inside a `bgp` block. Neighbors are collected per
  // group and counted when the group closes iff the group was external,
  // so statement order inside the group does not matter.
  std::vector<std::string> block_stack;  // first word of each open block
  int group_depth = -1;
  bool group_external = false;
  int group_neighbors = 0;
  int external_sessions = 0;

  for (const std::string_view raw : file.lines()) {
    const config::SplitLine split = config::SplitConfigLine(raw);
    const auto& words = split.words;
    const std::string_view trimmed = util::Trim(raw);
    const bool opens_block = !trimmed.empty() && trimmed.back() == '{';
    const bool closes_block = trimmed == "}";

    if (closes_block) {
      if (!block_stack.empty()) {
        if (static_cast<int>(block_stack.size()) == group_depth) {
          if (group_external) external_sessions += group_neighbors;
          group_depth = -1;
          group_external = false;
          group_neighbors = 0;
        }
        block_stack.pop_back();
      }
      continue;
    }
    if (words.empty()) continue;
    const std::string first = util::ToLower(words[0]);

    if (opens_block) {
      block_stack.push_back(first);
      if (first == "group" && group_depth < 0 && block_stack.size() >= 2 &&
          block_stack[block_stack.size() - 2] == "bgp") {
        group_depth = static_cast<int>(block_stack.size());
      }
      continue;
    }

    if (group_depth > 0) {
      if (first == "type" && words.size() >= 2 &&
          util::ToLower(StripSemicolon(words[1])) == "external") {
        group_external = true;
      } else if (first == "neighbor" && words.size() >= 2) {
        ++group_neighbors;
      }
      continue;
    }

    if (split.indent == 0) {
      in_bgp = false;
      if (first == "router" && words.size() >= 3 &&
          util::ToLower(words[1]) == "bgp") {
        in_bgp = true;
        std::uint64_t asn = 0;
        if (util::ParseUint(words[2], 65535, asn)) {
          local_asn = static_cast<std::uint32_t>(asn);
        }
        continue;
      }
    }
    if (in_bgp && first == "neighbor" && words.size() >= 4 &&
        util::ToLower(words[2]) == "remote-as") {
      std::uint64_t asn = 0;
      if (util::ParseUint(words[3], 65535, asn) && asn != local_asn) {
        ++external_sessions;
      }
    }
  }
  fingerprint.external_sessions = external_sessions;
  return fingerprint;
}

std::vector<RouterFingerprint> ExtractRouterFingerprints(
    const std::vector<config::ConfigFile>& files) {
  std::vector<RouterFingerprint> fingerprints;
  fingerprints.reserve(files.size());
  for (const config::ConfigFile& file : files) {
    fingerprints.push_back(ExtractRouterFingerprint(file));
  }
  return fingerprints;
}

std::size_t MinFingerprintClassSize(
    const std::vector<RouterFingerprint>& fingerprints) {
  if (fingerprints.empty()) return 0;
  std::map<std::string, std::size_t> classes;
  for (const RouterFingerprint& fingerprint : fingerprints) {
    ++classes[fingerprint.Key()];
  }
  std::size_t min_size = fingerprints.size();
  for (const auto& [key, size] : classes) {
    min_size = std::min(min_size, size);
  }
  return min_size;
}

}  // namespace confanon::analysis
