#include "analysis/fingerprint.h"

#include <algorithm>

#include "analysis/characteristics.h"
#include "config/tokenizer.h"
#include "net/prefix.h"
#include "util/strings.h"

namespace confanon::analysis {

util::Histogram SubnetSizeFingerprint(
    const std::vector<config::ConfigFile>& configs) {
  // The characteristics extractor already computes exactly this histogram.
  return ExtractCharacteristics(configs).subnet_sizes;
}

PeeringFingerprint PeeringStructureFingerprint(
    const std::vector<config::ConfigFile>& configs) {
  PeeringFingerprint fingerprint;
  for (const config::ConfigFile& file : configs) {
    bool in_bgp = false;
    std::uint32_t local_asn = 0;
    int external_sessions = 0;
    for (const std::string_view raw : file.lines()) {
      const config::SplitLine split = config::SplitConfigLine(raw);
      const auto& words = split.words;
      if (words.empty()) continue;
      const std::string first = util::ToLower(words[0]);
      if (split.indent == 0) {
        // A new top-level command ends the BGP block (block bodies are
        // indented).
        in_bgp = false;
        if (first == "router" && words.size() >= 3 &&
            util::ToLower(words[1]) == "bgp") {
          in_bgp = true;
          std::uint64_t asn = 0;
          if (util::ParseUint(words[2], 65535, asn)) {
            local_asn = static_cast<std::uint32_t>(asn);
          }
          continue;
        }
      }
      if (in_bgp && first == "neighbor" && words.size() >= 4 &&
          util::ToLower(words[2]) == "remote-as") {
        std::uint64_t asn = 0;
        if (util::ParseUint(words[3], 65535, asn) && asn != local_asn) {
          ++external_sessions;
        }
      }
    }
    if (external_sessions > 0) {
      ++fingerprint.peering_router_count;
      fingerprint.sessions_per_router.push_back(external_sessions);
    }
  }
  std::sort(fingerprint.sessions_per_router.rbegin(),
            fingerprint.sessions_per_router.rend());
  return fingerprint;
}

namespace {

template <typename Fingerprint>
UniquenessResult CountUnique(const std::vector<Fingerprint>& population) {
  UniquenessResult result;
  result.population = population.size();
  for (std::size_t i = 0; i < population.size(); ++i) {
    std::size_t matches = 0;
    for (std::size_t j = 0; j < population.size(); ++j) {
      if (population[i] == population[j]) ++matches;
    }
    if (matches == 1) {
      ++result.uniquely_identified;
    } else {
      ++result.ambiguous;
    }
  }
  return result;
}

}  // namespace

UniquenessResult SubnetFingerprintUniqueness(
    const std::vector<util::Histogram>& population) {
  return CountUnique(population);
}

UniquenessResult PeeringFingerprintUniqueness(
    const std::vector<PeeringFingerprint>& population) {
  return CountUnique(population);
}

}  // namespace confanon::analysis
