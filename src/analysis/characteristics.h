// Validation suite 1: independent characteristics (paper Section 5).
//
// "The first suite of tests verifies that independent characteristics of
// the configurations are being preserved by comparing properties such as:
// (a) the number of BGP speakers; (b) the number of interfaces; and (c)
// the structure of the address space (i.e., number of subnets of each
// size)." The extractor is a pure function of config text, so running it
// over pre- and post-anonymization corpora and diffing the results is the
// end-to-end check that anonymization was lossless for these properties.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "config/document.h"
#include "util/stats.h"

namespace confanon::analysis {

struct NetworkCharacteristics {
  std::size_t router_count = 0;
  std::size_t bgp_speaker_count = 0;
  std::size_t interface_count = 0;
  std::size_t total_lines = 0;
  /// Distinct interface subnets bucketed by prefix length — the paper's
  /// "structure of the address space".
  util::Histogram subnet_sizes;
  std::size_t route_map_clause_count = 0;
  std::size_t acl_entry_count = 0;
  std::size_t as_path_list_count = 0;
  std::size_t community_list_count = 0;
  std::size_t prefix_list_entry_count = 0;
  std::size_t static_route_count = 0;
  /// `router <proto>` instances by protocol keyword.
  std::map<std::string, std::size_t> protocol_counts;
  std::size_t ebgp_session_count = 0;

  bool operator==(const NetworkCharacteristics&) const = default;

  /// Lines describing every field that differs from `other` (empty when
  /// equal) — the human-readable diff the validation harness prints.
  std::vector<std::string> DiffAgainst(
      const NetworkCharacteristics& other) const;

  std::string ToString() const;
};

/// Extracts the characteristics of one network's corpus from config text.
NetworkCharacteristics ExtractCharacteristics(
    const std::vector<config::ConfigFile>& configs);

}  // namespace confanon::analysis
