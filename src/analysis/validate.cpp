#include "analysis/validate.h"

#include "analysis/characteristics.h"
#include "analysis/design_extract.h"
#include "config/tokenizer.h"
#include "net/special.h"

namespace confanon::analysis {

ValidationResult ValidateNetwork(const std::vector<config::ConfigFile>& pre,
                                 const std::vector<config::ConfigFile>& post,
                                 core::Anonymizer& anonymizer) {
  ValidationResult result;

  // Suite 1: independent characteristics.
  const NetworkCharacteristics pre_stats = ExtractCharacteristics(pre);
  const NetworkCharacteristics post_stats = ExtractCharacteristics(post);
  result.characteristics_diffs = pre_stats.DiffAgainst(post_stats);
  result.characteristics_match = result.characteristics_diffs.empty();

  // Suite 2: routing design, compared exactly under the anonymizer's maps.
  const NetworkDesign pre_design = ExtractDesign(pre);
  const NetworkDesign post_design = ExtractDesign(post);

  const auto name_map = [&](const std::string& name) -> std::string {
    // Replicates the anonymizer's word policy: a word survives iff all of
    // its alphabetic segments are pass-listed; hostnames never are in
    // practice (and are force-hashed by rule M4 regardless).
    bool passes = true;
    for (const config::Segment& segment : config::SegmentWord(name)) {
      if (segment.alpha && !anonymizer.pass_list().Contains(segment.text)) {
        passes = false;
        break;
      }
    }
    if (passes) return name;
    return anonymizer.string_hasher().Hash(name);
  };
  const auto addr_map = [&](net::Ipv4Address address) {
    return anonymizer.ip_anonymizer().Map(address);
  };
  const auto asn_map = [&](std::uint32_t asn) {
    return anonymizer.asn_map().Map(asn);
  };

  const NetworkDesign expected =
      MapDesign(pre_design, name_map, addr_map, asn_map);
  result.design_diffs = CompareDesigns(expected, post_design);
  result.design_match = result.design_diffs.empty();

  result.structural_diffs = CompareStructural(pre_design, post_design);
  result.structural_match = result.structural_diffs.empty();
  return result;
}

}  // namespace confanon::analysis
