#include "analysis/design_extract.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "config/tokenizer.h"
#include "util/strings.h"

namespace confanon::analysis {

namespace {

std::optional<int> WildcardToPrefixLength(net::Ipv4Address wildcard) {
  if (!net::IsWildcardMask(wildcard)) return std::nullopt;
  int ones = 0;
  std::uint32_t v = wildcard.value();
  while (v & 1u) {
    ++ones;
    v >>= 1;
  }
  return 32 - ones;
}

struct ProcessScratch {
  std::string protocol;
  int process_id = 0;
  std::vector<net::Prefix> networks;
  std::vector<int> areas;
  int distribute_list_acl = 0;
};

}  // namespace

NetworkDesign ExtractDesign(const std::vector<config::ConfigFile>& configs) {
  NetworkDesign design;

  for (const config::ConfigFile& file : configs) {
    RouterDesign router;
    router.hostname = file.name();

    enum class Context { kNone, kInterface, kIgp, kBgp, kRouteMap };
    Context context = Context::kNone;
    std::string current_interface;
    std::vector<ProcessScratch> igps;
    std::string current_map;
    std::uint32_t local_asn = 0;
    std::map<net::Ipv4Address, BgpNeighborDesign> neighbors;

    for (const std::string_view raw : file.lines()) {
      const config::SplitLine split = config::SplitConfigLine(raw);
      const auto& words = split.words;
      if (words.empty()) continue;
      const std::string first = util::ToLower(words[0]);
      if (first == "!") continue;

      // --- context openers (top level) ---
      if (split.indent == 0) {
        context = Context::kNone;
        if (first == "hostname" && words.size() >= 2) {
          router.hostname = std::string(words[1]);
          continue;
        }
        if (first == "interface" && words.size() >= 2) {
          context = Context::kInterface;
          current_interface = std::string(words[1]);
          continue;
        }
        if (first == "router" && words.size() >= 2) {
          const std::string proto = util::ToLower(words[1]);
          if (proto == "bgp") {
            context = Context::kBgp;
            std::uint64_t asn = 0;
            if (words.size() >= 3 && util::ParseUint(words[2], 65535, asn)) {
              local_asn = static_cast<std::uint32_t>(asn);
              router.bgp_asn = local_asn;
            }
          } else {
            context = Context::kIgp;
            ProcessScratch scratch;
            scratch.protocol = proto;
            std::uint64_t pid = 0;
            if (words.size() >= 3 &&
                util::ParseUint(words[2], 1000000, pid)) {
              scratch.process_id = static_cast<int>(pid);
            }
            igps.push_back(scratch);
          }
          continue;
        }
        if (first == "ip" && words.size() >= 5 &&
            util::ToLower(words[1]) == "prefix-list") {
          PrefixListEntryDesign entry;
          std::size_t at = 3;  // after "ip prefix-list NAME"
          std::uint64_t seq = 0;
          if (util::ToLower(words[at]) == "seq" && at + 1 < words.size() &&
              util::ParseUint(words[at + 1], 1000000, seq)) {
            entry.sequence = static_cast<int>(seq);
            at += 2;
          }
          if (at < words.size()) {
            entry.permit = util::ToLower(words[at]) == "permit";
            ++at;
          }
          if (at < words.size()) {
            if (const auto prefix = net::Prefix::Parse(words[at])) {
              entry.prefix = *prefix;
              ++at;
              while (at + 1 < words.size()) {
                const std::string bound = util::ToLower(words[at]);
                std::uint64_t value = 0;
                if ((bound == "ge" || bound == "le") &&
                    util::ParseUint(words[at + 1], 32, value)) {
                  (bound == "ge" ? entry.ge : entry.le) =
                      static_cast<int>(value);
                  at += 2;
                } else {
                  break;
                }
              }
              router.prefix_lists[std::string(words[2])].push_back(entry);
            }
          }
          continue;
        }
        if (first == "access-list" && words.size() >= 5) {
          std::uint64_t acl_id = 0;
          if (util::ParseUint(words[1], 1000, acl_id)) {
            const std::string action = util::ToLower(words[2]);
            if (action == "permit" || action == "deny") {
              // `access-list N permit|deny [ip] A W`.
              std::size_t at = 3;
              if (at < words.size() && util::ToLower(words[at]) == "ip") {
                ++at;
              }
              if (at + 1 < words.size()) {
                const auto address = net::Ipv4Address::Parse(words[at]);
                const auto wildcard =
                    net::Ipv4Address::Parse(words[at + 1]);
                if (address && wildcard) {
                  const auto length = WildcardToPrefixLength(*wildcard);
                  if (length) {
                    router.acls[static_cast<int>(acl_id)].push_back(
                        AclEntryDesign{action == "permit",
                                       net::Prefix(*address, *length)});
                  }
                }
              }
            }
          }
          continue;
        }
        if (first == "route-map" && words.size() >= 4) {
          context = Context::kRouteMap;
          current_map = std::string(words[1]);
          PolicyClauseDesign clause;
          clause.permit = util::ToLower(words[2]) == "permit";
          std::uint64_t seq = 0;
          util::ParseUint(words[3], 1000000, seq);
          clause.sequence = static_cast<int>(seq);
          router.route_maps[current_map].push_back(clause);
          continue;
        }
      }

      // --- context bodies ---
      switch (context) {
        case Context::kInterface: {
          if (first == "ip" && words.size() >= 4 &&
              util::ToLower(words[1]) == "address") {
            const auto address = net::Ipv4Address::Parse(words[2]);
            const auto mask = net::Ipv4Address::Parse(words[3]);
            if (address && mask) {
              const auto prefix =
                  net::Prefix::FromAddressAndMask(*address, *mask);
              if (prefix) {
                router.interfaces.push_back(InterfaceDesign{
                    current_interface, *address, *prefix});
              }
            }
          }
          break;
        }
        case Context::kIgp: {
          if (igps.empty()) break;
          ProcessScratch& scratch = igps.back();
          if (first == "network" && words.size() >= 2) {
            const auto address = net::Ipv4Address::Parse(words[1]);
            if (!address) break;
            // `network A W area N` declares an OSPF area.
            for (std::size_t w = 2; w + 1 < words.size(); ++w) {
              std::uint64_t area = 0;
              if (util::ToLower(words[w]) == "area" &&
                  util::ParseUint(words[w + 1], 1000000, area)) {
                scratch.areas.push_back(static_cast<int>(area));
              }
            }
            if (words.size() >= 3) {
              const auto wildcard = net::Ipv4Address::Parse(words[2]);
              if (wildcard) {
                const auto length = WildcardToPrefixLength(*wildcard);
                if (length) {
                  scratch.networks.push_back(net::Prefix(*address, *length));
                  break;
                }
              }
            }
            // Classful statement (RIP / old EIGRP).
            const auto classful = net::Prefix::ClassfulNetworkOf(*address);
            if (classful) scratch.networks.push_back(*classful);
            break;
          }
          if (first == "redistribute" && words.size() >= 2) {
            router.redistributions.insert(
                {scratch.protocol, util::ToLower(words[1])});
            break;
          }
          if (first == "distribute-list" && words.size() >= 2) {
            std::uint64_t acl_id = 0;
            if (util::ParseUint(words[1], 1000, acl_id)) {
              scratch.distribute_list_acl = static_cast<int>(acl_id);
            }
          }
          break;
        }
        case Context::kBgp: {
          if (first == "redistribute" && words.size() >= 2) {
            router.redistributions.insert({"bgp", util::ToLower(words[1])});
            break;
          }
          if (first != "neighbor" || words.size() < 3) break;
          const auto peer = net::Ipv4Address::Parse(words[1]);
          if (!peer) break;
          BgpNeighborDesign& neighbor = neighbors[*peer];
          neighbor.peer = *peer;
          const std::string attr = util::ToLower(words[2]);
          if (attr == "remote-as" && words.size() >= 4) {
            std::uint64_t asn = 0;
            if (util::ParseUint(words[3], 65535, asn)) {
              neighbor.remote_asn = static_cast<std::uint32_t>(asn);
              neighbor.external = neighbor.remote_asn != local_asn;
            }
          } else if (attr == "route-map" && words.size() >= 5) {
            const std::string direction = util::ToLower(words[4]);
            if (direction == "in") {
              neighbor.import_map = std::string(words[3]);
            } else if (direction == "out") {
              neighbor.export_map = std::string(words[3]);
            }
          }
          break;
        }
        case Context::kRouteMap: {
          if (router.route_maps[current_map].empty()) break;
          PolicyClauseDesign& clause = router.route_maps[current_map].back();
          if (first == "match" && words.size() >= 3) {
            const std::string kind = util::ToLower(words[1]);
            if (kind == "as-path") {
              clause.references.emplace_back("as-path",
                                             std::string(words[2]));
            } else if (kind == "community") {
              clause.references.emplace_back("community",
                                             std::string(words[2]));
            } else if (kind == "ip" && words.size() >= 4 &&
                       util::ToLower(words[2]) == "address") {
              if (util::ToLower(words[3]) == "prefix-list" &&
                  words.size() >= 5) {
                clause.references.emplace_back("prefix-list",
                                               std::string(words[4]));
              } else {
                clause.references.emplace_back("acl", std::string(words[3]));
              }
            }
          }
          break;
        }
        case Context::kNone:
          break;
      }
    }

    // Resolve the subnet-contains relation: which interfaces each routing
    // process covers.
    for (const ProcessScratch& scratch : igps) {
      ProcessDesign process;
      process.protocol = scratch.protocol;
      process.process_id = scratch.process_id;
      process.ospf_areas = scratch.areas;
      process.distribute_list_acl = scratch.distribute_list_acl;
      std::sort(process.ospf_areas.begin(), process.ospf_areas.end());
      process.ospf_areas.erase(
          std::unique(process.ospf_areas.begin(), process.ospf_areas.end()),
          process.ospf_areas.end());
      for (const InterfaceDesign& iface : router.interfaces) {
        for (const net::Prefix& network : scratch.networks) {
          if (network.Contains(iface.address)) {
            process.covered_interfaces.push_back(iface.name);
            break;
          }
        }
      }
      std::sort(process.covered_interfaces.begin(),
                process.covered_interfaces.end());
      router.processes.push_back(process);
    }

    for (const auto& [peer, neighbor] : neighbors) {
      router.bgp_neighbors.push_back(neighbor);
    }
    std::sort(router.bgp_neighbors.begin(), router.bgp_neighbors.end());
    std::sort(router.interfaces.begin(), router.interfaces.end());
    design.routers.push_back(std::move(router));
  }

  FinalizeDesign(design);
  return design;
}

void FinalizeDesign(NetworkDesign& design) {
  std::sort(design.routers.begin(), design.routers.end(),
            [](const RouterDesign& a, const RouterDesign& b) {
              return a.hostname < b.hostname;
            });
  design.links.clear();
  design.bgp_sessions.clear();

  // Links: subnets shared by exactly two interfaces on distinct routers.
  std::map<net::Prefix, std::vector<std::pair<std::string, std::string>>>
      by_subnet;
  for (const RouterDesign& router : design.routers) {
    for (const InterfaceDesign& iface : router.interfaces) {
      if (iface.subnet.length() == 32) continue;  // loopbacks
      by_subnet[iface.subnet].emplace_back(router.hostname, iface.name);
    }
  }
  for (const auto& [subnet, ends] : by_subnet) {
    if (ends.size() != 2 || ends[0].first == ends[1].first) continue;
    LinkDesign link;
    const bool in_order = ends[0].first < ends[1].first;
    const auto& a = in_order ? ends[0] : ends[1];
    const auto& b = in_order ? ends[1] : ends[0];
    link.router_a = a.first;
    link.interface_a = a.second;
    link.router_b = b.first;
    link.interface_b = b.second;
    link.subnet = subnet;
    design.links.push_back(link);
  }
  std::sort(design.links.begin(), design.links.end());

  // BGP sessions: resolve each neighbor address against the interface
  // addresses of all routers.
  std::map<net::Ipv4Address, std::string> address_owner;
  for (const RouterDesign& router : design.routers) {
    for (const InterfaceDesign& iface : router.interfaces) {
      address_owner.emplace(iface.address, router.hostname);
    }
  }
  std::map<std::pair<std::string, std::string>, int> internal_declared;
  std::vector<BgpSessionDesign> externals;
  for (const RouterDesign& router : design.routers) {
    for (const BgpNeighborDesign& neighbor : router.bgp_neighbors) {
      const auto owner = address_owner.find(neighbor.peer);
      if (owner == address_owner.end()) {
        BgpSessionDesign session;
        session.router_a = router.hostname;
        session.external_peer = neighbor.peer;
        session.external = true;
        externals.push_back(session);
        continue;
      }
      std::pair<std::string, std::string> key{router.hostname,
                                              owner->second};
      if (key.second < key.first) std::swap(key.first, key.second);
      ++internal_declared[key];
    }
  }
  for (const auto& [key, count] : internal_declared) {
    BgpSessionDesign session;
    session.router_a = key.first;
    session.router_b = key.second;
    session.symmetric = count >= 2;
    design.bgp_sessions.push_back(session);
  }
  design.bgp_sessions.insert(design.bgp_sessions.end(), externals.begin(),
                             externals.end());
  std::sort(design.bgp_sessions.begin(), design.bgp_sessions.end());
}

NetworkDesign MapDesign(
    const NetworkDesign& design,
    const std::function<std::string(const std::string&)>& name_map,
    const std::function<net::Ipv4Address(net::Ipv4Address)>& addr_map,
    const std::function<std::uint32_t(std::uint32_t)>& asn_map) {
  NetworkDesign mapped;
  const auto map_prefix = [&](const net::Prefix& prefix) {
    return net::Prefix(addr_map(prefix.address()), prefix.length());
  };

  for (const RouterDesign& router : design.routers) {
    RouterDesign out;
    out.hostname = name_map(router.hostname);
    for (const InterfaceDesign& iface : router.interfaces) {
      out.interfaces.push_back(InterfaceDesign{
          iface.name, addr_map(iface.address), map_prefix(iface.subnet)});
    }
    std::sort(out.interfaces.begin(), out.interfaces.end());
    out.processes = router.processes;  // interface names are stable
    if (router.bgp_asn.has_value()) {
      out.bgp_asn = asn_map(*router.bgp_asn);
    }
    for (const BgpNeighborDesign& neighbor : router.bgp_neighbors) {
      BgpNeighborDesign n;
      n.peer = addr_map(neighbor.peer);
      n.remote_asn = asn_map(neighbor.remote_asn);
      n.external = neighbor.external;
      n.import_map = neighbor.import_map.empty()
                         ? std::string()
                         : name_map(neighbor.import_map);
      n.export_map = neighbor.export_map.empty()
                         ? std::string()
                         : name_map(neighbor.export_map);
      out.bgp_neighbors.push_back(n);
    }
    std::sort(out.bgp_neighbors.begin(), out.bgp_neighbors.end());
    for (const auto& [name, clauses] : router.route_maps) {
      std::vector<PolicyClauseDesign> mapped_clauses = clauses;
      for (PolicyClauseDesign& clause : mapped_clauses) {
        for (auto& [kind, id] : clause.references) {
          id = name_map(id);
        }
      }
      out.route_maps[name_map(name)] = std::move(mapped_clauses);
    }
    for (const auto& [acl_id, entries] : router.acls) {
      std::vector<AclEntryDesign> mapped_entries = entries;
      for (AclEntryDesign& entry : mapped_entries) {
        entry.prefix = map_prefix(entry.prefix);
      }
      out.acls[acl_id] = std::move(mapped_entries);
    }
    for (const auto& [name, entries] : router.prefix_lists) {
      std::vector<PrefixListEntryDesign> mapped_entries = entries;
      for (PrefixListEntryDesign& entry : mapped_entries) {
        entry.prefix = map_prefix(entry.prefix);
      }
      out.prefix_lists[name_map(name)] = std::move(mapped_entries);
    }
    out.redistributions = router.redistributions;
    mapped.routers.push_back(std::move(out));
  }
  std::sort(mapped.routers.begin(), mapped.routers.end(),
            [](const RouterDesign& a, const RouterDesign& b) {
              return a.hostname < b.hostname;
            });

  for (const BgpSessionDesign& session : design.bgp_sessions) {
    BgpSessionDesign out = session;
    if (session.external) {
      out.router_a = name_map(session.router_a);
      out.external_peer = addr_map(session.external_peer);
    } else {
      std::string a = name_map(session.router_a);
      std::string b = name_map(session.router_b);
      if (b < a) std::swap(a, b);
      out.router_a = a;
      out.router_b = b;
    }
    mapped.bgp_sessions.push_back(out);
  }
  std::sort(mapped.bgp_sessions.begin(), mapped.bgp_sessions.end());

  for (const LinkDesign& link : design.links) {
    LinkDesign out;
    const std::string a_name = name_map(link.router_a);
    const std::string b_name = name_map(link.router_b);
    const bool in_order = a_name < b_name;
    out.router_a = in_order ? a_name : b_name;
    out.interface_a = in_order ? link.interface_a : link.interface_b;
    out.router_b = in_order ? b_name : a_name;
    out.interface_b = in_order ? link.interface_b : link.interface_a;
    out.subnet = map_prefix(link.subnet);
    mapped.links.push_back(out);
  }
  std::sort(mapped.links.begin(), mapped.links.end());
  return mapped;
}

std::vector<std::string> CompareDesigns(const NetworkDesign& a,
                                        const NetworkDesign& b) {
  std::vector<std::string> diffs;
  if (a.routers.size() != b.routers.size()) {
    diffs.push_back("router counts differ: " +
                    std::to_string(a.routers.size()) + " vs " +
                    std::to_string(b.routers.size()));
    return diffs;
  }
  for (std::size_t i = 0; i < a.routers.size(); ++i) {
    const RouterDesign& ra = a.routers[i];
    const RouterDesign& rb = b.routers[i];
    if (ra.hostname != rb.hostname) {
      diffs.push_back("router #" + std::to_string(i) + " hostname: " +
                      ra.hostname + " vs " + rb.hostname);
      continue;
    }
    if (!(ra == rb)) {
      std::ostringstream what;
      what << "router " << ra.hostname << " differs:";
      if (ra.interfaces != rb.interfaces) what << " interfaces";
      if (ra.processes != rb.processes) what << " processes";
      if (ra.bgp_asn != rb.bgp_asn) what << " bgp_asn";
      if (ra.bgp_neighbors != rb.bgp_neighbors) what << " bgp_neighbors";
      if (ra.route_maps != rb.route_maps) what << " route_maps";
      if (ra.prefix_lists != rb.prefix_lists) what << " prefix_lists";
      if (ra.acls != rb.acls) what << " acls";
      if (ra.redistributions != rb.redistributions) what << " redistribution";
      diffs.push_back(what.str());
    }
  }
  if (a.links != b.links) {
    diffs.push_back("link sets differ (" + std::to_string(a.links.size()) +
                    " vs " + std::to_string(b.links.size()) + ")");
  }
  if (a.bgp_sessions != b.bgp_sessions) {
    diffs.push_back("bgp session sets differ (" +
                    std::to_string(a.bgp_sessions.size()) + " vs " +
                    std::to_string(b.bgp_sessions.size()) + ")");
  }
  return diffs;
}

std::vector<std::string> CompareStructural(const NetworkDesign& a,
                                           const NetworkDesign& b) {
  std::vector<std::string> diffs;
  const auto degree_sequence = [](const NetworkDesign& d) {
    std::map<std::string, int> degree;
    for (const LinkDesign& link : d.links) {
      ++degree[link.router_a];
      ++degree[link.router_b];
    }
    std::vector<int> seq;
    for (const auto& [name, deg] : degree) seq.push_back(deg);
    std::sort(seq.begin(), seq.end());
    return seq;
  };
  if (degree_sequence(a) != degree_sequence(b)) {
    diffs.push_back("link degree sequences differ");
  }
  const auto shape = [](const NetworkDesign& d) {
    // Per-router identity-free signature, sorted.
    std::vector<std::string> signatures;
    for (const RouterDesign& router : d.routers) {
      std::ostringstream sig;
      sig << "if=" << router.interfaces.size();
      for (const ProcessDesign& process : router.processes) {
        sig << " " << process.protocol << "("
            << process.covered_interfaces.size() << ")";
      }
      sig << " bgp=" << (router.bgp_asn.has_value() ? 1 : 0)
          << " nbrs=" << router.bgp_neighbors.size() << " maps=";
      std::vector<std::size_t> clause_counts;
      for (const auto& [name, clauses] : router.route_maps) {
        clause_counts.push_back(clauses.size());
      }
      std::sort(clause_counts.begin(), clause_counts.end());
      for (std::size_t n : clause_counts) sig << n << ",";
      sig << " redist=" << router.redistributions.size();
      signatures.push_back(sig.str());
    }
    std::sort(signatures.begin(), signatures.end());
    return signatures;
  };
  if (shape(a) != shape(b)) {
    diffs.push_back("per-router structural signatures differ");
  }
  return diffs;
}

}  // namespace confanon::analysis
