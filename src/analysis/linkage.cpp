#include "analysis/linkage.h"

#include <algorithm>

namespace confanon::analysis {

LinkageResult MeasurePrefixLinkage(
    const std::vector<net::Ipv4Address>& addresses, std::size_t k) {
  LinkageResult result;
  result.compromised = std::min(k, addresses.size());

  // Because anonymization preserves common-prefix lengths exactly, the
  // number of bits the attacker learns about a victim equals the longest
  // common prefix between the victim's ORIGINAL address and any
  // compromised ORIGINAL address — no anonymized values are needed to
  // compute the information content.
  double sum = 0;
  for (std::size_t v = result.compromised; v < addresses.size(); ++v) {
    int best = 0;
    for (std::size_t c = 0; c < result.compromised; ++c) {
      best = std::max(best, net::CommonPrefixLength(addresses[v],
                                                    addresses[c]));
    }
    sum += best;
    result.max_known_bits = std::max(result.max_known_bits,
                                     static_cast<double>(best));
    if (best >= 24) ++result.victims_within_24;
    ++result.victims;
  }
  if (result.victims > 0) {
    result.mean_known_bits = sum / static_cast<double>(result.victims);
  }
  return result;
}

}  // namespace confanon::analysis
