#include "analysis/characteristics.h"

#include <set>
#include <sstream>

#include "config/tokenizer.h"
#include "net/prefix.h"
#include "util/strings.h"

namespace confanon::analysis {

NetworkCharacteristics ExtractCharacteristics(
    const std::vector<config::ConfigFile>& configs) {
  NetworkCharacteristics stats;
  stats.router_count = configs.size();
  std::set<net::Prefix> subnets;

  for (const config::ConfigFile& file : configs) {
    stats.total_lines += file.LineCount();
    bool in_bgp = false;
    std::uint32_t local_asn = 0;

    for (const std::string_view raw : file.lines()) {
      const config::SplitLine split = config::SplitConfigLine(raw);
      const auto& words = split.words;
      if (words.empty()) continue;
      const std::string first = util::ToLower(words[0]);

      if (first == "interface") {
        ++stats.interface_count;
        in_bgp = false;
        continue;
      }
      if (first == "router" && words.size() >= 2) {
        const std::string proto = util::ToLower(words[1]);
        ++stats.protocol_counts[proto];
        if (proto == "bgp") {
          ++stats.bgp_speaker_count;
          in_bgp = true;
          std::uint64_t asn = 0;
          if (words.size() >= 3 && util::ParseUint(words[2], 65535, asn)) {
            local_asn = static_cast<std::uint32_t>(asn);
          }
        } else {
          in_bgp = false;
        }
        continue;
      }
      if (first == "route-map") {
        ++stats.route_map_clause_count;
        in_bgp = false;
        continue;
      }
      if (first == "access-list" && words.size() >= 3 &&
          util::ToLower(words[2]) != "remark") {
        ++stats.acl_entry_count;
        continue;
      }
      if (first == "ip" && words.size() >= 3) {
        const std::string second = util::ToLower(words[1]);
        if (second == "as-path") {
          ++stats.as_path_list_count;
          continue;
        }
        if (second == "community-list") {
          ++stats.community_list_count;
          continue;
        }
        if (second == "prefix-list") {
          ++stats.prefix_list_entry_count;
          continue;
        }
        if (second == "route" && words.size() >= 4) {
          ++stats.static_route_count;
          continue;
        }
        // `ip address A M` inside an interface block.
        if (second == "address" && words.size() >= 4) {
          const auto address = net::Ipv4Address::Parse(words[2]);
          const auto mask = net::Ipv4Address::Parse(words[3]);
          if (address && mask) {
            const auto prefix = net::Prefix::FromAddressAndMask(*address, *mask);
            if (prefix) subnets.insert(*prefix);
          }
          continue;
        }
      }
      if (in_bgp && first == "neighbor" && words.size() >= 4 &&
          util::ToLower(words[2]) == "remote-as") {
        std::uint64_t asn = 0;
        if (util::ParseUint(words[3], 65535, asn) && asn != local_asn) {
          ++stats.ebgp_session_count;
        }
        continue;
      }
    }
  }

  for (const net::Prefix& subnet : subnets) {
    stats.subnet_sizes.Add(subnet.length());
  }
  return stats;
}

std::vector<std::string> NetworkCharacteristics::DiffAgainst(
    const NetworkCharacteristics& other) const {
  std::vector<std::string> diffs;
  const auto check = [&](const char* what, auto a, auto b) {
    if (a != b) {
      std::ostringstream line;
      line << what << ": " << a << " vs " << b;
      diffs.push_back(line.str());
    }
  };
  check("router_count", router_count, other.router_count);
  check("bgp_speaker_count", bgp_speaker_count, other.bgp_speaker_count);
  check("interface_count", interface_count, other.interface_count);
  check("route_map_clause_count", route_map_clause_count,
        other.route_map_clause_count);
  check("acl_entry_count", acl_entry_count, other.acl_entry_count);
  check("as_path_list_count", as_path_list_count, other.as_path_list_count);
  check("community_list_count", community_list_count,
        other.community_list_count);
  check("prefix_list_entry_count", prefix_list_entry_count,
        other.prefix_list_entry_count);
  check("static_route_count", static_route_count, other.static_route_count);
  check("ebgp_session_count", ebgp_session_count, other.ebgp_session_count);
  if (!(subnet_sizes == other.subnet_sizes)) {
    diffs.push_back("subnet_sizes histograms differ");
  }
  if (protocol_counts != other.protocol_counts) {
    diffs.push_back("protocol_counts differ");
  }
  return diffs;
}

std::string NetworkCharacteristics::ToString() const {
  std::ostringstream out;
  out << "routers=" << router_count << " bgp_speakers=" << bgp_speaker_count
      << " interfaces=" << interface_count
      << " ebgp_sessions=" << ebgp_session_count
      << " route_map_clauses=" << route_map_clause_count
      << " acl_entries=" << acl_entry_count << " subnets:";
  for (int bucket : subnet_sizes.Buckets()) {
    out << " /" << bucket << "=" << subnet_sizes.Get(bucket);
  }
  return out.str();
}

}  // namespace confanon::analysis
