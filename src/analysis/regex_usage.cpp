#include "analysis/regex_usage.h"

#include "asn/community.h"
#include "asn/regex_rewrite.h"
#include "config/tokenizer.h"
#include "util/strings.h"

namespace confanon::analysis {

namespace {

/// True if the pattern uses a digit wildcard or a character range —
/// unescaped '[' or '.'.
bool HasRangeOrWildcard(std::string_view pattern) {
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    if (pattern[i] == '\\') {
      ++i;
      continue;
    }
    if (pattern[i] == '[' || pattern[i] == '.') return true;
  }
  return false;
}

bool HasAlternation(std::string_view pattern) {
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    if (pattern[i] == '\\') {
      ++i;
      continue;
    }
    if (pattern[i] == '|') return true;
  }
  return false;
}

}  // namespace

RegexUsage DetectRegexUsage(const std::vector<config::ConfigFile>& configs) {
  RegexUsage usage;
  for (const config::ConfigFile& file : configs) {
    for (const std::string_view raw : file.lines()) {
      const config::LineTokens tokens = config::TokenizeLine(raw);
      const auto& words = tokens.words;
      if (words.size() < 2) continue;
      const std::string first = util::ToLower(words[0]);
      const std::string second = util::ToLower(words[1]);

      if (first == "ip" && second == "as-path" && words.size() >= 6) {
        // Pattern is the remainder of the line after permit/deny.
        std::string pattern;
        for (std::size_t i = 5; i < words.size(); ++i) {
          if (i > 5) pattern += tokens.gaps[i];
          pattern += words[i];
        }
        if (HasAlternation(pattern)) usage.asn_alternation = true;
        if (HasRangeOrWildcard(pattern)) {
          try {
            bool any_public = false;
            for (std::uint32_t asn : asn::EnumerateLanguage(pattern)->accepted) {
              if (asn::IsPublicAsn(asn)) {
                any_public = true;
                break;
              }
            }
            if (any_public) {
              usage.asn_range_public = true;
            } else {
              usage.asn_range_private = true;
            }
          } catch (const regex::ParseError&) {
            // Unparseable patterns are counted as public-range: the
            // conservative bucket.
            usage.asn_range_public = true;
          }
        }
        continue;
      }

      if (first == "ip" && second == "community-list" && words.size() >= 5) {
        // Items follow permit/deny; a non-literal, non-keyword item is a
        // regexp (expanded community-list).
        std::size_t action = 0;
        for (std::size_t i = 2; i < words.size(); ++i) {
          const std::string w = util::ToLower(words[i]);
          if (w == "permit" || w == "deny") {
            action = i;
            break;
          }
        }
        if (action == 0) continue;
        for (std::size_t i = action + 1; i < words.size(); ++i) {
          const std::string w = util::ToLower(words[i]);
          if (w == "internet" || w == "no-export" || w == "no-advertise" ||
              w == "local-as" || w == "additive") {
            continue;
          }
          if (asn::ParseCommunity(words[i]).has_value()) continue;
          usage.community_regex = true;
          std::string pattern;
          for (std::size_t j = i; j < words.size(); ++j) {
            if (j > i) pattern += tokens.gaps[j];
            pattern += words[j];
          }
          if (HasRangeOrWildcard(pattern)) usage.community_range = true;
          break;
        }
      }
    }
  }
  return usage;
}

}  // namespace confanon::analysis
