// Partial-knowledge linkage analysis of prefix-preserving IP anonymization.
//
// Paper Section 6.2 cites Ylonen's attack on the tcpdpriv -a50 algorithm
// and notes that its frequency-analysis ingredient is unavailable against
// static configs. A second, structural risk remains and is quantified
// here: prefix preservation itself leaks. If an attacker learns the true
// identity of k anonymized addresses (e.g. well-known peering addresses),
// then for every other anonymized address the shared-prefix length with a
// compromised address is *true* information — the attacker learns that
// many leading bits of the victim address.
//
// The experiment: given the set of (original, anonymized) pairs of a
// corpus and k compromised pairs, compute for each remaining address how
// many of its leading bits become known (the maximum common-prefix length
// against any compromised original). Reported as a distribution over the
// corpus for growing k.
#pragma once

#include <cstddef>
#include <vector>

#include "net/ipv4.h"

namespace confanon::analysis {

struct LinkageResult {
  std::size_t compromised = 0;       // k
  std::size_t victims = 0;           // remaining addresses
  double mean_known_bits = 0;        // average inferable leading bits
  double max_known_bits = 0;
  /// Victims with >= 24 leading bits inferable (practically identified:
  /// the attacker knows the /24).
  std::size_t victims_within_24 = 0;
};

/// Runs the experiment for one k: `addresses` are the corpus's original
/// addresses; the first `k` (caller-chosen order) are compromised.
LinkageResult MeasurePrefixLinkage(
    const std::vector<net::Ipv4Address>& addresses, std::size_t k);

}  // namespace confanon::analysis
