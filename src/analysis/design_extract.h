// Validation suite 2: routing-design extraction (paper Section 5).
//
// "The second suite of tests consists of running our tools to reverse
// engineer the routing design of a network and comparing the extracted
// designs. Extracting the routing design makes an excellent test case, as
// it depends on many aspects of the configuration files being consistent
// inside each file and across all the files in the network, including
// physical topology, routing protocol configuration, routing process
// adjacencies, routing policies, and address space utilization."
//
// The extractor here is a compact reimplementation of that style of tool
// (after Maltz et al., SIGCOMM 2004): it recovers links by matching
// interface subnets across routers, recognizes routing-process instances
// and which interfaces they cover (the subnet-contains relation), recovers
// BGP sessions by matching neighbor statements, and rebuilds the policy
// reference graph (neighbor -> route-map -> match lists).
//
// Two comparison modes:
//   * CompareMapped: exact — the pre-anonymization design is pushed
//     through the anonymization maps (hostname hashing, IP mapping, ASN
//     permutation) and must equal the post-anonymization design field by
//     field.
//   * CompareStructural: identity-free — compares projections that should
//     be invariant even without access to the maps (degree sequences,
//     process/adjacency counts, policy-graph shape).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "config/document.h"
#include "net/prefix.h"

namespace confanon::analysis {

struct InterfaceDesign {
  std::string name;
  net::Ipv4Address address;
  net::Prefix subnet;
  bool operator==(const InterfaceDesign&) const = default;
  auto operator<=>(const InterfaceDesign&) const = default;
};

struct ProcessDesign {
  std::string protocol;  // "ospf", "rip", "eigrp"
  int process_id = 0;    // 0 when the protocol has none (rip)
  /// Interfaces covered via the subnet-contains relation between the
  /// process's network statements and interface addresses.
  std::vector<std::string> covered_interfaces;
  /// OSPF areas declared by this process's network statements (sorted,
  /// deduplicated; empty for non-OSPF protocols).
  std::vector<int> ospf_areas;
  /// ACL number of a `distribute-list <n> in` route filter (0 = none).
  int distribute_list_acl = 0;
  bool operator==(const ProcessDesign&) const = default;
};

struct AclEntryDesign {
  bool permit = true;
  net::Prefix prefix;
  bool operator==(const AclEntryDesign&) const = default;
};

struct BgpNeighborDesign {
  net::Ipv4Address peer;
  std::uint32_t remote_asn = 0;
  bool external = false;
  std::string import_map;
  std::string export_map;
  auto operator<=>(const BgpNeighborDesign&) const = default;
};

struct PolicyClauseDesign {
  bool permit = true;
  int sequence = 0;
  /// Referenced object kinds/ids: ("as-path", "50"), ("community", "100"
  /// or a list name), ("acl", "143"), ("prefix-list", "UUNET-out"). Ids
  /// are strings because IOS policy objects can be numbered or named;
  /// named ids are anonymized and must be mapped when designs are
  /// compared.
  std::vector<std::pair<std::string, std::string>> references;
  bool operator==(const PolicyClauseDesign&) const = default;
};

struct PrefixListEntryDesign {
  int sequence = 0;
  bool permit = true;
  net::Prefix prefix;
  int ge = 0;  // 0 = absent
  int le = 0;  // 0 = absent
  bool operator==(const PrefixListEntryDesign&) const = default;
};

struct RouterDesign {
  std::string hostname;
  std::vector<InterfaceDesign> interfaces;
  std::vector<ProcessDesign> processes;
  std::optional<std::uint32_t> bgp_asn;
  std::vector<BgpNeighborDesign> bgp_neighbors;
  std::map<std::string, std::vector<PolicyClauseDesign>> route_maps;
  std::map<std::string, std::vector<PrefixListEntryDesign>> prefix_lists;
  /// Numbered ACLs: id -> entries (address + wildcard form only; protocol
  /// qualifiers like "ip any any" entries are skipped).
  std::map<int, std::vector<AclEntryDesign>> acls;
  /// Redistribution edges: (into protocol, from protocol).
  std::set<std::pair<std::string, std::string>> redistributions;
  bool operator==(const RouterDesign&) const = default;
};

struct LinkDesign {
  // Router hostnames and interface names of the two ends, ordered so the
  // lexicographically smaller hostname comes first.
  std::string router_a, interface_a;
  std::string router_b, interface_b;
  net::Prefix subnet;
  auto operator<=>(const LinkDesign&) const = default;
};

/// A BGP session recovered by pairing neighbor statements network-wide:
/// router A names an address that belongs to router B (iBGP via loopbacks
/// or eBGP via link addresses). Sessions whose far end is not any known
/// router are external (the peer lives in another network).
struct BgpSessionDesign {
  std::string router_a;               // smaller hostname first for internal
  std::string router_b;               // empty for external sessions
  net::Ipv4Address external_peer;     // set for external sessions
  bool external = false;
  bool symmetric = false;  // both ends declare the session (internal only)
  auto operator<=>(const BgpSessionDesign&) const = default;
};

struct NetworkDesign {
  std::vector<RouterDesign> routers;  // sorted by hostname
  std::vector<LinkDesign> links;      // sorted
  std::vector<BgpSessionDesign> bgp_sessions;  // sorted
  bool operator==(const NetworkDesign&) const = default;
};

/// Extracts the design from config text.
NetworkDesign ExtractDesign(const std::vector<config::ConfigFile>& configs);

/// Shared post-processing for extractors (the IOS one here, the JunOS one
/// in src/junos): sorts routers, recovers links from shared subnets, and
/// pairs BGP sessions network-wide. `design.routers` must be populated;
/// links/bgp_sessions are overwritten.
void FinalizeDesign(NetworkDesign& design);

/// Maps every identifier in `design` through the given functions (applied
/// to hostnames/map names and to addresses respectively) and re-sorts.
/// Used to push a pre-anonymization design through the anonymizer's maps.
NetworkDesign MapDesign(
    const NetworkDesign& design,
    const std::function<std::string(const std::string&)>& name_map,
    const std::function<net::Ipv4Address(net::Ipv4Address)>& addr_map,
    const std::function<std::uint32_t(std::uint32_t)>& asn_map);

/// Field-by-field comparison; returns human-readable difference lines
/// (empty means identical).
std::vector<std::string> CompareDesigns(const NetworkDesign& a,
                                        const NetworkDesign& b);

/// Identity-free structural comparison (degree sequence, process counts,
/// policy shape). Returns difference lines.
std::vector<std::string> CompareStructural(const NetworkDesign& a,
                                           const NetworkDesign& b);

}  // namespace confanon::analysis
