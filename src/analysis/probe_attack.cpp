#include "analysis/probe_attack.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/rng.h"

namespace confanon::analysis {

namespace {

/// Smallest prefix length whose subnet could hold a host run of `span`
/// addresses (including network/broadcast slots).
int PrefixLengthForSpan(std::uint32_t span) {
  int length = 32;
  std::uint32_t size = 1;
  while (size < span + 2 && length > 0) {
    size <<= 1;
    --length;
  }
  return length;
}

}  // namespace

ProbeAttackResult SimulateProbeSweep(const NetworkDesign& design,
                                     const ProbeAttackOptions& options) {
  ProbeAttackResult result;
  util::Rng rng(options.seed, "probe-attack");

  // Collect the externally visible subnets (LAN-sized).
  std::set<net::Prefix> subnets;
  for (const RouterDesign& router : design.routers) {
    for (const InterfaceDesign& iface : router.interfaces) {
      if (iface.subnet.length() >= 24 && iface.subnet.length() <= 30) {
        subnets.insert(iface.subnet);
      }
    }
  }
  for (const net::Prefix& subnet : subnets) {
    result.true_fingerprint.Add(subnet.length());
  }

  // Stage 1+2: ground-truth host placement, observed as a response bitmap.
  // Hosts cluster at the low end: address .1 .. .k with k drawn around
  // occupancy * range.
  std::map<std::uint32_t, bool> responses;  // address -> answered
  for (const net::Prefix& subnet : subnets) {
    const std::uint32_t range =
        subnet.length() >= 31
            ? 2
            : (1u << (32 - subnet.length())) - 2;  // usable host slots
    const double jitter = 0.5 + rng.Unit();  // 0.5x .. 1.5x occupancy
    std::uint32_t hosts = static_cast<std::uint32_t>(
        static_cast<double>(range) * options.occupancy * jitter);
    hosts = std::max<std::uint32_t>(1, std::min(hosts, range));
    for (std::uint32_t h = 1; h <= hosts; ++h) {
      const std::uint32_t address = subnet.address().value() + h;
      if (rng.Chance(options.loss)) continue;
      responses[address] = true;
    }
  }

  // The attacker sweeps the announced blocks; probe count is the span of
  // the addresses considered (we count the subnets' full ranges).
  for (const net::Prefix& subnet : subnets) {
    result.probes += 1u << (32 - subnet.length());
  }
  result.responders = responses.size();

  // Stage 3: boundary guessing. Consecutive responders separated by gaps
  // of >= 2 unanswered addresses are treated as distinct subnets; the run
  // from the inferred subnet base (one below the first responder — the
  // "hosts cluster at the lower end" heuristic) to the last responder is
  // rounded up to a power-of-two subnet.
  std::vector<std::uint32_t> answered;
  answered.reserve(responses.size());
  for (const auto& [address, ok] : responses) {
    if (ok) answered.push_back(address);
  }
  std::sort(answered.begin(), answered.end());

  std::size_t i = 0;
  while (i < answered.size()) {
    std::size_t j = i;
    while (j + 1 < answered.size() &&
           answered[j + 1] - answered[j] <= 2) {
      ++j;
    }
    const std::uint32_t span = answered[j] - (answered[i] - 1) + 1;
    result.estimated_fingerprint.Add(PrefixLengthForSpan(span));
    i = j + 1;
  }
  return result;
}

}  // namespace confanon::analysis
