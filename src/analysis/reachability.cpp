#include "analysis/reachability.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

namespace confanon::analysis {

namespace {

/// Union-find over router indices.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  std::size_t Find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(std::size_t a, std::size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<std::size_t> parent_;
};

bool ProcessCovers(const RouterDesign& router,
                   const std::string& interface_name) {
  for (const ProcessDesign& process : router.processes) {
    if (std::binary_search(process.covered_interfaces.begin(),
                           process.covered_interfaces.end(),
                           interface_name)) {
      return true;
    }
  }
  return false;
}

/// Deny prefixes of every distribute-list attached to the router's
/// processes.
std::vector<net::Prefix> DeniedPrefixes(const RouterDesign& router) {
  std::vector<net::Prefix> denied;
  for (const ProcessDesign& process : router.processes) {
    if (process.distribute_list_acl == 0) continue;
    const auto acl = router.acls.find(process.distribute_list_acl);
    if (acl == router.acls.end()) continue;
    for (const AclEntryDesign& entry : acl->second) {
      if (!entry.permit) denied.push_back(entry.prefix);
    }
  }
  return denied;
}

}  // namespace

ReachabilityReport AnalyzeReachability(const NetworkDesign& design) {
  ReachabilityReport report;
  report.routers = design.routers.size();

  std::map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < design.routers.size(); ++i) {
    index[design.routers[i].hostname] = i;
  }

  // IGP adjacency: both ends of a link must be covered by some routing
  // process of their router.
  UnionFind components(design.routers.size());
  for (const LinkDesign& link : design.links) {
    const auto a = index.find(link.router_a);
    const auto b = index.find(link.router_b);
    if (a == index.end() || b == index.end()) continue;
    if (ProcessCovers(design.routers[a->second], link.interface_a) &&
        ProcessCovers(design.routers[b->second], link.interface_b)) {
      components.Union(a->second, b->second);
    }
  }
  std::set<std::size_t> roots;
  for (std::size_t i = 0; i < design.routers.size(); ++i) {
    roots.insert(components.Find(i));
  }
  report.igp_components = roots.size();

  // Destinations: each router's distinct non-loopback subnets.
  struct Destination {
    std::size_t owner;
    net::Prefix subnet;
  };
  std::vector<Destination> destinations;
  for (std::size_t i = 0; i < design.routers.size(); ++i) {
    std::set<net::Prefix> subnets;
    for (const InterfaceDesign& iface : design.routers[i].interfaces) {
      if (iface.subnet.length() < 32) subnets.insert(iface.subnet);
    }
    for (const net::Prefix& subnet : subnets) {
      destinations.push_back(Destination{i, subnet});
    }
  }
  report.destinations = destinations.size();

  for (std::size_t r = 0; r < design.routers.size(); ++r) {
    const std::vector<net::Prefix> denied =
        DeniedPrefixes(design.routers[r]);
    const std::size_t root = components.Find(r);
    for (const Destination& destination : destinations) {
      if (destination.owner == r) continue;
      ++report.pairs;
      if (components.Find(destination.owner) != root) {
        continue;  // partitioned: unreachable
      }
      bool filtered = false;
      for (const net::Prefix& deny : denied) {
        if (deny.Contains(destination.subnet)) {
          filtered = true;
          break;
        }
      }
      if (filtered) {
        ++report.filtered_pairs;
      } else {
        ++report.reachable_pairs;
      }
    }
  }
  return report;
}

}  // namespace confanon::analysis
