// Fingerprinting attacks and their uniqueness evaluation (paper Section 6).
//
// The paper identifies two external-attack fingerprints that anonymization
// cannot remove because they are exactly the structure it preserves:
//   * the subnet-size histogram (Section 6.2): "the number of subnets of
//     different sizes is the same in pre- and post-anonymization configs";
//   * the peering structure (Section 6.3): "anonymized configs accurately
//     represent the number of routers at which the anonymized network
//     peers with other networks, and the number of peering sessions that
//     terminate on each of those routers".
// Whether those fingerprints are *unique enough* to identify a network was
// left as "an open experimental question for future work"; the FPRINT
// bench answers it over a generated population.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "config/document.h"
#include "net/prefix.h"
#include "util/stats.h"

namespace confanon::analysis {

/// Subnet-size histogram over the network's distinct interface subnets.
util::Histogram SubnetSizeFingerprint(
    const std::vector<config::ConfigFile>& configs);

/// Peering structure: how many routers terminate eBGP sessions, and the
/// (sorted) number of sessions per such router.
struct PeeringFingerprint {
  std::size_t peering_router_count = 0;
  std::vector<int> sessions_per_router;  // sorted descending

  bool operator==(const PeeringFingerprint&) const = default;
};
PeeringFingerprint PeeringStructureFingerprint(
    const std::vector<config::ConfigFile>& configs);

/// Result of the identification experiment over a population: for each
/// network, an attacker holding its anonymized fingerprint looks for
/// matching candidates among externally measured fingerprints of all
/// population members (which equal the pre-anonymization ones, since the
/// structure is preserved). A network is identified iff exactly one
/// candidate matches.
struct UniquenessResult {
  std::size_t population = 0;
  std::size_t uniquely_identified = 0;
  /// Networks whose fingerprint matches >1 members (attack ambiguous).
  std::size_t ambiguous = 0;

  double IdentifiedFraction() const {
    return population == 0 ? 0.0
                           : static_cast<double>(uniquely_identified) /
                                 static_cast<double>(population);
  }
};

UniquenessResult SubnetFingerprintUniqueness(
    const std::vector<util::Histogram>& population);
UniquenessResult PeeringFingerprintUniqueness(
    const std::vector<PeeringFingerprint>& population);

// --- per-router fingerprints (the defense's unit of k-anonymity) ---
//
// The corpus-wide fingerprints above measure whether a NETWORK is
// identifiable among networks; the decoy defense (src/defense) instead
// needs the joint per-ROUTER view: within one anonymized corpus, how many
// routers share a given (subnet-size histogram, peering degree) pair? A
// router whose pair is rarer than k is re-identifiable by an insider who
// knows the real topology, so the defense pads routers until every
// equivalence class has at least k members.

/// The distinct interface subnets of one router, both dialects: IOS
/// `ip address A MASK` lines and JunOS `address a.b.c.d/len;` statements
/// (each canonicalized to its subnet prefix, deduplicated).
std::vector<net::Prefix> CollectInterfaceSubnets(
    const config::ConfigFile& file);

/// One router's joint structural fingerprint.
struct RouterFingerprint {
  /// Distinct interface subnets bucketed by prefix length.
  util::Histogram subnet_sizes;
  /// eBGP peering degree: IOS `neighbor A remote-as N` with N != the
  /// local ASN, plus JunOS neighbors inside `type external` bgp groups.
  int external_sessions = 0;

  bool operator==(const RouterFingerprint&) const = default;

  /// Canonical "len:count,...|degree" encoding — a total order over
  /// fingerprints, used as the equivalence-class key.
  std::string Key() const;
};

/// Dialect-aware extraction (IOS and JunOS constructs are both parsed;
/// a file only ever matches its own dialect's patterns).
RouterFingerprint ExtractRouterFingerprint(const config::ConfigFile& file);
std::vector<RouterFingerprint> ExtractRouterFingerprints(
    const std::vector<config::ConfigFile>& files);

/// Size of the smallest fingerprint equivalence class — the corpus's
/// achieved k. Returns 0 for an empty corpus.
std::size_t MinFingerprintClassSize(
    const std::vector<RouterFingerprint>& fingerprints);

}  // namespace confanon::analysis
