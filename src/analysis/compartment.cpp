#include "analysis/compartment.h"

#include "config/tokenizer.h"
#include "util/strings.h"

namespace confanon::analysis {

CompartmentMechanism DetectCompartmentalization(
    const std::vector<config::ConfigFile>& configs) {
  bool nat = false;
  bool policy = false;
  bool probe_drop = false;
  for (const config::ConfigFile& file : configs) {
    for (const std::string_view raw : file.lines()) {
      const config::SplitLine split = config::SplitConfigLine(raw);
      const auto& words = split.words;
      if (words.size() < 2) continue;
      const std::string first = util::ToLower(words[0]);
      const std::string second = util::ToLower(words[1]);
      if (first == "ip" && second == "nat") {
        nat = true;
      } else if (first == "distribute-list") {
        policy = true;
      } else if (first == "access-list" && words.size() >= 4 &&
                 util::ToLower(words[2]) == "deny") {
        // Probe filtering: an ACL denying ICMP echo or the traceroute UDP
        // port range.
        const std::string proto = util::ToLower(words[3]);
        if (proto == "icmp" || proto == "udp") {
          for (const auto& word : words) {
            const std::string lower = util::ToLower(word);
            if (lower == "echo" || lower == "33434") {
              probe_drop = true;
              break;
            }
          }
        }
      }
    }
  }
  if (nat) return CompartmentMechanism::kNat;
  if (policy) return CompartmentMechanism::kRoutingPolicy;
  if (probe_drop) return CompartmentMechanism::kProbeDrop;
  return CompartmentMechanism::kNone;
}

}  // namespace confanon::analysis
