// Measuring policy-regexp feature usage across a corpus (paper Sections
// 4.4-4.5).
//
// The paper quantifies how often the hard regexp cases actually occur:
// "The use of digit wildcards and ranges in regexps dealing with public
// ASNs is quite rare, appearing in two of 31 networks studied ... only 3
// of 31 networks use ranges in regexps dealing with private ASNs. ...
// alternation ... is very common, appearing in 10 networks. Five of the
// 31 networks used regexps involving communities, but only two networks
// used regexps with range expressions." This scanner re-measures those
// rates from config text; the REGEX bench compares them against the
// paper's numbers.
#pragma once

#include <vector>

#include "config/document.h"

namespace confanon::analysis {

struct RegexUsage {
  /// Digit wildcards/ranges in as-path regexps whose accepted language
  /// contains public ASNs.
  bool asn_range_public = false;
  /// Ranges whose language is entirely private ASNs.
  bool asn_range_private = false;
  /// Alternation in as-path regexps.
  bool asn_alternation = false;
  /// Any community-list regexp (expanded form).
  bool community_regex = false;
  /// Ranges/wildcards inside community regexps.
  bool community_range = false;
};

/// Scans one network's configs.
RegexUsage DetectRegexUsage(const std::vector<config::ConfigFile>& configs);

}  // namespace confanon::analysis
