// End-to-end validation harness (paper Section 5).
//
// Plays the role of the paper's "colleague with access to the unanonymized
// configuration files": runs both validation suites over the pre- and
// post-anonymization corpora and reports differences. Suite 2 uses the
// anonymizer's own maps to push the pre-anonymization design through the
// expected transformation, making the comparison exact rather than merely
// structural.
#pragma once

#include <string>
#include <vector>

#include "config/document.h"
#include "core/anonymizer.h"

namespace confanon::analysis {

struct ValidationResult {
  bool characteristics_match = false;
  std::vector<std::string> characteristics_diffs;
  bool design_match = false;
  std::vector<std::string> design_diffs;
  bool structural_match = false;
  std::vector<std::string> structural_diffs;

  bool AllPassed() const {
    return characteristics_match && design_match && structural_match;
  }
};

/// Runs both suites. `anonymizer` must be the instance that produced
/// `post` from `pre` (its maps are consulted; its statistics are not
/// modified beyond hash-memo lookups for names already seen).
ValidationResult ValidateNetwork(const std::vector<config::ConfigFile>& pre,
                                 const std::vector<config::ConfigFile>& post,
                                 core::Anonymizer& anonymizer);

}  // namespace confanon::analysis
