// Static reachability analysis over an extracted routing design.
//
// The paper's Section 6 argues that some networks "use routing policy to
// prevent reachability between portions of the network", defeating even
// insider fingerprinting. This module makes that claim checkable: from a
// NetworkDesign it computes which (router, destination-subnet) pairs can
// exchange routes, modelling
//   * IGP adjacency: two routers are routing-adjacent when they share a
//     link and both run a routing process covering their end of it;
//   * route filtering: a process with a `distribute-list <acl> in`
//     rejects routes matched by the ACL's deny entries, making those
//     destinations unreachable from that router.
//
// Because the anonymization is structure preserving, the whole
// reachability matrix must be invariant across anonymization (under the
// identifier maps) — the INSIDER bench checks exactly that, and that
// policy-compartmentalized networks really do show restricted
// reachability.
//
// (This is a deliberately small cousin of the static-reachability tooling
// the same research group later published; it covers what the paper's
// claims need, not general packet filters.)
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/design_extract.h"

namespace confanon::analysis {

struct ReachabilityReport {
  /// Number of routers and destination subnets considered.
  std::size_t routers = 0;
  std::size_t destinations = 0;
  /// (router, destination) pairs where the destination is another
  /// router's subnet.
  std::size_t pairs = 0;
  /// Pairs where the router can learn a route to the destination.
  std::size_t reachable_pairs = 0;
  /// Connected components of the IGP adjacency graph.
  std::size_t igp_components = 0;
  /// Pairs blocked specifically by a distribute-list deny (as opposed to
  /// graph partition).
  std::size_t filtered_pairs = 0;

  double ReachableFraction() const {
    return pairs == 0 ? 1.0
                      : static_cast<double>(reachable_pairs) /
                            static_cast<double>(pairs);
  }
  bool operator==(const ReachabilityReport&) const = default;
};

/// Analyzes the design. Destinations are the distinct non-/32 interface
/// subnets of each router.
ReachabilityReport AnalyzeReachability(const NetworkDesign& design);

}  // namespace confanon::analysis
