// Detecting internal compartmentalization from configs (paper Section 6).
//
// "10 of 31 networks we examined use internal compartmentalization that
// would also defeat insider attacks. For example, some networks use NATs
// to divide up the network into smaller pieces, some use routing policy to
// prevent reachability between portions of the network, and others drop
// traceroutes and other probe traffic." This detector recognizes all three
// mechanisms from config text; the INSIDER bench compares its verdicts
// against the generator's ground truth, pre- and post-anonymization (the
// verdict must survive anonymization, since it depends only on structure).
#pragma once

#include <vector>

#include "config/document.h"

namespace confanon::analysis {

enum class CompartmentMechanism {
  kNone,
  kNat,
  kRoutingPolicy,
  kProbeDrop,
};

/// Returns the first mechanism detected (NAT > policy > probe-drop), or
/// kNone.
CompartmentMechanism DetectCompartmentalization(
    const std::vector<config::ConfigFile>& configs);

}  // namespace confanon::analysis
