// Remote subnet-fingerprint estimation — the external attack of paper
// Section 6.2, simulated end to end.
//
// "Conceivably this could be done by pinging every consecutive address in
// the address blocks announced by the candidate network in BGP, and using
// heuristics such as 'most subnets have hosts clustered at the lower end
// of the subnet's address range' to guess where subnet boundaries must
// lie. Although remotely determining the address space fingerprint of a
// physical network seems extremely challenging ..."
//
// The simulation has three stages:
//   1. Ground truth: hosts are placed in each of the network's subnets,
//      clustered at the low end of the range (the paper's own heuristic
//      premise), deterministically from a seed.
//   2. The probe sweep: the attacker observes only the response bitmap —
//      which addresses answered — over the network's announced blocks.
//   3. Boundary guessing: runs of responders separated by gaps are
//      interpreted as subnets; each run's size is rounded up to the
//      smallest power-of-two subnet that could contain it.
//
// The estimated histogram is compared (L1) against the true subnet-size
// fingerprint, quantifying how much of the fingerprint survives remote
// measurement — the paper's open feasibility question.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "analysis/design_extract.h"
#include "util/stats.h"

namespace confanon::analysis {

struct ProbeAttackResult {
  /// The network's true subnet-size fingerprint (distinct subnets by
  /// prefix length).
  util::Histogram true_fingerprint;
  /// The fingerprint the attacker reconstructs from the sweep.
  util::Histogram estimated_fingerprint;
  /// Probes sent / responses seen.
  std::size_t probes = 0;
  std::size_t responders = 0;

  std::uint64_t L1Error() const {
    return util::Histogram::L1Distance(true_fingerprint,
                                       estimated_fingerprint);
  }
  /// Relative error: L1 / total true subnets.
  double RelativeError() const {
    const std::uint64_t total = true_fingerprint.Total();
    return total == 0 ? 0.0
                      : static_cast<double>(L1Error()) /
                            static_cast<double>(total);
  }
};

struct ProbeAttackOptions {
  /// Seed for the ground-truth host placement.
  std::uint64_t seed = 1;
  /// Mean fraction of each subnet's host range that is occupied.
  double occupancy = 0.4;
  /// Fraction of hosts that fail to answer (firewalls, rate limits).
  double loss = 0.0;
};

/// Simulates the sweep over the subnets of `design` (interface subnets of
/// length 24..30; loopbacks and larger aggregates are not externally
/// distinguishable and are excluded on both sides of the comparison).
ProbeAttackResult SimulateProbeSweep(const NetworkDesign& design,
                                     const ProbeAttackOptions& options);

}  // namespace confanon::analysis
