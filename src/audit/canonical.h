// Structural fingerprint canonicalization for map-free pair auditing.
//
// Pair mode must verify that an anonymized corpus is isomorphic to its
// original "up to renaming" without any secret state. The anonymizer's
// per-class maps are all injective — the word hash is collision-checked,
// the ASN and community-value permutations are bijections, and the IP map
// is prefix-preserving and injective — so the *equality pattern* of
// renamed tokens is exactly what survives anonymization. This module
// reduces each config file to that pattern: every token is classified as
// verbatim (must match exactly), renamed within a class space (word /
// ASN / community / address — compared by first-occurrence numbering and
// a corpus-wide rename bimap), or opaque (rewritten regexp payloads,
// whose text legitimately changes shape).
//
// The classifier mirrors the default rule packs of core::Anonymizer and
// junos::JunosAnonymizer: the same context rules fire on both the
// original and the anonymized text because every trigger keyword is
// pass-listed and therefore survives. (Known limitation, documented in
// docs/AUDIT.md: identifiers that collide with dialect keywords would
// desynchronize the classifier — the anonymizer itself has the same
// ambiguity.)
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "config/document.h"
#include "net/prefix.h"

namespace confanon::audit {

enum class Dialect : std::uint8_t { kIos, kJunos };

enum class TokenClass : std::uint8_t {
  kVerbatim,  // must be byte-identical pre/post
  kWord,      // hashed-identifier space (injective word hash)
  kAsn,       // ASN space (public-range permutation, identity on private)
  kComm,      // community literal (ASN:VALUE or 32-bit numeric form)
  kAddr,      // IPv4 address space (prefix-preserving injective map)
  kRegex,     // rewritten regexp payload — opaque, shape-compared only
  kAsnList,   // quoted ASN sequence (JunOS as-path-prepend)
};

struct CanonToken {
  TokenClass cls = TokenClass::kVerbatim;
  /// Rename key (original token text) for renamed classes; literal text
  /// for kVerbatim; space-separated members for kAsnList; empty for
  /// kRegex.
  std::string key;
  /// Verbatim tail rendered after the placeholder (the "/len" of a CIDR
  /// token).
  std::string suffix;
  /// JunOS quoted-string tokens render inside quotes.
  bool quoted = false;
};

/// One emitted output line: its canonical tokens plus the source line it
/// came from (banner bodies are dropped, so output and source lines do
/// not correspond 1:1).
struct CanonLine {
  std::vector<CanonToken> tokens;
  std::uint32_t source_line = 0;  // zero-based
};

/// An address-bearing token occurrence, for the prefix-containment
/// lattice: CIDR tokens contribute their literal prefix, bare addresses
/// contribute /32, and IOS address+netmask pairs contribute the masked
/// subnet.
struct PrefixEvent {
  net::Prefix prefix;
  std::uint32_t source_line = 0;
};

struct CanonicalFile {
  std::string name;
  Dialect dialect = Dialect::kIos;
  /// True when the anonymizer would rename the file name (i.e. the name
  /// is not pass-listed); renamed names are compared through their own
  /// bimap space.
  bool name_renamed = false;
  std::vector<CanonLine> lines;
  std::vector<PrefixEvent> prefixes;
  /// Per-protocol line counts for the structural fingerprint summary.
  std::map<std::string, std::uint64_t> counts;
  std::size_t source_line_count = 0;
  /// SHA-1 hex over the file-locally numbered shape — the pairing key
  /// between pre and post corpora (output file names are hashed, so
  /// pairing by name is impossible by design).
  std::string shape_hash;
};

/// Canonicalizes one file under the given dialect's default rule pack.
CanonicalFile Canonicalize(const config::ConfigFile& file, Dialect dialect);

/// Renders the shape lines with file-local first-occurrence numbering
/// (W1/A1/C1/IP1/RE placeholders). Used for the shape hash and for
/// first-divergence diffs between unpaired files.
std::vector<std::string> RenderShape(const CanonicalFile& file);

/// True for tokens of the anonymizer's hash alphabet: "h" + 10 lowercase
/// hex digits.
bool IsHashToken(std::string_view word);

}  // namespace confanon::audit
