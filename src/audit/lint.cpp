#include "audit/lint.h"

#include <optional>
#include <string_view>

#include "junos/tokenizer.h"
#include "net/ipv4.h"
#include "net/special.h"
#include "util/strings.h"

namespace confanon::audit {

namespace {

constexpr std::size_t kNoPayload = ~std::size_t{0};

bool IsAsciiDigitChar(char c) { return c >= '0' && c <= '9'; }
bool IsAsciiAlphaChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

/// True if `word` is entirely an address or CIDR token — those are the
/// legitimate carriers of dotted-quads.
bool IsAddressToken(std::string_view word) {
  const std::size_t slash = word.find('/');
  if (slash != std::string_view::npos) {
    std::uint64_t length = 0;
    return net::Ipv4Address::Parse(word.substr(0, slash)).has_value() &&
           util::ParseUint(word.substr(slash + 1), 32, length);
  }
  return net::Ipv4Address::Parse(word).has_value();
}

/// AUD-R002: a dotted-quad embedded inside a larger token (the token
/// itself is not an address). Special values (netmasks, multicast, ...)
/// are not identity-bearing and are ignored.
std::optional<std::string> FindEmbeddedAddress(std::string_view word) {
  for (std::size_t start = 0; start < word.size(); ++start) {
    if (!IsAsciiDigitChar(word[start])) continue;
    if (start > 0 &&
        (IsAsciiDigitChar(word[start - 1]) || word[start - 1] == '.')) {
      continue;  // not the beginning of a dotted-quad candidate
    }
    // Greedily consume digits and dots: d{1,3}(.d{1,3}){3}
    std::size_t pos = start;
    int octets = 0;
    bool valid = true;
    while (octets < 4) {
      std::size_t digits = 0;
      std::uint32_t value = 0;
      while (pos < word.size() && IsAsciiDigitChar(word[pos]) && digits < 3) {
        value = value * 10 + static_cast<std::uint32_t>(word[pos] - '0');
        ++pos;
        ++digits;
      }
      if (digits == 0 || value > 255) {
        valid = false;
        break;
      }
      ++octets;
      if (octets < 4) {
        if (pos < word.size() && word[pos] == '.') {
          ++pos;
        } else {
          valid = false;
          break;
        }
      }
    }
    if (!valid) continue;
    // Boundary: the match must not continue into more digits or dots.
    if (pos < word.size() &&
        (IsAsciiDigitChar(word[pos]) || word[pos] == '.')) {
      continue;
    }
    const std::string_view quad = word.substr(start, pos - start);
    const auto address = net::Ipv4Address::Parse(quad);
    if (address && !net::IsSpecial(*address)) return std::string(quad);
  }
  return std::nullopt;
}

/// AUD-R003: a public-ASN-sized digit run fused directly against letters
/// (no separator), e.g. "as7018rtr". Separated forms like "aspath-50"
/// carry only the list number and stay below this rule's radar.
std::optional<std::string> FindFusedAsnRun(std::string_view word) {
  for (std::size_t start = 0; start < word.size(); ++start) {
    if (!IsAsciiDigitChar(word[start])) continue;
    if (start > 0 && IsAsciiDigitChar(word[start - 1])) continue;
    std::size_t end = start;
    while (end < word.size() && IsAsciiDigitChar(word[end])) ++end;
    const std::size_t run = end - start;
    const bool alpha_adjacent =
        (start > 0 && IsAsciiAlphaChar(word[start - 1])) ||
        (end < word.size() && IsAsciiAlphaChar(word[end]));
    if (run >= 3 && run <= 6 && alpha_adjacent) {
      std::uint64_t value = 0;
      if (util::ParseUint(word.substr(start, run), 0xFFFFFFFFull, value) &&
          value >= 1 && value <= 64511) {
        return std::string(word.substr(start, run));
      }
    }
    start = end;
  }
  return std::nullopt;
}

/// True when the source line is a hostname statement (IOS `hostname X`,
/// JunOS `host-name X;`), giving the more specific AUD-R004 rule id.
bool IsHostnameLine(std::string_view raw) {
  const std::vector<std::string_view> words = util::SplitWords(raw);
  if (words.empty()) return false;
  const std::string head = util::ToLower(words[0]);
  return head == "hostname" || head == "host-name";
}

void ScanIosFreeText(const config::ConfigFile& file,
                     std::vector<Finding>& out) {
  // Surviving banners are whole blocks of prose.
  for (const config::LineRegion& region : config::FindBannerRegions(file)) {
    out.push_back(Finding{
        kRuleFreeText, Severity::kError,
        Anchor{file.name(), region.begin}, Anchor{},
        "banner block survived anonymization (banners must be stripped)"});
  }
  for (std::size_t index = 0; index < file.lines().size(); ++index) {
    const std::vector<std::string_view> words =
        util::SplitWords(file.lines()[index]);
    if (words.empty() || words[0].front() == '!') continue;
    std::vector<std::string> lower;
    lower.reserve(words.size());
    for (const std::string_view word : words) lower.push_back(util::ToLower(word));

    std::size_t payload_from = kNoPayload;
    if (lower[0] == "description" || lower[0] == "title") {
      payload_from = 1;
    } else {
      for (std::size_t i = 0; i + 1 < lower.size(); ++i) {
        if (lower[i] == "remark" || lower[i] == "description") {
          payload_from = i + 1;
          break;
        }
      }
    }
    if (lower[0] == "snmp-server" && words.size() >= 3 &&
        (lower[1] == "contact" || lower[1] == "location" ||
         lower[1] == "chassis-id")) {
      payload_from = 2;
    }
    if (payload_from != kNoPayload && payload_from < words.size()) {
      out.push_back(Finding{
          kRuleFreeText, Severity::kError, Anchor{file.name(), index},
          Anchor{},
          "free-text payload survived after '" + lower[payload_from - 1] +
              "'"});
    }
  }
}

void ScanJunosFreeText(const config::ConfigFile& file,
                       std::vector<Finding>& out) {
  junos::JunosLine line;
  bool in_block_comment = false;
  for (std::size_t index = 0; index < file.lines().size(); ++index) {
    const std::string_view raw = file.lines()[index];
    const bool opens =
        !in_block_comment && util::StartsWith(util::Trim(raw), "/*");
    if (opens || in_block_comment) {
      in_block_comment = raw.find("*/") == std::string::npos;
      // A comment with content beyond the markers is surviving prose.
      const std::string_view trimmed = util::Trim(raw);
      if (trimmed != "/* */" && !util::SplitWords(trimmed).empty() &&
          trimmed.size() > 4) {
        out.push_back(Finding{kRuleFreeText, Severity::kError,
                              Anchor{file.name(), index}, Anchor{},
                              "block comment content survived (expected a "
                              "bare '/* */' marker)"});
      }
      continue;
    }
    junos::TokenizeJunosLineInto(raw, line);
    for (std::size_t i = 0; i + 1 < line.tokens.size(); ++i) {
      if (line.tokens[i].kind != junos::Token::Kind::kWord) continue;
      const std::string keyword = util::ToLower(line.tokens[i].text);
      if (keyword != "description" && keyword != "message") continue;
      const junos::Token& value = line.tokens[i + 1];
      if (value.kind == junos::Token::Kind::kString && value.text != "\"\"") {
        out.push_back(Finding{
            kRuleFreeText, Severity::kError, Anchor{file.name(), index},
            Anchor{},
            "free-text string survived after '" + keyword + "'"});
      }
    }
    if (!line.tokens.empty() &&
        line.tokens.back().kind == junos::Token::Kind::kComment) {
      out.push_back(Finding{kRuleFreeText, Severity::kError,
                            Anchor{file.name(), index}, Anchor{},
                            "trailing '#' comment survived anonymization"});
    }
  }
}

}  // namespace

std::vector<Finding> LintFileResidue(const config::ConfigFile& file,
                                     const CanonicalFile& canonical) {
  std::vector<Finding> out;

  // AUD-R001: free-text survivors, dialect-specific.
  if (canonical.dialect == Dialect::kJunos) {
    ScanJunosFreeText(file, out);
  } else {
    ScanIosFreeText(file, out);
  }

  // Token-level rules ride on the canonical classification: every token
  // the canonicalizer marks as renameable (kWord) must already be a hash
  // token in anonymized output (AUD-R004/R005), and no surviving token
  // may embed a dotted-quad (AUD-R002) or a fused ASN-sized digit run
  // (AUD-R003).
  for (const CanonLine& line : canonical.lines) {
    for (const CanonToken& token : line.tokens) {
      const std::string& key = token.key;
      switch (token.cls) {
        case TokenClass::kWord: {
          if (IsHashToken(key)) break;
          const bool hostname =
              line.source_line < canonical.source_line_count &&
              IsHostnameLine(file.lines()[line.source_line]);
          out.push_back(Finding{
              hostname ? kRuleHostnameResidue : kRulePassListFallthrough,
              Severity::kError, Anchor{file.name(), line.source_line},
              Anchor{},
              (hostname ? std::string("hostname '") : std::string("token '")) +
                  key +
                  "' is not an anonymized hash and is not pass-listed"});
          break;
        }
        case TokenClass::kVerbatim: {
          if (const auto quad = FindEmbeddedAddress(key)) {
            if (!IsAddressToken(key)) {
              out.push_back(Finding{
                  kRuleEmbeddedAddress, Severity::kError,
                  Anchor{file.name(), line.source_line}, Anchor{},
                  "token '" + key + "' embeds dotted-quad " + *quad});
            }
          } else if (const auto run = FindFusedAsnRun(key)) {
            out.push_back(Finding{
                kRuleAsnInName, Severity::kWarning,
                Anchor{file.name(), line.source_line}, Anchor{},
                "token '" + key + "' embeds ASN-like digit run " + *run});
          }
          break;
        }
        default:
          break;
      }
    }
  }
  return out;
}

}  // namespace confanon::audit
