// Diagnostic model for the map-free static auditor.
//
// The auditor is the paper's Section 5 "colleague" made executable: a
// third party holding only config corpora — no anonymizer instance, no
// maps, no salt — checks that anonymization preserved structure and left
// no identity-bearing residue. Every check reduces to findings of this
// shape: a stable rule id, a severity, a primary file:line anchor, and
// (for pair-mode divergences) a related anchor on the other corpus.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace confanon::audit {

enum class Severity : std::uint8_t {
  kError,    // structure broken or identity leaked — fails the CI gate
  kWarning,  // suspicious but adjudicable (the paper's AS 1 false-positive
             // class lives here)
  kNote,     // informational (dead definitions and similar)
};

const char* SeverityName(Severity severity);

/// A file:line anchor. Lines are 1-based in rendered output; kNoLine
/// marks findings that anchor to a whole file (e.g. its name).
struct Anchor {
  static constexpr std::size_t kNoLine = ~std::size_t{0};

  std::string file;
  std::size_t line = kNoLine;  // zero-based when != kNoLine

  std::string ToString() const;  // "file:LINE" (1-based) or "file"
};

struct Finding {
  std::string rule_id;      // stable, documented in docs/AUDIT.md
  Severity severity = Severity::kError;
  Anchor anchor;            // pre-corpus side in pair mode
  Anchor related;           // post-corpus side in pair mode (may be empty)
  std::string message;

  std::string ToString() const;
};

struct AuditResult {
  std::vector<Finding> findings;
  std::size_t files_scanned = 0;
  std::size_t lines_scanned = 0;
  /// Structural fingerprint counters (per-protocol line counts and
  /// symbol-space sizes), for the human summary.
  std::map<std::string, std::uint64_t> stats;

  std::size_t CountAtLeast(Severity severity) const;
  std::size_t ErrorCount() const { return CountAtLeast(Severity::kError); }
  bool HasErrors() const { return ErrorCount() > 0; }

  /// Human-readable report: one line per finding plus a summary block.
  std::string ToText() const;
};

}  // namespace confanon::audit
