// Decoy-aware pair audit (rules AUD-D001/AUD-D002).
//
// The fingerprint defense deliberately breaks the byte-level "nothing was
// added" reading of structure preservation — so its insertions are
// flagged in a DecoyManifest, and this mode holds the defense to its two
// remaining promises: decoys never shadow real address space, and with
// the flagged regions stripped the output is exactly what the ordinary
// pair audit would have accepted.

#include <algorithm>
#include <map>
#include <sstream>

#include "analysis/fingerprint.h"
#include "audit/audit.h"

namespace confanon::audit {

namespace {

Finding DecoyFinding(const char* rule_id, std::string file, std::size_t line,
                     std::string message) {
  Finding finding;
  finding.rule_id = rule_id;
  finding.severity = Severity::kError;
  finding.anchor.file = std::move(file);
  finding.anchor.line = line;
  finding.message = std::move(message);
  return finding;
}

}  // namespace

AuditResult ComparePairDefended(const std::vector<config::ConfigFile>& pre,
                                const std::vector<config::ConfigFile>& post,
                                const defense::DecoyManifest& manifest,
                                const AuditOptions& options) {
  AuditResult decoy_result;
  std::map<std::string, const config::ConfigFile*> by_name;
  for (const config::ConfigFile& file : post) {
    by_name.emplace(file.name(), &file);
  }

  // 1. The manifest must describe this corpus: every region names an
  // existing file and lies inside it, ascending and disjoint per file.
  bool manifest_ok = true;
  for (const defense::FileDecoys& entry : manifest.files) {
    const auto it = by_name.find(entry.file);
    if (it == by_name.end()) {
      decoy_result.findings.push_back(DecoyFinding(
          kRuleDecoyManifestMismatch, entry.file, Anchor::kNoLine,
          "decoy manifest names a file absent from the post corpus"));
      manifest_ok = false;
      continue;
    }
    const std::size_t line_count = it->second->LineCount();
    std::size_t previous_end = 0;
    for (const config::LineRegion& region : entry.regions) {
      if (region.end <= region.begin || region.end > line_count ||
          region.begin < previous_end) {
        std::ostringstream message;
        message << "decoy region [" << region.begin << ", " << region.end
                << ") is empty, overlapping, or outside the file's "
                << line_count << " lines";
        decoy_result.findings.push_back(
            DecoyFinding(kRuleDecoyManifestMismatch, entry.file,
                         region.begin, message.str()));
        manifest_ok = false;
        continue;
      }
      previous_end = region.end;
    }
  }
  if (!manifest_ok) return decoy_result;  // stripping would be undefined

  // 2. Strip the flagged regions (descending, so earlier begins stay
  // valid) into a fresh corpus holding only the claimed-real lines.
  std::vector<config::ConfigFile> stripped = post;
  for (const defense::FileDecoys& entry : manifest.files) {
    for (config::ConfigFile& file : stripped) {
      if (file.name() != entry.file) continue;
      std::vector<std::string>& lines = file.mutable_lines();
      for (auto it = entry.regions.rbegin(); it != entry.regions.rend();
           ++it) {
        lines.erase(lines.begin() + static_cast<std::ptrdiff_t>(it->begin),
                    lines.begin() + static_cast<std::ptrdiff_t>(it->end));
      }
      break;
    }
  }

  // 3. No decoy prefix may shadow real space in either direction: a
  // decoy inside a real subnet would claim real hosts, a real subnet
  // inside a decoy would let the defense hide (or excuse) real structure.
  for (const config::ConfigFile& file : stripped) {
    for (const net::Prefix& real : analysis::CollectInterfaceSubnets(file)) {
      for (const net::Prefix& decoy : manifest.prefixes) {
        if (decoy.Contains(real) || real.Contains(decoy)) {
          decoy_result.findings.push_back(DecoyFinding(
              kRuleDecoyShadowsReal, file.name(), Anchor::kNoLine,
              "decoy prefix " + decoy.ToString() + " shadows real subnet " +
                  real.ToString()));
        }
      }
      if (manifest.octet >= 0 &&
          static_cast<int>(real.address().value() >> 24) == manifest.octet) {
        decoy_result.findings.push_back(DecoyFinding(
            kRuleDecoyShadowsReal, file.name(), Anchor::kNoLine,
            "real subnet " + real.ToString() +
                " lives inside the claimed decoy block " +
                std::to_string(manifest.octet) + ".0.0.0/8"));
      }
    }
  }

  // 4. With decoys gone, the ordinary isomorphism proof must hold.
  AuditResult result = ComparePair(pre, stripped, options);
  result.findings.insert(result.findings.begin(),
                         decoy_result.findings.begin(),
                         decoy_result.findings.end());
  result.stats["decoy.files"] = manifest.files.size();
  result.stats["decoy.lines"] = manifest.TotalDecoyLines();
  result.stats["decoy.prefixes"] = manifest.prefixes.size();
  return result;
}

}  // namespace confanon::audit
