// Single-corpus residue lint: identity-bearing leftovers in anonymized
// text.
//
// These rules encode what a correctly anonymized corpus must NOT contain:
// free-text payloads (AUD-R001), dotted-quads embedded inside larger
// tokens (AUD-R002), ASN-like digit runs fused into names (AUD-R003),
// non-hash hostnames (AUD-R004), and tokens the generic pass-list rule
// would have hashed (AUD-R005). The lint is meant to run over the OUTPUT
// of an anonymizer; on original text it simply reports everything that
// would have to change. Corpus-level rules (AUD-R006 dangling use,
// AUD-R007 dead definition) live in the audit driver, which owns the
// cross-file symbol table.
#pragma once

#include <vector>

#include "audit/canonical.h"
#include "audit/finding.h"
#include "config/document.h"

namespace confanon::audit {

/// Rule ids for the per-file residue lint.
inline constexpr const char* kRuleFreeText = "AUD-R001";
inline constexpr const char* kRuleEmbeddedAddress = "AUD-R002";
inline constexpr const char* kRuleAsnInName = "AUD-R003";
inline constexpr const char* kRuleHostnameResidue = "AUD-R004";
inline constexpr const char* kRulePassListFallthrough = "AUD-R005";
inline constexpr const char* kRuleDanglingUse = "AUD-R006";
inline constexpr const char* kRuleDeadDef = "AUD-R007";

/// Runs rules AUD-R001..AUD-R005 over one file. `canonical` must be the
/// Canonicalize() result for the same file (the fallthrough rule reuses
/// its token classification).
std::vector<Finding> LintFileResidue(const config::ConfigFile& file,
                                     const CanonicalFile& canonical);

}  // namespace confanon::audit
