#include "audit/audit.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "audit/canonical.h"
#include "audit/lint.h"
#include "audit/refgraph.h"
#include "obs/profiler.h"
#include "pipeline/parallel_for.h"
#include "pipeline/pipeline.h"

namespace confanon::audit {

namespace {

constexpr std::size_t kNpos = ~std::size_t{0};

Dialect ResolveDialect(const config::ConfigFile& file, DialectMode mode) {
  switch (mode) {
    case DialectMode::kIos:
      return Dialect::kIos;
    case DialectMode::kJunos:
      return Dialect::kJunos;
    case DialectMode::kAuto:
      break;
  }
  return pipeline::DetectDialect(file) == pipeline::FileDialect::kJunos
             ? Dialect::kJunos
             : Dialect::kIos;
}

/// Everything the per-file parallel phase produces; corpus-level analysis
/// consumes these read-only.
struct FileScan {
  CanonicalFile canonical;
  std::vector<RefEvent> refs;
  std::vector<Finding> lint;
  std::uint64_t scan_ns = 0;
};

/// Fans canonicalization (and optionally the residue lint) out over the
/// pipeline worker pool. Each worker writes only to slots of its own
/// indices, so the result is scheduling-independent.
std::vector<FileScan> ScanFiles(const std::vector<config::ConfigFile>& files,
                                const AuditOptions& options, bool with_lint) {
  std::vector<FileScan> scans(files.size());
  const int threads =
      pipeline::ResolveWorkerCount(options.threads, files.size());
  pipeline::WorkQueue queue(files.size(), 4);
  obs::PhaseProfiler::ScopedPhase phase(options.profiler, nullptr, "audit");
  pipeline::RunWorkers(threads, [&](int) {
    std::size_t begin = 0;
    std::size_t end = 0;
    while (queue.Next(begin, end)) {
      for (std::size_t i = begin; i < end; ++i) {
        const auto start = std::chrono::steady_clock::now();
        FileScan& scan = scans[i];
        const Dialect dialect = ResolveDialect(files[i], options.dialect);
        scan.canonical = Canonicalize(files[i], dialect);
        scan.refs = ExtractRefs(files[i], dialect);
        if (with_lint) scan.lint = LintFileResidue(files[i], scan.canonical);
        scan.scan_ns = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start)
                .count());
      }
    }
  });
  if (options.metrics != nullptr) {
    options.metrics->CounterNamed("audit.files").Add(scans.size());
    auto& histogram = options.metrics->HistogramNamed("audit.scan_ns");
    for (const FileScan& scan : scans) histogram.Record(scan.scan_ns);
  }
  return scans;
}

void MergeStats(const CanonicalFile& canonical, AuditResult& result) {
  result.lines_scanned += canonical.source_line_count;
  for (const auto& [key, count] : canonical.counts) result.stats[key] += count;
}

void FinishResult(AuditResult& result, const AuditOptions& options) {
  const auto order = [](const Finding& a, const Finding& b) {
    if (a.anchor.file != b.anchor.file) return a.anchor.file < b.anchor.file;
    if (a.anchor.line != b.anchor.line) return a.anchor.line < b.anchor.line;
    return a.rule_id < b.rule_id;
  };
  std::stable_sort(result.findings.begin(), result.findings.end(), order);
  if (options.metrics != nullptr) {
    options.metrics->CounterNamed("audit.findings")
        .Add(result.findings.size());
  }
}

std::string Clip(std::string_view text) {
  constexpr std::size_t kMax = 60;
  if (text.size() <= kMax) return std::string(text);
  return std::string(text.substr(0, kMax - 3)) + "...";
}

// --- pair mode ---

/// One injective rename space (words, ASNs, communities, addresses, file
/// names). The anonymizer's per-class maps are bijective, so a consistent
/// anonymization binds every pre key to exactly one post key and vice
/// versa; any conflict is rule AUD-P003.
class RenameSpace {
 public:
  explicit RenameSpace(const char* label) : label_(label) {}

  /// Dry-run: counts agreements/conflicts against the established
  /// bindings without modifying them (used to disambiguate same-shape
  /// file groups).
  void Score(const std::string& pre, const std::string& post,
             std::size_t& agree, std::size_t& conflict) const {
    const auto fwd = forward_.find(pre);
    if (fwd != forward_.end()) (fwd->second.other == post ? agree : conflict)++;
    const auto rev = reverse_.find(post);
    if (rev != reverse_.end()) (rev->second.other == pre ? agree : conflict)++;
  }

  /// Binds pre<->post, appending an AUD-P003 finding per new conflict.
  void Bind(const std::string& pre, const std::string& post,
            const Anchor& pre_anchor, const Anchor& post_anchor,
            std::vector<Finding>& findings) {
    CheckDirection(forward_, pre, post, pre_anchor, post_anchor, "pre",
                   findings);
    CheckDirection(reverse_, post, pre, pre_anchor, post_anchor, "post",
                   findings);
  }

 private:
  struct Binding {
    std::string other;
    Anchor anchor;
  };

  void CheckDirection(std::map<std::string, Binding>& map,
                      const std::string& key, const std::string& value,
                      const Anchor& pre_anchor, const Anchor& post_anchor,
                      const char* side, std::vector<Finding>& findings) {
    const auto [it, inserted] = map.try_emplace(key, Binding{value, pre_anchor});
    if (inserted || it->second.other == value) return;
    const std::string conflict_key = std::string(side) + '\0' + key + '\0' + value;
    if (!reported_.insert(conflict_key).second) return;
    findings.push_back(Finding{
        kRuleRenameConflict, Severity::kError, pre_anchor, post_anchor,
        std::string("inconsistent ") + label_ + " renaming: " + side +
            "-side '" + key + "' maps to both '" + it->second.other +
            "' (first bound at " + it->second.anchor.ToString() + ") and '" +
            value + "'"});
  }

  const char* label_;
  std::map<std::string, Binding> forward_;
  std::map<std::string, Binding> reverse_;
  std::set<std::string> reported_;
};

struct PairState {
  RenameSpace words{"identifier"};
  RenameSpace asns{"ASN"};
  RenameSpace comms{"community"};
  RenameSpace addrs{"address"};
  RenameSpace names{"file-name"};
  /// AUD-P005 dedup: each surviving identifier is reported once.
  std::set<std::string> survived;
};

RenameSpace* SpaceFor(PairState& state, TokenClass cls) {
  switch (cls) {
    case TokenClass::kWord:
      return &state.words;
    case TokenClass::kAsn:
      return &state.asns;
    case TokenClass::kComm:
      return &state.comms;
    case TokenClass::kAddr:
      return &state.addrs;
    default:
      return nullptr;
  }
}

/// Splits a kAsnList key ("65000 65000 65001") into members.
std::vector<std::string> AsnListMembers(const std::string& key) {
  std::vector<std::string> members;
  std::size_t pos = 0;
  while (pos < key.size()) {
    const std::size_t space = key.find(' ', pos);
    const std::size_t end = space == std::string::npos ? key.size() : space;
    if (end > pos) members.push_back(key.substr(pos, end - pos));
    pos = end + 1;
  }
  return members;
}

/// Dry-run bimap agreement of a candidate same-shape pair. Shapes are
/// identical (same hash), so tokens align 1:1.
void ScorePair(const PairState& state, const CanonicalFile& pre,
               const CanonicalFile& post, std::size_t& agree,
               std::size_t& conflict) {
  state.names.Score(pre.name, post.name, agree, conflict);
  for (std::size_t li = 0; li < pre.lines.size() && li < post.lines.size();
       ++li) {
    const auto& a = pre.lines[li].tokens;
    const auto& b = post.lines[li].tokens;
    for (std::size_t ti = 0; ti < a.size() && ti < b.size(); ++ti) {
      if (a[ti].cls != b[ti].cls) continue;
      switch (a[ti].cls) {
        case TokenClass::kWord:
          state.words.Score(a[ti].key, b[ti].key, agree, conflict);
          break;
        case TokenClass::kAsn:
          state.asns.Score(a[ti].key, b[ti].key, agree, conflict);
          break;
        case TokenClass::kComm:
          state.comms.Score(a[ti].key, b[ti].key, agree, conflict);
          break;
        case TokenClass::kAddr:
          state.addrs.Score(a[ti].key, b[ti].key, agree, conflict);
          break;
        case TokenClass::kAsnList: {
          const auto pre_members = AsnListMembers(a[ti].key);
          const auto post_members = AsnListMembers(b[ti].key);
          for (std::size_t m = 0;
               m < pre_members.size() && m < post_members.size(); ++m) {
            state.asns.Score(pre_members[m], post_members[m], agree, conflict);
          }
          break;
        }
        default:
          break;
      }
    }
  }
}

/// Commits one matched pair: binds every renamed token into the corpus
/// bimaps (AUD-P003 on conflict) and flags surviving identifiers
/// (AUD-P005). Shape equality is already established via the hash.
void CommitPair(PairState& state, const CanonicalFile& pre,
                const CanonicalFile& post, std::vector<Finding>& findings) {
  const Anchor pre_file_anchor{pre.name, Anchor::kNoLine};
  const Anchor post_file_anchor{post.name, Anchor::kNoLine};
  if (pre.name_renamed) {
    if (pre.name == post.name && state.survived.insert("file:" + pre.name).second) {
      findings.push_back(Finding{
          kRuleIdentitySurvived, Severity::kError, pre_file_anchor,
          post_file_anchor,
          "original file name '" + pre.name + "' survived anonymization"});
    }
    state.names.Bind(pre.name, post.name, pre_file_anchor, post_file_anchor,
                     findings);
  } else if (pre.name != post.name) {
    state.names.Bind(pre.name, post.name, pre_file_anchor, post_file_anchor,
                     findings);
  }

  for (std::size_t li = 0; li < pre.lines.size() && li < post.lines.size();
       ++li) {
    const CanonLine& a = pre.lines[li];
    const CanonLine& b = post.lines[li];
    const Anchor pre_anchor{pre.name, a.source_line};
    const Anchor post_anchor{post.name, b.source_line};
    for (std::size_t ti = 0; ti < a.tokens.size() && ti < b.tokens.size();
         ++ti) {
      const CanonToken& pt = a.tokens[ti];
      const CanonToken& qt = b.tokens[ti];
      if (pt.cls != qt.cls) continue;  // impossible for equal shapes
      if (pt.cls == TokenClass::kAsnList) {
        const auto pre_members = AsnListMembers(pt.key);
        const auto post_members = AsnListMembers(qt.key);
        for (std::size_t m = 0;
             m < pre_members.size() && m < post_members.size(); ++m) {
          state.asns.Bind(pre_members[m], post_members[m], pre_anchor,
                          post_anchor, findings);
        }
        continue;
      }
      RenameSpace* space = SpaceFor(state, pt.cls);
      if (space == nullptr) continue;
      if (pt.cls == TokenClass::kWord && pt.key == qt.key &&
          !IsHashToken(pt.key) && state.survived.insert(pt.key).second) {
        findings.push_back(Finding{
            kRuleIdentitySurvived, Severity::kError, pre_anchor, post_anchor,
            "original identifier '" + pt.key + "' survived anonymization"});
      }
      space->Bind(pt.key, qt.key, pre_anchor, post_anchor, findings);
    }
  }
}

/// AUD-P004: the def/use event sequences must be isomorphic up to
/// renaming. Names are reduced to file-local first-occurrence ids, which
/// is exactly what an injective consistent renaming preserves.
void CompareRefGraphs(const CanonicalFile& pre_file,
                      const std::vector<RefEvent>& pre,
                      const CanonicalFile& post_file,
                      const std::vector<RefEvent>& post,
                      std::vector<Finding>& findings) {
  const auto ids = [](const std::vector<RefEvent>& events) {
    std::map<std::pair<std::uint8_t, std::string>, std::size_t> table;
    std::vector<std::size_t> out;
    out.reserve(events.size());
    for (const RefEvent& event : events) {
      out.push_back(table
                        .try_emplace({static_cast<std::uint8_t>(event.space),
                                      event.name},
                                     table.size() + 1)
                        .first->second);
    }
    return out;
  };
  const std::vector<std::size_t> pre_ids = ids(pre);
  const std::vector<std::size_t> post_ids = ids(post);
  const auto describe = [](const RefEvent& event, std::size_t id) {
    return std::string(event.is_def ? "def " : "use ") +
           SymbolSpaceName(event.space) + " #" + std::to_string(id) + " ('" +
           event.name + "')";
  };
  const std::size_t n = std::min(pre.size(), post.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (pre[i].space == post[i].space && pre[i].is_def == post[i].is_def &&
        pre_ids[i] == post_ids[i]) {
      continue;
    }
    findings.push_back(Finding{
        kRuleRefGraphDivergence, Severity::kError,
        Anchor{pre_file.name, pre[i].line}, Anchor{post_file.name, post[i].line},
        "reference graphs diverge at event " + std::to_string(i + 1) + ": " +
            describe(pre[i], pre_ids[i]) + " vs " +
            describe(post[i], post_ids[i])});
    return;  // first divergent edge only; the rest cascades
  }
  if (pre.size() != post.size()) {
    const bool pre_longer = pre.size() > post.size();
    const RefEvent& extra = pre_longer ? pre[n] : post[n];
    Finding finding{kRuleRefGraphDivergence, Severity::kError,
                    Anchor{pre_file.name, Anchor::kNoLine},
                    Anchor{post_file.name, Anchor::kNoLine},
                    std::string("reference graphs diverge: ") +
                        (pre_longer ? "pre" : "post") + " side has extra " +
                        describe(extra, pre_longer ? pre_ids[n] : post_ids[n])};
    (pre_longer ? finding.anchor : finding.related).line = extra.line;
    findings.push_back(std::move(finding));
  }
}

/// AUD-P006: the corpus-wide prefix-containment lattice. Because the IP
/// map preserves common-prefix lengths exactly, both the first-occurrence
/// pattern of (prefix, length) events and the immediate-parent relation
/// over distinct prefixes must be identical across the pair.
struct CorpusPrefixEvent {
  net::Prefix prefix;
  Anchor anchor;
};

void CompareLattices(const std::vector<CorpusPrefixEvent>& pre,
                     const std::vector<CorpusPrefixEvent>& post,
                     std::vector<Finding>& findings) {
  const auto ids = [](const std::vector<CorpusPrefixEvent>& events,
                      std::vector<net::Prefix>& distinct,
                      std::vector<Anchor>& first_anchor) {
    std::map<net::Prefix, std::size_t> table;
    std::vector<std::size_t> out;
    out.reserve(events.size());
    for (const CorpusPrefixEvent& event : events) {
      const auto [it, inserted] =
          table.try_emplace(event.prefix, table.size());
      if (inserted) {
        distinct.push_back(event.prefix);
        first_anchor.push_back(event.anchor);
      }
      out.push_back(it->second);
    }
    return out;
  };
  std::vector<net::Prefix> pre_distinct;
  std::vector<net::Prefix> post_distinct;
  std::vector<Anchor> pre_first;
  std::vector<Anchor> post_first;
  const std::vector<std::size_t> pre_ids = ids(pre, pre_distinct, pre_first);
  const std::vector<std::size_t> post_ids =
      ids(post, post_distinct, post_first);

  const std::size_t n = std::min(pre.size(), post.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (pre_ids[i] == post_ids[i] &&
        pre[i].prefix.length() == post[i].prefix.length()) {
      continue;
    }
    findings.push_back(Finding{
        kRuleLatticeDivergence, Severity::kError, pre[i].anchor,
        post[i].anchor,
        "prefix lattice diverges at event " + std::to_string(i + 1) +
            ": pre " + pre[i].prefix.ToString() + " (id " +
            std::to_string(pre_ids[i] + 1) + ") vs post " +
            post[i].prefix.ToString() + " (id " +
            std::to_string(post_ids[i] + 1) + ")"});
    return;
  }
  if (pre.size() != post.size()) {
    const bool pre_longer = pre.size() > post.size();
    const CorpusPrefixEvent& extra = pre_longer ? pre[n] : post[n];
    findings.push_back(Finding{
        kRuleLatticeDivergence, Severity::kError,
        pre_longer ? extra.anchor : Anchor{},
        pre_longer ? Anchor{} : extra.anchor,
        std::string("prefix lattice diverges: ") +
            (pre_longer ? "pre" : "post") + " side has extra event " +
            extra.prefix.ToString()});
    return;
  }

  // Immediate parents: for each distinct prefix, the longest proper
  // ancestor among the distinct set (kNpos when none). Containment is
  // preserved by the prefix-preserving map, so the parent id arrays must
  // match element-wise.
  const auto parents = [](const std::vector<net::Prefix>& distinct) {
    std::vector<std::size_t> out(distinct.size(), kNpos);
    for (std::size_t i = 0; i < distinct.size(); ++i) {
      int best_length = -1;
      for (std::size_t j = 0; j < distinct.size(); ++j) {
        if (i == j) continue;
        if (distinct[j].length() >= distinct[i].length()) continue;
        if (!distinct[j].Contains(distinct[i])) continue;
        if (distinct[j].length() > best_length) {
          best_length = distinct[j].length();
          out[i] = j;
        }
      }
    }
    return out;
  };
  const std::vector<std::size_t> pre_parents = parents(pre_distinct);
  const std::vector<std::size_t> post_parents = parents(post_distinct);
  for (std::size_t i = 0; i < pre_distinct.size(); ++i) {
    if (pre_parents[i] == post_parents[i]) continue;
    const auto name = [](const std::vector<net::Prefix>& distinct,
                         std::size_t parent) {
      return parent == kNpos ? std::string("none") : distinct[parent].ToString();
    };
    findings.push_back(Finding{
        kRuleLatticeDivergence, Severity::kError, pre_first[i], post_first[i],
        "containment parent of prefix id " + std::to_string(i + 1) +
            " diverges: pre " + pre_distinct[i].ToString() + " under " +
            name(pre_distinct, pre_parents[i]) + ", post " +
            post_distinct[i].ToString() + " under " +
            name(post_distinct, post_parents[i])});
    return;
  }
}

/// First index where the rendered shapes differ; kNpos when identical.
std::size_t FirstShapeDivergence(const std::vector<std::string>& a,
                                 const std::vector<std::string>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return i;
  }
  return a.size() == b.size() ? kNpos : n;
}

}  // namespace

AuditResult LintCorpus(const std::vector<config::ConfigFile>& files,
                       const AuditOptions& options) {
  const std::vector<FileScan> scans = ScanFiles(files, options, true);
  AuditResult result;
  result.files_scanned = files.size();

  struct Symbol {
    std::size_t defs = 0;
    std::size_t uses = 0;
    Anchor first_def;
    Anchor first_use;
  };
  std::map<std::pair<std::uint8_t, std::string>, Symbol> symbols;
  for (std::size_t i = 0; i < scans.size(); ++i) {
    MergeStats(scans[i].canonical, result);
    result.findings.insert(result.findings.end(), scans[i].lint.begin(),
                           scans[i].lint.end());
    for (const RefEvent& event : scans[i].refs) {
      Symbol& symbol =
          symbols[{static_cast<std::uint8_t>(event.space), event.name}];
      if (event.is_def) {
        if (symbol.defs++ == 0) {
          symbol.first_def = Anchor{files[i].name(), event.line};
        }
      } else if (symbol.uses++ == 0) {
        symbol.first_use = Anchor{files[i].name(), event.line};
      }
    }
  }

  for (const auto& [key, symbol] : symbols) {
    const auto space = static_cast<SymbolSpace>(key.first);
    result.stats[std::string("sym.") + SymbolSpaceName(space) +
                 (symbol.defs > 0 ? ".defs" : ".dangling")]++;
    if (symbol.uses > 0 && symbol.defs == 0) {
      result.findings.push_back(Finding{
          kRuleDanglingUse, Severity::kWarning, symbol.first_use, Anchor{},
          std::string("reference to ") + SymbolSpaceName(space) + " '" +
              key.second + "' which is never defined in the corpus"});
    }
    // Interfaces are hardware-born: defining one without referencing it
    // elsewhere is normal, not a smell.
    if (symbol.defs > 0 && symbol.uses == 0 && space != SymbolSpace::kInterface) {
      result.findings.push_back(Finding{
          kRuleDeadDef, Severity::kNote, symbol.first_def, Anchor{},
          std::string(SymbolSpaceName(space)) + " '" + key.second +
              "' is defined but never referenced in the corpus"});
    }
  }

  FinishResult(result, options);
  return result;
}

AuditResult ComparePair(const std::vector<config::ConfigFile>& pre,
                        const std::vector<config::ConfigFile>& post,
                        const AuditOptions& options) {
  const std::vector<FileScan> pre_scans = ScanFiles(pre, options, false);
  const std::vector<FileScan> post_scans = ScanFiles(post, options, false);
  AuditResult result;
  result.files_scanned = pre.size() + post.size();
  for (const FileScan& scan : pre_scans) MergeStats(scan.canonical, result);
  for (const FileScan& scan : post_scans) {
    result.lines_scanned += scan.canonical.source_line_count;
  }

  // --- pairing by shape hash ---
  std::map<std::string, std::vector<std::size_t>> pre_by_hash;
  std::map<std::string, std::vector<std::size_t>> post_by_hash;
  for (std::size_t i = 0; i < pre_scans.size(); ++i) {
    pre_by_hash[pre_scans[i].canonical.shape_hash].push_back(i);
  }
  for (std::size_t i = 0; i < post_scans.size(); ++i) {
    post_by_hash[post_scans[i].canonical.shape_hash].push_back(i);
  }

  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  std::vector<bool> pre_used(pre.size(), false);
  std::vector<bool> post_used(post.size(), false);
  PairState state;

  // Phase 1: unambiguous groups (exactly one file per side) pair
  // directly and seed the rename bimaps.
  for (const auto& [hash, pre_group] : pre_by_hash) {
    const auto it = post_by_hash.find(hash);
    if (it == post_by_hash.end()) continue;
    if (pre_group.size() != 1 || it->second.size() != 1) continue;
    pre_used[pre_group[0]] = true;
    post_used[it->second[0]] = true;
    pairs.emplace_back(pre_group[0], it->second[0]);
  }
  std::sort(pairs.begin(), pairs.end());
  for (const auto& [p, q] : pairs) {
    CommitPair(state, pre_scans[p].canonical, post_scans[q].canonical,
               result.findings);
  }

  // Phase 2: ambiguous groups (several structurally identical files on a
  // side). Any in-group assignment is shape-consistent; pick the one that
  // agrees most with the bimaps already established.
  for (const auto& [hash, pre_group] : pre_by_hash) {
    const auto it = post_by_hash.find(hash);
    if (it == post_by_hash.end()) continue;
    const std::vector<std::size_t>& post_group = it->second;
    if (pre_group.size() == 1 && post_group.size() == 1) continue;
    struct Candidate {
      std::size_t conflict;
      std::size_t agree;
      std::size_t p;
      std::size_t q;
    };
    std::vector<Candidate> candidates;
    for (const std::size_t p : pre_group) {
      for (const std::size_t q : post_group) {
        std::size_t agree = 0;
        std::size_t conflict = 0;
        ScorePair(state, pre_scans[p].canonical, post_scans[q].canonical,
                  agree, conflict);
        candidates.push_back(Candidate{conflict, agree, p, q});
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                if (a.conflict != b.conflict) return a.conflict < b.conflict;
                if (a.agree != b.agree) return a.agree > b.agree;
                if (a.p != b.p) return a.p < b.p;
                return a.q < b.q;
              });
    std::vector<std::pair<std::size_t, std::size_t>> group_pairs;
    for (const Candidate& candidate : candidates) {
      if (pre_used[candidate.p] || post_used[candidate.q]) continue;
      pre_used[candidate.p] = true;
      post_used[candidate.q] = true;
      group_pairs.emplace_back(candidate.p, candidate.q);
    }
    std::sort(group_pairs.begin(), group_pairs.end());
    for (const auto& [p, q] : group_pairs) {
      CommitPair(state, pre_scans[p].canonical, post_scans[q].canonical,
                 result.findings);
      pairs.emplace_back(p, q);
    }
  }

  // Phase 3: leftovers have no shape-identical counterpart. Pair the
  // closest shapes (latest first divergence) to produce an actionable
  // AUD-P002 diff; whatever still remains is AUD-P001.
  std::vector<std::size_t> pre_left;
  std::vector<std::size_t> post_left;
  for (std::size_t i = 0; i < pre.size(); ++i) {
    if (!pre_used[i]) pre_left.push_back(i);
  }
  for (std::size_t i = 0; i < post.size(); ++i) {
    if (!post_used[i]) post_left.push_back(i);
  }
  std::map<std::size_t, std::vector<std::string>> pre_shapes;
  std::map<std::size_t, std::vector<std::string>> post_shapes;
  const auto shape_of = [](const FileScan& scan,
                           std::map<std::size_t, std::vector<std::string>>& cache,
                           std::size_t index) -> const std::vector<std::string>& {
    const auto [it, inserted] = cache.try_emplace(index);
    if (inserted) it->second = RenderShape(scan.canonical);
    return it->second;
  };
  struct LeftCandidate {
    std::size_t divergence;
    std::size_t p;
    std::size_t q;
  };
  std::vector<LeftCandidate> left_candidates;
  for (const std::size_t p : pre_left) {
    for (const std::size_t q : post_left) {
      left_candidates.push_back(LeftCandidate{
          FirstShapeDivergence(shape_of(pre_scans[p], pre_shapes, p),
                               shape_of(post_scans[q], post_shapes, q)),
          p, q});
    }
  }
  std::sort(left_candidates.begin(), left_candidates.end(),
            [](const LeftCandidate& a, const LeftCandidate& b) {
              if (a.divergence != b.divergence) return a.divergence > b.divergence;
              if (a.p != b.p) return a.p < b.p;
              return a.q < b.q;
            });
  for (const LeftCandidate& candidate : left_candidates) {
    if (pre_used[candidate.p] || post_used[candidate.q]) continue;
    pre_used[candidate.p] = true;
    post_used[candidate.q] = true;
    const CanonicalFile& a = pre_scans[candidate.p].canonical;
    const CanonicalFile& b = post_scans[candidate.q].canonical;
    if (candidate.divergence == kNpos) {
      // Identical shapes after all (possible only across hash groups of
      // equal shape, i.e. never) — treat as a full pair.
      CommitPair(state, a, b, result.findings);
      pairs.emplace_back(candidate.p, candidate.q);
      continue;
    }
    const std::vector<std::string>& a_shape = pre_shapes[candidate.p];
    const std::vector<std::string>& b_shape = post_shapes[candidate.q];
    const std::size_t d = candidate.divergence;
    Anchor pre_anchor{a.name, d < a.lines.size() ? a.lines[d].source_line
                                                 : Anchor::kNoLine};
    Anchor post_anchor{b.name, d < b.lines.size() ? b.lines[d].source_line
                                                  : Anchor::kNoLine};
    const std::string pre_text =
        d < a_shape.size() ? "'" + Clip(a_shape[d]) + "'" : "end of file";
    const std::string post_text =
        d < b_shape.size() ? "'" + Clip(b_shape[d]) + "'" : "end of file";
    result.findings.push_back(Finding{
        kRuleShapeDivergence, Severity::kError, pre_anchor, post_anchor,
        "canonical shapes diverge at shape line " + std::to_string(d + 1) +
            ": " + pre_text + " vs " + post_text});
    result.stats["pairs.shape_divergent"]++;
  }
  for (std::size_t i = 0; i < pre.size(); ++i) {
    if (pre_used[i]) continue;
    result.findings.push_back(Finding{
        kRuleUnpairedFile, Severity::kError,
        Anchor{pre_scans[i].canonical.name, Anchor::kNoLine}, Anchor{},
        "pre-corpus file has no structural counterpart in the post corpus"});
  }
  for (std::size_t i = 0; i < post.size(); ++i) {
    if (post_used[i]) continue;
    result.findings.push_back(Finding{
        kRuleUnpairedFile, Severity::kError,
        Anchor{post_scans[i].canonical.name, Anchor::kNoLine}, Anchor{},
        "post-corpus file has no structural counterpart in the pre corpus"});
  }
  result.stats["pairs.matched"] += pairs.size();

  // --- reference graphs, per matched pair ---
  for (const auto& [p, q] : pairs) {
    CompareRefGraphs(pre_scans[p].canonical, pre_scans[p].refs,
                     post_scans[q].canonical, post_scans[q].refs,
                     result.findings);
  }

  // --- corpus-wide prefix lattice over the matched pairs ---
  std::vector<CorpusPrefixEvent> pre_events;
  std::vector<CorpusPrefixEvent> post_events;
  std::sort(pairs.begin(), pairs.end());
  for (const auto& [p, q] : pairs) {
    for (const PrefixEvent& event : pre_scans[p].canonical.prefixes) {
      pre_events.push_back(CorpusPrefixEvent{
          event.prefix, Anchor{pre_scans[p].canonical.name, event.source_line}});
    }
    for (const PrefixEvent& event : post_scans[q].canonical.prefixes) {
      post_events.push_back(CorpusPrefixEvent{
          event.prefix,
          Anchor{post_scans[q].canonical.name, event.source_line}});
    }
  }
  CompareLattices(pre_events, post_events, result.findings);

  FinishResult(result, options);
  return result;
}

}  // namespace confanon::audit
