#include "audit/sarif.h"

#include "obs/json.h"

namespace confanon::audit {

namespace {

const char* SarifLevel(Severity severity) {
  switch (severity) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kNote:
      return "note";
  }
  return "note";
}

void WriteLocation(obs::JsonWriter& json, const Anchor& anchor) {
  json.BeginObject();
  json.Key("physicalLocation").BeginObject();
  json.Key("artifactLocation")
      .BeginObject()
      .Key("uri")
      .Value(anchor.file)
      .EndObject();
  if (anchor.line != Anchor::kNoLine) {
    json.Key("region")
        .BeginObject()
        .Key("startLine")
        .Value(static_cast<std::uint64_t>(anchor.line + 1))
        .EndObject();
  }
  json.EndObject();
  json.EndObject();
}

}  // namespace

const std::vector<RuleInfo>& RuleCatalog() {
  static const std::vector<RuleInfo> rules = {
      {"AUD-R001", "Free-text payload survived anonymization"},
      {"AUD-R002", "Dotted-quad address embedded in a surviving token"},
      {"AUD-R003", "ASN-like digit run fused into a surviving name"},
      {"AUD-R004", "Hostname is not an anonymized hash token"},
      {"AUD-R005",
       "Token is neither pass-listed nor an anonymized hash (pass-list "
       "fallthrough)"},
      {"AUD-R006", "Reference to a symbol never defined in the corpus"},
      {"AUD-R007", "Symbol defined but never referenced in the corpus"},
      {"AUD-P001", "File has no structural counterpart in the other corpus"},
      {"AUD-P002", "Canonical shapes of paired files diverge"},
      {"AUD-P003", "Renaming is inconsistent across the corpus pair"},
      {"AUD-P004", "Def/use reference graphs of paired files diverge"},
      {"AUD-P005", "Original identifier survived into the anonymized corpus"},
      {"AUD-P006", "Prefix-containment lattice diverges between corpora"},
      {"VER-001", "Pass-list entry inside a sensitive recognizer language"},
      {"VER-002", "Pass-list entry unreachable under tokenizer boundary "
                  "rules"},
      {"VER-003", "Pass-list entry shadowed by an earlier load"},
      {"VER-004", "Token passed in one dialect but hashed in the other"},
      {"VER-005", "Symbol space uncovered: word transform disabled"},
      {"VER-006", "Value class uncovered: transform rule disabled"},
      {"VER-007", "Unknown rule name in disabled_rules"},
  };
  return rules;
}

std::string ToSarif(const AuditResult& result, std::string_view tool_version) {
  obs::JsonWriter json;
  json.BeginObject();
  json.Key("$schema").Value(
      "https://json.schemastore.org/sarif-2.1.0.json");
  json.Key("version").Value("2.1.0");
  json.Key("runs").BeginArray();
  json.BeginObject();

  json.Key("tool").BeginObject();
  json.Key("driver").BeginObject();
  json.Key("name").Value("confanon_audit");
  json.Key("version").Value(tool_version);
  json.Key("informationUri")
      .Value("https://github.com/confanon/confanon/blob/main/docs/AUDIT.md");
  json.Key("rules").BeginArray();
  for (const RuleInfo& rule : RuleCatalog()) {
    json.BeginObject();
    json.Key("id").Value(rule.id);
    json.Key("shortDescription")
        .BeginObject()
        .Key("text")
        .Value(rule.summary)
        .EndObject();
    json.EndObject();
  }
  json.EndArray();  // rules
  json.EndObject();  // driver
  json.EndObject();  // tool

  json.Key("results").BeginArray();
  for (const Finding& finding : result.findings) {
    json.BeginObject();
    json.Key("ruleId").Value(finding.rule_id);
    json.Key("level").Value(SarifLevel(finding.severity));
    json.Key("message")
        .BeginObject()
        .Key("text")
        .Value(finding.message)
        .EndObject();
    if (!finding.anchor.file.empty()) {
      json.Key("locations").BeginArray();
      WriteLocation(json, finding.anchor);
      json.EndArray();
    }
    if (!finding.related.file.empty()) {
      json.Key("relatedLocations").BeginArray();
      WriteLocation(json, finding.related);
      json.EndArray();
    }
    json.EndObject();
  }
  json.EndArray();  // results

  json.Key("properties").BeginObject();
  json.Key("filesScanned")
      .Value(static_cast<std::uint64_t>(result.files_scanned));
  json.Key("linesScanned")
      .Value(static_cast<std::uint64_t>(result.lines_scanned));
  json.EndObject();

  json.EndObject();  // run
  json.EndArray();   // runs
  json.EndObject();
  return json.Take();
}

}  // namespace confanon::audit
