// SARIF 2.1.0 rendering of audit results.
//
// SARIF (Static Analysis Results Interchange Format, OASIS standard,
// schema: https://json.schemastore.org/sarif-2.1.0.json) is the lingua
// franca of static-analysis tooling — emitting it lets CI systems and
// code hosts ingest audit findings natively. One run object carries the
// tool descriptor (with the full rule catalog), and one result per
// finding with its file:line location; pair-mode findings attach the
// post-corpus anchor as a related location.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "audit/finding.h"

namespace confanon::audit {

/// Static metadata for one audit rule, shared by the SARIF catalog and
/// docs/AUDIT.md.
struct RuleInfo {
  const char* id;
  const char* summary;
};

/// All rule ids the auditor can emit (lint AUD-R*, pair AUD-P*, plus
/// the static policy verifier's VER-* — src/verify shares this catalog
/// so one SARIF consumer covers both tools).
const std::vector<RuleInfo>& RuleCatalog();

/// Renders the result as a SARIF 2.1.0 log with a single run.
/// `tool_version` goes into the driver descriptor.
std::string ToSarif(const AuditResult& result,
                    std::string_view tool_version = "0.1.0");

}  // namespace confanon::audit
