// Map-free static audit driver.
//
// Two modes, both requiring nothing but config text (paper Section 5's
// third-party "colleague" scenario — no anonymizer instance, no maps, no
// salt):
//
//  - LintCorpus: residue lint over one corpus (rules AUD-R001..R007).
//    Run it over anonymizer OUTPUT; error-severity findings mean
//    identity-bearing residue survived.
//  - ComparePair: structural isomorphism check between an original
//    corpus and its anonymized counterpart (rules AUD-P001..P006). Files
//    are paired by canonical shape hash (output file names are hashed,
//    so name-based pairing is impossible by design); renamed tokens are
//    checked through corpus-wide per-class bimaps; the def/use reference
//    graphs and the prefix-containment lattice must match edge for edge.
//
// Per-file scanning fans out over the pipeline worker pool; corpus-level
// analysis (pairing, bimaps, symbol table, lattice) is sequential.
#pragma once

#include <vector>

#include "audit/finding.h"
#include "config/document.h"
#include "defense/manifest.h"
#include "obs/metrics.h"

namespace confanon::obs {
class PhaseProfiler;
}

namespace confanon::audit {

enum class DialectMode : std::uint8_t { kAuto, kIos, kJunos };

struct AuditOptions {
  /// Worker threads for per-file scanning; <= 0 means one per core.
  int threads = 0;
  DialectMode dialect = DialectMode::kAuto;
  /// Optional metrics sink (audit.files, audit.findings, audit.scan_ns).
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional phase profiler: the per-file parallel scan is bracketed as
  /// the "audit" phase (see obs/profiler.h).
  obs::PhaseProfiler* profiler = nullptr;
};

/// Residue lint over a single corpus.
AuditResult LintCorpus(const std::vector<config::ConfigFile>& files,
                       const AuditOptions& options = {});

/// Pre/post isomorphism check. `post` file names should have tool
/// suffixes (".cfg") already stripped by the caller.
AuditResult ComparePair(const std::vector<config::ConfigFile>& pre,
                        const std::vector<config::ConfigFile>& post,
                        const AuditOptions& options = {});

/// Decoy-aware pair check for corpora run through the fingerprint
/// defense (src/defense): validates `manifest` against `post`
/// (AUD-D002 on a missing file, an out-of-bounds or overlapping
/// region), proves no decoy prefix shadows — contains or is contained
/// by — any real subnet of the stripped corpus (AUD-D001), then strips
/// the flagged decoy regions and runs the ordinary ComparePair, so the
/// ORIGINAL structure must still be isomorphic to `pre`.
AuditResult ComparePairDefended(const std::vector<config::ConfigFile>& pre,
                                const std::vector<config::ConfigFile>& post,
                                const defense::DecoyManifest& manifest,
                                const AuditOptions& options = {});

/// Rule ids for pair mode.
inline constexpr const char* kRuleUnpairedFile = "AUD-P001";
inline constexpr const char* kRuleShapeDivergence = "AUD-P002";
inline constexpr const char* kRuleRenameConflict = "AUD-P003";
inline constexpr const char* kRuleRefGraphDivergence = "AUD-P004";
inline constexpr const char* kRuleIdentitySurvived = "AUD-P005";
inline constexpr const char* kRuleLatticeDivergence = "AUD-P006";

/// Rule ids for decoy-aware pair mode.
inline constexpr const char* kRuleDecoyShadowsReal = "AUD-D001";
inline constexpr const char* kRuleDecoyManifestMismatch = "AUD-D002";

}  // namespace confanon::audit
