#include "audit/refgraph.h"

#include <string_view>

#include "junos/tokenizer.h"
#include "util/strings.h"

namespace confanon::audit {

namespace {

using util::ToLower;

/// Keywords that can appear among `match community` / `set community`
/// operands without being list names.
bool IsCommunityOperandKeyword(std::string_view lower) {
  return lower == "additive" || lower == "none" || lower == "internet" ||
         lower == "no-export" || lower == "no-advertise" ||
         lower == "local-as" || lower == "exact" || lower == "exact-match";
}

class IosRefExtractor {
 public:
  explicit IosRefExtractor(std::vector<RefEvent>& out) : out_(out) {}

  void Line(std::string_view raw, std::uint32_t line_no) {
    const std::vector<std::string_view> words = util::SplitWords(raw);
    if (words.empty() || words[0].front() == '!') return;
    std::vector<std::string> lower;
    lower.reserve(words.size());
    for (const std::string_view word : words) lower.push_back(ToLower(word));
    const auto emit = [&](SymbolSpace space, bool is_def,
                          std::string_view name) {
      out_.push_back(RefEvent{space, is_def, std::string(name), line_no});
    };

    // --- definitions ---
    if (lower[0] == "interface" && words.size() >= 2) {
      emit(SymbolSpace::kInterface, true, words[1]);
      return;
    }
    if (lower[0] == "route-map" && words.size() >= 2) {
      emit(SymbolSpace::kRouteMap, true, words[1]);
      return;
    }
    if (lower[0] == "access-list" && words.size() >= 2) {
      emit(SymbolSpace::kAcl, true, words[1]);
      return;
    }
    if (lower[0] == "key" && words.size() >= 3 && lower[1] == "chain") {
      emit(SymbolSpace::kKeyChain, true, words[2]);
      return;
    }
    if (lower[0] == "ip" && words.size() >= 3) {
      if (lower[1] == "access-list" && words.size() >= 4 &&
          (lower[2] == "standard" || lower[2] == "extended")) {
        emit(SymbolSpace::kAcl, true, words[3]);
        return;
      }
      if (lower[1] == "prefix-list") {
        emit(SymbolSpace::kPrefixList, true, words[2]);
        return;
      }
      if (lower[1] == "community-list") {
        const std::size_t name_at =
            (lower[2] == "standard" || lower[2] == "expanded") ? 3 : 2;
        if (name_at < words.size()) {
          emit(SymbolSpace::kCommunityList, true, words[name_at]);
        }
        return;
      }
      if (lower[1] == "as-path" && words.size() >= 4 &&
          lower[2] == "access-list") {
        emit(SymbolSpace::kAsPathList, true, words[3]);
        return;
      }
      if (lower[1] == "nat" && words.size() >= 4 && lower[2] == "pool") {
        emit(SymbolSpace::kNatPool, true, words[3]);
        return;
      }
      if (lower[1] == "nat" && lower[2] == "inside") {
        // `ip nat inside source list <acl> pool <name> ...`
        for (std::size_t i = 3; i + 1 < words.size(); ++i) {
          if (lower[i] == "list") emit(SymbolSpace::kAcl, false, words[i + 1]);
          if (lower[i] == "pool") {
            emit(SymbolSpace::kNatPool, false, words[i + 1]);
          }
        }
        return;
      }
    }

    // --- uses ---
    if (lower[0] == "neighbor" && words.size() >= 3) {
      if (words.size() == 3 && lower[2] == "peer-group") {
        emit(SymbolSpace::kPeerGroup, true, words[1]);
        return;
      }
      if (words.size() >= 4) {
        if (lower[2] == "route-map") {
          emit(SymbolSpace::kRouteMap, false, words[3]);
        } else if (lower[2] == "prefix-list") {
          emit(SymbolSpace::kPrefixList, false, words[3]);
        } else if (lower[2] == "filter-list") {
          emit(SymbolSpace::kAsPathList, false, words[3]);
        } else if (lower[2] == "distribute-list") {
          emit(SymbolSpace::kAcl, false, words[3]);
        } else if (lower[2] == "peer-group") {
          emit(SymbolSpace::kPeerGroup, false, words[3]);
        } else if (lower[2] == "update-source") {
          emit(SymbolSpace::kInterface, false, words[3]);
        }
      }
      return;
    }
    if (lower[0] == "match" && words.size() >= 3) {
      if (lower[1] == "as-path") {
        for (std::size_t i = 2; i < words.size(); ++i) {
          emit(SymbolSpace::kAsPathList, false, words[i]);
        }
      } else if (lower[1] == "community") {
        for (std::size_t i = 2; i < words.size(); ++i) {
          if (!IsCommunityOperandKeyword(lower[i])) {
            emit(SymbolSpace::kCommunityList, false, words[i]);
          }
        }
      } else if (lower[1] == "ip" && words.size() >= 4 &&
                 lower[2] == "address") {
        if (lower[3] == "prefix-list") {
          for (std::size_t i = 4; i < words.size(); ++i) {
            emit(SymbolSpace::kPrefixList, false, words[i]);
          }
        } else {
          for (std::size_t i = 3; i < words.size(); ++i) {
            emit(SymbolSpace::kAcl, false, words[i]);
          }
        }
      }
      return;
    }
    if (lower[0] == "distribute-list" && words.size() >= 2) {
      emit(SymbolSpace::kAcl, false, words[1]);
      return;
    }
    if (lower[0] == "access-class" && words.size() >= 2) {
      emit(SymbolSpace::kAcl, false, words[1]);
      return;
    }
    if (lower[0] == "passive-interface" && words.size() >= 2) {
      emit(SymbolSpace::kInterface, false, words[1]);
      return;
    }
    // `ip authentication key-chain eigrp <as> <chain>` and friends.
    for (std::size_t i = 0; i + 1 < words.size(); ++i) {
      if (lower[i] == "key-chain" && i > 0) {
        emit(SymbolSpace::kKeyChain, false, words.back());
        return;
      }
    }
  }

 private:
  std::vector<RefEvent>& out_;
};

/// JunOS extraction walks the brace structure: statements end at ';' (a
/// leaf) or '{' (a block whose head keyword is pushed on the path stack).
class JunosRefExtractor {
 public:
  explicit JunosRefExtractor(std::vector<RefEvent>& out) : out_(out) {}

  void Line(std::string_view raw, std::uint32_t line_no) {
    // Block comments span lines; no statement may start inside one.
    const bool opens =
        !in_block_comment_ && util::StartsWith(util::Trim(raw), "/*");
    if (opens || in_block_comment_) {
      in_block_comment_ = raw.find("*/") == std::string_view::npos;
      return;
    }
    junos::TokenizeJunosLineInto(raw, line_buf_);
    for (const junos::Token& token : line_buf_.tokens) {
      switch (token.kind) {
        case junos::Token::Kind::kWord:
        case junos::Token::Kind::kString:
          statement_.emplace_back(token.text);
          break;
        case junos::Token::Kind::kPunct:
          if (token.text == "{") {
            OpenBlock(line_no);
          } else if (token.text == "}") {
            if (!path_.empty()) path_.pop_back();
            statement_.clear();
          } else if (token.text == ";") {
            CloseStatement(line_no);
          }
          // "[" / "]" group list values inside one statement: ignored.
          break;
        case junos::Token::Kind::kComment:
          break;
      }
    }
  }

 private:
  void Emit(SymbolSpace space, bool is_def, std::string_view name,
            std::uint32_t line_no) {
    out_.push_back(RefEvent{space, is_def, std::string(name), line_no});
  }

  void OpenBlock(std::uint32_t line_no) {
    if (!statement_.empty()) {
      const std::string head = ToLower(statement_[0]);
      if (head == "policy-statement" && statement_.size() >= 2) {
        Emit(SymbolSpace::kRouteMap, true, statement_[1], line_no);
      } else if (head == "prefix-list" && statement_.size() >= 2) {
        Emit(SymbolSpace::kPrefixList, true, statement_[1], line_no);
      } else if (head == "group" && statement_.size() >= 2) {
        Emit(SymbolSpace::kPeerGroup, true, statement_[1], line_no);
      } else if (statement_.size() == 1 && !path_.empty() &&
                 path_.back() == "interfaces") {
        Emit(SymbolSpace::kInterface, true, statement_[0], line_no);
      }
      path_.push_back(ToLower(statement_[0]));
    } else {
      path_.emplace_back();
    }
    statement_.clear();
  }

  void CloseStatement(std::uint32_t line_no) {
    if (statement_.empty()) return;
    const std::string head = ToLower(statement_[0]);
    const auto& s = statement_;
    if (head == "import" || head == "export") {
      for (std::size_t i = 1; i < s.size(); ++i) {
        if (s[i] == "[" || s[i] == "]") continue;
        Emit(SymbolSpace::kRouteMap, false, s[i], line_no);
      }
    } else if (head == "prefix-list" && s.size() >= 2) {
      Emit(SymbolSpace::kPrefixList, false, s[1], line_no);
    } else if (head == "as-path") {
      if (s.size() >= 3) {
        // `as-path NAME "regex";` is a definition; `as-path NAME;` a use.
        Emit(SymbolSpace::kAsPathList, true, s[1], line_no);
      } else if (s.size() == 2) {
        Emit(SymbolSpace::kAsPathList, false, s[1], line_no);
      }
    } else if (head == "community" && s.size() >= 2) {
      bool has_members = false;
      for (std::size_t i = 2; i < s.size(); ++i) {
        if (ToLower(s[i]) == "members") has_members = true;
      }
      Emit(SymbolSpace::kCommunityList, has_members, s[1], line_no);
    } else if (head == "interface" && s.size() >= 2) {
      Emit(SymbolSpace::kInterface, false, s[1], line_no);
    }
    statement_.clear();
  }

  std::vector<RefEvent>& out_;
  junos::JunosLine line_buf_;
  std::vector<std::string> statement_;
  std::vector<std::string> path_;
  bool in_block_comment_ = false;
};

}  // namespace

const char* SymbolSpaceName(SymbolSpace space) {
  switch (space) {
    case SymbolSpace::kAcl:
      return "access-list";
    case SymbolSpace::kRouteMap:
      return "route-map";
    case SymbolSpace::kPrefixList:
      return "prefix-list";
    case SymbolSpace::kCommunityList:
      return "community-list";
    case SymbolSpace::kAsPathList:
      return "as-path-list";
    case SymbolSpace::kPeerGroup:
      return "peer-group";
    case SymbolSpace::kInterface:
      return "interface";
    case SymbolSpace::kKeyChain:
      return "key-chain";
    case SymbolSpace::kNatPool:
      return "nat-pool";
  }
  return "symbol";
}

std::vector<RefEvent> ExtractRefs(const config::ConfigFile& file,
                                  Dialect dialect) {
  std::vector<RefEvent> out;
  if (dialect == Dialect::kJunos) {
    JunosRefExtractor extractor(out);
    for (std::size_t i = 0; i < file.lines().size(); ++i) {
      extractor.Line(file.lines()[i], static_cast<std::uint32_t>(i));
    }
  } else {
    // Banner bodies are free prose and are dropped by the anonymizer;
    // skipping them keeps pre and post event sequences comparable.
    std::vector<bool> in_banner(file.lines().size(), false);
    for (const config::LineRegion& region : config::FindBannerRegions(file)) {
      for (std::size_t i = region.begin; i < region.end; ++i) {
        in_banner[i] = true;
      }
    }
    IosRefExtractor extractor(out);
    for (std::size_t i = 0; i < file.lines().size(); ++i) {
      if (in_banner[i]) continue;
      extractor.Line(file.lines()[i], static_cast<std::uint32_t>(i));
    }
  }
  return out;
}

}  // namespace confanon::audit
