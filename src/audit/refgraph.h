// Def/use reference resolution over config text.
//
// Router configs are symbol-rich: route-maps, ACLs, prefix-lists,
// community-lists, as-path lists, peer-groups, interfaces, key chains and
// NAT pools are defined in one place and referenced from others. The
// resolver extracts those definition and use sites from raw text (no
// anonymizer state), which serves two audits:
//
//  - single corpus: dangling uses (reference to a symbol never defined)
//    and dead definitions (symbol never referenced) — structural smells
//    that anonymization bugs commonly introduce by renaming a definition
//    and a use site inconsistently;
//  - pair mode: the def/use event sequence of a pre file and its post
//    counterpart must be isomorphic up to renaming; the first divergent
//    edge is reported with both file:line anchors.
//
// JunOS and IOS symbol spaces are unified (policy-statement == route-map,
// community == community-list) so the resolver reports one vocabulary.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "audit/canonical.h"
#include "config/document.h"

namespace confanon::audit {

enum class SymbolSpace : std::uint8_t {
  kAcl,
  kRouteMap,       // IOS route-map / JunOS policy-statement
  kPrefixList,
  kCommunityList,  // IOS ip community-list / JunOS community
  kAsPathList,     // IOS ip as-path access-list / JunOS as-path
  kPeerGroup,      // IOS peer-group / JunOS bgp group
  kInterface,
  kKeyChain,
  kNatPool,
};

const char* SymbolSpaceName(SymbolSpace space);

/// One definition or use site, in file order.
struct RefEvent {
  SymbolSpace space;
  bool is_def = false;
  std::string name;
  std::uint32_t line = 0;  // zero-based source line
};

/// Extracts the def/use event sequence of one file.
std::vector<RefEvent> ExtractRefs(const config::ConfigFile& file,
                                  Dialect dialect);

}  // namespace confanon::audit
