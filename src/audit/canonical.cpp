#include "audit/canonical.h"

#include <optional>
#include <utility>

#include "asn/asn_map.h"
#include "asn/community.h"
#include "config/tokenizer.h"
#include "junos/anonymizer.h"
#include "junos/tokenizer.h"
#include "net/ipv4.h"
#include "net/special.h"
#include "passlist/passlist.h"
#include "util/sha1.h"
#include "util/strings.h"

namespace confanon::audit {

namespace {

constexpr std::size_t kNone = ~std::size_t{0};

const passlist::PassList& IosPassList() {
  static const passlist::PassList list = passlist::PassList::Builtin();
  return list;
}

const passlist::PassList& JunosAuditPassList() {
  static const passlist::PassList list = junos::JunosPassList();
  return list;
}

bool IsQuoted(std::string_view text) {
  return text.size() >= 2 && text.front() == '"' && text.back() == '"';
}

std::string_view Unquote(std::string_view text) {
  return IsQuoted(text) ? text.substr(1, text.size() - 2) : text;
}

/// Mirrors the generic pass-list decision (rules T1/T2 and the JunOS
/// generic pass): the word survives iff every alphabetic segment is
/// pass-listed.
bool AllSegmentsPassed(std::string_view word, const passlist::PassList& list) {
  for (const config::Segment& segment : config::SegmentWord(word)) {
    if (segment.alpha && !list.Contains(segment.text)) return false;
  }
  return true;
}

/// Decimal-normalizes an ASN token the way MapAsnWord/MapAsnText render
/// their result (std::to_string strips leading zeros even for identity
/// mappings). Returns nullopt when the token does not parse as a 16-bit
/// ASN — the anonymizer leaves such tokens verbatim.
std::optional<std::string> NormalizeAsn(std::string_view word) {
  std::uint64_t asn = 0;
  if (!util::ParseUint(word, asn::kMaxAsn, asn)) return std::nullopt;
  return std::to_string(asn);
}

CanonToken Verbatim(std::string_view text) {
  return CanonToken{TokenClass::kVerbatim, std::string(text), "", false};
}

/// Shared token-class outcome of the address + generic passes, identical
/// in both dialects (the IOS fused token pass and the JunOS IP + generic
/// passes make the same per-token decision; only the pass-list differs).
CanonToken ClassifyValueToken(std::string_view word,
                              const passlist::PassList& pass_list,
                              bool try_address, std::uint32_t source_line,
                              std::vector<PrefixEvent>& prefixes,
                              bool* plain_address = nullptr) {
  if (try_address) {
    const std::size_t slash = word.find('/');
    if (slash != std::string_view::npos) {
      const auto address = net::Ipv4Address::Parse(word.substr(0, slash));
      std::uint64_t length = 0;
      if (address && util::ParseUint(word.substr(slash + 1), 32, length)) {
        if (net::IsSpecial(*address)) return Verbatim(word);
        prefixes.push_back(PrefixEvent{
            net::Prefix(*address, static_cast<int>(length)), source_line});
        return CanonToken{TokenClass::kAddr, address->ToString(),
                          "/" + std::to_string(length), false};
      }
    }
    if (const auto address = net::Ipv4Address::Parse(word)) {
      if (net::IsSpecial(*address)) return Verbatim(word);
      prefixes.push_back(PrefixEvent{net::Prefix(*address, 32), source_line});
      if (plain_address != nullptr) *plain_address = true;
      return CanonToken{TokenClass::kAddr, address->ToString(), "", false};
    }
  }
  if (word.empty() || config::IsNonAlphabetic(word)) return Verbatim(word);
  // Hash-alphabet override: anonymized identifiers ("h" + 10 hex chars)
  // can have every alphabetic segment pass-listed by accident, which
  // would classify them verbatim while the original was a renamed word.
  // Forcing the hash shape into the word class keeps pre/post symmetric.
  if (IsHashToken(word)) {
    return CanonToken{TokenClass::kWord, std::string(word), "", false};
  }
  if (AllSegmentsPassed(word, pass_list)) return Verbatim(word);
  return CanonToken{TokenClass::kWord, std::string(word), "", false};
}

// ---------------------------------------------------------------------------
// IOS mirror
// ---------------------------------------------------------------------------

/// Working state for one IOS line, mirroring Anonymizer::LineCtx: the
/// word list (possibly truncated by the free-text rules), the lowercase
/// view the context rules match on, and the per-word classification
/// standing in for the rewrite. A regexp rewrite collapses the tail into
/// one opaque token (`collapse_from`), exactly like ReplaceTailWith.
struct IosLineCtx {
  std::vector<std::string_view> words;
  std::vector<std::string> lower;
  std::vector<std::optional<CanonToken>> cls;
  std::size_t collapse_from = kNone;
  CanonToken collapse_token;

  std::size_t Limit() const {
    return collapse_from == kNone ? words.size() : collapse_from;
  }
  void Truncate(std::size_t from) {
    words.resize(from);
    lower.resize(from);
    cls.resize(from);
  }
  void Collapse(std::size_t from, CanonToken token) {
    collapse_from = from;
    collapse_token = std::move(token);
  }
  void Claim(std::size_t i, CanonToken token) { cls[i] = std::move(token); }
  bool Claimed(std::size_t i) const { return cls[i].has_value(); }
};

/// Rule C2: free-text payload removal.
void IosFreeText(IosLineCtx& ctx) {
  if (ctx.words.empty()) return;
  std::size_t payload_from = kNone;
  if (ctx.lower[0] == "description" || ctx.lower[0] == "title") {
    payload_from = 1;
  } else {
    for (std::size_t i = 0; i + 1 < ctx.lower.size(); ++i) {
      if (ctx.lower[i] == "remark" || ctx.lower[i] == "description") {
        payload_from = i + 1;
        break;
      }
    }
  }
  if (payload_from != kNone && payload_from < ctx.words.size()) {
    ctx.Truncate(payload_from);
  }
}

/// Claims word `i` as an ASN if it decimal-parses (MapAsnWord renders a
/// normalized decimal); otherwise the anonymizer leaves the text in place
/// but still marks it handled.
void ClaimAsnWord(IosLineCtx& ctx, std::size_t i) {
  if (const auto normalized = NormalizeAsn(ctx.words[i])) {
    ctx.Claim(i, CanonToken{TokenClass::kAsn, *normalized, "", false});
  } else {
    ctx.Claim(i, Verbatim(ctx.words[i]));
  }
}

/// Claims word `i` as a community literal (normalized rendering) — caller
/// has already checked ParseCommunity succeeds.
void ClaimCommunity(IosLineCtx& ctx, std::size_t i,
                    const asn::Community& literal) {
  ctx.Claim(i, CanonToken{TokenClass::kComm, literal.ToString(), "", false});
}

/// Rules A1-A11, with the anonymizer's exact dispatch and early returns.
void IosAsnLineRules(IosLineCtx& ctx) {
  auto& words = ctx.words;
  if (words.empty()) return;
  const auto& lower = ctx.lower;

  if (words.size() >= 3 && lower[0] == "router" && lower[1] == "bgp" &&
      util::IsAllDigits(words[2])) {
    ClaimAsnWord(ctx, 2);
    return;
  }

  if (words.size() >= 4 && lower[0] == "neighbor") {
    if ((lower[2] == "remote-as" || lower[2] == "local-as") &&
        util::IsAllDigits(words[3])) {
      ClaimAsnWord(ctx, 3);
    }
    return;
  }

  if (words.size() >= 4 && lower[0] == "bgp" && lower[1] == "confederation") {
    if (lower[2] == "identifier" && util::IsAllDigits(words[3])) {
      ClaimAsnWord(ctx, 3);
    } else if (lower[2] == "peers") {
      for (std::size_t i = 3; i < words.size(); ++i) {
        if (util::IsAllDigits(words[i])) ClaimAsnWord(ctx, i);
      }
    }
    return;
  }

  if (words.size() >= 5 && lower[0] == "ip" && lower[1] == "as-path" &&
      lower[2] == "access-list" &&
      (lower[4] == "permit" || lower[4] == "deny")) {
    // Rule A6: the tail is one regexp. Whether or not the rewrite changed
    // it, the whole tail corresponds to the whole post-side tail, so it
    // canonicalizes to a single opaque token either way.
    if (words.size() > 5) {
      ctx.Collapse(5, CanonToken{TokenClass::kRegex, "", "", false});
    }
    return;
  }

  if (words.size() >= 4 && lower[0] == "set" && lower[1] == "as-path" &&
      lower[2] == "prepend") {
    for (std::size_t i = 3; i < words.size(); ++i) {
      if (util::IsAllDigits(words[i])) ClaimAsnWord(ctx, i);
    }
    return;
  }

  if (words.size() >= 4 && lower[0] == "ip" && lower[1] == "community-list") {
    std::size_t action = 0;
    for (std::size_t i = 2; i < lower.size(); ++i) {
      if (lower[i] == "permit" || lower[i] == "deny") {
        action = i;
        break;
      }
    }
    if (action != 0 && action + 1 < words.size()) {
      for (std::size_t i = action + 1; i < words.size(); ++i) {
        const std::string_view low = ctx.lower[i];
        const bool keyword =
            low == "additive" || low == "none" || low == "internet" ||
            low == "no-export" || low == "no-advertise" || low == "local-as" ||
            low == "exact" || low == "exact-match";
        if (keyword) continue;
        if (const auto literal = asn::ParseCommunity(words[i])) {
          ClaimCommunity(ctx, i, *literal);
          continue;
        }
        // Expanded community-list: the remainder is one regexp.
        ctx.Collapse(i, CanonToken{TokenClass::kRegex, "", "", false});
        break;
      }
    }
    return;
  }

  if (words.size() >= 3 && lower[0] == "set" && lower[1] == "community") {
    for (std::size_t i = 2; i < words.size(); ++i) {
      const std::string_view low = ctx.lower[i];
      const bool keyword =
          low == "additive" || low == "none" || low == "internet" ||
          low == "no-export" || low == "no-advertise" || low == "local-as" ||
          low == "exact" || low == "exact-match";
      if (keyword) continue;
      if (const auto literal = asn::ParseCommunity(words[i])) {
        ClaimCommunity(ctx, i, *literal);
      } else if (util::IsAllDigits(words[i])) {
        // Old-style 32-bit numeric community (high 16 = ASN permutation,
        // low 16 = value permutation): whole-token injective, so it is a
        // community-class rename keyed by the normalized decimal.
        std::uint64_t value = 0;
        if (util::ParseUint(words[i], 0xFFFFFFFFull, value)) {
          ctx.Claim(i, CanonToken{TokenClass::kComm, std::to_string(value),
                                  "", false});
        }
      }
    }
    return;
  }

  if (words.size() >= 4 && lower[0] == "set" && lower[1] == "extcommunity") {
    for (std::size_t i = 3; i < words.size(); ++i) {
      if (const auto literal = asn::ParseCommunity(words[i])) {
        ClaimCommunity(ctx, i, *literal);
      }
    }
    return;
  }
}

/// Rules M1-M4, with the anonymizer's exact dispatch and early returns.
void IosMiscLineRules(IosLineCtx& ctx) {
  auto& words = ctx.words;
  if (words.empty()) return;
  const auto& lower = ctx.lower;
  const std::size_t limit = ctx.Limit();

  const auto force_hash = [&](std::size_t i) {
    if (i >= limit || ctx.Claimed(i)) return;
    ctx.Claim(i, CanonToken{TokenClass::kWord, std::string(words[i]), "",
                            false});
  };

  // Rule M1: dial strings become salted pseudo digits — a deterministic
  // but non-injective rename, so the token is opaque like a regexp.
  if (words.size() >= 3 && lower[0] == "dialer" &&
      (lower[1] == "string" || lower[1] == "called" || lower[1] == "caller")) {
    if (!ctx.Claimed(2)) {
      ctx.Claim(2, CanonToken{TokenClass::kRegex, "", "", false});
    }
    return;
  }

  if (lower[0] == "snmp-server" && words.size() >= 2) {
    if (lower[1] == "community" && words.size() >= 3) {
      force_hash(2);
      return;
    }
    if ((lower[1] == "contact" || lower[1] == "location" ||
         lower[1] == "chassis-id") &&
        words.size() >= 3) {
      ctx.Truncate(2);
      return;
    }
    if (lower[1] == "host" && words.size() >= 4) {
      force_hash(3);
      return;
    }
  }

  // Rule M3: secrets.
  if (lower[0] == "enable" && words.size() >= 2 &&
      (lower[1] == "secret" || lower[1] == "password")) {
    force_hash(words.size() - 1);
    return;
  }
  if (lower[0] == "username" && words.size() >= 2) {
    force_hash(1);
    for (std::size_t i = 2; i + 1 < words.size(); ++i) {
      if (lower[i] == "password" || lower[i] == "secret") {
        force_hash(words.size() - 1);
        break;
      }
    }
    return;
  }
  if (lower[0] == "neighbor" && words.size() >= 4 && lower[2] == "password") {
    force_hash(words.size() - 1);
    return;
  }
  if (lower[0] == "key-string" && words.size() >= 2) {
    force_hash(1);
    return;
  }
  if ((lower[0] == "tacacs-server" || lower[0] == "radius-server") &&
      words.size() >= 3 && lower[1] == "key") {
    force_hash(2);
    return;
  }
  if (lower[0] == "crypto" && words.size() >= 4 && lower[1] == "isakmp" &&
      lower[2] == "key") {
    force_hash(3);
    return;
  }
  for (std::size_t i = 0; i + 1 < words.size(); ++i) {
    if (lower[i] == "md5" || lower[i] == "authentication-key" ||
        lower[i] == "key-chain") {
      force_hash(i + 1);
      return;
    }
  }

  // Rule M4: name arguments.
  if (lower[0] == "hostname" && words.size() >= 2) {
    force_hash(1);
    return;
  }
  if (lower[0] == "ip" && words.size() >= 3 &&
      (lower[1] == "domain-name" ||
       (lower[1] == "domain" && words.size() >= 4 && lower[2] == "name"))) {
    force_hash(words.size() - 1);
    return;
  }
  if (lower[0] == "ip" && lower.size() >= 3 && lower[1] == "host") {
    force_hash(2);
    return;
  }
  if (lower[0] == "ntp" && words.size() >= 3 && lower[1] == "server" &&
      !net::Ipv4Address::Parse(words[2])) {
    force_hash(2);
    return;
  }
}

void CanonicalizeIos(const config::ConfigFile& file, CanonicalFile& out) {
  const passlist::PassList& pass_list = IosPassList();

  const std::vector<config::LineRegion> banners =
      config::FindBannerRegions(file);
  std::vector<bool> in_banner(file.lines().size(), false);
  std::vector<bool> banner_start(file.lines().size(), false);
  for (const config::LineRegion& region : banners) {
    for (std::size_t i = region.begin; i < region.end; ++i) in_banner[i] = true;
    banner_start[region.begin] = true;
  }

  config::LineTokens tokens;
  for (std::size_t index = 0; index < file.lines().size(); ++index) {
    const std::string_view raw = file.lines()[index];
    const auto line_no = static_cast<std::uint32_t>(index);

    if (in_banner[index]) {
      // Rule C3: banner bodies are dropped; a bare "!" marks the start.
      if (banner_start[index]) {
        out.lines.push_back(CanonLine{{Verbatim("!")}, line_no});
      }
      continue;
    }

    {
      // Rule C1: '!' full-line comments collapse to a bare "!".
      const std::vector<std::string_view> split = util::SplitWords(raw);
      if (!split.empty() && split[0].front() == '!' &&
          (split.size() > 1 || split[0].size() > 1)) {
        out.lines.push_back(CanonLine{{Verbatim("!")}, line_no});
        continue;
      }
    }

    config::TokenizeLineInto(raw, tokens);
    IosLineCtx ctx;
    ctx.words.assign(tokens.words.begin(), tokens.words.end());
    ctx.lower.reserve(ctx.words.size());
    for (const std::string_view word : ctx.words) {
      ctx.lower.push_back(util::ToLower(word));
    }
    ctx.cls.assign(ctx.words.size(), std::nullopt);

    IosFreeText(ctx);
    IosAsnLineRules(ctx);
    IosMiscLineRules(ctx);

    // Fused token pass (rules I1-I3 then T1/T2) over whatever the line
    // rules left unclaimed, plus the prefix-lattice events.
    CanonLine line;
    line.source_line = line_no;
    const std::size_t limit = ctx.Limit();
    std::vector<bool> plain_addr(limit, false);
    for (std::size_t i = 0; i < limit; ++i) {
      if (!ctx.Claimed(i)) {
        bool plain = false;
        ctx.Claim(i, ClassifyValueToken(ctx.words[i], pass_list, true, line_no,
                                        out.prefixes, &plain));
        plain_addr[i] = plain;
      }
    }
    // Address + contiguous-netmask adjacency contributes the masked
    // subnet to the lattice (the mask itself passes through verbatim, so
    // the pairing is the same on both sides).
    for (std::size_t i = 0; i + 1 < limit; ++i) {
      if (!plain_addr[i]) continue;
      const auto mask = net::Ipv4Address::Parse(ctx.words[i + 1]);
      if (!mask) continue;
      const auto length = net::NetmaskToPrefixLength(*mask);
      if (!length) continue;
      const auto address = net::Ipv4Address::Parse(ctx.words[i]);
      out.prefixes.push_back(
          PrefixEvent{net::Prefix(*address, *length), line_no});
    }
    for (std::size_t i = 0; i < limit; ++i) line.tokens.push_back(*ctx.cls[i]);
    if (ctx.collapse_from != kNone) {
      line.tokens.push_back(ctx.collapse_token);
    }
    out.lines.push_back(std::move(line));
  }

  out.name_renamed = !file.name().empty() && !pass_list.Contains(file.name());
}

// ---------------------------------------------------------------------------
// JunOS mirror
// ---------------------------------------------------------------------------

void CanonicalizeJunos(const config::ConfigFile& file, CanonicalFile& out) {
  const passlist::PassList& pass_list = JunosAuditPassList();

  bool in_block_comment = false;
  junos::JunosLine line_buf;
  for (std::size_t index = 0; index < file.lines().size(); ++index) {
    const std::string_view raw = file.lines()[index];
    const auto line_no = static_cast<std::uint32_t>(index);

    // '/* ... */' block comments collapse to a fixed marker per line.
    const bool opens =
        !in_block_comment && util::StartsWith(util::Trim(raw), "/*");
    if (opens || in_block_comment) {
      in_block_comment = raw.find("*/") == std::string::npos;
      out.lines.push_back(CanonLine{{Verbatim("/* */")}, line_no});
      continue;
    }

    TokenizeJunosLineInto(raw, line_buf);
    auto& tokens = line_buf.tokens;
    if (!tokens.empty() &&
        tokens.back().kind == junos::Token::Kind::kComment) {
      tokens.pop_back();
    }

    std::vector<std::optional<CanonToken>> cls(tokens.size());
    std::vector<std::size_t> word_at;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      if (tokens[i].kind == junos::Token::Kind::kWord ||
          tokens[i].kind == junos::Token::Kind::kString) {
        word_at.push_back(i);
      }
    }
    const auto word = [&](std::size_t w) -> std::string_view {
      return tokens[word_at[w]].text;
    };
    const auto is_string = [&](std::size_t w) {
      return tokens[word_at[w]].kind == junos::Token::Kind::kString;
    };

    // Context scan, mirroring JunosAnonymizer::ProcessLine.
    for (std::size_t w = 0; w < word_at.size(); ++w) {
      const std::string keyword = util::ToLower(word(w));
      const bool has_next = w + 1 < word_at.size();

      if ((keyword == "description" || keyword == "message") && has_next &&
          is_string(w + 1)) {
        // Free text is emptied in place: the post side is literally `""`.
        cls[word_at[w + 1]] = Verbatim("\"\"");
        continue;
      }

      if ((keyword == "host-name" || keyword == "domain-name") && has_next) {
        const std::string_view original = Unquote(word(w + 1));
        if (original.empty()) {
          cls[word_at[w + 1]] = Verbatim(word(w + 1));
        } else {
          cls[word_at[w + 1]] =
              CanonToken{TokenClass::kWord, std::string(original), "",
                         is_string(w + 1)};
        }
        continue;
      }

      if ((keyword == "peer-as" || keyword == "autonomous-system") &&
          has_next && util::IsAllDigits(word(w + 1))) {
        if (const auto normalized = NormalizeAsn(word(w + 1))) {
          cls[word_at[w + 1]] =
              CanonToken{TokenClass::kAsn, *normalized, "", false};
        } else {
          cls[word_at[w + 1]] = Verbatim(word(w + 1));
        }
        continue;
      }

      if (keyword == "as-path" && w + 2 < word_at.size() && is_string(w + 2)) {
        cls[word_at[w + 2]] = CanonToken{TokenClass::kRegex, "", "", true};
        continue;
      }

      if (keyword == "as-path-prepend" && has_next && is_string(w + 1)) {
        std::vector<std::string> members;
        for (const std::string_view member :
             util::SplitWords(Unquote(word(w + 1)))) {
          if (const auto normalized = NormalizeAsn(member)) {
            members.push_back(*normalized);
          } else {
            members.emplace_back(member);
          }
        }
        cls[word_at[w + 1]] = CanonToken{
            TokenClass::kAsnList, util::Join(members, " "), "", true};
        continue;
      }

      if (keyword == "members") {
        for (std::size_t v = w + 1; v < word_at.size(); ++v) {
          if (is_string(v)) {
            cls[word_at[v]] = CanonToken{TokenClass::kRegex, "", "", true};
          } else if (const auto literal = asn::ParseCommunity(word(v))) {
            cls[word_at[v]] =
                CanonToken{TokenClass::kComm, literal->ToString(), "", false};
          }
        }
        continue;
      }
    }

    // IP pass (bare word tokens only) fused with the generic pass-list
    // decision, as in ClassifyValueToken; string tokens never hold
    // addresses.
    CanonLine line;
    line.source_line = line_no;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      if (cls[i].has_value()) continue;
      const junos::Token& token = tokens[i];
      if (token.kind == junos::Token::Kind::kWord) {
        cls[i] = ClassifyValueToken(token.text, pass_list, true, line_no,
                                    out.prefixes);
      } else if (token.kind == junos::Token::Kind::kString) {
        const std::string_view value = Unquote(token.text);
        if (value.empty() || config::IsNonAlphabetic(value)) {
          cls[i] = Verbatim(token.text);
        } else if (IsHashToken(value) || !AllSegmentsPassed(value, pass_list)) {
          cls[i] = CanonToken{TokenClass::kWord, std::string(value), "", true};
        } else {
          cls[i] = Verbatim(token.text);
        }
      } else {
        cls[i] = Verbatim(token.text);  // punctuation: structure, verbatim
      }
    }
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      line.tokens.push_back(std::move(*cls[i]));
    }
    out.lines.push_back(std::move(line));
  }

  out.name_renamed = !file.name().empty() && !pass_list.Contains(file.name());
}

const char* CountKeyFor(TokenClass cls) {
  switch (cls) {
    case TokenClass::kVerbatim:
      return "tok.verbatim";
    case TokenClass::kWord:
      return "tok.word";
    case TokenClass::kAsn:
      return "tok.asn";
    case TokenClass::kComm:
      return "tok.community";
    case TokenClass::kAddr:
      return "tok.address";
    case TokenClass::kRegex:
      return "tok.regex";
    case TokenClass::kAsnList:
      return "tok.asn-list";
  }
  return "tok.other";
}

/// Keywords counted into the per-protocol fingerprint. All are
/// pass-listed in both dialects, so the counts are comparable pre/post.
constexpr std::string_view kProtocolKeywords[] = {
    "bgp",        "ospf",       "rip",        "eigrp",     "isis",
    "interface",  "interfaces", "access-list", "route-map", "prefix-list",
    "community-list", "as-path", "policy-statement", "neighbor", "snmp-server",
};

void FillCounts(CanonicalFile& file) {
  file.counts["lines"] = file.lines.size();
  for (const CanonLine& line : file.lines) {
    for (const CanonToken& token : line.tokens) {
      ++file.counts[CountKeyFor(token.cls)];
      if (token.cls == TokenClass::kVerbatim) {
        const std::string low = util::ToLower(token.key);
        for (const std::string_view keyword : kProtocolKeywords) {
          if (low == keyword) {
            ++file.counts["proto." + std::string(keyword)];
            break;
          }
        }
      }
    }
  }
}

/// File-local first-occurrence numbering for one rename class.
class ClassIds {
 public:
  std::string Tag(const char* prefix, const std::string& key) {
    const auto [it, inserted] = ids_.try_emplace(key, ids_.size() + 1);
    (void)inserted;
    std::string tag(prefix);
    tag += std::to_string(it->second);
    return tag;
  }

 private:
  std::map<std::string, std::size_t> ids_;
};

}  // namespace

bool IsHashToken(std::string_view word) {
  if (word.size() != 11 || word[0] != 'h') return false;
  for (std::size_t i = 1; i < word.size(); ++i) {
    const char c = word[i];
    if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) return false;
  }
  return true;
}

std::vector<std::string> RenderShape(const CanonicalFile& file) {
  ClassIds words;
  ClassIds asns;
  ClassIds comms;
  ClassIds addrs;
  std::vector<std::string> out;
  out.reserve(file.lines.size());
  for (const CanonLine& line : file.lines) {
    std::string rendered;
    for (const CanonToken& token : line.tokens) {
      if (!rendered.empty()) rendered += ' ';
      std::string body;
      switch (token.cls) {
        case TokenClass::kVerbatim:
          body = token.key;
          break;
        case TokenClass::kWord:
          body = words.Tag("W", token.key);
          break;
        case TokenClass::kAsn:
          body = asns.Tag("A", token.key);
          break;
        case TokenClass::kComm:
          body = comms.Tag("C", token.key);
          break;
        case TokenClass::kAddr:
          body = addrs.Tag("IP", token.key) + token.suffix;
          break;
        case TokenClass::kRegex:
          body = "RE";
          break;
        case TokenClass::kAsnList: {
          for (const std::string_view member :
               util::SplitWords(token.key)) {
            if (!body.empty()) body += ' ';
            if (util::IsAllDigits(member)) {
              body += asns.Tag("A", std::string(member));
            } else {
              body += member;
            }
          }
          break;
        }
      }
      if (token.quoted) {
        rendered += '"';
        rendered += body;
        rendered += '"';
      } else {
        rendered += body;
      }
    }
    out.push_back(std::move(rendered));
  }
  return out;
}

CanonicalFile Canonicalize(const config::ConfigFile& file, Dialect dialect) {
  CanonicalFile out;
  out.name = file.name();
  out.dialect = dialect;
  out.source_line_count = file.lines().size();
  if (dialect == Dialect::kJunos) {
    CanonicalizeJunos(file, out);
  } else {
    CanonicalizeIos(file, out);
  }
  FillCounts(out);

  const std::vector<std::string> shape = RenderShape(out);
  std::string joined;
  for (const std::string& line : shape) {
    joined += line;
    joined += '\n';
  }
  out.shape_hash = util::Sha1::HexDigest(joined);
  return out;
}

}  // namespace confanon::audit
