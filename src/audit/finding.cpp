#include "audit/finding.h"

namespace confanon::audit {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kNote:
      return "note";
  }
  return "note";
}

std::string Anchor::ToString() const {
  if (file.empty()) return "";
  if (line == kNoLine) return file;
  return file + ":" + std::to_string(line + 1);
}

std::string Finding::ToString() const {
  std::string out = anchor.ToString();
  if (!out.empty()) out += ": ";
  out += SeverityName(severity);
  out += " [";
  out += rule_id;
  out += "] ";
  out += message;
  if (!related.file.empty()) {
    out += " (vs ";
    out += related.ToString();
    out += ")";
  }
  return out;
}

std::size_t AuditResult::CountAtLeast(Severity severity) const {
  std::size_t count = 0;
  for (const Finding& finding : findings) {
    if (static_cast<int>(finding.severity) <= static_cast<int>(severity)) {
      ++count;
    }
  }
  return count;
}

std::string AuditResult::ToText() const {
  std::string out;
  for (const Finding& finding : findings) {
    out += finding.ToString();
    out += '\n';
  }
  out += "audit: ";
  out += std::to_string(files_scanned);
  out += " files, ";
  out += std::to_string(lines_scanned);
  out += " lines, ";
  out += std::to_string(findings.size());
  out += " findings (";
  out += std::to_string(CountAtLeast(Severity::kError));
  out += " errors)\n";
  for (const auto& [name, value] : stats) {
    out += "  ";
    out += name;
    out += " = ";
    out += std::to_string(value);
    out += '\n';
  }
  return out;
}

}  // namespace confanon::audit
