// IPv4 prefixes (address + length) and the subnet-contains relation.
//
// The paper's central structural requirement is that "subnet contains" — the
// relation that ties a RIP/OSPF `network` statement to the interfaces whose
// addresses fall inside it — survives anonymization unchanged. This module
// is the vocabulary for expressing and checking that relation, and for the
// subnet-size fingerprints of Section 6.2.
#pragma once

#include <compare>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/ipv4.h"

namespace confanon::net {

/// A CIDR prefix with value semantics. The stored address is always
/// canonicalized: host bits below the prefix length are zeroed.
class Prefix {
 public:
  constexpr Prefix() = default;
  Prefix(Ipv4Address address, int length);

  Ipv4Address address() const { return address_; }
  int length() const { return length_; }

  /// Parses "a.b.c.d/len". Returns nullopt for malformed input.
  static std::optional<Prefix> Parse(std::string_view text);

  /// Builds from an address and a netmask (e.g. access-list operands).
  static std::optional<Prefix> FromAddressAndMask(Ipv4Address address,
                                                  Ipv4Address netmask);

  /// The classful network containing `address` (A/B/C only).
  static std::optional<Prefix> ClassfulNetworkOf(Ipv4Address address);

  std::string ToString() const;  // "a.b.c.d/len"

  Ipv4Address Netmask() const { return PrefixLengthToNetmask(length_); }

  bool Contains(Ipv4Address address) const;
  bool Contains(const Prefix& other) const;  // other is equal-or-more-specific

  /// True if the host part of `address` under this prefix is all zeros,
  /// i.e. address is this prefix's subnet address.
  bool IsSubnetAddressOf(Ipv4Address address) const;

  friend auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  Ipv4Address address_;
  int length_ = 0;
};

/// True if `address` has an all-zero host part for SOME plausible subnet,
/// i.e. its trailing zero run is >= `min_host_bits`. The anonymizer uses
/// this heuristic to decide which addresses should keep an all-zero tail
/// (paper 4.3: "it improves human readability ... if subnet addresses are
/// mapped to other subnet addresses").
bool LooksLikeSubnetAddress(Ipv4Address address, int min_host_bits = 2);

/// Number of trailing zero bits of the address value (0..32).
int TrailingZeroBits(Ipv4Address address);

}  // namespace confanon::net
