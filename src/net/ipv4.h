// IPv4 address model.
//
// The anonymizer's IP handling (paper Section 4.3) needs more than raw
// 32-bit values: classful semantics (older commands such as RIP and EIGRP
// `network` statements implicitly assume address classes, so anonymization
// must be class-preserving), netmask recognition (netmasks must pass through
// unchanged), and strict parse/format round-tripping so rewritten configs
// remain valid.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace confanon::net {

/// Classful address classes. Classes D (multicast) and E (reserved) are
/// treated as special by the anonymizer and never rewritten.
enum class AddrClass { kA, kB, kC, kD, kE };

/// Number of leading network bits implied by a classful class, for classes
/// A (8), B (16), C (24). Classes D/E have no host/network split; callers
/// must not ask.
int ClassfulNetworkBits(AddrClass addr_class);

/// An IPv4 address as a host-order 32-bit value with value semantics.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t value) : value_(value) {}

  constexpr std::uint32_t value() const { return value_; }

  /// Parses strict dotted-quad notation: exactly four decimal octets
  /// 0-255 separated by dots, no leading/trailing garbage. Leading zeros
  /// are accepted (configs contain them) but octets longer than 3 digits
  /// are not.
  static std::optional<Ipv4Address> Parse(std::string_view text);

  /// Formats as dotted-quad.
  std::string ToString() const;

  AddrClass GetClass() const;

  constexpr std::uint8_t Octet(int index) const {
    return static_cast<std::uint8_t>(value_ >> (24 - 8 * index));
  }

  /// Bit i counting from the most significant (bit 0 = top bit).
  constexpr bool Bit(int i) const { return (value_ >> (31 - i)) & 1u; }

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) = default;

 private:
  std::uint32_t value_ = 0;
};

/// True if the value reads as a contiguous-ones netmask (e.g.
/// 255.255.255.0, 255.0.0.0, 0.0.0.0, 255.255.255.255).
bool IsNetmask(Ipv4Address address);

/// True if the value reads as a contiguous wildcard (inverse) mask as used
/// by Cisco ACLs and OSPF network statements (e.g. 0.0.0.255).
bool IsWildcardMask(Ipv4Address address);

/// Prefix length of a netmask, if it is one.
std::optional<int> NetmaskToPrefixLength(Ipv4Address mask);

/// Netmask with `length` leading one bits (0 <= length <= 32).
Ipv4Address PrefixLengthToNetmask(int length);

/// Length of the longest common prefix of two addresses, in [0, 32].
int CommonPrefixLength(Ipv4Address a, Ipv4Address b);

}  // namespace confanon::net
