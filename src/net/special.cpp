#include "net/special.h"

namespace confanon::net {

SpecialKind ClassifySpecial(Ipv4Address address) {
  // Mask-shaped values take precedence: 0.0.0.0 and 255.255.255.255 read as
  // masks wherever they appear, and masks are the most common special form
  // in configs.
  if (IsNetmask(address) || IsWildcardMask(address)) {
    return SpecialKind::kNetmaskLike;
  }
  switch (address.GetClass()) {
    case AddrClass::kD:
      return SpecialKind::kMulticast;
    case AddrClass::kE:
      return SpecialKind::kReservedE;
    default:
      break;
  }
  if (address.Octet(0) == 127) return SpecialKind::kLoopback;
  if (address.Octet(0) == 0) return SpecialKind::kThisNetwork;
  return SpecialKind::kNotSpecial;
}

bool IsSpecial(Ipv4Address address) {
  return ClassifySpecial(address) != SpecialKind::kNotSpecial;
}

std::string SpecialKindName(SpecialKind kind) {
  switch (kind) {
    case SpecialKind::kNotSpecial:
      return "not-special";
    case SpecialKind::kNetmaskLike:
      return "netmask-like";
    case SpecialKind::kMulticast:
      return "multicast";
    case SpecialKind::kReservedE:
      return "reserved-class-e";
    case SpecialKind::kLoopback:
      return "loopback";
    case SpecialKind::kThisNetwork:
      return "this-network";
  }
  return "unknown";
}

}  // namespace confanon::net
