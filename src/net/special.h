// Taxonomy of "special" IPv4 addresses that must pass through anonymization
// unchanged (paper Section 4.3: "all special IP addresses (e.g., netmasks,
// multicast) are passed through unchanged").
//
// Special addresses carry protocol meaning rather than identity: rewriting
// 255.255.255.0 or 224.0.0.5 would break the config, while leaving them
// intact reveals nothing about the network owner. The IP anonymizer consults
// this module both to decide passthrough and to detect mapping collisions
// into the special set (which it resolves by recursive remapping).
#pragma once

#include <string>

#include "net/ipv4.h"

namespace confanon::net {

/// Why an address is considered special; kNotSpecial means it is an
/// ordinary, anonymizable address.
enum class SpecialKind {
  kNotSpecial,
  kNetmaskLike,   // contiguous netmask or wildcard mask (0.0.0.255 etc.)
  kMulticast,     // class D, 224.0.0.0/4
  kReservedE,     // class E, 240.0.0.0/4 (includes 255.255.255.255, which is
                  // also a netmask; netmask classification wins)
  kLoopback,      // 127.0.0.0/8
  kThisNetwork,   // 0.0.0.0/8 (includes 0.0.0.0, also a mask; mask wins)
};

/// Classifies an address. Deterministic and total.
SpecialKind ClassifySpecial(Ipv4Address address);

/// True for any kind other than kNotSpecial.
bool IsSpecial(Ipv4Address address);

/// Human-readable kind name for reports.
std::string SpecialKindName(SpecialKind kind);

}  // namespace confanon::net
