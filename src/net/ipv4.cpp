#include "net/ipv4.h"

#include <bit>
#include <cassert>
#include <cstdio>

#include "util/strings.h"

namespace confanon::net {

int ClassfulNetworkBits(AddrClass addr_class) {
  switch (addr_class) {
    case AddrClass::kA:
      return 8;
    case AddrClass::kB:
      return 16;
    case AddrClass::kC:
      return 24;
    case AddrClass::kD:
    case AddrClass::kE:
      break;
  }
  assert(false && "classes D/E have no network/host split");
  return 32;
}

std::optional<Ipv4Address> Ipv4Address::Parse(std::string_view text) {
  std::uint32_t value = 0;
  int octets = 0;
  std::size_t i = 0;
  while (i <= text.size()) {
    std::size_t start = i;
    while (i < text.size() && util::IsAsciiDigit(text[i])) ++i;
    const std::size_t digits = i - start;
    if (digits == 0 || digits > 3) return std::nullopt;
    std::uint64_t octet = 0;
    if (!util::ParseUint(text.substr(start, digits), 255, octet)) {
      return std::nullopt;
    }
    value = (value << 8) | static_cast<std::uint32_t>(octet);
    ++octets;
    if (i == text.size()) break;
    if (text[i] != '.' || octets == 4) return std::nullopt;
    ++i;  // consume the dot
  }
  if (octets != 4) return std::nullopt;
  return Ipv4Address(value);
}

std::string Ipv4Address::ToString() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", Octet(0), Octet(1), Octet(2),
                Octet(3));
  return buf;
}

AddrClass Ipv4Address::GetClass() const {
  const std::uint8_t top = Octet(0);
  if ((top & 0x80u) == 0) return AddrClass::kA;         // 0xxxxxxx
  if ((top & 0xC0u) == 0x80u) return AddrClass::kB;     // 10xxxxxx
  if ((top & 0xE0u) == 0xC0u) return AddrClass::kC;     // 110xxxxx
  if ((top & 0xF0u) == 0xE0u) return AddrClass::kD;     // 1110xxxx
  return AddrClass::kE;                                 // 1111xxxx
}

bool IsNetmask(Ipv4Address address) {
  const std::uint32_t v = address.value();
  // A netmask is ones followed by zeros: ~v must be of form 2^k - 1, i.e.
  // ~v & (~v + 1) == 0.
  const std::uint32_t inverted = ~v;
  return (inverted & (inverted + 1)) == 0;
}

bool IsWildcardMask(Ipv4Address address) {
  const std::uint32_t v = address.value();
  // Zeros followed by ones: v must be 2^k - 1.
  return (v & (v + 1)) == 0;
}

std::optional<int> NetmaskToPrefixLength(Ipv4Address mask) {
  if (!IsNetmask(mask)) return std::nullopt;
  return std::popcount(mask.value());
}

Ipv4Address PrefixLengthToNetmask(int length) {
  assert(length >= 0 && length <= 32);
  if (length == 0) return Ipv4Address(0);
  return Ipv4Address(~std::uint32_t{0} << (32 - length));
}

int CommonPrefixLength(Ipv4Address a, Ipv4Address b) {
  const std::uint32_t diff = a.value() ^ b.value();
  if (diff == 0) return 32;
  return std::countl_zero(diff);
}

}  // namespace confanon::net
