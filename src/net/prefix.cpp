#include "net/prefix.h"

#include <bit>
#include <cassert>

#include "util/strings.h"

namespace confanon::net {

namespace {

std::uint32_t MaskBits(int length) {
  if (length <= 0) return 0;
  return ~std::uint32_t{0} << (32 - length);
}

}  // namespace

Prefix::Prefix(Ipv4Address address, int length) : length_(length) {
  assert(length >= 0 && length <= 32);
  address_ = Ipv4Address(address.value() & MaskBits(length));
}

std::optional<Prefix> Prefix::Parse(std::string_view text) {
  const std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto address = Ipv4Address::Parse(text.substr(0, slash));
  if (!address) return std::nullopt;
  std::uint64_t length = 0;
  if (!util::ParseUint(text.substr(slash + 1), 32, length)) {
    return std::nullopt;
  }
  return Prefix(*address, static_cast<int>(length));
}

std::optional<Prefix> Prefix::FromAddressAndMask(Ipv4Address address,
                                                 Ipv4Address netmask) {
  const auto length = NetmaskToPrefixLength(netmask);
  if (!length) return std::nullopt;
  return Prefix(address, *length);
}

std::optional<Prefix> Prefix::ClassfulNetworkOf(Ipv4Address address) {
  switch (address.GetClass()) {
    case AddrClass::kA:
      return Prefix(address, 8);
    case AddrClass::kB:
      return Prefix(address, 16);
    case AddrClass::kC:
      return Prefix(address, 24);
    case AddrClass::kD:
    case AddrClass::kE:
      return std::nullopt;
  }
  return std::nullopt;
}

std::string Prefix::ToString() const {
  return address_.ToString() + "/" + std::to_string(length_);
}

bool Prefix::Contains(Ipv4Address address) const {
  return (address.value() & MaskBits(length_)) == address_.value();
}

bool Prefix::Contains(const Prefix& other) const {
  return other.length_ >= length_ && Contains(other.address_);
}

bool Prefix::IsSubnetAddressOf(Ipv4Address address) const {
  return Contains(address) && address == address_;
}

int TrailingZeroBits(Ipv4Address address) {
  if (address.value() == 0) return 32;
  return std::countr_zero(address.value());
}

bool LooksLikeSubnetAddress(Ipv4Address address, int min_host_bits) {
  return TrailingZeroBits(address) >= min_host_bits;
}

}  // namespace confanon::net
