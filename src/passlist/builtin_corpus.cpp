// The embedded pass-list corpus: Cisco IOS command keywords plus the
// ordinary vocabulary of the command-reference guides.
//
// This is the offline stand-in for the paper's web-walker over the online
// IOS command references ("In theory, most Cisco keywords will appear
// somewhere in the guides, and non-keywords used in the guides are so
// common they cannot leak information"). Entries are pure ASCII-alphabetic
// tokens because the tokenizer segments words into alphabetic cores before
// consulting the pass-list (e.g. "Ethernet0/0" is checked as "ethernet").
//
// Keeping the corpus honest matters for the experiments: anything missing
// gets hashed (safe but lossy), anything extra that could name an owner
// would leak. The comment-stripping rules, not this list, are what protect
// against innocuous words composing an identifying phrase.

#include <cstddef>

namespace confanon::passlist {

// Declared extern in passlist.cpp; extern here gives the const arrays
// external linkage.
extern const char* const kBuiltinCorpus[];
extern const std::size_t kBuiltinCorpusSize;

const char* const kBuiltinCorpus[] = {
    // --- interface types and hardware ---
    "ethernet", "fastethernet", "gigabitethernet", "tengigabitethernet",
    "serial", "loopback", "tunnel", "vlan", "portchannel", "port", "channel",
    "atm", "pos", "hssi", "fddi", "tokenring", "token", "ring", "dialer",
    "bri", "pri", "async", "group", "bundle", "multilink", "virtual",
    "template", "subinterface", "mgmt", "management", "console", "aux", "vty",
    "line", "tty", "slot", "module", "card", "chassis", "supervisor",
    "fabric", "backplane", "transceiver", "sfp", "xfp", "media", "fiber",
    "copper", "rj", "duplex", "half", "full", "auto", "speed", "mdix",
    "crossover", "cable", "modem", "flash", "nvram", "bootflash", "disk",
    "usb", "rom", "rommon", "processor", "cpu", "memory", "dram", "buffers",
    // --- global configuration ---
    "hostname", "version", "service", "timestamps", "debug", "datetime",
    "msec", "localtime", "uptime", "password", "encryption", "enable",
    "secret", "banner", "motd", "login", "exec", "incoming", "logging",
    "buffered", "monitor", "trap", "facility", "source", "interface", "host",
    "no", "shutdown", "description", "boot", "system", "config",
    "configuration", "register", "confreg", "reload", "running", "startup",
    "write", "erase", "copy", "tftp", "ftp", "scp", "http", "https", "server",
    "clock", "timezone", "summer", "time", "ntp", "calendar", "peer", "alias",
    "prompt", "terminal", "length", "width", "editing", "history", "size",
    "domain", "name", "lookup", "list", "search", "dns", "resolver",
    "scheduler", "allocate", "interval", "process", "watchdog", "exception",
    "dump", "core", "crashinfo",
    // --- ip / addressing ---
    "ip", "ipv", "address", "secondary", "unnumbered", "negotiated", "dhcp",
    "pool", "excluded", "lease", "relay", "helper", "broadcast", "directed",
    "subnet", "zero", "classless", "mask", "netmask", "wildcard", "cidr",
    "prefix", "gateway", "default", "static", "route", "routing", "forward",
    "forwarding", "cef", "switching", "fast", "flow", "export", "ingress",
    "egress", "mtu", "fragment", "fragmentation", "reassembly", "df", "bit",
    "ttl", "tos", "precedence", "dscp", "ecn", "icmp", "redirect",
    "redirects", "unreachable", "unreachables", "echo", "reply", "request",
    "proxy", "arp", "gratuitous", "inspection", "verify", "unicast", "rpf",
    "reverse", "path", "multicast", "igmp", "pim", "sparse", "dense", "mode",
    "rendezvous", "point", "bsr", "candidate", "rp", "mroute", "boundary",
    "scope", "tcp", "udp", "syn", "ack", "fin", "rst", "keepalive", "timeout",
    "window", "mss", "adjust", "intercept", "local", "identification",
    "accounting", "violations",
    // --- routing protocols: common ---
    "router", "network", "area", "redistribute", "metric", "distance",
    "administrative", "passive", "neighbor", "update", "timers", "basic",
    "holdtime", "hello", "dead", "retransmit", "delay", "bandwidth",
    "reliability", "load", "variance", "maximum", "paths", "split", "horizon",
    "poison", "triggered", "summary", "summarization", "supernet",
    "originate", "advertise", "advertisement", "announce", "suppress",
    "filter", "offset", "tag", "internal", "external", "type", "backdoor",
    "connected", "subnets", "level", "stub", "totally", "nssa", "transit",
    "link", "cost", "priority", "identifier", "id", "reference", "compatible",
    "rfc", "log", "adjacency", "changes", "graceful", "restart", "nonstop",
    // --- rip ---
    "rip", "validate", "receive", "send",
    // --- eigrp ---
    "eigrp", "autonomous", "leak", "composite", "feasible", "successor",
    "topology", "active", "query", "sia", "stuck",
    // --- ospf ---
    "ospf", "spf", "throttle", "lsa", "flood", "pacing", "database",
    "overflow", "demand", "circuit", "multipoint", "nonbroadcast", "nbma",
    "designated", "backup", "dr", "bdr", "authentication", "message",
    "digest", "key", "null", "simple", "opaque", "capability", "ignore",
    "mospf", "transmit", "wait",
    // --- isis ---
    "isis", "net", "clns", "padding", "lsp", "psnp", "csnp", "wide", "narrow",
    "overload", "attached",
    // --- bgp ---
    "bgp", "remote", "as", "asn", "ebgp", "ibgp", "multihop", "security",
    "hops", "confederation", "peers", "reflector", "client", "cluster",
    "dampening", "reuse", "halflife", "penalty", "flap", "statistics",
    "aggregate", "atomic", "med", "always", "compare", "deterministic",
    "bestpath", "aspath", "multipath", "relax", "synchronization", "scan",
    "soft", "reconfiguration", "inbound", "outbound", "next", "hop", "self",
    "weight", "override", "allowas", "orf", "refresh", "community",
    "extended", "both", "additive", "none", "internet", "preference",
    "localpref", "origin", "igp", "incomplete", "notification", "maxas",
    "limit", "prepend", "slow", "disable",
    // --- route policy: route-maps, lists, filters ---
    "access", "permit", "deny", "remark", "sequence", "resequence",
    "distribute", "redistribution", "unsuppress", "seq", "expanded",
    "substring", "regexp", "regex", "public", "privately", "standard",
    "match", "set", "continue", "policy", "map", "class", "entries", "any",
    "all", "exact", "longer", "ge", "le", "eq", "neq", "gt", "lt", "range",
    "established", "reflexive", "evaluate", "dynamic", "lock", "absolute",
    "periodic", "expression",
    // --- nat ---
    "nat", "inside", "outside", "translation", "pat", "pools", "netflow",
    "top", "talkers",
    // --- qos ---
    "qos", "queue", "queueing", "fair", "weighted", "random", "detect",
    "wred", "shape", "shaping", "police", "policing", "rate", "cir", "bc",
    "be", "burst", "conform", "exceed", "violate", "action", "drop",
    "percent", "remaining", "llq", "cbwfq", "fifo", "input", "output",
    "marking", "trust", "cos", "mls",
    // --- security / aaa ---
    "aaa", "new", "model", "radius", "tacacs", "kerberos", "authorization",
    "commands", "session", "attempts", "lockout", "failed", "username",
    "privilege", "role", "view", "parser", "md", "sha", "hash", "salt",
    "crypto", "ipsec", "isakmp", "ike", "transform", "esp", "ah", "des",
    "aes", "rsa", "dh", "diffie", "hellman", "pki", "certificate",
    "trustpoint", "enrollment", "revocation", "crl", "ocsp", "ssh", "telnet",
    "transport", "preferred", "firewall", "zone", "pair", "inspect", "audit",
    "attack", "signature", "guard", "storm", "control", "dot", "x", "sticky",
    "violation", "protect", "restrict", "errdisable", "recovery", "cause",
    "bpduguard", "snooping", "dai", "urpf",
    // --- switching / l2 ---
    "switchport", "trunk", "encapsulation", "isl", "native", "allowed",
    "pruning", "vtp", "transparent", "spanning", "tree", "pvst", "rapid",
    "mst", "instance", "root", "primary", "portfast", "uplinkfast",
    "backbonefast", "etherchannel", "lacp", "pagp", "desirable", "on", "off",
    "macro", "udld", "aggressive", "cdp", "lldp", "run", "mac", "aging",
    "table",
    // --- wan / ppp / frame-relay ---
    "ppp", "chap", "pap", "callin", "interleave", "hdlc", "frame", "lmi",
    "dlci", "pvc", "svc", "inverse", "ietf", "cisco", "smds", "isdn",
    "switch", "spid", "string", "caller", "idle", "channelized", "controller",
    "framing", "esf", "linecode", "ami", "dce", "dte", "invert", "txclock",
    "compress", "stac", "predictor",
    // --- mpls / vpn ---
    "mpls", "label", "ldp", "tdp", "rsvp", "te", "traffic", "eng", "tunnels",
    "vrf", "rd", "target", "import", "vpnv", "xconnect", "pseudowire", "vpls",
    // --- snmp / management ---
    "snmp", "mib", "oid", "informs", "traps", "ro", "rw", "contact",
    "location", "engineid", "user", "auth", "priv", "noauth", "syslog",
    "archive", "event", "manager", "applet", "rmon", "alarm", "threshold",
    "rising", "falling", "ipsla", "sla", "responder", "probe", "track",
    "boolean", "up", "down", "kron", "occurrence",
    // --- hsrp / vrrp / glbp ---
    "standby", "hsrp", "vrrp", "glbp", "preempt", "decrement", "use", "bia",
    "follow",
    // --- misc protocol names and tools ---
    "ping", "traceroute", "mtr", "whois", "finger", "bootp", "pad", "rlogin",
    "rsh", "rcp", "nagle", "small", "servers", "identd", "mop", "xremote",
    "vpdn", "pptp", "gre", "ipip", "sit", "nve", "vxlan", "overlay",
    "underlay",
    // --- common verbs/adjectives from the reference guides ---
    "the", "a", "an", "of", "to", "in", "for", "with", "and", "or", "not",
    "is", "are", "was", "been", "this", "that", "these", "those", "used",
    "uses", "using", "configure", "configured", "configures", "configuring",
    "specify", "specifies", "specified", "specifying", "command", "argument",
    "arguments", "keyword", "keywords", "value", "values", "parameter",
    "parameters", "option", "options", "enables", "enabled", "disables",
    "disabled", "display", "displays", "show", "shows", "clear", "clears",
    "reset", "resets", "remove", "removes", "removed", "add", "adds", "added",
    "create", "creates", "created", "delete", "deletes", "deleted", "assign",
    "assigns", "assigned", "define", "defines", "defined", "apply", "applies",
    "applied", "associate", "associated", "bind", "binds", "bound", "example",
    "examples", "usage", "guidelines", "defaults", "syntax", "modes",
    "global", "releases", "release", "introduced", "modified", "support",
    "supported", "supports", "platform", "platforms", "feature", "features",
    "information", "about", "when", "where", "which", "while", "after",
    "before", "during", "each", "every", "following", "above", "below",
    "between", "through", "must", "should", "can", "cannot", "may", "might",
    "will", "would", "allows", "allow", "prevent", "prevents", "ensure",
    "ensures", "number", "numbers", "integer", "word", "text", "optional",
    "required", "valid", "invalid", "minimum", "first", "last", "single",
    "multiple", "per", "only", "also", "other", "same", "different", "old",
    "current", "previous", "more", "less", "than", "then", "note", "caution",
    "warning", "tip", "out", "end", "begin", "start", "stop", "exit", "quit",
    "con", "cts", "into", "onto", "from", "at", "by", "if", "else", "do",
    "does", "done", "it", "its", "over", "under", "yes", "related", "see",
    "refer", "guide", "documentation", "document", "chapter", "section",
    "figure", "appendix", "overview", "introduction", "task", "tasks", "step",
    "steps", "procedure", "procedures", "prerequisites", "restrictions",
    "limitations", "troubleshooting", "monitoring", "maintaining",
    "additional", "detailed", "specific", "general", "common", "crossing",
    "packet", "packets", "frames", "byte", "bytes", "bits", "second",
    "seconds", "millisecond", "milliseconds", "minute", "minutes", "hour",
    "hours", "day", "days", "week", "month", "year", "once", "twice", "count",
    "counts", "counter", "counters", "statistic", "status", "state", "states",
    "condition", "conditions", "result", "results", "error", "errors",
    "failure", "failures", "success", "successful", "operation", "operations",
    "operational", "performance", "utilization", "levels", "severity",
    "critical", "major", "minor", "informational", "emergency", "alert",
    "notice", "device", "devices", "equipment", "hardware", "software",
    "image", "images", "file", "files", "directory", "directories",
    "filename", "destination", "locally", "connection", "connections",
    "connectivity", "sessions", "users", "administrator", "administrators",
    "operator", "operators", "customer", "customers", "provider", "providers",
    "carrier", "carriers", "vendor", "vendors", "design", "architecture",
    "redundancy", "redundant", "failover", "resilience", "convergence",
    "stability", "scalability",
};

const std::size_t kBuiltinCorpusSize =
    sizeof(kBuiltinCorpus) / sizeof(kBuiltinCorpus[0]);

}  // namespace confanon::passlist
