#include "passlist/passlist.h"

#include <iterator>

#include "util/io.h"
#include "util/strings.h"

namespace confanon::passlist {

// Defined in builtin_corpus.cpp.
extern const char* const kBuiltinCorpus[];
extern const std::size_t kBuiltinCorpusSize;

PassList PassList::Builtin() {
  PassList list;
  for (std::size_t i = 0; i < kBuiltinCorpusSize; ++i) {
    list.Add(kBuiltinCorpus[i]);
  }
  return list;
}

void PassList::Add(std::string_view token) {
  if (token.empty()) return;
  std::string lowered = util::ToLower(token);
  entries_.push_back(lowered);
  tokens_.insert(std::move(lowered));
}

bool PassList::Contains(std::string_view token) const {
  return tokens_.contains(util::ToLower(token));
}

void PassList::Merge(const PassList& other) {
  tokens_.insert(other.tokens_.begin(), other.tokens_.end());
  entries_.insert(entries_.end(), other.entries_.begin(),
                  other.entries_.end());
}

PassList PassList::Truncated(double keep_fraction, std::uint64_t seed) const {
  PassList out;
  // Per-token coin flip keyed by the token text so the subset is stable
  // regardless of hash-set iteration order. Walking entries_ keeps the
  // survivors in load order; re-added tokens keep only their first entry.
  for (const std::string& token : entries_) {
    if (out.tokens_.contains(token)) continue;
    util::Rng rng(seed ^ util::HashSeed(token));
    if (rng.Chance(keep_fraction)) {
      out.Add(token);
    }
  }
  return out;
}

std::size_t DocScraper::ScrapeText(std::string_view text) {
  std::size_t added = 0;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && !util::IsAsciiAlpha(text[i])) ++i;
    const std::size_t start = i;
    while (i < text.size() && util::IsAsciiAlpha(text[i])) ++i;
    if (i - start >= 2) {
      const std::string token = util::ToLower(text.substr(start, i - start));
      if (!target_.Contains(token)) {
        target_.Add(token);
        ++added;
      }
    }
  }
  return added;
}

std::size_t DocScraper::ScrapeStream(std::istream& in) {
  const std::string text{std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>()};
  return ScrapeText(text);
}

std::optional<std::size_t> DocScraper::ScrapeFile(const std::string& path,
                                                  std::string* error) {
  const auto text = util::ReadFileFully(path, error);
  if (!text) return std::nullopt;
  return ScrapeText(*text);
}

}  // namespace confanon::passlist
