// The pass-list of unprivileged tokens (paper Section 4.1).
//
// "Being unable to know a priori which strings can leak information about
// the identity of the network owner, the most conservative approach is to
// cryptographically hash every string that is not known to be innocuous."
// The pass-list is the set of tokens known to be innocuous: Cisco IOS
// keywords and the ordinary English vocabulary of the command reference
// guides. Tokens are compared case-insensitively (IOS is case-insensitive
// for keywords).
//
// The paper built its pass-list with a web-walker that string-scraped the
// online IOS command references; offline, we embed a corpus of IOS command
// keywords (builtin_corpus.cpp) and provide DocScraper, which reproduces
// the ingestion path over local command-reference text files.
#pragma once

#include <cstddef>
#include <istream>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "util/rng.h"

namespace confanon::passlist {

class PassList {
 public:
  PassList() = default;

  /// The embedded IOS keyword + reference-vocabulary corpus.
  static PassList Builtin();

  /// Adds one token (lowercased). Non-alphabetic characters are permitted
  /// but callers normally add pure alphabetic tokens, matching what the
  /// tokenizer checks.
  void Add(std::string_view token);

  /// Case-insensitive membership.
  bool Contains(std::string_view token) const;

  std::size_t Size() const { return tokens_.size(); }

  /// Every Add() in load order, lowercased, duplicates included. The
  /// static policy verifier walks this to anchor findings to the entry
  /// that introduced a token and to detect shadowed (re-added) entries;
  /// membership queries never touch it.
  const std::vector<std::string>& Entries() const { return entries_; }

  /// Merges another list into this one.
  void Merge(const PassList& other);

  /// A copy retaining each token independently with probability
  /// `keep_fraction` (deterministic in `seed`). Used by the coverage
  /// ablation: a thinner pass-list hashes more tokens and destroys more
  /// structure.
  PassList Truncated(double keep_fraction, std::uint64_t seed) const;

 private:
  std::unordered_set<std::string> tokens_;
  std::vector<std::string> entries_;
};

/// Builds pass-list entries by string-scraping documentation, the offline
/// stand-in for the paper's web-walker. Every maximal ASCII-alphabetic run
/// of length >= 2 in the document becomes a pass-list token ("non-keywords
/// used in the guides are so common they cannot leak information").
class DocScraper {
 public:
  explicit DocScraper(PassList& target) : target_(target) {}

  /// Scrapes one document's text. Returns the number of distinct new
  /// tokens added.
  std::size_t ScrapeText(std::string_view text);

  /// Scrapes a whole stream (one copy off the stream buffer).
  std::size_t ScrapeStream(std::istream& in);

  /// Scrapes a file via the single-allocation reader. Returns nullopt
  /// (with an errno-bearing message in `error`, when non-null) if the
  /// file cannot be read.
  std::optional<std::size_t> ScrapeFile(const std::string& path,
                                        std::string* error = nullptr);

 private:
  PassList& target_;
};

}  // namespace confanon::passlist
