// Dialect-idiomatic rendering of decoy config fragments.
//
// Decoys only defend if they are indistinguishable from real anonymized
// output: an attacker who can grep the padding back out has lost nothing.
// So these renderers reproduce the exact line shapes the IOS and JunOS
// writers (src/gen/config_writer, src/junos/writer) emit — the same
// keywords, indent conventions, mask spelling, and brace nesting — with
// identifiers shaped like the anonymizer's own hash replacement tokens
// ("h" + 10 hex digits), so the audit's residue lint treats decoy lines
// exactly like genuine anonymized lines.
//
// Style is probed per receiving file (IOS indent width and the
// double-space mask artifact vary across emulated IOS versions), so an
// inserted block matches its surroundings byte-for-byte in convention.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "config/document.h"
#include "net/prefix.h"

namespace confanon::defense {

/// Per-file IOS rendering conventions, probed from existing lines.
struct IosStyle {
  std::string indent = " ";  // block-body indent (1 or 2 spaces)
  std::string gap = " ";     // address<->mask separator (1 or 2 spaces)
};
IosStyle DetectIosStyle(const config::ConfigFile& file);

/// Leading whitespace per JunOS nesting depth (writer convention: 4).
std::string JunosIndent(int depth);

/// "h" + 10 lowercase hex digits of `bits` — the anonymizer's hash
/// replacement token shape (core::StringHasher).
std::string HashLikeToken(std::uint64_t bits);

/// IOS `interface <name>` block carrying one decoy subnet: the interface
/// host address is the subnet address for /32s and base+1 otherwise.
/// Rendered as { "interface NAME", "<i>ip address A M", "!" }.
std::vector<std::string> RenderIosDecoyInterface(const IosStyle& style,
                                                 const std::string& name,
                                                 const net::Prefix& subnet);

/// One IOS decoy eBGP session line: "<i>neighbor A remote-as<gap>N".
std::string RenderIosDecoyNeighbor(const IosStyle& style,
                                   net::Ipv4Address peer,
                                   std::uint32_t remote_asn);

/// A complete IOS `router bgp` block for routers that had none, holding
/// the given decoy sessions (ends with "!").
std::vector<std::string> RenderIosDecoyBgpBlock(
    const IosStyle& style, std::uint32_t local_asn,
    const std::vector<std::pair<net::Ipv4Address, std::uint32_t>>& peers);

/// JunOS physical-interface block at `depth` (children of a top-level
/// `interfaces {` use depth 1):
///   <physical> { unit <unit> { family inet { address a.b.c.d/len; } } }
std::vector<std::string> RenderJunosDecoyInterface(
    const std::string& physical, int unit, const net::Prefix& subnet,
    int depth);

/// JunOS external BGP group at `depth` (children of `protocols { bgp {`
/// use depth 2):
///   group <name> { type external; peer-as N; neighbor A; }
std::vector<std::string> RenderJunosDecoyGroup(const std::string& group_name,
                                               std::uint32_t peer_asn,
                                               net::Ipv4Address neighbor,
                                               int depth);

/// Host address a decoy interface claims inside its subnet.
net::Ipv4Address DecoyHostAddress(const net::Prefix& subnet);

}  // namespace confanon::defense
