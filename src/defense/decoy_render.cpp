#include "defense/decoy_render.h"

#include <cstdio>

#include "config/tokenizer.h"
#include "util/strings.h"

namespace confanon::defense {

namespace {

std::string MaskOf(int prefix_length) {
  return net::PrefixLengthToNetmask(prefix_length).ToString();
}

}  // namespace

IosStyle DetectIosStyle(const config::ConfigFile& file) {
  IosStyle style;
  bool have_indent = false;
  bool have_gap = false;
  for (const std::string_view raw : file.lines()) {
    const config::SplitLine split = config::SplitConfigLine(raw);
    if (split.words.empty()) continue;
    if (!have_indent && split.indent > 0) {
      style.indent = std::string(
          static_cast<std::size_t>(split.indent > 1 ? 2 : 1), ' ');
      have_indent = true;
    }
    // `ip address A M`: the gap between the address and mask tokens is
    // the per-dialect double-space artifact. The word views alias `raw`,
    // so pointer arithmetic recovers the separator width exactly.
    if (!have_gap && split.words.size() >= 4 &&
        util::ToLower(split.words[0]) == "ip" &&
        util::ToLower(split.words[1]) == "address") {
      const std::string_view address = split.words[2];
      const std::string_view mask = split.words[3];
      const std::ptrdiff_t width = mask.data() - (address.data() +
                                                  address.size());
      if (width >= 1 && width <= 2) {
        style.gap = std::string(static_cast<std::size_t>(width), ' ');
        have_gap = true;
      }
    }
    if (have_indent && have_gap) break;
  }
  return style;
}

std::string JunosIndent(int depth) {
  return std::string(static_cast<std::size_t>(depth) * 4, ' ');
}

std::string HashLikeToken(std::uint64_t bits) {
  char buffer[16];
  std::snprintf(buffer, sizeof(buffer), "h%010llx",
                static_cast<unsigned long long>(bits & 0xffffffffffULL));
  return buffer;
}

net::Ipv4Address DecoyHostAddress(const net::Prefix& subnet) {
  if (subnet.length() >= 31) return subnet.address();
  return net::Ipv4Address(subnet.address().value() + 1);
}

std::vector<std::string> RenderIosDecoyInterface(const IosStyle& style,
                                                 const std::string& name,
                                                 const net::Prefix& subnet) {
  std::vector<std::string> lines;
  lines.push_back("interface " + name);
  lines.push_back(style.indent + "ip address " +
                  DecoyHostAddress(subnet).ToString() + style.gap +
                  MaskOf(subnet.length()));
  lines.push_back("!");
  return lines;
}

std::string RenderIosDecoyNeighbor(const IosStyle& style,
                                   net::Ipv4Address peer,
                                   std::uint32_t remote_asn) {
  return style.indent + "neighbor " + peer.ToString() + " remote-as" +
         style.gap + std::to_string(remote_asn);
}

std::vector<std::string> RenderIosDecoyBgpBlock(
    const IosStyle& style, std::uint32_t local_asn,
    const std::vector<std::pair<net::Ipv4Address, std::uint32_t>>& peers) {
  std::vector<std::string> lines;
  lines.push_back("router bgp " + std::to_string(local_asn));
  lines.push_back(style.indent + "bgp log-neighbor-changes");
  for (const auto& [address, asn] : peers) {
    lines.push_back(RenderIosDecoyNeighbor(style, address, asn));
  }
  lines.push_back("!");
  return lines;
}

std::vector<std::string> RenderJunosDecoyInterface(
    const std::string& physical, int unit, const net::Prefix& subnet,
    int depth) {
  std::vector<std::string> lines;
  lines.push_back(JunosIndent(depth) + physical + " {");
  lines.push_back(JunosIndent(depth + 1) + "unit " + std::to_string(unit) +
                  " {");
  lines.push_back(JunosIndent(depth + 2) + "family inet {");
  lines.push_back(JunosIndent(depth + 3) + "address " +
                  DecoyHostAddress(subnet).ToString() + "/" +
                  std::to_string(subnet.length()) + ";");
  lines.push_back(JunosIndent(depth + 2) + "}");
  lines.push_back(JunosIndent(depth + 1) + "}");
  lines.push_back(JunosIndent(depth) + "}");
  return lines;
}

std::vector<std::string> RenderJunosDecoyGroup(const std::string& group_name,
                                               std::uint32_t peer_asn,
                                               net::Ipv4Address neighbor,
                                               int depth) {
  std::vector<std::string> lines;
  lines.push_back(JunosIndent(depth) + "group " + group_name + " {");
  lines.push_back(JunosIndent(depth + 1) + "type external;");
  lines.push_back(JunosIndent(depth + 1) + "peer-as " +
                  std::to_string(peer_asn) + ";");
  lines.push_back(JunosIndent(depth + 1) + "neighbor " +
                  neighbor.ToString() + ";");
  lines.push_back(JunosIndent(depth) + "}");
  return lines;
}

}  // namespace confanon::defense
