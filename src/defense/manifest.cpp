#include "defense/manifest.h"

#include <algorithm>
#include <sstream>

#include "util/strings.h"

namespace confanon::defense {

bool DecoyManifest::Empty() const {
  return TotalDecoyLines() == 0;
}

std::size_t DecoyManifest::TotalDecoyLines() const {
  std::size_t total = 0;
  for (const FileDecoys& entry : files) {
    for (const config::LineRegion& region : entry.regions) {
      total += region.end - region.begin;
    }
  }
  return total;
}

std::string DecoyManifest::Serialize() const {
  std::ostringstream out;
  out << "# confanon decoy manifest v1\n";
  if (octet >= 0) out << "octet " << octet << "\n";
  for (const net::Prefix& prefix : prefixes) {
    out << "prefix " << prefix.ToString() << "\n";
  }
  for (const std::uint32_t asn : asns) {
    out << "asn " << asn << "\n";
  }
  for (const FileDecoys& entry : files) {
    for (const config::LineRegion& region : entry.regions) {
      out << "region " << entry.file << " " << region.begin << " "
          << region.end << "\n";
    }
  }
  return out.str();
}

std::optional<DecoyManifest> DecoyManifest::Parse(std::string_view text) {
  DecoyManifest manifest;
  std::string_view rest = text;
  while (!rest.empty()) {
    const std::size_t eol = rest.find('\n');
    const std::string_view line = util::Trim(rest.substr(0, eol));
    rest = eol == std::string_view::npos ? std::string_view{}
                                         : rest.substr(eol + 1);
    if (line.empty() || line.front() == '#') continue;
    const std::vector<std::string_view> words = util::SplitWords(line);
    if (words[0] == "octet" && words.size() == 2) {
      std::uint64_t value = 0;
      if (!util::ParseUint(words[1], 255, value)) return std::nullopt;
      manifest.octet = static_cast<int>(value);
    } else if (words[0] == "prefix" && words.size() == 2) {
      const auto prefix = net::Prefix::Parse(words[1]);
      if (!prefix) return std::nullopt;
      manifest.prefixes.push_back(*prefix);
    } else if (words[0] == "asn" && words.size() == 2) {
      std::uint64_t value = 0;
      if (!util::ParseUint(words[1], 4294967295ULL, value)) {
        return std::nullopt;
      }
      manifest.asns.push_back(static_cast<std::uint32_t>(value));
    } else if (words[0] == "region" && words.size() == 4) {
      std::uint64_t begin = 0;
      std::uint64_t end = 0;
      if (!util::ParseUint(words[2], ~std::uint64_t{0} >> 1, begin) ||
          !util::ParseUint(words[3], ~std::uint64_t{0} >> 1, end) ||
          end < begin) {
        return std::nullopt;
      }
      const std::string name(words[1]);
      FileDecoys* entry = nullptr;
      for (FileDecoys& existing : manifest.files) {
        if (existing.file == name) {
          entry = &existing;
          break;
        }
      }
      if (entry == nullptr) {
        manifest.files.push_back(FileDecoys{name, {}});
        entry = &manifest.files.back();
      }
      entry->regions.push_back(config::LineRegion{
          static_cast<std::size_t>(begin), static_cast<std::size_t>(end)});
    } else {
      return std::nullopt;
    }
  }
  std::sort(manifest.files.begin(), manifest.files.end(),
            [](const FileDecoys& a, const FileDecoys& b) {
              return a.file < b.file;
            });
  for (FileDecoys& entry : manifest.files) {
    std::sort(entry.regions.begin(), entry.regions.end(),
              [](const config::LineRegion& a, const config::LineRegion& b) {
                return a.begin < b.begin;
              });
  }
  std::sort(manifest.prefixes.begin(), manifest.prefixes.end());
  std::sort(manifest.asns.begin(), manifest.asns.end());
  return manifest;
}

}  // namespace confanon::defense
