// Decoy topology expansion: k-anonymous router fingerprints.
//
// The paper (Sections 6.2/6.3) concedes that structure-preserving
// anonymization preserves exactly the structure an attacker fingerprints:
// the subnet-size histogram and the peering degree survive anonymization
// by design. analysis::fingerprint measures how identifying those are;
// this module is the countermeasure, in the shape of NetCloak's dynamic
// topology expansion: ADD plausible decoy structure (never remove or
// perturb real structure) until every router's joint fingerprint —
// (subnet-size histogram, eBGP peering degree) — is shared by at least k
// routers of its corpus.
//
// Algorithm (add-only, deterministic per (salt, seed)):
//   1. Extract per-router fingerprints and group them into equivalence
//      classes. Classes with >= k members are NEVER touched — that makes
//      the pass idempotent (defended output re-defends to a fixed point).
//   2. Sort the deficient routers deterministically and chunk them into
//      groups of >= k (absorbing the smallest satisfied class when fewer
//      than k routers are deficient). Every group member is padded UP to
//      the group's bucketwise-maximum histogram and maximum degree, so
//      all members of a group end with the identical fingerprint.
//   3. Decoy subnets are carved from a /8 whose first octet appears
//      nowhere in the corpus (so a decoy can never shadow real space),
//      through the same gen::AddressPlan region layout real plans use.
//      Decoy lines are rendered in the receiving file's own dialect and
//      style (decoy_render.h) with hash-shaped identifiers.
//   4. Groups are applied in deterministic order until the decoy-line
//      budget (DefenseOptions::budget, a fraction of the corpus's line
//      count) would be exceeded; the pass then stops and reports the
//      honestly achieved k.
//
// Every inserted line is recorded in a DecoyManifest (manifest.h) so
// confanon_audit --decoys can strip the decoys and still prove the
// original structure isomorphic, and verify no decoy shadows real space.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "config/document.h"
#include "core/session.h"
#include "defense/manifest.h"
#include "util/rng.h"

namespace confanon::defense {

struct DefenseReport {
  std::size_t target_k = 0;
  /// Smallest fingerprint class size before / after padding.
  std::size_t baseline_k = 0;
  std::size_t achieved_k = 0;
  std::uint64_t corpus_lines = 0;  // pre-defense line count
  std::uint64_t decoy_lines = 0;
  std::size_t routers = 0;
  std::size_t padded_routers = 0;
  /// True when the budget (or decoy address space) stopped padding
  /// before every group was processed.
  bool budget_exhausted = false;
  int decoy_octet = -1;

  double Overhead() const {
    return corpus_lines == 0
               ? 0.0
               : static_cast<double>(decoy_lines) /
                     static_cast<double>(corpus_lines);
  }

  core::DefenseSummary Summary() const;
  /// One-paragraph human rendering for the CLIs.
  std::string ToString() const;
};

struct DefenseResult {
  DefenseReport report;
  DecoyManifest manifest;
};

/// Runs the pass over an anonymized corpus IN PLACE. options.k <= 1 (or
/// an already k-anonymous corpus) inserts nothing. Deterministic for a
/// given (files, options.k, options.budget, salt, options.seed).
DefenseResult DefendCorpus(std::vector<config::ConfigFile>& files,
                           const core::DefenseOptions& options,
                           std::string_view salt);

/// The first octets the decoy planner may draw from: the generator's
/// public-looking space, 4..126 and 128..191, excluding 10 (exposed so
/// the negative-path test can iterate the full domain).
std::vector<int> DecoyOctetCandidates();

/// Picks a candidate octet that appears in no IPv4 token of the corpus
/// and whose /8 neither contains nor is contained by any interface
/// subnet. Returns -1 when every candidate collides.
int ChooseDecoyOctet(const std::vector<config::ConfigFile>& files,
                     util::Rng& rng);

}  // namespace confanon::defense
