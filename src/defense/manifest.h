// Decoy manifest: the machine-readable record of what the defense pass
// injected, and where.
//
// The defense (see defense.h) k-anonymizes router fingerprints by adding
// decoy structure to anonymized output. That is a deliberate, flagged
// deviation from the paper's structure-preservation contract — so every
// insertion is recorded here: per-file line regions plus the global decoy
// prefixes and ASNs. The manifest is what lets a third-party auditor
// (confanon_audit --decoys) strip the decoys back out and still prove the
// ORIGINAL structure isomorphic to the pre-anonymization corpus, and what
// lets it verify that no decoy shadows real address space (AUD-D001).
//
// Serialization is a line-oriented text format (stable, diffable,
// hand-checkable):
//
//   # confanon decoy manifest v1
//   octet 23
//   prefix 23.0.0.0/28
//   asn 64531
//   region <file> <begin> <end>
//
// `region` lines give half-open zero-based line ranges in the DEFENDED
// file; file names must not contain whitespace (pipeline file names are
// hashed hostnames, which never do).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "config/document.h"
#include "net/prefix.h"

namespace confanon::defense {

/// All decoy regions of one defended file, ascending and disjoint.
struct FileDecoys {
  std::string file;  // ConfigFile::name() (no ".cfg" suffix)
  std::vector<config::LineRegion> regions;

  bool operator==(const FileDecoys&) const = default;
};

struct DecoyManifest {
  /// First octet of the decoy /8 the subnets were carved from (-1 when
  /// the pass injected nothing).
  int octet = -1;
  std::vector<FileDecoys> files;        // sorted by file name
  std::vector<net::Prefix> prefixes;    // every decoy subnet, sorted
  std::vector<std::uint32_t> asns;      // every decoy peer ASN, sorted

  bool Empty() const;
  std::size_t TotalDecoyLines() const;

  std::string Serialize() const;
  /// Returns nullopt on malformed input (unknown directive, bad range).
  static std::optional<DecoyManifest> Parse(std::string_view text);

  bool operator==(const DecoyManifest&) const = default;
};

}  // namespace confanon::defense
