#include "defense/defense.h"

#include <algorithm>
#include <array>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "analysis/fingerprint.h"
#include "config/tokenizer.h"
#include "defense/decoy_render.h"
#include "gen/addressing.h"
#include "util/strings.h"

namespace confanon::defense {

namespace {

constexpr std::size_t kNoPos = ~std::size_t{0};

std::string_view StripSemicolon(std::string_view token) {
  if (!token.empty() && token.back() == ';') token.remove_suffix(1);
  return token;
}

/// Everything DefendCorpus needs to know about one receiving file:
/// dialect, style, and the line indices decoys splice into (all indices
/// refer to the ORIGINAL lines; insertions are applied at the end).
struct FilePlan {
  bool junos = false;
  IosStyle style;
  // IOS: end of the `router bgp` block body (kNoPos when the file has
  // none), its local ASN, and the tail slot (before the trailing "end").
  std::size_t ios_bgp_insert = kNoPos;
  std::uint32_t ios_local_asn = 0;
  std::size_t ios_iface_insert = kNoPos;  // after the last interface block
  std::size_t tail_insert = 0;
  // JunOS: the closing brace lines of `interfaces { ... }` and of
  // `protocols { bgp { ... } }` (kNoPos when absent).
  std::size_t junos_iface_insert = kNoPos;
  std::size_t junos_group_insert = kNoPos;
  // Interface names already taken in this file.
  std::set<std::string, std::less<>> names;
  // Decoy interface numbering cursors.
  int ios_fe_port = 0;
  int ios_serial_port = 0;
  int ios_loopback = 100;
  int junos_fe_port = 0;
  int junos_so_port = 0;
  int junos_lo = 1;
};

FilePlan AnalyzeFile(const config::ConfigFile& file, bool junos) {
  FilePlan plan;
  plan.junos = junos;
  const auto& lines = file.lines();
  plan.tail_insert = lines.size();

  if (!junos) {
    plan.style = DetectIosStyle(file);
    std::size_t last_interface = kNoPos;
    bool in_bgp = false;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      const config::SplitLine split = config::SplitConfigLine(lines[i]);
      const auto& words = split.words;
      if (words.empty()) continue;
      const std::string first = util::ToLower(words[0]);
      if (split.indent == 0) {
        if (in_bgp) {
          plan.ios_bgp_insert = i;  // first top-level line after the block
          in_bgp = false;
        }
        if (first == "interface") {
          last_interface = i;
          if (words.size() >= 2) plan.names.emplace(words[1]);
        } else if (first == "router" && words.size() >= 3 &&
                   util::ToLower(words[1]) == "bgp") {
          std::uint64_t asn = 0;
          if (util::ParseUint(words[2], 65535, asn)) {
            plan.ios_local_asn = static_cast<std::uint32_t>(asn);
          }
          in_bgp = true;
        } else if (first == "end" && words.size() == 1) {
          plan.tail_insert = i;
        }
      }
    }
    if (in_bgp) plan.ios_bgp_insert = lines.size();
    // Decoy interfaces go right after the last interface block: the
    // first top-level line following the last `interface` header.
    if (last_interface != kNoPos) {
      for (std::size_t i = last_interface + 1; i < lines.size(); ++i) {
        const config::SplitLine split = config::SplitConfigLine(lines[i]);
        if (split.words.empty() || split.indent != 0) continue;
        // Land after the "!" that closes the last block, or directly
        // before the first unrelated top-level line.
        plan.ios_iface_insert = util::Trim(lines[i]) == "!" ? i + 1 : i;
        break;
      }
    }
    if (plan.ios_iface_insert == kNoPos) {
      plan.ios_iface_insert = plan.tail_insert;
    }
    return plan;
  }

  // JunOS: find the closing braces of the top-level `interfaces` block
  // and of `protocols { bgp {`, tracking the open-block stack.
  std::vector<std::string> stack;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string_view trimmed = util::Trim(lines[i]);
    if (trimmed == "}") {
      if (!stack.empty()) {
        if (stack.size() == 1 && stack[0] == "interfaces" &&
            plan.junos_iface_insert == kNoPos) {
          plan.junos_iface_insert = i;
        }
        if (stack.size() == 2 && stack[0] == "protocols" &&
            stack[1] == "bgp" && plan.junos_group_insert == kNoPos) {
          plan.junos_group_insert = i;
        }
        stack.pop_back();
      }
      continue;
    }
    if (trimmed.empty() || trimmed.back() != '{') continue;
    const config::SplitLine split = config::SplitConfigLine(lines[i]);
    if (split.words.empty()) continue;
    if (stack.size() == 1 && stack[0] == "interfaces") {
      plan.names.emplace(split.words[0]);
    }
    stack.push_back(util::ToLower(split.words[0]));
  }
  return plan;
}

/// Next unused decoy interface name of the right flavor for `length`.
std::string NextDecoyName(FilePlan& plan, int length) {
  for (;;) {
    std::string name;
    if (!plan.junos) {
      if (length >= 32) {
        name = "Loopback" + std::to_string(plan.ios_loopback++);
      } else if (length >= 30) {
        name = "Serial9/" + std::to_string(plan.ios_serial_port++);
      } else {
        name = "FastEthernet9/" + std::to_string(plan.ios_fe_port++);
      }
    } else {
      if (length >= 32) {
        name = "lo" + std::to_string(plan.junos_lo++);
      } else if (length >= 30) {
        name = "so-9/" + std::to_string(plan.junos_so_port++);
      } else {
        name = "fe-9/" + std::to_string(plan.junos_fe_port++);
      }
    }
    if (plan.names.emplace(name).second) return name;
  }
}

/// One staged splice: `lines` inserted before original index `pos`.
struct Insertion {
  std::size_t pos = 0;
  std::size_t seq = 0;  // tie-break for equal positions (staging order)
  std::vector<std::string> lines;
};

/// Applies a file's insertions and returns the decoy regions in final
/// (post-insertion) coordinates, adjacent regions merged.
std::vector<config::LineRegion> ApplyInsertions(
    config::ConfigFile& file, std::vector<Insertion> insertions) {
  std::sort(insertions.begin(), insertions.end(),
            [](const Insertion& a, const Insertion& b) {
              return a.pos != b.pos ? a.pos < b.pos : a.seq < b.seq;
            });
  std::vector<config::LineRegion> regions;
  std::size_t shift = 0;
  for (const Insertion& insertion : insertions) {
    const std::size_t begin = insertion.pos + shift;
    const std::size_t end = begin + insertion.lines.size();
    if (!regions.empty() && regions.back().end == begin) {
      regions.back().end = end;
    } else {
      regions.push_back(config::LineRegion{begin, end});
    }
    shift += insertion.lines.size();
  }
  std::vector<std::string>& lines = file.mutable_lines();
  for (auto it = insertions.rbegin(); it != insertions.rend(); ++it) {
    lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(it->pos),
                 it->lines.begin(), it->lines.end());
  }
  return regions;
}

std::set<std::uint32_t> CollectLocalAsns(
    const std::vector<config::ConfigFile>& files) {
  std::set<std::uint32_t> asns;
  for (const config::ConfigFile& file : files) {
    for (const std::string_view raw : file.lines()) {
      const config::SplitLine split = config::SplitConfigLine(raw);
      const auto& words = split.words;
      if (words.empty()) continue;
      const std::string first = util::ToLower(words[0]);
      std::uint64_t asn = 0;
      if (split.indent == 0 && first == "router" && words.size() >= 3 &&
          util::ToLower(words[1]) == "bgp" &&
          util::ParseUint(words[2], 65535, asn)) {
        asns.insert(static_cast<std::uint32_t>(asn));
      } else if (first == "autonomous-system" && words.size() >= 2 &&
                 util::ParseUint(StripSemicolon(words[1]), 65535, asn)) {
        asns.insert(static_cast<std::uint32_t>(asn));
      }
    }
  }
  return asns;
}

std::uint32_t ModalLocalAsn(const std::vector<config::ConfigFile>& files,
                            util::Rng& rng,
                            std::set<std::uint32_t>& forbidden) {
  std::map<std::uint32_t, std::size_t> counts;
  for (const config::ConfigFile& file : files) {
    for (const std::string_view raw : file.lines()) {
      const config::SplitLine split = config::SplitConfigLine(raw);
      const auto& words = split.words;
      std::uint64_t asn = 0;
      if (split.indent == 0 && !words.empty() &&
          util::ToLower(words[0]) == "router" && words.size() >= 3 &&
          util::ToLower(words[1]) == "bgp" &&
          util::ParseUint(words[2], 65535, asn)) {
        ++counts[static_cast<std::uint32_t>(asn)];
      }
    }
  }
  std::uint32_t best = 0;
  std::size_t best_count = 0;
  for (const auto& [asn, count] : counts) {
    if (count > best_count) {
      best = asn;
      best_count = count;
    }
  }
  if (best_count > 0) return best;
  // No IOS bgp speaker anywhere: invent a deterministic local ASN for
  // decoy blocks and keep decoy peers distinct from it.
  const auto invented = static_cast<std::uint32_t>(rng.Between(55000, 59999));
  forbidden.insert(invented);
  return invented;
}

std::uint32_t DrawDecoyAsn(util::Rng& rng,
                           const std::set<std::uint32_t>& forbidden) {
  for (;;) {
    const auto asn = static_cast<std::uint32_t>(rng.Between(60000, 64999));
    if (!forbidden.contains(asn)) return asn;
  }
}

}  // namespace

core::DefenseSummary DefenseReport::Summary() const {
  core::DefenseSummary summary;
  summary.target_k = target_k;
  summary.achieved_k = achieved_k;
  summary.decoy_lines = decoy_lines;
  summary.overhead = Overhead();
  return summary;
}

std::string DefenseReport::ToString() const {
  std::ostringstream out;
  out << "defense: k target " << target_k << ", baseline " << baseline_k
      << ", achieved " << achieved_k << "; " << decoy_lines
      << " decoy lines over " << corpus_lines << " ("
      << static_cast<double>(static_cast<std::uint64_t>(
             Overhead() * 10000.0 + 0.5)) /
             100.0
      << "% overhead), " << padded_routers << "/" << routers
      << " routers padded";
  if (budget_exhausted) out << " [budget exhausted]";
  if (decoy_octet >= 0) out << ", decoy block " << decoy_octet << ".0.0.0/8";
  return out.str();
}

std::vector<int> DecoyOctetCandidates() {
  std::vector<int> candidates;
  for (int octet = 4; octet <= 126; ++octet) {
    if (octet != 10) candidates.push_back(octet);
  }
  for (int octet = 128; octet <= 191; ++octet) candidates.push_back(octet);
  return candidates;
}

int ChooseDecoyOctet(const std::vector<config::ConfigFile>& files,
                     util::Rng& rng) {
  // Every IPv4-shaped token in the corpus poisons its first octet —
  // interface addresses, neighbor addresses, ACL operands, NTP servers:
  // a decoy block must be disjoint from ALL of it.
  std::array<bool, 256> used{};
  std::vector<net::Prefix> subnets;
  for (const config::ConfigFile& file : files) {
    for (const std::string_view raw : file.lines()) {
      for (const std::string_view word : config::SplitConfigLine(raw).words) {
        std::string_view token = StripSemicolon(word);
        const std::size_t slash = token.find('/');
        if (slash != std::string_view::npos) token = token.substr(0, slash);
        if (const auto address = net::Ipv4Address::Parse(token)) {
          used[address->value() >> 24] = true;
        }
      }
    }
    for (const net::Prefix& subnet : analysis::CollectInterfaceSubnets(file)) {
      if (subnet.length() < 8) subnets.push_back(subnet);
    }
  }
  std::vector<int> candidates = DecoyOctetCandidates();
  rng.Shuffle(candidates);
  for (const int octet : candidates) {
    if (used[static_cast<std::size_t>(octet)]) continue;
    const net::Prefix block(
        net::Ipv4Address(static_cast<std::uint32_t>(octet) << 24), 8);
    bool shadowed = false;
    for (const net::Prefix& subnet : subnets) {
      // Octet disjointness already rules out subnets of length >= 8;
      // only shorter-than-/8 interface subnets can still contain the
      // candidate block.
      if (subnet.Contains(block)) {
        shadowed = true;
        break;
      }
    }
    if (!shadowed) return octet;
  }
  return -1;
}

DefenseResult DefendCorpus(std::vector<config::ConfigFile>& files,
                           const core::DefenseOptions& options,
                           std::string_view salt) {
  DefenseResult result;
  DefenseReport& report = result.report;
  report.target_k = static_cast<std::size_t>(options.k < 0 ? 0 : options.k);
  report.routers = files.size();
  for (const config::ConfigFile& file : files) {
    report.corpus_lines += file.LineCount();
  }

  std::vector<analysis::RouterFingerprint> fingerprints =
      analysis::ExtractRouterFingerprints(files);
  report.baseline_k = analysis::MinFingerprintClassSize(fingerprints);
  report.achieved_k = report.baseline_k;
  if (files.empty() || report.target_k <= 1 ||
      report.baseline_k >= report.target_k) {
    return result;  // already k-anonymous: the pass is a fixed point
  }

  // --- equivalence classes and the deficient set ---
  std::map<std::string, std::vector<std::size_t>> classes;
  for (std::size_t i = 0; i < files.size(); ++i) {
    classes[fingerprints[i].Key()].push_back(i);
  }
  std::vector<std::size_t> deficient;
  for (const auto& [key, members] : classes) {
    if (members.size() < report.target_k) {
      deficient.insert(deficient.end(), members.begin(), members.end());
    }
  }
  // Fewer deficient routers than k: absorb the smallest satisfied class
  // whole, so the united group still moves together (class size >= k).
  if (deficient.size() < report.target_k) {
    const std::vector<std::size_t>* smallest = nullptr;
    std::size_t smallest_size = 0;
    for (const auto& [key, members] : classes) {
      if (members.size() < report.target_k) continue;
      if (smallest == nullptr || members.size() < smallest_size) {
        smallest = &members;
        smallest_size = members.size();
      }
    }
    if (smallest != nullptr) {
      deficient.insert(deficient.end(), smallest->begin(), smallest->end());
    }
  }

  // Deterministic grouping order: routers with similar weight cluster,
  // which minimizes padding; the file index breaks all ties.
  std::sort(deficient.begin(), deficient.end(),
            [&](std::size_t a, std::size_t b) {
              const auto weight = [&](std::size_t i) {
                return std::make_tuple(fingerprints[i].subnet_sizes.Total(),
                                       fingerprints[i].external_sessions,
                                       fingerprints[i].Key(), i);
              };
              return weight(a) < weight(b);
            });
  std::vector<std::vector<std::size_t>> groups;
  if (deficient.size() < report.target_k) {
    groups.push_back(deficient);  // whole corpus smaller than k
  } else {
    const std::size_t group_count = deficient.size() / report.target_k;
    for (std::size_t g = 0; g < group_count; ++g) {
      const std::size_t begin = g * report.target_k;
      const std::size_t end =
          g + 1 == group_count ? deficient.size() : begin + report.target_k;
      groups.emplace_back(deficient.begin() +
                              static_cast<std::ptrdiff_t>(begin),
                          deficient.begin() + static_cast<std::ptrdiff_t>(end));
    }
  }

  // --- decoy planning substrate ---
  std::uint64_t seed = util::HashSeed(salt);
  seed ^= options.seed + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
  util::Rng rng(seed, "fingerprint-defense");

  const int octet = ChooseDecoyOctet(files, rng);
  report.decoy_octet = octet;
  if (octet < 0) {
    report.budget_exhausted = true;  // no safe decoy space at all
    return result;
  }
  gen::AddressPlan plan(net::Prefix(
      net::Ipv4Address(static_cast<std::uint32_t>(octet) << 24), 8));

  std::set<std::uint32_t> forbidden_asns = CollectLocalAsns(files);
  const std::uint32_t decoy_local_asn =
      ModalLocalAsn(files, rng, forbidden_asns);

  std::vector<FilePlan> file_plans;
  file_plans.reserve(files.size());
  for (const config::ConfigFile& file : files) {
    file_plans.push_back(AnalyzeFile(
        file, core::DetectDialect(file) == core::ConfigDialect::kJunos));
  }

  const auto budget_lines = static_cast<std::uint64_t>(
      options.budget <= 0.0
          ? 0.0
          : options.budget * static_cast<double>(report.corpus_lines));

  // --- pad group by group until the budget is spent ---
  std::vector<std::vector<Insertion>> insertions(files.size());
  std::set<net::Prefix> decoy_prefixes;
  std::set<std::uint32_t> decoy_asns;
  std::size_t seq = 0;
  std::set<std::size_t> padded;

  for (const std::vector<std::size_t>& group : groups) {
    // Group target: bucketwise-max histogram, max degree — the smallest
    // add-only fingerprint every member can reach.
    util::Histogram target;
    int target_sessions = 0;
    for (const std::size_t i : group) {
      for (const int bucket : fingerprints[i].subnet_sizes.Buckets()) {
        const std::uint64_t have = target.Get(bucket);
        const std::uint64_t want = fingerprints[i].subnet_sizes.Get(bucket);
        if (want > have) target.Add(bucket, want - have);
      }
      target_sessions =
          std::max(target_sessions, fingerprints[i].external_sessions);
    }

    // Stage the whole group's insertions before committing any of them:
    // a group is padded atomically or not at all, so every committed
    // group's members end identical.
    std::vector<std::vector<Insertion>> staged(files.size());
    std::set<net::Prefix> staged_prefixes;
    std::set<std::uint32_t> staged_asns;
    std::set<std::size_t> staged_padded;
    std::uint64_t staged_lines = 0;
    bool exhausted = false;

    try {
      for (const std::size_t i : group) {
        FilePlan& fp = file_plans[i];
        std::vector<std::string> iface_lines;   // dialect-level blocks
        std::vector<std::string> group_lines;   // junos bgp groups
        std::vector<std::pair<net::Ipv4Address, std::uint32_t>> ios_peers;

        for (const int bucket : target.Buckets()) {
          const std::uint64_t have = fingerprints[i].subnet_sizes.Get(bucket);
          const std::uint64_t want = target.Get(bucket);
          for (std::uint64_t n = have; n < want; ++n) {
            net::Prefix subnet =
                bucket >= 32
                    ? net::Prefix(plan.AllocateLoopback(), 32)
                    : (bucket == 30 ? plan.AllocateLink()
                                    : plan.AllocateSubnet(bucket));
            staged_prefixes.insert(subnet);
            const std::string name = NextDecoyName(fp, bucket);
            if (fp.junos) {
              const auto block =
                  RenderJunosDecoyInterface(name, 0, subnet, 1);
              iface_lines.insert(iface_lines.end(), block.begin(),
                                 block.end());
            } else {
              const auto block =
                  RenderIosDecoyInterface(fp.style, name, subnet);
              iface_lines.insert(iface_lines.end(), block.begin(),
                                 block.end());
            }
          }
        }

        for (int s = fingerprints[i].external_sessions; s < target_sessions;
             ++s) {
          const net::Prefix link = plan.AllocateLink();
          const net::Ipv4Address peer(link.address().value() + 2);
          staged_prefixes.insert(link);
          const std::uint32_t asn = DrawDecoyAsn(rng, forbidden_asns);
          staged_asns.insert(asn);
          if (fp.junos) {
            const auto block = RenderJunosDecoyGroup(
                HashLikeToken(rng.Next()), asn, peer, 2);
            group_lines.insert(group_lines.end(), block.begin(),
                               block.end());
          } else {
            ios_peers.emplace_back(peer, asn);
          }
        }

        // Splice the member's decoys at the file's natural seams.
        if (!fp.junos) {
          if (!iface_lines.empty()) {
            staged[i].push_back(
                Insertion{fp.ios_iface_insert, seq++, iface_lines});
          }
          if (!ios_peers.empty()) {
            if (fp.ios_bgp_insert != kNoPos) {
              std::vector<std::string> lines;
              for (const auto& [address, asn] : ios_peers) {
                // A decoy peer ASN never equals any local ASN, so the
                // session always counts as external in this file too.
                lines.push_back(
                    RenderIosDecoyNeighbor(fp.style, address, asn));
              }
              staged[i].push_back(
                  Insertion{fp.ios_bgp_insert, seq++, lines});
            } else {
              staged[i].push_back(Insertion{
                  fp.tail_insert, seq++,
                  RenderIosDecoyBgpBlock(fp.style, decoy_local_asn,
                                         ios_peers)});
            }
          }
        } else {
          if (!iface_lines.empty()) {
            if (fp.junos_iface_insert != kNoPos) {
              staged[i].push_back(
                  Insertion{fp.junos_iface_insert, seq++, iface_lines});
            } else {
              std::vector<std::string> wrapped;
              wrapped.push_back("interfaces {");
              wrapped.insert(wrapped.end(), iface_lines.begin(),
                             iface_lines.end());
              wrapped.push_back("}");
              staged[i].push_back(
                  Insertion{fp.tail_insert, seq++, wrapped});
            }
          }
          if (!group_lines.empty()) {
            if (fp.junos_group_insert != kNoPos) {
              staged[i].push_back(
                  Insertion{fp.junos_group_insert, seq++, group_lines});
            } else {
              std::vector<std::string> wrapped;
              wrapped.push_back("protocols {");
              wrapped.push_back(JunosIndent(1) + "bgp {");
              wrapped.insert(wrapped.end(), group_lines.begin(),
                             group_lines.end());
              wrapped.push_back(JunosIndent(1) + "}");
              wrapped.push_back("}");
              staged[i].push_back(
                  Insertion{fp.tail_insert, seq++, wrapped});
            }
          }
        }
        for (const Insertion& insertion : staged[i]) {
          staged_lines += insertion.lines.size();
        }
        if (!staged[i].empty()) staged_padded.insert(i);
      }
    } catch (const std::runtime_error&) {
      exhausted = true;  // decoy address plan ran dry mid-group
    }

    if (exhausted || report.decoy_lines + staged_lines > budget_lines) {
      // Stop at the first unaffordable group (never skip-and-continue):
      // the affordable prefix grows monotonically with the budget, which
      // is what makes achieved k monotone in it.
      report.budget_exhausted = true;
      break;
    }
    for (std::size_t i = 0; i < files.size(); ++i) {
      insertions[i].insert(insertions[i].end(), staged[i].begin(),
                           staged[i].end());
    }
    decoy_prefixes.insert(staged_prefixes.begin(), staged_prefixes.end());
    decoy_asns.insert(staged_asns.begin(), staged_asns.end());
    padded.insert(staged_padded.begin(), staged_padded.end());
    report.decoy_lines += staged_lines;
  }

  // --- apply, then re-measure (never trust the plan: the achieved k is
  // re-extracted from the mutated corpus by the same code the attack
  // experiment uses) ---
  for (std::size_t i = 0; i < files.size(); ++i) {
    if (insertions[i].empty()) continue;
    std::vector<config::LineRegion> regions =
        ApplyInsertions(files[i], std::move(insertions[i]));
    result.manifest.files.push_back(
        FileDecoys{files[i].name(), std::move(regions)});
  }
  std::sort(result.manifest.files.begin(), result.manifest.files.end(),
            [](const FileDecoys& a, const FileDecoys& b) {
              return a.file < b.file;
            });
  result.manifest.octet = report.decoy_lines > 0 ? octet : -1;
  result.manifest.prefixes.assign(decoy_prefixes.begin(),
                                  decoy_prefixes.end());
  result.manifest.asns.assign(decoy_asns.begin(), decoy_asns.end());
  report.padded_routers = padded.size();
  report.achieved_k =
      analysis::MinFingerprintClassSize(analysis::ExtractRouterFingerprints(files));
  return result;
}

}  // namespace confanon::defense
