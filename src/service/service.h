// confanond's application layer: tenant-scoped anonymization over HTTP.
//
// The batch tools build a ServiceContext + Session per run and throw both
// away; the daemon is the long-running form of the same API. One
// AnonymizationService owns
//
//   * a shared process-lifetime core::ServiceContext (immutable pass-list
//     automaton, dialect engine factories, hooks, thread budget), and
//   * a registry of per-tenant core::Sessions, created lazily on first
//     use and keyed by the X-Confanon-Tenant request header. A tenant's
//     salt is "<base salt>:<tenant>" — the same convention
//     `confanon_tool --network-dir` applies to subdirectory names, so a
//     daemon tenant and a CLI run over the same files produce
//     byte-identical output (tested).
//
// Routes (registered on the shared obs::ExpositionServer, satellite 2 —
// the same listener serves /metrics and /healthz):
//
//   POST /v1/anonymize   one config per request; body is the raw config
//                        text, X-Confanon-Tenant selects the session,
//                        X-Confanon-Name (optional) names the file for
//                        dialect detection + reporting. The anonymized
//                        config streams back chunked (Transfer-Encoding:
//                        chunked) with X-Confanon-Dialect echoed.
//   GET  /v1/sessions    JSON array of live sessions (tenant, request
//                        count, cumulative report counters).
//   POST /v1/passlist    installs a per-tenant extra pass-list (body is
//                        one token per line, '#' comments and blanks
//                        skipped). The combined policy — context baseline
//                        plus the uploaded extras — is statically
//                        verified first (src/verify, docs/VERIFY.md);
//                        a dirty verdict is rejected with 422 and the
//                        most severe finding rendered in the body, so a
//                        provably leaky tenant list never reaches a
//                        session. 409 once the tenant has served
//                        requests (mid-stream pass-list changes would
//                        break referential integrity).
//
// Determinism contract: requests within one tenant are serialized on a
// per-tenant mutex (the IP trie's mapping depends on insertion history),
// and every request preloads its own file's addresses (session-form
// CorpusPipeline) — so a tenant's response stream is byte-for-byte what a
// sequential standalone engine fed the same files in the same order
// emits, and the FIRST request on a fresh tenant matches a fresh CLI run
// exactly. Different tenants share nothing and run fully concurrently.
//
// Admission control lives one layer down in obs::ExpositionServer's
// bounded pending queue (the daemon sets overload_status=429); this layer
// only counts what it actually served. All service.* metrics land in the
// context's hooks().metrics registry and are documented in
// docs/OBSERVABILITY.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "core/session.h"
#include "obs/exposition.h"

namespace confanon::service {

/// Limits for the daemon's application layer (transport limits — body
/// size, queue depth — live in obs::ExpositionServer::Options).
struct AnonymizationServiceOptions {
  /// Hard cap on live tenant sessions; further new tenants get 429.
  /// Sessions are never evicted (a tenant's mappings must stay stable for
  /// the daemon's lifetime), so this bounds daemon memory.
  std::size_t max_sessions = 256;
  /// Longest accepted X-Confanon-Tenant value.
  std::size_t max_tenant_length = 128;
};

class AnonymizationService {
 public:
  /// `context` must outlive the service and have both dialect factories
  /// registered (i.e. come from pipeline::MakeServiceContext).
  AnonymizationService(std::shared_ptr<const core::ServiceContext> context,
                       AnonymizationServiceOptions options = {});

  AnonymizationService(const AnonymizationService&) = delete;
  AnonymizationService& operator=(const AnonymizationService&) = delete;

  /// Registers POST /v1/anonymize and GET /v1/sessions on `server`. Call
  /// before server.Start().
  void RegisterRoutes(obs::ExpositionServer& server);

  /// Route bodies (public so tests can drive them without a socket).
  void HandleAnonymize(const obs::HttpRequest& request,
                       obs::HttpResponseWriter& response);
  void HandleSessions(const obs::HttpRequest& request,
                      obs::HttpResponseWriter& response);
  void HandlePassList(const obs::HttpRequest& request,
                      obs::HttpResponseWriter& response);

  /// The session serving `tenant`, or null if it does not exist yet.
  std::shared_ptr<core::Session> FindSession(std::string_view tenant) const;
  std::size_t session_count() const;
  const std::shared_ptr<const core::ServiceContext>& context() const {
    return context_;
  }

  /// Header and default-tenant conventions, shared with tests/docs.
  static constexpr std::string_view kTenantHeader = "x-confanon-tenant";
  static constexpr std::string_view kNameHeader = "x-confanon-name";
  static constexpr std::string_view kDefaultTenant = "default";

 private:
  /// One tenant's long-lived session plus the mutex serializing its
  /// requests (determinism contract above). Entries live until shutdown.
  struct Tenant {
    std::string name;
    std::shared_ptr<core::Session> session;
    std::mutex mutex;
    std::atomic<std::uint64_t> bytes_in{0};
    std::atomic<std::uint64_t> bytes_out{0};
  };

  /// Returns the tenant entry, creating it (and its salted session) on
  /// first use; null when max_sessions would be exceeded.
  std::shared_ptr<Tenant> TenantFor(std::string_view name);

  /// True for names safe to use as a salt suffix and echo into headers:
  /// 1..max_tenant_length chars of [A-Za-z0-9._-].
  bool ValidTenantName(std::string_view name) const;

  std::shared_ptr<const core::ServiceContext> context_;
  AnonymizationServiceOptions options_;

  mutable std::mutex tenants_mutex_;
  std::map<std::string, std::shared_ptr<Tenant>, std::less<>> tenants_;

  std::atomic<std::uint64_t> request_seq_{0};
};

}  // namespace confanon::service
