#include "service/service.h"

#include <chrono>
#include <exception>
#include <utility>
#include <vector>

#include "config/document.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "passlist/passlist.h"
#include "pipeline/pipeline.h"
#include "util/strings.h"
#include "verify/verify.h"

namespace confanon::service {

namespace {

/// Streaming flush threshold: lines accumulate into a buffer this large
/// before going out as one chunk, so a multi-megabyte config neither
/// buffers fully nor pays a syscall per line.
constexpr std::size_t kChunkBytes = 64 * 1024;

const char* DialectName(core::ConfigDialect dialect) {
  switch (dialect) {
    case core::ConfigDialect::kIos: return "ios";
    case core::ConfigDialect::kJunos: return "junos";
    case core::ConfigDialect::kAuto: break;
  }
  return "auto";
}

/// One token per line, blank lines and '#' comments skipped — the same
/// format confanon_audit --passlist accepts from disk.
passlist::PassList ParsePassListBody(std::string_view body) {
  passlist::PassList list;
  while (!body.empty()) {
    const std::size_t eol = body.find('\n');
    const std::string_view line = body.substr(0, eol);
    body = eol == std::string_view::npos ? std::string_view{}
                                         : body.substr(eol + 1);
    const auto token = util::Trim(line);
    if (token.empty() || token.front() == '#') continue;
    list.Add(token);
  }
  return list;
}

}  // namespace

AnonymizationService::AnonymizationService(
    std::shared_ptr<const core::ServiceContext> context,
    AnonymizationServiceOptions options)
    : context_(std::move(context)), options_(options) {}

void AnonymizationService::RegisterRoutes(obs::ExpositionServer& server) {
  server.AddRoute("POST", "/v1/anonymize",
                  [this](const obs::HttpRequest& request,
                         obs::HttpResponseWriter& response) {
                    HandleAnonymize(request, response);
                  });
  server.AddRoute("GET", "/v1/sessions",
                  [this](const obs::HttpRequest& request,
                         obs::HttpResponseWriter& response) {
                    HandleSessions(request, response);
                  });
  server.AddRoute("POST", "/v1/passlist",
                  [this](const obs::HttpRequest& request,
                         obs::HttpResponseWriter& response) {
                    HandlePassList(request, response);
                  });
}

bool AnonymizationService::ValidTenantName(std::string_view name) const {
  if (name.empty() || name.size() > options_.max_tenant_length) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::shared_ptr<AnonymizationService::Tenant> AnonymizationService::TenantFor(
    std::string_view name) {
  const std::lock_guard<std::mutex> lock(tenants_mutex_);
  if (const auto it = tenants_.find(name); it != tenants_.end()) {
    return it->second;
  }
  if (tenants_.size() >= options_.max_sessions) return nullptr;
  auto tenant = std::make_shared<Tenant>();
  tenant->name = std::string(name);
  // The per-tenant salt convention shared with `confanon_tool
  // --network-dir`: a directory named <tenant> under base salt S runs
  // with salt "S:<tenant>", so CLI and daemon mappings agree.
  tenant->session =
      context_->CreateSession(context_->options().base.salt + ":" +
                              tenant->name);
  tenants_.emplace(tenant->name, tenant);
  if (obs::MetricsRegistry* metrics = context_->hooks().metrics) {
    metrics->GaugeNamed("service.sessions")
        .Set(static_cast<std::int64_t>(tenants_.size()));
  }
  return tenant;
}

std::shared_ptr<core::Session> AnonymizationService::FindSession(
    std::string_view tenant) const {
  const std::lock_guard<std::mutex> lock(tenants_mutex_);
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? nullptr : it->second->session;
}

std::size_t AnonymizationService::session_count() const {
  const std::lock_guard<std::mutex> lock(tenants_mutex_);
  return tenants_.size();
}

void AnonymizationService::HandleAnonymize(const obs::HttpRequest& request,
                                           obs::HttpResponseWriter& response) {
  obs::MetricsRegistry* metrics = context_->hooks().metrics;
  const auto start = std::chrono::steady_clock::now();
  const auto fail = [&](int status, std::string_view message) {
    if (metrics != nullptr) {
      metrics->CounterNamed("service.request_errors").Add();
    }
    response.Send(status, "text/plain", message);
  };

  std::string_view tenant_name = request.Header(kTenantHeader);
  if (tenant_name.empty()) tenant_name = kDefaultTenant;
  if (!ValidTenantName(tenant_name)) {
    fail(400, "bad X-Confanon-Tenant (want 1..128 chars of [A-Za-z0-9._-])\n");
    return;
  }
  if (request.body.empty()) {
    fail(400, "empty request body (expected one config file)\n");
    return;
  }

  std::shared_ptr<Tenant> tenant;
  try {
    tenant = TenantFor(tenant_name);
  } catch (const core::PolicyError& error) {
    // The context's verified policy gates session creation (VERIFY.md).
    fail(422, std::string(error.what()) + "\n");
    return;
  }
  if (tenant == nullptr) {
    fail(429, "session limit reached\n");
    return;
  }

  std::string name(request.Header(kNameHeader));
  if (name.empty()) {
    name = "request-" +
           std::to_string(
               request_seq_.fetch_add(1, std::memory_order_relaxed) + 1) +
           ".cfg";
  }
  // Zero-copy ingest: the file's lines alias the request body directly
  // (non-owning backing — the request outlives the pipeline call below,
  // whose output owns its lines).
  config::ConfigFile file = config::ConfigFile::FromBacking(
      std::move(name), request.body,
      std::shared_ptr<const void>(std::shared_ptr<const void>(),
                                  request.body.data()));
  core::ConfigDialect dialect = context_->options().dialect;
  if (dialect == core::ConfigDialect::kAuto) {
    dialect = core::DetectDialect(file);
  }

  // One request = one single-file corpus through the session-form
  // pipeline, under the tenant's mutex: the serialization that makes a
  // tenant's response stream equal the sequential-engine stream.
  std::vector<config::ConfigFile> output;
  {
    const std::lock_guard<std::mutex> lock(tenant->mutex);
    const obs::PhaseProfiler::ScopedPhase phase(
        context_->hooks().profiler, nullptr, "service.request");
    try {
      pipeline::CorpusPipeline pipeline(context_, tenant->session);
      output = pipeline.AnonymizeCorpus({std::move(file)});
      tenant->session->MergeRequest(pipeline.report(), pipeline.leak_record());
    } catch (const std::exception&) {
      fail(500, "anonymization failed\n");
      return;
    }
  }

  if (!response.BeginChunked(
          200, "text/plain; charset=utf-8",
          {{"X-Confanon-Tenant", std::string(tenant_name)},
           {"X-Confanon-Dialect", DialectName(dialect)}})) {
    return;  // peer went away; nothing to account
  }
  std::uint64_t bytes_out = 0;
  std::string chunk;
  chunk.reserve(kChunkBytes + 4096);
  for (const std::string_view line : output.front().lines()) {
    chunk += line;
    chunk += '\n';
    if (chunk.size() >= kChunkBytes) {
      bytes_out += chunk.size();
      if (!response.WriteChunk(chunk)) return;
      chunk.clear();
    }
  }
  bytes_out += chunk.size();
  if (!response.WriteChunk(chunk)) return;
  response.EndChunked();

  tenant->bytes_in.fetch_add(request.body.size(), std::memory_order_relaxed);
  tenant->bytes_out.fetch_add(bytes_out, std::memory_order_relaxed);
  if (metrics != nullptr) {
    metrics->CounterNamed("service.requests").Add();
    metrics->CounterNamed("service.bytes_in").Add(request.body.size());
    metrics->CounterNamed("service.bytes_out").Add(bytes_out);
    metrics->HistogramNamed("service.request_ns")
        .Record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - start)
                .count()));
  }
}

void AnonymizationService::HandleSessions(const obs::HttpRequest& request,
                                          obs::HttpResponseWriter& response) {
  (void)request;
  // Copy the registry under the lock, render outside it.
  std::vector<std::shared_ptr<Tenant>> tenants;
  {
    const std::lock_guard<std::mutex> lock(tenants_mutex_);
    tenants.reserve(tenants_.size());
    for (const auto& [name, tenant] : tenants_) tenants.push_back(tenant);
  }

  obs::JsonWriter json;
  json.BeginObject();
  json.Key("sessions").BeginArray();
  for (const std::shared_ptr<Tenant>& tenant : tenants) {
    const core::AnonymizationReport report = tenant->session->report();
    json.BeginObject();
    json.Key("tenant").Value(tenant->name);
    json.Key("requests").Value(tenant->session->requests());
    json.Key("bytes_in")
        .Value(tenant->bytes_in.load(std::memory_order_relaxed));
    json.Key("bytes_out")
        .Value(tenant->bytes_out.load(std::memory_order_relaxed));
    json.Key("lines").Value(report.total_lines);
    json.Key("words_hashed").Value(report.words_hashed);
    json.Key("addresses_mapped").Value(report.addresses_mapped);
    const core::DefenseSummary defense = tenant->session->defense();
    json.Key("defend_k").Value(static_cast<std::uint64_t>(defense.target_k));
    json.Key("achieved_k")
        .Value(static_cast<std::uint64_t>(defense.achieved_k));
    json.Key("decoy_lines").Value(defense.decoy_lines);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  response.Send(200, "application/json", json.str());
}

void AnonymizationService::HandlePassList(const obs::HttpRequest& request,
                                          obs::HttpResponseWriter& response) {
  obs::MetricsRegistry* metrics = context_->hooks().metrics;
  const auto fail = [&](int status, std::string_view message) {
    if (metrics != nullptr) {
      metrics->CounterNamed("service.request_errors").Add();
    }
    response.Send(status, "text/plain", message);
  };

  std::string_view tenant_name = request.Header(kTenantHeader);
  if (tenant_name.empty()) tenant_name = kDefaultTenant;
  if (!ValidTenantName(tenant_name)) {
    fail(400, "bad X-Confanon-Tenant (want 1..128 chars of [A-Za-z0-9._-])\n");
    return;
  }
  if (request.body.empty()) {
    fail(400, "empty request body (expected one token per line)\n");
    return;
  }

  passlist::PassList extras = ParsePassListBody(request.body);

  // Statically verify the combined policy — the context baseline plus
  // these extras — before any session sees a single token. A provably
  // leaky tenant list must be rejected here, not discovered in output.
  core::AnonymizerOptions combined = context_->options().base;
  combined.extra_pass_list.Merge(extras);
  const audit::AuditResult verification =
      verify::VerifyEngineOptions(combined);
  if (metrics != nullptr) {
    for (const auto& [name, value] : verification.stats) {
      metrics->CounterNamed(name).Add(value);
    }
  }
  const core::PolicyVerdict verdict = verify::VerdictOf(verification);
  const bool clean =
      verdict.errors == 0 &&
      (verdict.warnings == 0 || context_->options().allow_policy_warnings);
  if (!clean) {
    if (metrics != nullptr) {
      metrics->CounterNamed("service.passlist_rejected").Add();
    }
    fail(422, "pass-list failed policy verification: " +
                  verdict.first_finding + "\n");
    return;
  }

  std::shared_ptr<Tenant> tenant;
  try {
    tenant = TenantFor(tenant_name);
  } catch (const core::PolicyError& error) {
    fail(422, std::string(error.what()) + "\n");
    return;
  }
  if (tenant == nullptr) {
    fail(429, "session limit reached\n");
    return;
  }

  const std::size_t entries = extras.Entries().size();
  {
    const std::lock_guard<std::mutex> lock(tenant->mutex);
    try {
      tenant->session->SetExtraPassList(std::move(extras));
    } catch (const std::logic_error&) {
      fail(409,
           "tenant has already served requests; its pass-list is "
           "immutable for the session's lifetime\n");
      return;
    }
  }
  if (metrics != nullptr) {
    metrics->CounterNamed("service.passlist_installed").Add();
  }

  obs::JsonWriter json;
  json.BeginObject();
  json.Key("tenant").Value(std::string(tenant_name));
  json.Key("entries").Value(static_cast<std::uint64_t>(entries));
  json.Key("verified").Value(true);
  json.Key("warnings").Value(static_cast<std::uint64_t>(verdict.warnings));
  json.Key("notes").Value(static_cast<std::uint64_t>(verdict.notes));
  json.EndObject();
  response.Send(200, "application/json", json.str());
}

}  // namespace confanon::service
