// Synthetic network generator.
//
// Produces NetworkSpecs with realistic structure: POP-organized backbone
// topologies (or enterprise campus trees), hierarchical addressing, OSPF
// areas with RIP/EIGRP pockets, iBGP meshes over loopbacks, eBGP peerings
// to named ISPs with policy (route-maps, ACLs, community- and as-path
// lists), and — at the rates the paper measured across its 31 networks —
// regexps using digit ranges, alternation, and community expressions.
// Identity leaks are planted exactly where the paper found them: hostnames,
// descriptions, banners, route-map names, SNMP strings, peer ASNs.
#pragma once

#include "gen/model.h"

namespace confanon::gen {

struct GeneratorParams {
  std::uint64_t seed = 1;
  NetworkProfile profile = NetworkProfile::kBackbone;
  /// Total routers in the network.
  int router_count = 40;

  // Per-network probabilities of the policy-regex features, defaulting to
  // the paper's observed rates over 31 networks (Sections 4.4-4.5).
  double p_public_range_regex = 2.0 / 31;
  double p_private_range_regex = 3.0 / 31;
  double p_alternation_regex = 10.0 / 31;
  double p_community_regex = 5.0 / 31;
  /// Conditional on using community regexps, probability that ranges
  /// appear in them (paper: 2 of the 5 networks).
  double p_community_range_given_regex = 2.0 / 5;

  /// Probability the network compartmentalizes internally (paper: 10/31),
  /// split evenly across the mechanisms when it fires.
  double p_compartmentalized = 10.0 / 31;
};

/// Generates the `index`-th network of a corpus. Deterministic in
/// (params.seed, index).
NetworkSpec GenerateNetwork(const GeneratorParams& params, int index);

/// Convenience: a corpus of `count` networks whose router counts follow a
/// skewed distribution (a few big backbones, many small networks), scaled
/// so the corpus totals roughly `total_routers`.
std::vector<NetworkSpec> GenerateCorpus(const GeneratorParams& params,
                                        int count, int total_routers);

}  // namespace confanon::gen
