#include "gen/config_writer.h"

#include "config/dialect.h"
#include "net/special.h"
#include "util/strings.h"

namespace confanon::gen {

namespace {

/// Wildcard (inverse) mask for a prefix length, as ACLs and OSPF network
/// statements use.
std::string WildcardOf(int prefix_length) {
  const std::uint32_t mask =
      prefix_length == 0 ? ~std::uint32_t{0}
                         : ~(~std::uint32_t{0} << (32 - prefix_length));
  return net::Ipv4Address(mask).ToString();
}

std::string MaskOf(int prefix_length) {
  return net::PrefixLengthToNetmask(prefix_length).ToString();
}

class Writer {
 public:
  Writer(const RouterSpec& router, const NetworkSpec& network)
      : router_(router),
        network_(network),
        dialect_(config::MakeDialect(router.dialect)),
        indent_(dialect_.single_space_indent ? " " : "  ") {}

  config::ConfigFile Render() {
    Preamble();
    Interfaces();
    RoutingProcesses();
    PolicyObjects();
    StaticRoutes();
    Nat();
    Management();
    Epilogue();
    return config::ConfigFile(router_.hostname, std::move(lines_));
  }

 private:
  void Line(std::string text) { lines_.push_back(std::move(text)); }
  void Bang() { lines_.push_back("!"); }

  void Preamble() {
    Line("version " + dialect_.version_line);
    if (dialect_.verbose_timestamps) {
      Line("service timestamps debug datetime msec");
      Line("service timestamps log datetime msec");
    } else {
      Line("service timestamps");
    }
    Line("service password-encryption");
    Bang();
    Line("hostname " + router_.hostname);
    Bang();
    if (!router_.banner.empty()) {
      Line("banner motd ^C");
      Line(router_.banner);
      Line("Access strictly prohibited!");
      Line("^C");
      Bang();
    }
    if (router_.aaa_new_model) {
      Line("aaa new-model");
      Line("aaa authentication login default local");
      Line("aaa authorization exec default local");
      Bang();
    }
    if (!router_.domain_name.empty()) {
      Line("ip domain-name " + router_.domain_name);
    }
    if (dialect_.emits_subnet_zero) Line("ip subnet-zero");
    if (dialect_.emits_ip_classless) Line("ip classless");
    Bang();
  }

  void Interfaces() {
    for (const InterfaceSpec& iface : router_.interfaces) {
      std::string header = "interface " + iface.name;
      if (iface.point_to_point && iface.name.find('.') != std::string::npos) {
        header += " point-to-point";
      }
      Line(header);
      if (!iface.description.empty()) {
        Line(indent_ + "description " + iface.description);
      }
      const std::string gap = dialect_.double_space_artifact ? "  " : " ";
      Line(indent_ + "ip address " + iface.address.ToString() + gap +
           MaskOf(iface.prefix_length));
      if (util::StartsWith(iface.name, "Serial") &&
          iface.name.find('.') == std::string::npos) {
        Line(indent_ + "bandwidth 1544");
        Line(indent_ + "no fair-queue");
      } else if (dialect_.interface_generation >= 1 &&
                 iface.name.find("Ethernet") != std::string::npos) {
        Line(indent_ + "duplex auto");
        Line(indent_ + "speed auto");
      }
      if (iface.shutdown) Line(indent_ + "shutdown");
      Bang();
    }
  }

  void RoutingProcesses() {
    for (const IgpSpec& igp : router_.igps) {
      switch (igp.kind) {
        case IgpKind::kOspf: {
          Line("router ospf " + std::to_string(igp.process_id));
          for (const net::Prefix& n : igp.backbone_networks) {
            Line(indent_ + "network " + n.address().ToString() + " " +
                 WildcardOf(n.length()) + " area 0");
          }
          for (const net::Prefix& n : igp.networks) {
            Line(indent_ + "network " + n.address().ToString() + " " +
                 WildcardOf(n.length()) + " area " +
                 std::to_string(igp.ospf_area));
          }
          for (const std::string& passive : igp.passive_interfaces) {
            Line(indent_ + "passive-interface " + passive);
          }
          if (igp.redistribute_connected) {
            Line(indent_ + "redistribute connected subnets");
          }
          if (igp.distribute_list_acl.has_value()) {
            Line(indent_ + "distribute-list " +
                 std::to_string(*igp.distribute_list_acl) + " in");
          }
          break;
        }
        case IgpKind::kRip: {
          Line("router rip");
          if (dialect_.rip_version2) Line(indent_ + "version 2");
          for (const net::Prefix& n : igp.networks) {
            Line(indent_ + "network " + n.address().ToString());
          }
          if (dialect_.emits_no_auto_summary) {
            Line(indent_ + "no auto-summary");
          }
          if (igp.distribute_list_acl.has_value()) {
            Line(indent_ + "distribute-list " +
                 std::to_string(*igp.distribute_list_acl) + " in");
          }
          break;
        }
        case IgpKind::kEigrp: {
          Line("router eigrp " + std::to_string(igp.process_id));
          for (const net::Prefix& n : igp.networks) {
            Line(indent_ + "network " + n.address().ToString() + " " +
                 WildcardOf(n.length()));
          }
          if (dialect_.emits_no_auto_summary) {
            Line(indent_ + "no auto-summary");
          }
          break;
        }
      }
      Bang();
    }

    if (router_.bgp.has_value()) {
      const BgpSpec& bgp = *router_.bgp;
      Line("router bgp " + std::to_string(bgp.asn));
      if (dialect_.emits_bgp_log_neighbor_changes) {
        Line(indent_ + "bgp log-neighbor-changes");
      }
      if (bgp.redistribute_igp) {
        // Redistribute whichever IGP the router runs (the paper's Figure 1
        // redistributes RIP into BGP).
        for (const IgpSpec& igp : router_.igps) {
          switch (igp.kind) {
            case IgpKind::kOspf:
              Line(indent_ + "redistribute ospf " +
                   std::to_string(igp.process_id));
              break;
            case IgpKind::kRip:
              Line(indent_ + "redistribute rip");
              break;
            case IgpKind::kEigrp:
              Line(indent_ + "redistribute eigrp " +
                   std::to_string(igp.process_id));
              break;
          }
        }
      }
      for (const net::Prefix& n : bgp.networks) {
        Line(indent_ + "network " + n.address().ToString() + " mask " +
             MaskOf(n.length()));
      }
      const std::string gap = dialect_.double_space_artifact ? "  " : " ";
      for (const BgpNeighborSpec& neighbor : bgp.neighbors) {
        const std::string peer = neighbor.address.ToString();
        Line(indent_ + "neighbor " + peer + " remote-as" + gap +
             std::to_string(neighbor.remote_asn));
        if (neighbor.update_source.has_value()) {
          Line(indent_ + "neighbor " + peer + " update-source Loopback0");
        }
        if (neighbor.next_hop_self) {
          Line(indent_ + "neighbor " + peer + " next-hop-self");
        }
        if (neighbor.send_community) {
          Line(indent_ + "neighbor " + peer + " send-community");
        }
        if (neighbor.password.has_value()) {
          Line(indent_ + "neighbor " + peer + " password " +
               *neighbor.password);
        }
        if (!neighbor.import_map.empty()) {
          Line(indent_ + "neighbor " + peer + " route-map " +
               neighbor.import_map + " in");
        }
        if (!neighbor.export_map.empty()) {
          Line(indent_ + "neighbor " + peer + " route-map " +
               neighbor.export_map + " out");
        }
      }
      if (dialect_.emits_no_auto_summary) Line(indent_ + "no auto-summary");
      Bang();
    }
  }

  void PolicyObjects() {
    for (const RouteMapSpec& map : router_.route_maps) {
      for (const RouteMapClauseSpec& clause : map.clauses) {
        Line("route-map " + map.name + (clause.permit ? " permit " : " deny ") +
             std::to_string(clause.sequence));
        if (clause.match_as_path.has_value()) {
          Line(indent_ + "match as-path " +
               std::to_string(*clause.match_as_path));
        }
        if (clause.match_community.has_value()) {
          Line(indent_ + "match community " + *clause.match_community);
        }
        if (clause.match_acl.has_value()) {
          Line(indent_ + "match ip address " +
               std::to_string(*clause.match_acl));
        }
        if (clause.match_prefix_list.has_value()) {
          Line(indent_ + "match ip address prefix-list " +
               *clause.match_prefix_list);
        }
        if (clause.set_community.has_value()) {
          Line(indent_ + "set community " + *clause.set_community);
        }
        if (clause.set_local_preference.has_value()) {
          Line(indent_ + "set local-preference " +
               std::to_string(*clause.set_local_preference));
        }
        if (clause.set_med.has_value()) {
          Line(indent_ + "set metric " + std::to_string(*clause.set_med));
        }
        if (!clause.set_prepend.empty()) {
          std::string prepend = indent_ + "set as-path prepend";
          for (std::uint32_t asn : clause.set_prepend) {
            prepend += ' ';
            prepend += std::to_string(asn);
          }
          Line(prepend);
        }
      }
      Bang();
    }

    for (const AclSpec& acl : router_.acls) {
      if (!acl.remark.empty()) {
        Line("access-list " + std::to_string(acl.number) + " remark " +
             acl.remark);
      }
      for (const AclEntrySpec& entry : acl.entries) {
        Line("access-list " + std::to_string(acl.number) +
             (entry.permit ? " permit ip " : " deny ip ") +
             entry.prefix.address().ToString() + " " +
             WildcardOf(entry.prefix.length()));
      }
      Bang();
    }

    for (const CommunityListSpec& list : router_.community_lists) {
      std::string head = "ip community-list ";
      if (list.name.empty()) {
        head += std::to_string(list.number);
      } else {
        head += (list.expanded ? std::string("expanded ")
                               : std::string("standard ")) +
                list.name;
      }
      head += list.permit ? " permit " : " deny ";
      if (list.expanded) {
        Line(head + list.regex);
      } else {
        std::string literals;
        for (std::size_t i = 0; i < list.literals.size(); ++i) {
          if (i > 0) literals += " ";
          literals += list.literals[i];
        }
        Line(head + literals);
      }
    }
    for (const PrefixListSpec& list : router_.prefix_lists) {
      for (const PrefixListEntrySpec& entry : list.entries) {
        std::string line = "ip prefix-list " + list.name + " seq " +
                           std::to_string(entry.sequence) +
                           (entry.permit ? " permit " : " deny ") +
                           entry.prefix.ToString();
        if (entry.ge.has_value()) line += " ge " + std::to_string(*entry.ge);
        if (entry.le.has_value()) line += " le " + std::to_string(*entry.le);
        Line(line);
      }
    }
    for (const AsPathListSpec& list : router_.as_path_lists) {
      Line("ip as-path access-list " + std::to_string(list.number) +
           (list.permit ? " permit " : " deny ") + list.regex);
    }
    if (!router_.community_lists.empty() || !router_.as_path_lists.empty()) {
      Bang();
    }
  }

  void Nat() {
    if (!router_.nat.has_value()) return;
    const NatSpec& nat = *router_.nat;
    Line("ip nat pool " + nat.pool_name + " " + nat.pool_start.ToString() +
         " " + nat.pool_end.ToString() + " netmask " +
         nat.pool_mask.ToString());
    Line("ip nat inside source list " + std::to_string(nat.acl_number) +
         " pool " + nat.pool_name + " overload");
    Bang();
  }

  void StaticRoutes() {
    if (router_.static_routes.empty()) return;
    for (const auto& route : router_.static_routes) {
      Line("ip route " + route.destination.address().ToString() + " " +
           MaskOf(route.destination.length()) + " " +
           route.next_hop.ToString());
    }
    Bang();
  }

  void Management() {
    for (const auto& [secret, peer] : router_.isakmp_keys) {
      Line("crypto isakmp key " + secret + " address " + peer.ToString());
    }
    if (!router_.isakmp_keys.empty()) Bang();
    for (const auto& server : router_.ntp_servers) {
      Line("ntp server " + server.ToString());
    }
    if (!router_.logging_hosts.empty()) {
      Line("logging buffered 16384");
      for (const auto& host : router_.logging_hosts) {
        Line("logging " + host.ToString());
      }
    }
    if (!router_.ntp_servers.empty() || !router_.logging_hosts.empty()) {
      Bang();
    }
    if (!router_.snmp_community.empty()) {
      Line("snmp-server community " + router_.snmp_community + " " +
           (dialect_.snmp_upper ? "RO" : "ro"));
      if (!router_.snmp_location.empty()) {
        Line("snmp-server location " + router_.snmp_location);
      }
      Line("snmp-server contact noc@" + router_.domain_name);
      Bang();
    }
    if (router_.drops_probes) {
      // Compartmentalization by probe filtering: drop traceroute UDP and
      // ICMP echo at the edge.
      Line("access-list 199 deny icmp any any echo");
      Line("access-list 199 deny udp any any range 33434 33534");
      Line("access-list 199 permit ip any any");
      Bang();
    }
  }

  void Epilogue() {
    Line("line con 0");
    Line(indent_ + "exec-timeout 5 0");
    Line("line vty 0 4");
    if (router_.vty_acl != 0) {
      Line(indent_ + "access-class " + std::to_string(router_.vty_acl) +
           " in");
    }
    Line(indent_ + "login");
    Line(indent_ + "transport input telnet");
    Bang();
    Line("end");
  }

  const RouterSpec& router_;
  const NetworkSpec& network_;
  config::Dialect dialect_;
  std::string indent_;
  std::vector<std::string> lines_;
};

}  // namespace

config::ConfigFile WriteConfig(const RouterSpec& router,
                               const NetworkSpec& network) {
  Writer writer(router, network);
  return writer.Render();
}

std::vector<config::ConfigFile> WriteNetworkConfigs(
    const NetworkSpec& network) {
  std::vector<config::ConfigFile> configs;
  configs.reserve(network.routers.size());
  for (const RouterSpec& router : network.routers) {
    configs.push_back(WriteConfig(router, network));
  }
  return configs;
}

}  // namespace confanon::gen
