// Name corpora for the synthetic config generator.
//
// These are the identity-bearing strings the anonymizer must remove:
// company names (the config owner), city/airport codes used in hostnames
// (the paper's example: cr1.lax.foo.com), and peer ISP names used in
// route-map names and comments (UUNET-import). None of these words appear
// in the pass-list corpus, except where the paper calls out the hazard
// deliberately ("global" and "crossing" are both pass-listed; only the
// comment-stripping rules keep "global crossing" from leaking).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace confanon::gen {

/// Fictional-but-identifying operator names ("foocorp" stands in for the
/// paper's Foo Corp).
const std::vector<std::string>& CompanyNames();

/// Airport-style city codes for hostnames (lax, sfo, ...).
const std::vector<std::string>& CityCodes();

/// Peer ISP display names, paired with a real-world-style public ASN the
/// generator uses for the eBGP session. Mirrors the paper's examples
/// (UUNET = 701 with the contiguous 702-705 block, Sprint = 1239, Genuity
/// = 1, ...).
struct PeerIsp {
  std::string name;          // used in route-map names and comments
  std::uint32_t asn;         // primary public ASN
  std::vector<std::uint32_t> extra_asns;  // e.g. UUNET's non-US block
};
const std::vector<PeerIsp>& PeerIsps();

/// Free-text fragments for descriptions/banners that mix pass-listed
/// vocabulary with identity (street names, "global crossing", contacts).
std::string MakeDescription(util::Rng& rng, const std::string& company,
                            const std::string& city);
std::string MakeBannerText(util::Rng& rng, const std::string& company);

}  // namespace confanon::gen
