#include "gen/names.h"

namespace confanon::gen {

const std::vector<std::string>& CompanyNames() {
  static const std::vector<std::string> kNames = {
      "foocorp",    "globex",    "initech",   "umbrella",  "hooli",
      "masseyinc",  "vandelay",  "wonka",     "stark",     "wayneind",
      "tyrell",     "cyberdyne", "weyland",   "soylent",   "oscorp",
      "dunder",     "piedpiper", "acmenet",   "bluthco",   "sterling",
      "prestige",   "kruger",    "gekko",     "nakatomi",  "zorin",
      "virtucon",   "monarch",   "duff",      "planetexp", "momcorp",
      "ingen",
  };
  return kNames;
}

const std::vector<std::string>& CityCodes() {
  static const std::vector<std::string> kCities = {
      "lax", "sfo", "nyc", "iad", "ord", "dfw", "sea", "atl",
      "bos", "den", "mia", "phx", "msp", "stl", "phl", "det",
      "iah", "san", "pdx", "slc", "bwi", "mci", "clt", "pit",
      "cle", "tpa", "okc", "abq", "lhr", "fra", "ams", "cdg",
  };
  return kCities;
}

const std::vector<PeerIsp>& PeerIsps() {
  static const std::vector<PeerIsp> kPeers = {
      // UUNET: owns the contiguous 701-705 block the paper highlights.
      {"uunet", 701, {702, 703, 704, 705}},
      {"sprintlink", 1239, {}},
      {"genuity", 1, {}},  // the paper's AS-1 grep hazard
      {"ebone", 1755, {}},
      {"cablewireless", 3561, {}},
      {"level3", 3356, {}},
      {"qwest", 209, {}},
      {"abovenet", 6461, {}},
      {"cogentco", 174, {}},
      {"verio", 2914, {}},
      {"globalcrossing", 3549, {}},
      {"telia", 1299, {}},
      {"att", 7018, {}},
      {"savvis", 3967, {}},
      {"exodus", 3967, {}},
      {"psinet", 174, {}},
  };
  return kPeers;
}

std::string MakeDescription(util::Rng& rng, const std::string& company,
                            const std::string& city) {
  static const std::vector<std::string> kTemplates = {
      "%C's %c Main St offices",
      "link to %c pop for %C",
      "%C backbone to %c",
      "customer %C at %c",
      "circuit id 7/%c/00%d leased from global crossing",
      "%C noc contact ops@%C.com",
      "backup path via %c - do not shut",
      "OC3 to %c facility, %C ticket %d",
  };
  std::string text = rng.Pick(kTemplates);
  std::string out;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '%' && i + 1 < text.size()) {
      const char kind = text[i + 1];
      if (kind == 'C') {
        out += company;
        ++i;
        continue;
      }
      if (kind == 'c') {
        out += city;
        ++i;
        continue;
      }
      if (kind == 'd') {
        out += std::to_string(rng.Between(100, 9999));
        ++i;
        continue;
      }
    }
    out += text[i];
  }
  return out;
}

std::string MakeBannerText(util::Rng& rng, const std::string& company) {
  std::string text = company;
  text += " network - contact noc@";
  text += company;
  text += ".com x";
  text += std::to_string(rng.Between(1000, 9999));
  return text;
}

}  // namespace confanon::gen
