// Hierarchical address plan for generated networks.
//
// Carves link (/30), LAN (/24../29) and loopback (/32) space out of a few
// base blocks, the way operational addressing plans do. The mix of subnet
// sizes is what gives each network the subnet-size structure that (a) the
// validation suite checks is preserved and (b) the Section 6.2 fingerprint
// experiment measures for uniqueness.
#pragma once

#include <vector>

#include "gen/model.h"
#include "util/rng.h"

namespace confanon::gen {

class AddressPlan {
 public:
  /// Backbone plans draw from public-looking class A/B space; enterprise
  /// plans from 10/8 (with a small public block for the NAT pool and
  /// upstream links). `router_count` sizes the block: small networks get
  /// a /16, large ones a /14, very large a /12.
  AddressPlan(util::Rng& rng, NetworkProfile profile, int router_count = 40);

  /// Carves the same LAN/link/loopback regions out of a caller-chosen
  /// base block (no randomness). The decoy defense (src/defense) plans
  /// its synthetic subnets this way, from a block proven disjoint from
  /// the corpus, so decoys have the same regional shape as real plans.
  explicit AddressPlan(net::Prefix base);

  /// Allocates an aligned subnet of the given prefix length from the main
  /// block. Throws std::runtime_error on exhaustion (callers size their
  /// topologies well inside the block).
  net::Prefix AllocateSubnet(int prefix_length);

  /// Allocates a /32 loopback address from the dedicated loopback range.
  net::Ipv4Address AllocateLoopback();

  /// Allocates a /30 inter-router link subnet from the link range.
  net::Prefix AllocateLink();

  /// The base block (for `network` statements covering everything).
  net::Prefix base() const { return base_; }

  /// The region inter-router link /30s are carved from (the third quarter
  /// of the base block). Core OSPF area-0 network statements cover it.
  net::Prefix link_region() const { return link_region_; }

 private:
  net::Prefix base_;
  net::Prefix link_region_;
  std::uint32_t next_lan_;       // bump pointer inside the LAN region
  std::uint32_t next_link_;      // bump pointer inside the link region
  std::uint32_t next_loopback_;  // bump pointer inside the loopback region
  std::uint32_t lan_end_;
  std::uint32_t link_end_;
  std::uint32_t loopback_end_;
};

}  // namespace confanon::gen
