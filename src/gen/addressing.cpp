#include "gen/addressing.h"

#include <stdexcept>

namespace confanon::gen {

namespace {

std::uint32_t AlignUp(std::uint32_t value, std::uint32_t alignment) {
  return (value + alignment - 1) & ~(alignment - 1);
}

}  // namespace

AddressPlan::AddressPlan(util::Rng& rng, NetworkProfile profile,
                         int router_count) {
  // Block size scales with the topology so large corpus networks cannot
  // exhaust their LAN region.
  int base_length = 16;
  if (router_count > 1000) {
    // Paper-scale corpora: the Zipf head network of a ~7.6k-router corpus
    // holds >1.5k routers, whose LAN demand overflows a /12.
    base_length = 8;
  } else if (router_count > 250) {
    base_length = 12;
  } else if (router_count > 60) {
    base_length = 14;
  }

  std::uint32_t base = 0;
  if (profile == NetworkProfile::kEnterprise) {
    // RFC1918 10.x.0.0/len, x varied so enterprises differ.
    base = (10u << 24) |
           (static_cast<std::uint32_t>(rng.Between(0, 255)) << 16);
  } else {
    // Public-looking class A or B space (avoiding 0/8, 10/8, 127/8).
    if (rng.Chance(0.5)) {
      std::uint32_t first = 0;
      do {
        first = static_cast<std::uint32_t>(rng.Between(4, 126));
      } while (first == 10);
      base = (first << 24) |
             (static_cast<std::uint32_t>(rng.Between(0, 255)) << 16);
    } else {
      const std::uint32_t first =
          static_cast<std::uint32_t>(rng.Between(128, 191));
      base = (first << 24) |
             (static_cast<std::uint32_t>(rng.Between(0, 255)) << 16);
    }
  }
  base &= ~std::uint32_t{0} << (32 - base_length);  // align to the block
  base_ = net::Prefix(net::Ipv4Address(base), base_length);

  // Region split inside the block: LANs in the low half, links in the
  // third quarter, loopbacks in the top quarter.
  const std::uint32_t block = 1u << (32 - base_length);
  next_lan_ = base;
  lan_end_ = base + block / 2;
  next_link_ = lan_end_;
  link_end_ = base + block / 4 * 3;
  next_loopback_ = link_end_;
  loopback_end_ = base + block;
  link_region_ = net::Prefix(net::Ipv4Address(next_link_), base_length + 2);
}

AddressPlan::AddressPlan(net::Prefix base) {
  const int base_length = base.length();
  if (base_length < 1 || base_length > 24) {
    throw std::invalid_argument("address plan: base must be /1../24");
  }
  const std::uint32_t start = base.address().value();
  const std::uint32_t block = 1u << (32 - base_length);
  base_ = base;
  next_lan_ = start;
  lan_end_ = start + block / 2;
  next_link_ = lan_end_;
  link_end_ = start + block / 4 * 3;
  next_loopback_ = link_end_;
  loopback_end_ = start + block;
  link_region_ = net::Prefix(net::Ipv4Address(next_link_), base_length + 2);
}

net::Prefix AddressPlan::AllocateSubnet(int prefix_length) {
  const std::uint32_t size = 1u << (32 - prefix_length);
  const std::uint32_t aligned = AlignUp(next_lan_, size);
  if (aligned + size > lan_end_) {
    throw std::runtime_error("address plan: LAN region exhausted");
  }
  next_lan_ = aligned + size;
  return net::Prefix(net::Ipv4Address(aligned), prefix_length);
}

net::Prefix AddressPlan::AllocateLink() {
  const std::uint32_t size = 4;  // /30
  if (next_link_ + size > link_end_) {
    throw std::runtime_error("address plan: link region exhausted");
  }
  const std::uint32_t at = next_link_;
  next_link_ += size;
  return net::Prefix(net::Ipv4Address(at), 30);
}

net::Ipv4Address AddressPlan::AllocateLoopback() {
  if (next_loopback_ >= loopback_end_) {
    throw std::runtime_error("address plan: loopback region exhausted");
  }
  return net::Ipv4Address(next_loopback_++);
}

}  // namespace confanon::gen
