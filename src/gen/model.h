// Data model for synthesized networks.
//
// The generator first builds this structured description (topology,
// addressing, routing design, policies) and then the config writer renders
// it to IOS text per router. Keeping the model explicit gives the
// experiments ground truth: the validation suites compare what they
// re-extract from configs (pre- and post-anonymization) against each other,
// and the fingerprint/REGEX benches compare detected feature usage against
// what the generator actually planted.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/ipv4.h"
#include "net/prefix.h"

namespace confanon::gen {

enum class IgpKind { kOspf, kRip, kEigrp };

struct InterfaceSpec {
  std::string name;  // e.g. "Serial1/0", "FastEthernet0/1", "Loopback0"
  net::Ipv4Address address;
  int prefix_length = 24;
  std::string description;  // free text, may leak identity
  bool shutdown = false;
  bool point_to_point = false;
};

struct AclEntrySpec {
  bool permit = true;
  net::Prefix prefix;  // rendered as address + wildcard mask
};

struct AclSpec {
  int number = 0;
  std::string remark;  // free text
  std::vector<AclEntrySpec> entries;
};

struct AsPathListSpec {
  int number = 0;
  bool permit = true;
  std::string regex;  // IOS policy regex over ASNs
};

struct CommunityListSpec {
  int number = 0;
  /// Non-empty = named form ("ip community-list standard NAME ...");
  /// empty = numbered form.
  std::string name;
  bool permit = true;
  bool expanded = false;          // expanded lists hold a regex
  std::vector<std::string> literals;  // "701:120" (standard form)
  std::string regex;              // expanded form

  std::string Reference() const {
    return name.empty() ? std::to_string(number) : name;
  }
};

struct PrefixListEntrySpec {
  int sequence = 5;
  bool permit = true;
  net::Prefix prefix;
  std::optional<int> ge;
  std::optional<int> le;
};

struct PrefixListSpec {
  std::string name;  // identity-bearing, e.g. "UUNET-out"
  std::vector<PrefixListEntrySpec> entries;
};

struct RouteMapClauseSpec {
  bool permit = true;
  int sequence = 10;
  std::optional<int> match_as_path;            // as-path list number
  std::optional<std::string> match_community;  // list number or name
  std::optional<int> match_acl;                // ip address acl number
  std::optional<std::string> match_prefix_list;
  std::optional<std::string> set_community;  // "701:7100"
  std::optional<int> set_local_preference;
  std::optional<int> set_med;
  std::vector<std::uint32_t> set_prepend;  // ASNs to prepend
};

struct RouteMapSpec {
  std::string name;  // identity-bearing: "UUNET-import"
  std::vector<RouteMapClauseSpec> clauses;
};

struct BgpNeighborSpec {
  net::Ipv4Address address;
  std::uint32_t remote_asn = 0;
  bool external = false;           // eBGP peer (another ISP)
  std::string peer_name;           // ISP name for comments
  std::string import_map;          // route-map in
  std::string export_map;          // route-map out
  bool next_hop_self = false;
  bool send_community = false;
  std::optional<std::string> password;
  std::optional<net::Ipv4Address> update_source;  // loopback address
};

struct BgpSpec {
  std::uint32_t asn = 0;
  std::vector<BgpNeighborSpec> neighbors;
  std::vector<net::Prefix> networks;  // network statements
  bool redistribute_igp = false;
};

struct IgpSpec {
  IgpKind kind = IgpKind::kOspf;
  int process_id = 1;           // OSPF process / EIGRP AS number
  int ospf_area = 0;            // area for this router's interfaces
  /// OSPF networks declared in the backbone area (area 0) ahead of the
  /// per-POP `networks` statements (hierarchical designs).
  std::vector<net::Prefix> backbone_networks;
  std::vector<net::Prefix> networks;
  std::vector<std::string> passive_interfaces;
  bool redistribute_connected = false;
  /// Policy compartmentalization: filter routes with this ACL on ingress
  /// ("some use routing policy to prevent reachability between portions
  /// of the network", Section 6).
  std::optional<int> distribute_list_acl;
};

struct NatSpec {
  int acl_number = 0;
  std::string pool_name;
  net::Ipv4Address pool_start;
  net::Ipv4Address pool_end;
  net::Ipv4Address pool_mask;
};

struct StaticRouteSpec {
  net::Prefix destination;
  net::Ipv4Address next_hop;
};

struct RouterSpec {
  std::string hostname;       // cr1.lax.foocorp.com
  std::uint32_t dialect = 0;  // index into config::MakeDialect
  std::string banner;         // free text (empty = no banner)
  std::vector<InterfaceSpec> interfaces;
  std::vector<IgpSpec> igps;
  std::optional<BgpSpec> bgp;
  std::vector<AclSpec> acls;
  std::vector<AsPathListSpec> as_path_lists;
  std::vector<CommunityListSpec> community_lists;
  std::vector<PrefixListSpec> prefix_lists;
  std::vector<RouteMapSpec> route_maps;
  std::vector<StaticRouteSpec> static_routes;
  /// Pre-shared IKE keys: (secret, peer address) pairs.
  std::vector<std::pair<std::string, net::Ipv4Address>> isakmp_keys;
  std::optional<NatSpec> nat;
  std::string snmp_community;     // secret string (empty = none)
  std::string snmp_location;      // free text
  std::string domain_name;        // foocorp.com
  bool drops_probes = false;      // ACL dropping traceroute/ping
  bool aaa_new_model = false;
  std::vector<net::Ipv4Address> ntp_servers;
  std::vector<net::Ipv4Address> logging_hosts;
  /// ACL applied to the vty lines (0 = none).
  int vty_acl = 0;
};

/// How a network internally compartmentalizes (paper Section 6: "10 of 31
/// networks we examined use internal compartmentalization that would also
/// defeat insider attacks").
enum class Compartmentalization {
  kNone,
  kNat,          // NATs divide the network
  kPolicy,       // routing policy prevents reachability
  kProbeDrop,    // drops traceroute/probe traffic
};

enum class NetworkProfile { kBackbone, kEnterprise };

/// Ground truth the generator records about each network, used by the
/// benches to compare detection against reality.
struct NetworkTruth {
  std::size_t router_count = 0;
  std::size_t bgp_speaker_count = 0;
  std::size_t interface_count = 0;
  std::size_t ebgp_session_count = 0;
  bool uses_asn_range_regex = false;        // digit ranges over public ASNs
  bool uses_private_asn_range_regex = false;
  bool uses_asn_alternation_regex = false;
  bool uses_community_regex = false;
  bool uses_community_range_regex = false;
  Compartmentalization compartmentalization = Compartmentalization::kNone;
};

struct NetworkSpec {
  std::string name;       // company name
  std::uint32_t asn = 0;  // the network's own public ASN
  NetworkProfile profile = NetworkProfile::kBackbone;
  std::vector<RouterSpec> routers;
  NetworkTruth truth;
};

}  // namespace confanon::gen
