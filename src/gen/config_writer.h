// Rendering RouterSpecs to Cisco-IOS-style config text.
//
// The writer honours each router's emulated dialect (config/dialect.h), so
// a generated corpus exhibits the same cross-version syntactic churn the
// paper's 200+ IOS versions did: optional statements, keyword variants,
// spacing artifacts. This diversity is load-bearing — it is what the
// anonymizer's grammar-free rule design is supposed to survive.
#pragma once

#include "config/document.h"
#include "gen/model.h"

namespace confanon::gen {

/// Renders one router's config.
config::ConfigFile WriteConfig(const RouterSpec& router,
                               const NetworkSpec& network);

/// Renders every router of a network.
std::vector<config::ConfigFile> WriteNetworkConfigs(
    const NetworkSpec& network);

}  // namespace confanon::gen
