#include "gen/network_gen.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "config/dialect.h"
#include "gen/addressing.h"
#include "gen/names.h"
#include "obs/trace.h"
#include "util/strings.h"

namespace confanon::gen {

namespace {

std::string UpperName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
  }
  return out;
}

/// Interface name for the n-th data port of a router under a dialect
/// generation (0=Ethernet, 1=FastEthernet, 2=GigabitEthernet).
std::string PortName(int generation, int index) {
  switch (generation) {
    case 0:
      return "Ethernet" + std::to_string(index);
    case 1:
      return "FastEthernet0/" + std::to_string(index);
    default:
      return "GigabitEthernet0/" + std::to_string(index);
  }
}

std::string SerialName(int index) {
  return "Serial" + std::to_string(index / 4) + "/" + std::to_string(index % 4);
}

/// A public-looking /30 for an eBGP session, carved deterministically from
/// a block derived from the peer's ASN (peer address space is the peer's,
/// not ours).
net::Prefix PeerLinkSubnet(std::uint32_t peer_asn, int session_index) {
  std::uint64_t state = 0x9E00 + peer_asn;
  const std::uint32_t mix = static_cast<std::uint32_t>(
      util::SplitMix64(state));
  std::uint32_t first = 60 + (mix % 60);  // class A, clear of 10 and 127
  if (first == 10 + 60) first += 1;       // never lands on 10 anyway; guard
  const std::uint32_t base = (first << 24) | ((mix >> 8) & 0x00FFFF00u);
  return net::Prefix(
      net::Ipv4Address(base + static_cast<std::uint32_t>(session_index) * 4),
      30);
}

struct PolicyIds {
  int next_acl = 100;
  int next_aspath = 50;
  int next_community = 100;
};

/// Tracks which network-level regex features have actually been planted
/// so far; the first eligible policy object force-plants a flagged
/// feature, guaranteeing that a truth flag implies at least one real
/// occurrence in the configs.
struct PlantState {
  bool public_range = false;
  bool private_range = false;
  bool alternation = false;
  bool community_regex = false;
  bool community_range = false;
};

/// Builds the BGP policy objects for one eBGP peer on `router`, honouring
/// the network's regex feature flags.
struct PolicyStyle {
  bool named_community_lists = false;
  bool prefix_list_exports = false;
};

void AddPeerPolicy(RouterSpec& router, const PeerIsp& peer,
                   const NetworkSpec& network, AddressPlan& plan,
                   PolicyIds& ids, PlantState& planted,
                   const PolicyStyle& style, util::Rng& rng) {
  const std::string peer_label = UpperName(peer.name);
  const std::string import_name = peer_label + "-import";
  const std::string export_name = peer_label + "-export";

  // --- as-path list matched on import ---
  AsPathListSpec aspath;
  aspath.number = ids.next_aspath++;
  aspath.permit = rng.Chance(0.4);
  if (network.truth.uses_asn_range_regex &&
      (!planted.public_range || rng.Chance(0.3))) {
    // Digit range over a contiguous public block, e.g. _70[1-5]_ for
    // UUNET's 701-705, or the peer's decade when it owns no block.
    if (!peer.extra_asns.empty()) {
      const std::string lo_s = std::to_string(peer.asn);
      const std::string hi_s = std::to_string(peer.extra_asns.back());
      aspath.regex = "_" + lo_s.substr(0, lo_s.size() - 1) + "[" +
                     lo_s.back() + "-" + hi_s.back() + "]_";
    } else {
      const std::string decade = std::to_string(peer.asn / 10);
      aspath.regex = "_" + decade + "[0-9]_";
    }
    planted.public_range = true;
  } else if (network.truth.uses_private_asn_range_regex &&
             (!planted.private_range || rng.Chance(0.2))) {
    aspath.regex = "_6451[2-5]_";
    planted.private_range = true;
  } else if (network.truth.uses_asn_alternation_regex &&
             (!planted.alternation || rng.Chance(0.6))) {
    const PeerIsp& other = rng.Pick(PeerIsps());
    aspath.regex = "(_" + std::to_string(peer.asn) + "_|_" +
                   std::to_string(other.asn) + "_)";
    planted.alternation = true;
  } else {
    aspath.regex = "_" + std::to_string(peer.asn) + "_";
  }
  router.as_path_lists.push_back(aspath);

  // --- community list matched on import ---
  CommunityListSpec comm;
  comm.number = ids.next_community++;
  if (style.named_community_lists) {
    comm.name = peer_label + "-comm";
  }
  comm.permit = true;
  if (network.truth.uses_community_regex &&
      (!planted.community_regex || rng.Chance(0.5))) {
    comm.expanded = true;
    planted.community_regex = true;
    if (network.truth.uses_community_range_regex &&
        (!planted.community_range || rng.Chance(0.4))) {
      // e.g. 701:7[1-5].. — any community 7100-7599 from the peer.
      comm.regex = std::to_string(peer.asn) + ":7[1-5]..";
      planted.community_range = true;
    } else {
      comm.regex = std::to_string(peer.asn) + ":(7100|7200|7300)";
    }
  } else {
    const int count = static_cast<int>(rng.Between(1, 3));
    for (int i = 0; i < count; ++i) {
      comm.literals.push_back(std::to_string(peer.asn) + ":" +
                              std::to_string(rng.Between(100, 9999)));
    }
  }
  router.community_lists.push_back(comm);

  // --- export filter: prefix ACL or prefix-list, per network style ---
  int export_acl = 0;
  std::string export_prefix_list;
  if (style.prefix_list_exports) {
    PrefixListSpec list;
    list.name = peer_label + "-out";
    const int entries = static_cast<int>(rng.Between(1, 4));
    for (int i = 0; i < entries; ++i) {
      PrefixListEntrySpec entry;
      entry.sequence = 5 * (i + 1);
      entry.permit = true;
      entry.prefix =
          plan.AllocateSubnet(static_cast<int>(rng.Between(24, 27)));
      if (rng.Chance(0.4)) {
        entry.le = std::min(30, entry.prefix.length() +
                                    static_cast<int>(rng.Between(1, 3)));
      }
      list.entries.push_back(entry);
    }
    export_prefix_list = list.name;
    router.prefix_lists.push_back(std::move(list));
  } else {
    AclSpec acl;
    acl.number = ids.next_acl++;
    if (rng.Chance(0.3)) {
      acl.remark = "prefixes advertised to " + peer.name;
    }
    const int acl_entries = static_cast<int>(rng.Between(1, 4));
    for (int i = 0; i < acl_entries; ++i) {
      acl.entries.push_back(AclEntrySpec{
          true, plan.AllocateSubnet(static_cast<int>(rng.Between(24, 27)))});
    }
    export_acl = acl.number;
    router.acls.push_back(acl);
  }

  // --- route maps wiring the above together ---
  RouteMapSpec import_map;
  import_map.name = import_name;
  RouteMapClauseSpec deny;
  deny.permit = false;
  deny.sequence = 10;
  deny.match_as_path = aspath.number;
  import_map.clauses.push_back(deny);
  RouteMapClauseSpec tag;
  tag.permit = true;
  tag.sequence = 20;
  tag.match_community = comm.Reference();
  tag.set_local_preference = static_cast<int>(rng.Between(80, 120));
  import_map.clauses.push_back(tag);
  RouteMapClauseSpec accept;
  accept.permit = true;
  accept.sequence = 30;
  accept.set_local_preference = 100;
  import_map.clauses.push_back(accept);
  router.route_maps.push_back(import_map);

  RouteMapSpec export_map;
  export_map.name = export_name;
  RouteMapClauseSpec advertise;
  advertise.permit = true;
  advertise.sequence = 10;
  if (export_acl != 0) {
    advertise.match_acl = export_acl;
  } else {
    advertise.match_prefix_list = export_prefix_list;
  }
  advertise.set_community = std::to_string(peer.asn) + ":" +
                            std::to_string(rng.Between(7000, 7999));
  if (rng.Chance(0.25)) {
    advertise.set_prepend = {network.asn, network.asn};
  }
  if (rng.Chance(0.3)) {
    advertise.set_med = static_cast<int>(rng.Between(0, 200));
  }
  export_map.clauses.push_back(advertise);
  router.route_maps.push_back(export_map);
}

}  // namespace

NetworkSpec GenerateNetwork(const GeneratorParams& params, int index) {
  // Traced under the process-wide tracer: generation is the other half of
  // every bench's wall time, and the spans make that visible.
  obs::ScopedTimer span(&obs::GlobalTracer(),
                        "gen.network:" + std::to_string(index));
  span.AddArg("routers", static_cast<std::int64_t>(params.router_count));
  util::Rng rng(params.seed, "network-" + std::to_string(index));

  NetworkSpec network;
  const auto& companies = CompanyNames();
  network.name = companies[static_cast<std::size_t>(index) % companies.size()];
  if (static_cast<std::size_t>(index) >= companies.size()) {
    network.name += std::to_string(index / companies.size());
  }
  network.profile = params.profile;
  // The network's own public ASN, unique per index and clear of the
  // well-known peer ASNs.
  network.asn = 2000 + static_cast<std::uint32_t>(index) * 7 + 1;

  // Feature flags at the paper's observed rates.
  network.truth.uses_asn_range_regex = rng.Chance(params.p_public_range_regex);
  network.truth.uses_private_asn_range_regex =
      rng.Chance(params.p_private_range_regex);
  network.truth.uses_asn_alternation_regex =
      rng.Chance(params.p_alternation_regex);
  network.truth.uses_community_regex = rng.Chance(params.p_community_regex);
  network.truth.uses_community_range_regex =
      network.truth.uses_community_regex &&
      rng.Chance(params.p_community_range_given_regex);
  if (rng.Chance(params.p_compartmentalized)) {
    const int kind = static_cast<int>(rng.Between(1, 3));
    network.truth.compartmentalization =
        static_cast<Compartmentalization>(kind);
  }

  AddressPlan plan(rng, params.profile, params.router_count);
  PolicyIds ids;
  PlantState planted;

  // Per-network commenting habit: most operators comment sparsely, a few
  // annotate everything (this spread yields the paper's 1.5% mean / 6%
  // p90 comment-word fractions).
  const double comment_rate = 0.02 + 0.35 * rng.Unit() * rng.Unit() * rng.Unit();

  // Per-network policy style: some operators use named community-lists
  // and prefix-lists instead of the numbered/ACL forms (style varies per
  // network, not per router, like real design practice).
  const bool named_community_lists = rng.Chance(0.35);
  const bool prefix_list_exports = rng.Chance(0.4);

  const int router_count = std::max(2, params.router_count);
  const int pop_count = std::max(1, router_count / 8);
  const std::string domain = network.name + ".com";

  // Role assignment: 2 core routers per POP, the rest edge.
  struct Placement {
    int pop;
    bool core;
  };
  std::vector<Placement> placements;
  for (int pop = 0; pop < pop_count; ++pop) {
    placements.push_back({pop, true});
    placements.push_back({pop, true});
  }
  while (static_cast<int>(placements.size()) < router_count) {
    placements.push_back(
        {static_cast<int>(rng.Below(static_cast<std::uint64_t>(pop_count))),
         false});
  }
  placements.resize(static_cast<std::size_t>(router_count));

  // Loopbacks first: iBGP neighbors reference them.
  std::vector<net::Ipv4Address> loopbacks;
  loopbacks.reserve(placements.size());
  for (std::size_t i = 0; i < placements.size(); ++i) {
    loopbacks.push_back(plan.AllocateLoopback());
  }

  const auto& cities = CityCodes();
  std::vector<std::size_t> core_indices;
  for (std::size_t i = 0; i < placements.size(); ++i) {
    if (placements[i].core) core_indices.push_back(i);
  }

  // Hostnames must be unique: number routers per (POP, role).
  std::map<std::pair<int, bool>, int> host_counters;

  for (std::size_t i = 0; i < placements.size(); ++i) {
    const Placement& place = placements[i];
    const std::string city =
        cities[static_cast<std::size_t>(place.pop) % cities.size()];
    util::Rng router_rng = rng.Fork("router-" + std::to_string(i));

    RouterSpec router;
    router.dialect = static_cast<std::uint32_t>(router_rng.Below(220));
    const int host_number = ++host_counters[{place.pop, place.core}];
    router.hostname = (place.core ? "cr" : "er") +
                      std::to_string(host_number) + "." + city + "." + domain;
    router.domain_name = domain;
    if (router_rng.Chance(comment_rate)) {
      router.banner = MakeBannerText(router_rng, network.name);
    }
    if (router_rng.Chance(0.5)) {
      router.snmp_community = network.name + "-ro";
      if (router_rng.Chance(comment_rate)) {
        router.snmp_location = city + " pop cage " +
                               std::to_string(router_rng.Between(1, 40));
      }
    }
    router.drops_probes = network.truth.compartmentalization ==
                          Compartmentalization::kProbeDrop;
    router.aaa_new_model = router_rng.Chance(0.5);
    // Management plane points at a couple of loopbacks of core routers
    // (addresses consistent network-wide, like a real NOC design).
    const int ntp_count = static_cast<int>(router_rng.Between(0, 2));
    for (int n = 0; n < ntp_count && n < static_cast<int>(loopbacks.size());
         ++n) {
      router.ntp_servers.push_back(loopbacks[static_cast<std::size_t>(n)]);
    }
    if (router_rng.Chance(0.6) && !loopbacks.empty()) {
      router.logging_hosts.push_back(loopbacks[0]);
    }

    // Loopback interface.
    router.interfaces.push_back(InterfaceSpec{
        "Loopback0", loopbacks[i], 32,
        router_rng.Chance(comment_rate) ? "router id for " + network.name
                                        : std::string(),
        false, false});

    IgpSpec igp;
    if (params.profile == NetworkProfile::kEnterprise) {
      igp.kind = router_rng.Chance(0.6) ? IgpKind::kEigrp : IgpKind::kOspf;
    } else {
      igp.kind = IgpKind::kOspf;
    }
    igp.process_id = igp.kind == IgpKind::kEigrp
                         ? static_cast<int>(network.asn % 100 + 1)
                         : 1;
    igp.ospf_area = place.pop;
    if (igp.kind == IgpKind::kOspf && place.core) {
      // Hierarchical OSPF: core routers put the inter-router link region
      // in the backbone area and everything else in their POP's area.
      igp.backbone_networks.push_back(plan.link_region());
    }
    igp.networks.push_back(plan.base());

    router.igps.push_back(igp);
    network.routers.push_back(std::move(router));
  }

  // Materialize links in a second pass so both endpoints share subnets.
  util::Rng link_rng = rng.Fork("link-descriptions");
  auto link_both = [&](std::size_t a, std::size_t b, bool serial) {
    const net::Prefix subnet = plan.AllocateLink();
    const config::Dialect da =
        config::MakeDialect(network.routers[a].dialect);
    const config::Dialect db =
        config::MakeDialect(network.routers[b].dialect);
    auto make_iface = [&](RouterSpec& r, const config::Dialect& d,
                          bool low_side, const std::string& peer_host) {
      InterfaceSpec iface;
      int existing_serial = 0;
      int existing_port = 0;
      for (const auto& existing : r.interfaces) {
        if (existing.name.starts_with("Serial")) ++existing_serial;
        if (existing.name.find("thernet") != std::string::npos) {
          ++existing_port;
        }
      }
      iface.name = serial ? SerialName(existing_serial)
                          : PortName(d.interface_generation, existing_port);
      iface.address = net::Ipv4Address(subnet.address().value() +
                                       (low_side ? 1 : 2));
      iface.prefix_length = 30;
      iface.point_to_point = serial;
      if (link_rng.Chance(comment_rate * 2)) {
        iface.description = "to " + peer_host;
      }
      r.interfaces.push_back(iface);
    };
    make_iface(network.routers[a], da, true, network.routers[b].hostname);
    make_iface(network.routers[b], db, false, network.routers[a].hostname);
  };

  // Core ring.
  for (std::size_t r = 0; r + 1 < core_indices.size(); ++r) {
    link_both(core_indices[r], core_indices[r + 1], true);
  }
  if (core_indices.size() > 2) {
    link_both(core_indices.back(), core_indices.front(), true);
  }
  // Edge uplinks: each edge router connects to a core router of its POP.
  for (std::size_t i = 0; i < placements.size(); ++i) {
    if (placements[i].core) continue;
    // First core router of the same POP.
    std::size_t uplink = core_indices.front();
    for (std::size_t c : core_indices) {
      if (placements[c].pop == placements[i].pop) {
        uplink = c;
        break;
      }
    }
    link_both(uplink, i, rng.Chance(0.5));
  }

  // Edge LANs: a handful of subnets of varying size per edge router.
  for (std::size_t i = 0; i < placements.size(); ++i) {
    if (placements[i].core) continue;
    RouterSpec& router = network.routers[i];
    util::Rng lan_rng = rng.Fork("lan-" + std::to_string(i));
    const config::Dialect dialect = config::MakeDialect(router.dialect);
    const int lan_count = static_cast<int>(lan_rng.Between(1, 4));
    int port_index = 0;
    for (const auto& existing : router.interfaces) {
      if (existing.name.find("thernet") != std::string::npos) ++port_index;
    }
    for (int l = 0; l < lan_count; ++l) {
      const int length = static_cast<int>(lan_rng.Between(24, 29));
      // Skew away from the big /24s so even the largest corpus networks
      // fit comfortably inside the plan's LAN region.
      const int adjusted = length == 24 && lan_rng.Chance(0.6) ? 26 : length;
      const net::Prefix subnet = plan.AllocateSubnet(adjusted);
      InterfaceSpec iface;
      iface.name = PortName(dialect.interface_generation, port_index++);
      iface.address = net::Ipv4Address(subnet.address().value() + 1);
      iface.prefix_length = adjusted;
      if (lan_rng.Chance(comment_rate * 2)) {
        const std::string city =
            CityCodes()[static_cast<std::size_t>(placements[i].pop) %
                        CityCodes().size()];
        iface.description = MakeDescription(lan_rng, network.name, city);
      }
      router.interfaces.push_back(iface);
    }
    // A minority of edge routers are customer-aggregation boxes with a
    // long tail of point-to-point subinterfaces and per-customer static
    // routes — these produce the paper's heavily right-skewed config
    // size distribution (50 to 10,000 lines).
    if (lan_rng.Chance(0.12) && params.profile == NetworkProfile::kBackbone) {
      const int customers = static_cast<int>(
          4 + lan_rng.Below(80) * lan_rng.Below(6));
      int existing_serial = 0;
      for (const auto& existing : router.interfaces) {
        if (existing.name.starts_with("Serial")) ++existing_serial;
      }
      for (int c = 0; c < customers; ++c) {
        const net::Prefix sub = plan.AllocateLink();
        InterfaceSpec iface;
        iface.name = SerialName(existing_serial) + "." + std::to_string(c + 1);
        iface.address = net::Ipv4Address(sub.address().value() + 1);
        iface.prefix_length = 30;
        iface.point_to_point = true;
        router.interfaces.push_back(iface);
        // Customer route via the far end of the /30.
        router.static_routes.push_back(StaticRouteSpec{
            plan.AllocateSubnet(static_cast<int>(lan_rng.Between(28, 30))),
            net::Ipv4Address(sub.address().value() + 2)});
      }
    }
    if (lan_rng.Chance(0.4)) {
      AclSpec vty;
      vty.number = 98;
      vty.entries.push_back(AclEntrySpec{true, plan.base()});
      router.acls.push_back(vty);
      router.vty_acl = vty.number;
    }

    // LAN-facing ports are passive in the IGP on careful designs.
    if (lan_rng.Chance(0.5)) {
      for (IgpSpec& igp : router.igps) {
        if (igp.kind != IgpKind::kOspf) continue;
        for (const InterfaceSpec& iface : router.interfaces) {
          if (iface.prefix_length <= 29 && iface.prefix_length >= 24 &&
              iface.name.find("thernet") != std::string::npos) {
            igp.passive_interfaces.push_back(iface.name);
          }
        }
      }
    }

    // Some edge pockets run RIP instead of the backbone IGP (the paper's
    // Figure 1 pattern).
    if (lan_rng.Chance(0.25) && params.profile == NetworkProfile::kBackbone) {
      IgpSpec rip;
      rip.kind = IgpKind::kRip;
      rip.process_id = 0;
      // RIP networks are classful statements.
      const auto classful =
          net::Prefix::ClassfulNetworkOf(router.interfaces.back().address);
      if (classful) rip.networks.push_back(*classful);
      router.igps.push_back(rip);
    }
  }

  // BGP: all core routers are iBGP speakers; a few are borders with eBGP.
  util::Rng bgp_rng = rng.Fork("bgp");
  const std::size_t border_count = std::max<std::size_t>(
      1, core_indices.size() / (params.profile == NetworkProfile::kBackbone
                                    ? 2
                                    : 4));
  for (std::size_t c = 0; c < core_indices.size(); ++c) {
    const std::size_t ri = core_indices[c];
    RouterSpec& router = network.routers[ri];
    BgpSpec bgp;
    bgp.asn = network.asn;
    bgp.redistribute_igp = bgp_rng.Chance(0.4);
    bgp.networks.push_back(plan.base());
    // iBGP full mesh over loopbacks.
    for (std::size_t other : core_indices) {
      if (other == ri) continue;
      BgpNeighborSpec neighbor;
      neighbor.address = loopbacks[other];
      neighbor.remote_asn = network.asn;
      neighbor.external = false;
      neighbor.update_source = loopbacks[ri];
      neighbor.next_hop_self = true;
      bgp.neighbors.push_back(neighbor);
    }
    // Borders get 1-3 eBGP peers.
    if (c < border_count) {
      const int peer_count = static_cast<int>(bgp_rng.Between(1, 3));
      for (int p = 0; p < peer_count; ++p) {
        const PeerIsp& peer = bgp_rng.Pick(PeerIsps());
        const net::Prefix link = PeerLinkSubnet(
            peer.asn, static_cast<int>(bgp_rng.Between(0, 1000)));
        // Our side of the peering link.
        InterfaceSpec iface;
        int serial_count = 0;
        for (const auto& existing : router.interfaces) {
          if (existing.name.starts_with("Serial")) ++serial_count;
        }
        iface.name = SerialName(serial_count);
        iface.address = net::Ipv4Address(link.address().value() + 1);
        iface.prefix_length = 30;
        iface.point_to_point = true;
        if (bgp_rng.Chance(comment_rate * 3)) {
          iface.description = "peering with " + peer.name;
        }
        router.interfaces.push_back(iface);

        BgpNeighborSpec neighbor;
        neighbor.address = net::Ipv4Address(link.address().value() + 2);
        neighbor.remote_asn = peer.asn;
        neighbor.external = true;
        neighbor.peer_name = peer.name;
        neighbor.send_community = true;
        if (bgp_rng.Chance(0.3)) {
          neighbor.password = network.name + "-" + peer.name + "-key";
        }
        neighbor.import_map = UpperName(peer.name) + "-import";
        neighbor.export_map = UpperName(peer.name) + "-export";
        PolicyStyle style;
        style.named_community_lists = named_community_lists;
        style.prefix_list_exports = prefix_list_exports;
        AddPeerPolicy(router, peer, network, plan, ids, planted, style,
                      bgp_rng);
        bgp.neighbors.push_back(neighbor);
        ++network.truth.ebgp_session_count;
      }
    }
    router.bgp = bgp;
  }

  // Policy compartmentalization: edge routers filter routes from other
  // compartments with an IGP distribute-list that denies *real* LAN
  // subnets of other routers, so reachability between the compartments is
  // actually prevented (checkable via analysis::AnalyzeReachability).
  if (network.truth.compartmentalization == Compartmentalization::kPolicy) {
    util::Rng comp_rng = rng.Fork("policy-compartment");
    std::vector<std::pair<std::size_t, net::Prefix>> lan_subnets;
    for (std::size_t i = 0; i < network.routers.size(); ++i) {
      for (const InterfaceSpec& iface : network.routers[i].interfaces) {
        if (iface.prefix_length >= 24 && iface.prefix_length <= 29) {
          lan_subnets.emplace_back(
              i, net::Prefix(iface.address, iface.prefix_length));
        }
      }
    }
    for (std::size_t i = 0; i < placements.size(); ++i) {
      if (placements[i].core || !comp_rng.Chance(0.5)) continue;
      if (lan_subnets.empty()) break;
      RouterSpec& router = network.routers[i];
      AclSpec acl;
      acl.number = ids.next_acl++;
      // Deny a few LAN subnets belonging to other routers.
      const int denies = static_cast<int>(comp_rng.Between(1, 3));
      for (int d = 0; d < denies; ++d) {
        const auto& [owner, subnet] = lan_subnets[static_cast<std::size_t>(
            comp_rng.Below(lan_subnets.size()))];
        if (owner == i) continue;
        acl.entries.push_back(AclEntrySpec{false, subnet});
      }
      if (acl.entries.empty()) continue;
      acl.entries.push_back(AclEntrySpec{true, net::Prefix()});
      router.acls.push_back(acl);
      for (IgpSpec& igp : router.igps) {
        igp.distribute_list_acl = acl.number;
      }
    }
  }

  // Enterprise: NAT compartmentalization on one router.
  if (network.truth.compartmentalization == Compartmentalization::kNat &&
      !network.routers.empty()) {
    RouterSpec& router = network.routers.front();
    NatSpec nat;
    nat.acl_number = ids.next_acl++;
    nat.pool_name = network.name + "-natpool";
    const net::Prefix pool = plan.AllocateSubnet(28);
    nat.pool_start = net::Ipv4Address(pool.address().value() + 1);
    nat.pool_end = net::Ipv4Address(pool.address().value() + 14);
    nat.pool_mask = pool.Netmask();
    router.nat = nat;
    AclSpec acl;
    acl.number = nat.acl_number;
    acl.entries.push_back(AclEntrySpec{true, plan.base()});
    router.acls.push_back(acl);
  }

  // Enterprise networks often anchor site-to-site VPNs with pre-shared
  // keys; both the key and the peer address are secrets.
  if (params.profile == NetworkProfile::kEnterprise) {
    util::Rng vpn_rng = rng.Fork("vpn");
    for (RouterSpec& router : network.routers) {
      if (!vpn_rng.Chance(0.15)) continue;
      const int keys = static_cast<int>(vpn_rng.Between(1, 3));
      for (int k = 0; k < keys; ++k) {
        const net::Prefix peer_link = PeerLinkSubnet(
            static_cast<std::uint32_t>(vpn_rng.Between(100, 60000)),
            static_cast<int>(vpn_rng.Between(0, 500)));
        router.isakmp_keys.emplace_back(
            network.name + "vpn" + std::to_string(k),
            net::Ipv4Address(peer_link.address().value() + 1));
      }
    }
  }

  // Truth bookkeeping. The regex-feature flags are reconciled with what
  // was actually planted (a flagged network with no eBGP peers plants
  // nothing).
  network.truth.uses_asn_range_regex = planted.public_range;
  network.truth.uses_private_asn_range_regex = planted.private_range;
  network.truth.uses_asn_alternation_regex = planted.alternation;
  network.truth.uses_community_regex = planted.community_regex;
  network.truth.uses_community_range_regex = planted.community_range;
  network.truth.router_count = network.routers.size();
  for (const RouterSpec& router : network.routers) {
    network.truth.interface_count += router.interfaces.size();
    if (router.bgp.has_value()) ++network.truth.bgp_speaker_count;
  }
  return network;
}

std::vector<NetworkSpec> GenerateCorpus(const GeneratorParams& params,
                                        int count, int total_routers) {
  obs::ScopedTimer span(&obs::GlobalTracer(), "gen.corpus");
  span.AddArg("networks", static_cast<std::int64_t>(count));
  span.AddArg("total_routers", static_cast<std::int64_t>(total_routers));
  // Skewed size mix: ranks follow a Zipf-ish series so a couple of
  // networks dominate, matching the carrier + enterprises shape of the
  // paper's dataset.
  std::vector<double> weights;
  double weight_sum = 0;
  for (int i = 0; i < count; ++i) {
    const double w = 1.0 / (1.0 + i * 0.7);
    weights.push_back(w);
    weight_sum += w;
  }
  std::vector<NetworkSpec> corpus;
  corpus.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    GeneratorParams p = params;
    p.router_count = std::max(
        2, static_cast<int>(weights[static_cast<std::size_t>(i)] /
                            weight_sum * total_routers));
    // Mix profiles: the paper's corpus was backbone + enterprise networks.
    p.profile = (i % 3 == 2) ? NetworkProfile::kEnterprise
                             : NetworkProfile::kBackbone;
    corpus.push_back(GenerateNetwork(p, i));
  }
  return corpus;
}

}  // namespace confanon::gen
