#include "regex/charset.h"

#include <cstdio>

namespace confanon::regex {

CharSet CharSet::Any() {
  CharSet set;
  set.bits_.set();
  return set;
}

CharSet CharSet::AnyExceptSentinels() {
  CharSet set = Any();
  set.bits_.reset(static_cast<unsigned char>(kBeginSentinel));
  set.bits_.reset(static_cast<unsigned char>(kEndSentinel));
  return set;
}

CharSet CharSet::CiscoUnderscore() {
  CharSet set;
  set.Add(' ');
  set.Add(',');
  set.Add('{');
  set.Add('}');
  set.Add('(');
  set.Add(')');
  set.Add(kBeginSentinel);
  set.Add(kEndSentinel);
  return set;
}

void CharSet::AddRange(char lo, char hi) {
  for (int c = static_cast<unsigned char>(lo);
       c <= static_cast<unsigned char>(hi); ++c) {
    bits_.set(static_cast<std::size_t>(c));
  }
}

CharSet CharSet::NegatedWithinText() const {
  CharSet result = AnyExceptSentinels();
  result.bits_ &= ~bits_;
  return result;
}

std::string CharSet::ToString() const {
  std::string out = "[";
  int run_start = -1;
  auto flush = [&](int run_end) {
    if (run_start < 0) return;
    auto append_char = [&](int c) {
      if (c == static_cast<unsigned char>(kBeginSentinel)) {
        out += "^";
      } else if (c == static_cast<unsigned char>(kEndSentinel)) {
        out += "$";
      } else if (c >= 0x20 && c < 0x7F) {
        out += static_cast<char>(c);
      } else {
        char buf[16];
        std::snprintf(buf, sizeof(buf), "\\x%02x", c);
        out += buf;
      }
    };
    append_char(run_start);
    if (run_end > run_start) {
      if (run_end > run_start + 1) out += '-';
      append_char(run_end);
    }
    run_start = -1;
  };
  for (int c = 0; c < 256; ++c) {
    if (bits_.test(static_cast<std::size_t>(c))) {
      if (run_start < 0) run_start = c;
    } else if (run_start >= 0) {
      flush(c - 1);
    }
  }
  flush(255);
  out += "]";
  return out;
}

std::string FrameSubject(std::string_view text) {
  std::string framed;
  framed.reserve(text.size() + 2);
  framed.push_back(kBeginSentinel);
  framed.append(text);
  framed.push_back(kEndSentinel);
  return framed;
}

}  // namespace confanon::regex
