// Abstract syntax tree for the IOS policy-regex dialect.
//
// Nodes live in an arena owned by the Ast object and are referenced by
// index; this keeps the tree trivially copyable and lets the NFA builder
// instantiate a subtree several times (for bounded repetition) without
// worrying about ownership.
//
// Anchors and Cisco's `_` are desugared by the parser into character sets
// over the sentinel-framed alphabet (see charset.h), so the AST has no
// zero-width assertion nodes: every leaf consumes exactly one byte.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "regex/charset.h"

namespace confanon::regex {

using NodeId = std::int32_t;
inline constexpr NodeId kInvalidNode = -1;

/// Marker for an unbounded repetition upper limit.
inline constexpr int kUnbounded = -1;

struct Node {
  enum class Kind {
    kEmpty,      // matches the empty string
    kCharSet,    // matches one byte from `chars`
    kConcat,     // children in sequence
    kAlternate,  // any one child
    kRepeat,     // child repeated min..max times (max == kUnbounded)
  };

  Kind kind = Kind::kEmpty;
  CharSet chars;                  // kCharSet only
  std::vector<NodeId> children;   // kConcat / kAlternate
  NodeId child = kInvalidNode;    // kRepeat
  int min_repeat = 0;             // kRepeat
  int max_repeat = 0;             // kRepeat
};

/// Arena of nodes plus the root id.
class Ast {
 public:
  NodeId AddEmpty();
  NodeId AddCharSet(const CharSet& chars);
  NodeId AddConcat(std::vector<NodeId> children);
  NodeId AddAlternate(std::vector<NodeId> children);
  NodeId AddRepeat(NodeId child, int min_repeat, int max_repeat);

  const Node& At(NodeId id) const { return nodes_[static_cast<std::size_t>(id)]; }
  std::size_t Size() const { return nodes_.size(); }

  NodeId root() const { return root_; }
  void set_root(NodeId root) { root_ = root; }

 private:
  std::vector<Node> nodes_;
  NodeId root_ = kInvalidNode;
};

}  // namespace confanon::regex
