// Deterministic finite automata: subset construction, minimization,
// equivalence checking.
//
// The anonymizer uses DFAs for the paper's language computation (Section
// 4.4: "we can find the language accepted by the regexp by simply applying
// the regexp to a list of all 2^16 ASNs") — running the DFA over 65,536
// short strings is orders of magnitude faster than NFA simulation.
// Minimization and DFA->regex conversion implement the paper's mentioned
// extension of emitting a compact regexp for the anonymized language.
//
// The alphabet is compressed into byte-equivalence classes computed from the
// NFA's transition sets, so a DFA stores one transition per class per state.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "regex/nfa.h"

namespace confanon::regex {

class Dfa {
 public:
  /// Builds a total DFA (with an explicit dead state) from `nfa` via subset
  /// construction.
  static Dfa FromNfa(const Nfa& nfa);

  /// True if the DFA accepts exactly `subject` (caller handles framing).
  bool FullMatch(std::string_view subject) const;

  /// Hopcroft-style partition refinement; the result is the unique minimal
  /// total DFA for the same language.
  Dfa Minimize() const;

  /// Language equivalence via synchronized product walk.
  bool EquivalentTo(const Dfa& other) const;

  /// True if no accepting state is reachable (empty language).
  bool IsEmptyLanguage() const;

  int StateCount() const { return num_states_; }
  int start() const { return start_; }
  bool IsAccepting(int state) const {
    return accepting_[static_cast<std::size_t>(state)];
  }
  int NumClasses() const { return num_classes_; }
  int ClassOf(char c) const {
    return byte_class_[static_cast<unsigned char>(c)];
  }
  int TransitionByClass(int state, int byte_class) const {
    return transitions_[static_cast<std::size_t>(state) *
                            static_cast<std::size_t>(num_classes_) +
                        static_cast<std::size_t>(byte_class)];
  }
  int Transition(int state, char c) const {
    return TransitionByClass(state, ClassOf(c));
  }
  /// A representative CharSet for each byte-equivalence class.
  CharSet ClassChars(int byte_class) const;

 private:
  int num_states_ = 0;
  int num_classes_ = 0;
  int start_ = 0;
  std::array<std::int16_t, 256> byte_class_{};
  std::vector<std::int32_t> transitions_;  // num_states x num_classes
  std::vector<bool> accepting_;
};

}  // namespace confanon::regex
