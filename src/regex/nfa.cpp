#include "regex/nfa.h"

#include <algorithm>
#include <cassert>

namespace confanon::regex {

StateId Nfa::AddState() {
  states_.emplace_back();
  return static_cast<StateId>(states_.size() - 1);
}

Nfa Nfa::Build(const Ast& ast) {
  Nfa nfa;
  assert(ast.root() != kInvalidNode);
  auto [entry, exit] = nfa.BuildNode(ast, ast.root());
  nfa.start_ = entry;
  nfa.accept_ = exit;
  return nfa;
}

std::pair<StateId, StateId> Nfa::BuildNode(const Ast& ast, NodeId node_id) {
  const Node& node = ast.At(node_id);
  switch (node.kind) {
    case Node::Kind::kEmpty: {
      const StateId entry = AddState();
      const StateId exit = AddState();
      states_[static_cast<std::size_t>(entry)].epsilon.push_back(exit);
      return {entry, exit};
    }
    case Node::Kind::kCharSet: {
      const StateId entry = AddState();
      const StateId exit = AddState();
      states_[static_cast<std::size_t>(entry)].edges.emplace_back(node.chars,
                                                                  exit);
      return {entry, exit};
    }
    case Node::Kind::kConcat: {
      StateId entry = kInvalidNode;
      StateId previous_exit = kInvalidNode;
      for (NodeId child : node.children) {
        auto [child_entry, child_exit] = BuildNode(ast, child);
        if (entry == kInvalidNode) {
          entry = child_entry;
        } else {
          states_[static_cast<std::size_t>(previous_exit)].epsilon.push_back(
              child_entry);
        }
        previous_exit = child_exit;
      }
      assert(entry != kInvalidNode);
      return {entry, previous_exit};
    }
    case Node::Kind::kAlternate: {
      const StateId entry = AddState();
      const StateId exit = AddState();
      for (NodeId child : node.children) {
        auto [child_entry, child_exit] = BuildNode(ast, child);
        states_[static_cast<std::size_t>(entry)].epsilon.push_back(
            child_entry);
        states_[static_cast<std::size_t>(child_exit)].epsilon.push_back(exit);
      }
      return {entry, exit};
    }
    case Node::Kind::kRepeat: {
      // Expand min required copies in sequence, then either a Kleene star
      // (unbounded) or (max - min) optional copies.
      const StateId entry = AddState();
      StateId tail = entry;
      for (int i = 0; i < node.min_repeat; ++i) {
        auto [child_entry, child_exit] = BuildNode(ast, node.child);
        states_[static_cast<std::size_t>(tail)].epsilon.push_back(child_entry);
        tail = child_exit;
      }
      if (node.max_repeat == kUnbounded) {
        auto [child_entry, child_exit] = BuildNode(ast, node.child);
        const StateId exit = AddState();
        states_[static_cast<std::size_t>(tail)].epsilon.push_back(child_entry);
        states_[static_cast<std::size_t>(tail)].epsilon.push_back(exit);
        states_[static_cast<std::size_t>(child_exit)].epsilon.push_back(
            child_entry);
        states_[static_cast<std::size_t>(child_exit)].epsilon.push_back(exit);
        return {entry, exit};
      }
      const StateId exit = AddState();
      states_[static_cast<std::size_t>(tail)].epsilon.push_back(exit);
      for (int i = node.min_repeat; i < node.max_repeat; ++i) {
        auto [child_entry, child_exit] = BuildNode(ast, node.child);
        states_[static_cast<std::size_t>(tail)].epsilon.push_back(child_entry);
        states_[static_cast<std::size_t>(child_exit)].epsilon.push_back(exit);
        tail = child_exit;
      }
      return {entry, exit};
    }
  }
  assert(false && "unreachable");
  return {kInvalidNode, kInvalidNode};
}

namespace {

void EpsilonClosure(const Nfa& nfa, std::vector<StateId>& set,
                    std::vector<char>& member) {
  // `member` is a bitmap of size StateCount, reused between steps.
  std::vector<StateId> stack(set);
  while (!stack.empty()) {
    const StateId s = stack.back();
    stack.pop_back();
    for (StateId t : nfa.At(s).epsilon) {
      if (!member[static_cast<std::size_t>(t)]) {
        member[static_cast<std::size_t>(t)] = 1;
        set.push_back(t);
        stack.push_back(t);
      }
    }
  }
}

}  // namespace

bool Nfa::FullMatch(std::string_view subject) const {
  std::vector<char> member(states_.size(), 0);
  std::vector<StateId> current;
  current.push_back(start_);
  member[static_cast<std::size_t>(start_)] = 1;
  EpsilonClosure(*this, current, member);

  std::vector<StateId> next;
  std::vector<char> next_member(states_.size(), 0);
  for (char c : subject) {
    next.clear();
    std::fill(next_member.begin(), next_member.end(), 0);
    for (StateId s : current) {
      for (const auto& [chars, target] : At(s).edges) {
        if (chars.Contains(c) &&
            !next_member[static_cast<std::size_t>(target)]) {
          next_member[static_cast<std::size_t>(target)] = 1;
          next.push_back(target);
        }
      }
    }
    EpsilonClosure(*this, next, next_member);
    current.swap(next);
    member.swap(next_member);
    if (current.empty()) return false;
  }
  return member[static_cast<std::size_t>(accept_)] != 0;
}

}  // namespace confanon::regex
