// Public facade of the regex engine.
//
// Matching follows Cisco CLI semantics: a pattern matches a subject if it
// matches any substring (search semantics), with '^'/'$' anchoring to the
// subject boundaries and '_' matching a delimiter or a boundary. Internally
// the subject is framed with sentinels and the pattern is wrapped in
// implicit .* on both sides, reducing everything to DFA full-match.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "regex/dfa.h"
#include "regex/parser.h"

namespace confanon::regex {

struct RegexOptions {
  /// Cisco '_' delimiter semantics (on for policy regexes).
  bool cisco_underscore = true;
};

class Regex {
 public:
  using Options = RegexOptions;

  /// Compiles `pattern`; throws ParseError on malformed input.
  static Regex Compile(std::string_view pattern, Options options = Options());

  /// True if the pattern matches anywhere within `text` (Cisco semantics).
  bool Search(std::string_view text) const;

  const std::string& pattern() const { return pattern_; }

  /// The search DFA over framed subjects (for diagnostics and benches).
  const Dfa& dfa() const { return *dfa_; }
  /// The search NFA (the tests cross-check it against the DFA).
  const Nfa& nfa() const { return *nfa_; }

 private:
  Regex() = default;

  std::string pattern_;
  // Shared so Regex stays cheaply copyable; the automata are immutable.
  std::shared_ptr<const Nfa> nfa_;
  std::shared_ptr<const Dfa> dfa_;
};

/// Convenience: one-shot search. Compiling per call is fine for tests and
/// small tools; hot paths should keep the Regex.
bool SearchOnce(std::string_view pattern, std::string_view text);

}  // namespace confanon::regex
