// Parser for the IOS policy-regex dialect.
//
// The dialect is the POSIX-flavoured subset Cisco documents for as-path and
// community-list expressions:
//   literals, '.', character classes [abc] [a-z] [^...], grouping (...),
//   alternation '|', quantifiers '*' '+' '?', bounded repetition {m} {m,}
//   {m,n}, anchors '^' '$', the '_' delimiter metacharacter, and backslash
//   escapes of metacharacters.
//
// Anchors and '_' are desugared to character sets over the sentinel-framed
// alphabet (charset.h), so downstream automata never deal with zero-width
// assertions.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "regex/ast.h"

namespace confanon::regex {

/// Thrown for syntactically invalid patterns; `what()` includes the byte
/// offset of the error.
class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& message, std::size_t offset);
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

struct ParseOptions {
  /// Treat '_' as the Cisco delimiter metacharacter. Off means '_' is an
  /// ordinary literal (useful when matching non-policy text).
  bool cisco_underscore = true;
};

/// Parses `pattern` into `ast` and returns the root node id. The returned
/// AST matches exact (framed) strings; callers that want search semantics
/// wrap it with leading/trailing Any* (see Regex::Compile).
NodeId ParsePattern(std::string_view pattern, const ParseOptions& options,
                    Ast& ast);

}  // namespace confanon::regex
