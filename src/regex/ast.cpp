#include "regex/ast.h"

#include <utility>

namespace confanon::regex {

NodeId Ast::AddEmpty() {
  nodes_.emplace_back();
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Ast::AddCharSet(const CharSet& chars) {
  Node node;
  node.kind = Node::Kind::kCharSet;
  node.chars = chars;
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Ast::AddConcat(std::vector<NodeId> children) {
  Node node;
  node.kind = Node::Kind::kConcat;
  node.children = std::move(children);
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Ast::AddAlternate(std::vector<NodeId> children) {
  Node node;
  node.kind = Node::Kind::kAlternate;
  node.children = std::move(children);
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Ast::AddRepeat(NodeId child, int min_repeat, int max_repeat) {
  Node node;
  node.kind = Node::Kind::kRepeat;
  node.child = child;
  node.min_repeat = min_repeat;
  node.max_repeat = max_repeat;
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

}  // namespace confanon::regex
