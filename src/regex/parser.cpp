#include "regex/parser.h"

#include "util/strings.h"

namespace confanon::regex {

ParseError::ParseError(const std::string& message, std::size_t offset)
    : std::runtime_error(message + " (at offset " + std::to_string(offset) +
                         ")"),
      offset_(offset) {}

namespace {

/// Recursive-descent parser. Grammar (standard ERE precedence):
///   alternation := concat ('|' concat)*
///   concat      := repeat*
///   repeat      := atom quantifier*
///   atom        := '(' alternation ')' | '[' class ']' | '.' | '^' | '$'
///               | '_' | '\' char | literal
class Parser {
 public:
  Parser(std::string_view pattern, const ParseOptions& options, Ast& ast)
      : pattern_(pattern), options_(options), ast_(ast) {}

  NodeId Parse() {
    const NodeId root = ParseAlternation();
    if (!AtEnd()) {
      // The only way ParseAlternation stops early is an unbalanced ')'.
      throw ParseError("unmatched ')'", pos_);
    }
    return root;
  }

 private:
  bool AtEnd() const { return pos_ >= pattern_.size(); }
  char Peek() const { return pattern_[pos_]; }
  char Take() { return pattern_[pos_++]; }

  NodeId ParseAlternation() {
    std::vector<NodeId> branches;
    branches.push_back(ParseConcat());
    while (!AtEnd() && Peek() == '|') {
      Take();
      branches.push_back(ParseConcat());
    }
    if (branches.size() == 1) return branches[0];
    return ast_.AddAlternate(std::move(branches));
  }

  NodeId ParseConcat() {
    std::vector<NodeId> parts;
    while (!AtEnd() && Peek() != '|' && Peek() != ')') {
      parts.push_back(ParseRepeat());
    }
    if (parts.empty()) return ast_.AddEmpty();
    if (parts.size() == 1) return parts[0];
    return ast_.AddConcat(std::move(parts));
  }

  NodeId ParseRepeat() {
    NodeId node = ParseAtom();
    while (!AtEnd()) {
      const char c = Peek();
      if (c == '*') {
        Take();
        node = ast_.AddRepeat(node, 0, kUnbounded);
      } else if (c == '+') {
        Take();
        node = ast_.AddRepeat(node, 1, kUnbounded);
      } else if (c == '?') {
        Take();
        node = ast_.AddRepeat(node, 0, 1);
      } else if (c == '{') {
        node = ParseBoundedRepeat(node);
      } else {
        break;
      }
    }
    return node;
  }

  NodeId ParseBoundedRepeat(NodeId child) {
    const std::size_t open = pos_;
    Take();  // '{'
    const std::size_t lo_start = pos_;
    while (!AtEnd() && util::IsAsciiDigit(Peek())) Take();
    if (pos_ == lo_start) {
      throw ParseError("expected digit after '{'", pos_);
    }
    std::uint64_t lo = 0;
    util::ParseUint(pattern_.substr(lo_start, pos_ - lo_start), 1000, lo);
    std::uint64_t hi = lo;
    bool unbounded = false;
    if (!AtEnd() && Peek() == ',') {
      Take();
      if (!AtEnd() && Peek() == '}') {
        unbounded = true;
      } else {
        const std::size_t hi_start = pos_;
        while (!AtEnd() && util::IsAsciiDigit(Peek())) Take();
        if (pos_ == hi_start ||
            !util::ParseUint(pattern_.substr(hi_start, pos_ - hi_start), 1000,
                             hi)) {
          throw ParseError("bad repetition upper bound", pos_);
        }
        if (hi < lo) {
          throw ParseError("repetition bounds out of order", open);
        }
      }
    }
    if (AtEnd() || Take() != '}') {
      throw ParseError("unterminated '{'", open);
    }
    return ast_.AddRepeat(child, static_cast<int>(lo),
                          unbounded ? kUnbounded : static_cast<int>(hi));
  }

  NodeId ParseAtom() {
    if (AtEnd()) {
      throw ParseError("pattern ends where an atom was expected", pos_);
    }
    const std::size_t at = pos_;
    const char c = Take();
    switch (c) {
      case '(': {
        const NodeId inner = ParseAlternation();
        if (AtEnd() || Take() != ')') {
          throw ParseError("unmatched '('", at);
        }
        return inner;
      }
      case '[':
        return ParseCharClass(at);
      case '.':
        return ast_.AddCharSet(CharSet::AnyExceptSentinels());
      case '^':
        return ast_.AddCharSet(CharSet::Single(kBeginSentinel));
      case '$':
        return ast_.AddCharSet(CharSet::Single(kEndSentinel));
      case '_':
        if (options_.cisco_underscore) {
          return ast_.AddCharSet(CharSet::CiscoUnderscore());
        }
        return ast_.AddCharSet(CharSet::Single('_'));
      case '\\': {
        if (AtEnd()) {
          throw ParseError("dangling backslash", at);
        }
        return ast_.AddCharSet(CharSet::Single(Take()));
      }
      case '*':
      case '+':
      case '?':
        throw ParseError("quantifier with nothing to repeat", at);
      case ')':
        // ParseConcat never hands us ')'; reaching here means empty "()" or
        // a leading ')' which ParseConcat treats as an empty branch.
        throw ParseError("unexpected ')'", at);
      default:
        return ast_.AddCharSet(CharSet::Single(c));
    }
  }

  NodeId ParseCharClass(std::size_t open) {
    CharSet set;
    bool negated = false;
    if (!AtEnd() && Peek() == '^') {
      Take();
      negated = true;
    }
    bool first = true;
    while (true) {
      if (AtEnd()) {
        throw ParseError("unterminated '['", open);
      }
      char c = Take();
      if (c == ']' && !first) break;
      first = false;
      if (c == '\\') {
        if (AtEnd()) throw ParseError("dangling backslash in class", pos_);
        c = Take();
      }
      // Range "a-z": a '-' that is neither first (handled by falling
      // through as literal below) nor last.
      if (!AtEnd() && Peek() == '-' && pos_ + 1 < pattern_.size() &&
          pattern_[pos_ + 1] != ']') {
        Take();  // '-'
        char hi = Take();
        if (hi == '\\') {
          if (AtEnd()) throw ParseError("dangling backslash in class", pos_);
          hi = Take();
        }
        if (static_cast<unsigned char>(hi) < static_cast<unsigned char>(c)) {
          throw ParseError("character range out of order", pos_);
        }
        set.AddRange(c, hi);
      } else {
        set.Add(c);
      }
    }
    if (set.Empty()) {
      throw ParseError("empty character class", open);
    }
    if (negated) {
      return ast_.AddCharSet(set.NegatedWithinText());
    }
    return ast_.AddCharSet(set);
  }

  std::string_view pattern_;
  ParseOptions options_;
  Ast& ast_;
  std::size_t pos_ = 0;
};

}  // namespace

NodeId ParsePattern(std::string_view pattern, const ParseOptions& options,
                    Ast& ast) {
  Parser parser(pattern, options, ast);
  const NodeId root = parser.Parse();
  ast.set_root(root);
  return root;
}

}  // namespace confanon::regex
