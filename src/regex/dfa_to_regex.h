// Converting automata back to regular expressions, and building automata
// for finite languages.
//
// This implements the extension the paper sketches in Section 4.4: instead
// of emitting the anonymized ASN language as a flat alternation
// (701|13|4451|...), build the minimal DFA for the finite language and
// convert it back to a compact regexp by state elimination. The bench
// harness compares the two output forms.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "regex/dfa.h"

namespace confanon::regex {

/// Builds a total DFA (trie plus dead state) accepting exactly `words`.
/// Intended for finite languages such as a set of ASN decimal strings.
Dfa BuildDfaFromStrings(const std::vector<std::string>& words);

/// Converts a DFA to an ERE matching exactly its language, by GNFA state
/// elimination. Returns nullopt for the empty language. The result can be
/// large for adversarial automata but is compact for minimized finite
/// languages. The empty string in the language renders as an optional
/// top-level group.
std::optional<std::string> DfaToRegex(const Dfa& dfa);

/// Escapes one byte for safe literal use inside an ERE.
std::string EscapeRegexChar(char c);

/// Renders a CharSet as a compact ERE snippet ("7", "[0-9]", "[a-cx]").
/// The set must be non-empty and must not contain sentinel bytes.
std::string CharSetToRegex(const CharSet& set);

}  // namespace confanon::regex
