// Thompson NFA construction and simulation.
//
// The NFA is the bridge between the parsed AST and the DFA used for fast
// language enumeration. It is also a matcher in its own right; the test
// suite cross-checks NFA simulation against DFA execution and against
// std::regex on the shared dialect subset.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "regex/ast.h"

namespace confanon::regex {

using StateId = std::int32_t;

struct NfaState {
  /// Consuming transitions: (byte set, target state).
  std::vector<std::pair<CharSet, StateId>> edges;
  /// Epsilon transitions.
  std::vector<StateId> epsilon;
};

class Nfa {
 public:
  /// Builds the Thompson NFA for the AST rooted at `ast.root()`. Bounded
  /// repetitions are expanded structurally (the subtree is instantiated
  /// min..max times), so state count grows with the repetition bounds.
  static Nfa Build(const Ast& ast);

  StateId start() const { return start_; }
  StateId accept() const { return accept_; }
  std::size_t StateCount() const { return states_.size(); }
  const NfaState& At(StateId id) const {
    return states_[static_cast<std::size_t>(id)];
  }

  /// True if the NFA accepts exactly `subject` (full match; the caller is
  /// responsible for sentinel framing).
  bool FullMatch(std::string_view subject) const;

 private:
  StateId AddState();
  /// Builds the fragment for `node`, returning (entry, exit).
  std::pair<StateId, StateId> BuildNode(const Ast& ast, NodeId node);

  std::vector<NfaState> states_;
  StateId start_ = 0;
  StateId accept_ = 0;
};

}  // namespace confanon::regex
