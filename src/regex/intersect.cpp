#include "regex/intersect.h"

#include <array>
#include <cstdint>
#include <deque>
#include <unordered_map>

#include "regex/nfa.h"
#include "regex/parser.h"

namespace confanon::regex {

namespace {

/// Byte order used by the BFS so witnesses come out readable: digits,
/// then lowercase letters, then the punctuation config identifiers use,
/// then everything else ascending. Computed once.
const std::array<unsigned char, 256>& WitnessByteOrder() {
  static const std::array<unsigned char, 256> order = [] {
    std::array<unsigned char, 256> out{};
    std::array<bool, 256> used{};
    std::size_t n = 0;
    const auto add = [&](unsigned char c) {
      if (!used[c]) {
        used[c] = true;
        out[n++] = c;
      }
    };
    for (unsigned char c = '0'; c <= '9'; ++c) add(c);
    for (unsigned char c = 'a'; c <= 'z'; ++c) add(c);
    for (const unsigned char c : {'.', ':', '-', '_', '/'}) add(c);
    for (unsigned char c = 'A'; c <= 'Z'; ++c) add(c);
    for (int c = 0; c < 256; ++c) add(static_cast<unsigned char>(c));
    return out;
  }();
  return order;
}

/// One explored product state: the (a, b) state pair plus the BFS tree
/// edge that discovered it, for witness reconstruction.
struct ProductNode {
  std::int32_t a = 0;
  std::int32_t b = 0;
  std::int32_t parent = -1;  // index into the node arena
  unsigned char byte = 0;    // edge label from parent
};

std::uint64_t PairKey(std::int32_t a, std::int32_t b) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint32_t>(b);
}

std::string ReconstructWitness(const std::vector<ProductNode>& nodes,
                               std::int32_t index) {
  std::string witness;
  for (std::int32_t at = index; nodes[static_cast<std::size_t>(at)].parent >= 0;
       at = nodes[static_cast<std::size_t>(at)].parent) {
    witness += static_cast<char>(nodes[static_cast<std::size_t>(at)].byte);
  }
  return {witness.rbegin(), witness.rend()};
}

/// States from which some accepting state is reachable, via backward
/// reachability over the transition graph. Transitions into non-alive
/// states (the explicit dead state and any trap region) can never extend
/// to a witness, so the product walk prunes them.
std::vector<bool> AliveStates(const Dfa& dfa) {
  const int n = dfa.StateCount();
  std::vector<std::vector<std::int32_t>> reverse(
      static_cast<std::size_t>(n));
  for (int state = 0; state < n; ++state) {
    for (int byte_class = 0; byte_class < dfa.NumClasses(); ++byte_class) {
      reverse[static_cast<std::size_t>(
                  dfa.TransitionByClass(state, byte_class))]
          .push_back(state);
    }
  }
  std::vector<bool> alive(static_cast<std::size_t>(n), false);
  std::deque<std::int32_t> queue;
  for (int state = 0; state < n; ++state) {
    if (dfa.IsAccepting(state)) {
      alive[static_cast<std::size_t>(state)] = true;
      queue.push_back(state);
    }
  }
  while (!queue.empty()) {
    const std::int32_t state = queue.front();
    queue.pop_front();
    for (const std::int32_t pred : reverse[static_cast<std::size_t>(state)]) {
      if (!alive[static_cast<std::size_t>(pred)]) {
        alive[static_cast<std::size_t>(pred)] = true;
        queue.push_back(pred);
      }
    }
  }
  return alive;
}

/// Shared BFS: walks the product automaton shortest-first, calling
/// `on_accept` for every accepting product node in discovery order until
/// it returns false. `dedupe` controls whether a product state pair is
/// expanded once (emptiness / shortest witness) or once per distinct
/// path (enumeration of a finite language's strings).
template <typename OnAccept>
void ProductWalk(const Dfa& a, const Dfa& b, bool dedupe,
                 std::size_t max_length, std::size_t max_nodes,
                 OnAccept&& on_accept) {
  const std::array<unsigned char, 256>& order = WitnessByteOrder();
  const std::vector<bool> alive_a = AliveStates(a);
  const std::vector<bool> alive_b = AliveStates(b);
  if (!alive_a[static_cast<std::size_t>(a.start())] ||
      !alive_b[static_cast<std::size_t>(b.start())]) {
    return;  // one side's whole language is empty
  }

  std::vector<ProductNode> nodes;
  std::vector<std::size_t> depth;
  std::unordered_map<std::uint64_t, bool> visited;
  std::deque<std::int32_t> queue;

  nodes.push_back({a.start(), b.start(), -1, 0});
  depth.push_back(0);
  visited[PairKey(a.start(), b.start())] = true;
  queue.push_back(0);

  while (!queue.empty()) {
    const std::int32_t index = queue.front();
    queue.pop_front();
    const ProductNode node = nodes[static_cast<std::size_t>(index)];
    if (a.IsAccepting(node.a) && b.IsAccepting(node.b)) {
      if (!on_accept(nodes, index)) return;
    }
    if (depth[static_cast<std::size_t>(index)] >= max_length) continue;
    if (nodes.size() >= max_nodes) continue;  // cap runaway products
    for (const unsigned char byte : order) {
      const char c = static_cast<char>(byte);
      const std::int32_t na = a.Transition(node.a, c);
      const std::int32_t nb = b.Transition(node.b, c);
      if (!alive_a[static_cast<std::size_t>(na)] ||
          !alive_b[static_cast<std::size_t>(nb)]) {
        continue;  // no witness can extend through a dead side
      }
      if (dedupe) {
        bool& seen = visited[PairKey(na, nb)];
        if (seen) continue;
        seen = true;
      }
      nodes.push_back({na, nb, index, byte});
      depth.push_back(depth[static_cast<std::size_t>(index)] + 1);
      queue.push_back(static_cast<std::int32_t>(nodes.size() - 1));
    }
  }
}

}  // namespace

bool IntersectionEmpty(const Dfa& a, const Dfa& b) {
  return !ShortestIntersectionWitness(a, b).has_value();
}

std::optional<std::string> ShortestIntersectionWitness(const Dfa& a,
                                                       const Dfa& b) {
  std::optional<std::string> witness;
  // Depth bound: every product state pair is visited at most once, so any
  // accepting pair is reached within |a| x |b| steps.
  const std::size_t max_length = static_cast<std::size_t>(a.StateCount()) *
                                 static_cast<std::size_t>(b.StateCount());
  ProductWalk(a, b, /*dedupe=*/true, max_length,
              /*max_nodes=*/1u << 22,
              [&](const std::vector<ProductNode>& nodes, std::int32_t index) {
                witness = ReconstructWitness(nodes, index);
                return false;  // first accept in BFS order is shortest
              });
  return witness;
}

std::vector<std::string> EnumerateIntersection(const Dfa& a, const Dfa& b,
                                               std::size_t max_results,
                                               std::size_t max_length) {
  std::vector<std::string> results;
  if (max_results == 0) return results;
  // No dedupe: distinct strings can share product states. The node cap
  // bounds the walk on products with cyclic (infinite) intersections.
  ProductWalk(a, b, /*dedupe=*/false, max_length, /*max_nodes=*/1u << 20,
              [&](const std::vector<ProductNode>& nodes, std::int32_t index) {
                results.push_back(ReconstructWitness(nodes, index));
                return results.size() < max_results;
              });
  return results;
}

Dfa LiteralSetDfa(const std::vector<std::string>& literals) {
  Ast ast;
  std::vector<NodeId> branches;
  branches.reserve(literals.size());
  for (const std::string& literal : literals) {
    if (literal.empty()) {
      branches.push_back(ast.AddEmpty());
      continue;
    }
    std::vector<NodeId> chars;
    chars.reserve(literal.size());
    for (const char c : literal) {
      chars.push_back(ast.AddCharSet(CharSet::Single(c)));
    }
    branches.push_back(ast.AddConcat(std::move(chars)));
  }
  if (branches.empty()) {
    // Empty set: a single-byte requirement over the empty character set
    // can never be satisfied, so the language is empty.
    ast.set_root(ast.AddCharSet(CharSet()));
  } else {
    ast.set_root(ast.AddAlternate(std::move(branches)));
  }
  return Dfa::FromNfa(Nfa::Build(ast)).Minimize();
}

Dfa CompileFullMatchDfa(std::string_view pattern) {
  Ast ast;
  ParseOptions options;
  options.cisco_underscore = false;
  ast.set_root(ParsePattern(pattern, options, ast));
  return Dfa::FromNfa(Nfa::Build(ast)).Minimize();
}

}  // namespace confanon::regex
