#include "regex/dfa.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

namespace confanon::regex {

namespace {

/// Computes byte-equivalence classes: two bytes are equivalent if every
/// CharSet appearing on any NFA edge either contains both or neither.
/// Returns the number of classes and fills `byte_class`.
int ComputeByteClasses(const Nfa& nfa, std::array<std::int16_t, 256>& byte_class) {
  // Signature of a byte: the membership bit vector across all edge sets.
  // We refine incrementally: start with one class, split by each set.
  std::vector<int> cls(256, 0);
  int num_classes = 1;
  for (std::size_t s = 0; s < nfa.StateCount(); ++s) {
    for (const auto& [chars, target] : nfa.At(static_cast<StateId>(s)).edges) {
      (void)target;
      // Split every existing class into (in set / not in set).
      std::map<std::pair<int, bool>, int> remap;
      std::vector<int> next(256);
      int next_classes = 0;
      for (int b = 0; b < 256; ++b) {
        const std::pair<int, bool> key{cls[b],
                                       chars.Contains(static_cast<char>(b))};
        auto it = remap.find(key);
        if (it == remap.end()) {
          it = remap.emplace(key, next_classes++).first;
        }
        next[b] = it->second;
      }
      cls.swap(next);
      num_classes = next_classes;
    }
  }
  for (int b = 0; b < 256; ++b) {
    byte_class[static_cast<std::size_t>(b)] =
        static_cast<std::int16_t>(cls[static_cast<std::size_t>(b)]);
  }
  return num_classes;
}

void Closure(const Nfa& nfa, std::vector<StateId>& set,
             std::vector<char>& member) {
  std::vector<StateId> stack(set);
  while (!stack.empty()) {
    const StateId s = stack.back();
    stack.pop_back();
    for (StateId t : nfa.At(s).epsilon) {
      if (!member[static_cast<std::size_t>(t)]) {
        member[static_cast<std::size_t>(t)] = 1;
        set.push_back(t);
        stack.push_back(t);
      }
    }
  }
  std::sort(set.begin(), set.end());
}

}  // namespace

Dfa Dfa::FromNfa(const Nfa& nfa) {
  Dfa dfa;
  dfa.num_classes_ = ComputeByteClasses(nfa, dfa.byte_class_);

  // Pick one representative byte per class for transition evaluation.
  std::vector<char> representative(static_cast<std::size_t>(dfa.num_classes_));
  for (int b = 255; b >= 0; --b) {
    representative[static_cast<std::size_t>(dfa.byte_class_[static_cast<std::size_t>(b)])] =
        static_cast<char>(b);
  }

  std::map<std::vector<StateId>, int> ids;
  std::vector<std::vector<StateId>> sets;

  std::vector<char> member(nfa.StateCount(), 0);
  std::vector<StateId> start_set{nfa.start()};
  member[static_cast<std::size_t>(nfa.start())] = 1;
  Closure(nfa, start_set, member);

  ids.emplace(start_set, 0);
  sets.push_back(start_set);
  dfa.start_ = 0;

  // The dead state is materialized lazily as the empty set.
  std::vector<int> worklist{0};
  while (!worklist.empty()) {
    const int id = worklist.back();
    worklist.pop_back();
    const std::vector<StateId> current = sets[static_cast<std::size_t>(id)];
    if (static_cast<std::size_t>(id + 1) * static_cast<std::size_t>(dfa.num_classes_) >
        dfa.transitions_.size()) {
      dfa.transitions_.resize(
          (static_cast<std::size_t>(id) + 1) *
              static_cast<std::size_t>(dfa.num_classes_),
          -1);
    }
    for (int k = 0; k < dfa.num_classes_; ++k) {
      const char c = representative[static_cast<std::size_t>(k)];
      std::fill(member.begin(), member.end(), 0);
      std::vector<StateId> next;
      for (StateId s : current) {
        for (const auto& [chars, target] : nfa.At(s).edges) {
          if (chars.Contains(c) && !member[static_cast<std::size_t>(target)]) {
            member[static_cast<std::size_t>(target)] = 1;
            next.push_back(target);
          }
        }
      }
      Closure(nfa, next, member);
      auto [it, inserted] = ids.emplace(next, static_cast<int>(sets.size()));
      if (inserted) {
        sets.push_back(next);
        worklist.push_back(it->second);
      }
      dfa.transitions_[static_cast<std::size_t>(id) *
                           static_cast<std::size_t>(dfa.num_classes_) +
                       static_cast<std::size_t>(k)] = it->second;
    }
  }

  dfa.num_states_ = static_cast<int>(sets.size());
  dfa.transitions_.resize(static_cast<std::size_t>(dfa.num_states_) *
                              static_cast<std::size_t>(dfa.num_classes_),
                          -1);
  dfa.accepting_.assign(static_cast<std::size_t>(dfa.num_states_), false);
  for (int id = 0; id < dfa.num_states_; ++id) {
    const auto& set = sets[static_cast<std::size_t>(id)];
    dfa.accepting_[static_cast<std::size_t>(id)] =
        std::binary_search(set.begin(), set.end(), nfa.accept());
  }
  return dfa;
}

bool Dfa::FullMatch(std::string_view subject) const {
  int state = start_;
  for (char c : subject) {
    state = Transition(state, c);
  }
  return accepting_[static_cast<std::size_t>(state)];
}

Dfa Dfa::Minimize() const {
  // Moore's algorithm: refine the accepting/non-accepting partition until
  // no class splits. O(n^2 * classes) worst case, ample for policy regexes.
  std::vector<int> block(static_cast<std::size_t>(num_states_));
  for (int s = 0; s < num_states_; ++s) {
    block[static_cast<std::size_t>(s)] =
        accepting_[static_cast<std::size_t>(s)] ? 1 : 0;
  }
  int num_blocks = 2;
  // Degenerate case: all states agree on acceptance.
  if (std::all_of(accepting_.begin(), accepting_.end(),
                  [](bool a) { return a; }) ||
      std::none_of(accepting_.begin(), accepting_.end(),
                   [](bool a) { return a; })) {
    std::fill(block.begin(), block.end(), 0);
    num_blocks = 1;
  }

  for (;;) {
    // Signature of a state: (its block, blocks of all class-transitions).
    std::map<std::vector<int>, int> remap;
    std::vector<int> next(static_cast<std::size_t>(num_states_));
    for (int s = 0; s < num_states_; ++s) {
      std::vector<int> signature;
      signature.reserve(static_cast<std::size_t>(num_classes_) + 1);
      signature.push_back(block[static_cast<std::size_t>(s)]);
      for (int k = 0; k < num_classes_; ++k) {
        signature.push_back(
            block[static_cast<std::size_t>(TransitionByClass(s, k))]);
      }
      auto [it, inserted] =
          remap.emplace(std::move(signature), static_cast<int>(remap.size()));
      next[static_cast<std::size_t>(s)] = it->second;
    }
    const int next_blocks = static_cast<int>(remap.size());
    block.swap(next);
    if (next_blocks == num_blocks) break;
    num_blocks = next_blocks;
  }

  Dfa result;
  result.num_states_ = num_blocks;
  result.num_classes_ = num_classes_;
  result.byte_class_ = byte_class_;
  result.start_ = block[static_cast<std::size_t>(start_)];
  result.transitions_.assign(static_cast<std::size_t>(num_blocks) *
                                 static_cast<std::size_t>(num_classes_),
                             -1);
  result.accepting_.assign(static_cast<std::size_t>(num_blocks), false);
  for (int s = 0; s < num_states_; ++s) {
    const int b = block[static_cast<std::size_t>(s)];
    result.accepting_[static_cast<std::size_t>(b)] =
        accepting_[static_cast<std::size_t>(s)];
    for (int k = 0; k < num_classes_; ++k) {
      result.transitions_[static_cast<std::size_t>(b) *
                              static_cast<std::size_t>(num_classes_) +
                          static_cast<std::size_t>(k)] =
          block[static_cast<std::size_t>(TransitionByClass(s, k))];
    }
  }
  return result;
}

bool Dfa::EquivalentTo(const Dfa& other) const {
  // Synchronized BFS over the product automaton; the DFAs may have
  // different byte-class partitions, so we step the product once per byte
  // class of the *refined* common partition (pairs of classes).
  std::set<std::pair<int, int>> visited;
  std::vector<std::pair<int, int>> stack{{start_, other.start_}};
  visited.insert(stack.front());
  while (!stack.empty()) {
    auto [a, b] = stack.back();
    stack.pop_back();
    if (IsAccepting(a) != other.IsAccepting(b)) return false;
    // Step on one representative byte per (class_a, class_b) pair.
    std::set<std::pair<int, int>> seen_class_pairs;
    for (int byte = 0; byte < 256; ++byte) {
      const char c = static_cast<char>(byte);
      const std::pair<int, int> pair{ClassOf(c), other.ClassOf(c)};
      if (!seen_class_pairs.insert(pair).second) continue;
      const std::pair<int, int> next{Transition(a, c),
                                     other.Transition(b, c)};
      if (visited.insert(next).second) {
        stack.push_back(next);
      }
    }
  }
  return true;
}

bool Dfa::IsEmptyLanguage() const {
  std::vector<char> visited(static_cast<std::size_t>(num_states_), 0);
  std::vector<int> stack{start_};
  visited[static_cast<std::size_t>(start_)] = 1;
  while (!stack.empty()) {
    const int s = stack.back();
    stack.pop_back();
    if (IsAccepting(s)) return false;
    for (int k = 0; k < num_classes_; ++k) {
      const int t = TransitionByClass(s, k);
      if (!visited[static_cast<std::size_t>(t)]) {
        visited[static_cast<std::size_t>(t)] = 1;
        stack.push_back(t);
      }
    }
  }
  return true;
}

CharSet Dfa::ClassChars(int byte_class) const {
  CharSet set;
  for (int b = 0; b < 256; ++b) {
    if (byte_class_[static_cast<std::size_t>(b)] == byte_class) {
      set.Add(static_cast<char>(b));
    }
  }
  return set;
}

}  // namespace confanon::regex
