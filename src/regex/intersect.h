// Language intersection over DFAs: emptiness proofs and witnesses.
//
// The static policy verifier (src/verify) must prove that the language a
// sensitive recognizer accepts (IPv4 literals, public ASNs, communities,
// hash tokens) shares no string with the pass-list's verbatim language.
// Both sides are DFAs, so the proof is a product walk: the intersection
// is empty iff no accepting product state is reachable, and a breadth-
// first walk yields a *shortest* witness when it is not — the string an
// operator sees in the finding, and the string the tests feed back
// through the real anonymizer to demonstrate the leak.
//
// Byte order within the BFS prefers digits, lowercase letters and common
// config punctuation so witnesses come out readable; the order affects
// only which same-length witness is reported, never emptiness or length.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "regex/dfa.h"

namespace confanon::regex {

/// True iff L(a) ∩ L(b) is empty (no accepting product state reachable).
bool IntersectionEmpty(const Dfa& a, const Dfa& b);

/// A shortest string in L(a) ∩ L(b), or nullopt when the intersection is
/// empty. Ties at the shortest length resolve to the first string in the
/// witness byte order (digits, lowercase, punctuation, rest).
std::optional<std::string> ShortestIntersectionWitness(const Dfa& a,
                                                       const Dfa& b);

/// Up to `max_results` strings of L(a) ∩ L(b) in BFS (shortest-first)
/// order, each no longer than `max_length` bytes. Intended for finite
/// (or finite-after-truncation) intersections such as pass-list
/// languages; expansion is capped internally so pathological products
/// terminate with a partial enumeration rather than diverging.
std::vector<std::string> EnumerateIntersection(const Dfa& a, const Dfa& b,
                                               std::size_t max_results,
                                               std::size_t max_length = 256);

/// Builds a minimal DFA accepting exactly the given literal strings
/// (byte-for-byte; no metacharacters). The empty set yields a DFA with
/// an empty language.
Dfa LiteralSetDfa(const std::vector<std::string>& literals);

/// Compiles `pattern` (the IOS policy-regex dialect, '_' treated as a
/// literal) into a full-match DFA over raw, unframed subjects. Patterns
/// must not use '^'/'$' anchors — full match is implicit. Throws
/// ParseError on malformed patterns.
Dfa CompileFullMatchDfa(std::string_view pattern);

}  // namespace confanon::regex
