// Character sets over the 8-bit alphabet used by the regex engine.
//
// The engine frames every subject string with sentinel bytes so that the
// anchors (^, $) and Cisco's `_` delimiter can be desugared into ordinary
// character classes; this file defines the alphabet and those sentinels.
#pragma once

#include <bitset>
#include <cstdint>
#include <string>
#include <string_view>

namespace confanon::regex {

/// Sentinel framing bytes. They never occur in config text (which is
/// printable ASCII), so using them as virtual begin/end markers is safe.
inline constexpr char kBeginSentinel = '\x02';
inline constexpr char kEndSentinel = '\x03';

/// A set of byte values with value semantics.
class CharSet {
 public:
  CharSet() = default;

  static CharSet Single(char c) {
    CharSet set;
    set.Add(c);
    return set;
  }

  /// Every byte value, including the sentinels. Used for the implicit
  /// leading/trailing ".*" that gives the engine search (substring)
  /// semantics.
  static CharSet Any();

  /// Every byte except the framing sentinels; this is what `.` and negated
  /// classes expand to, so that `.` cannot consume the virtual string
  /// boundaries.
  static CharSet AnyExceptSentinels();

  /// Cisco as-path `_`: matches a delimiter — space, comma, braces,
  /// parentheses — or the start/end of the string (the sentinels).
  static CharSet CiscoUnderscore();

  void Add(char c) { bits_.set(static_cast<unsigned char>(c)); }
  void AddRange(char lo, char hi);
  bool Contains(char c) const { return bits_.test(static_cast<unsigned char>(c)); }
  bool Empty() const { return bits_.none(); }
  std::size_t Count() const { return bits_.count(); }

  CharSet& operator|=(const CharSet& other) {
    bits_ |= other.bits_;
    return *this;
  }

  /// Complement within AnyExceptSentinels (negated classes must not match
  /// the virtual boundaries).
  CharSet NegatedWithinText() const;

  bool operator==(const CharSet& other) const = default;

  /// Debug rendering, e.g. "[0-9a]".
  std::string ToString() const;

 private:
  std::bitset<256> bits_;
};

/// Frames `text` with the begin/end sentinels.
std::string FrameSubject(std::string_view text);

}  // namespace confanon::regex
