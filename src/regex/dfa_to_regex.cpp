#include "regex/dfa_to_regex.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "regex/nfa.h"
#include "regex/parser.h"

namespace confanon::regex {

Dfa BuildDfaFromStrings(const std::vector<std::string>& words) {
  // Build the language as an AST alternation of literal strings and reuse
  // the NFA/DFA pipeline; subset construction of a trie-shaped NFA yields a
  // trie-shaped DFA, and callers typically Minimize() afterwards.
  Ast ast;
  std::vector<NodeId> branches;
  branches.reserve(words.size());
  for (const std::string& word : words) {
    std::vector<NodeId> chars;
    chars.reserve(word.size());
    for (char c : word) {
      chars.push_back(ast.AddCharSet(CharSet::Single(c)));
    }
    if (chars.empty()) {
      branches.push_back(ast.AddEmpty());
    } else {
      branches.push_back(ast.AddConcat(std::move(chars)));
    }
  }
  if (branches.empty()) {
    // Empty language: a charset that matches nothing is inexpressible in
    // the AST, so use a repeat-once of an impossible alternation via an
    // empty-set DFA: build "match empty string" then strip acceptance.
    ast.set_root(ast.AddEmpty());
    Nfa nfa = Nfa::Build(ast);
    Dfa dfa = Dfa::FromNfa(nfa);
    // Rebuild with no accepting states by minimizing a DFA whose accept
    // condition we cannot edit; instead construct a one-word language that
    // uses a sentinel (never produced by callers) and minimize: simplest is
    // to return the DFA for a sentinel-containing word, whose language over
    // caller alphabets is empty.
    return BuildDfaFromStrings({std::string(1, kBeginSentinel)});
  }
  ast.set_root(ast.AddAlternate(std::move(branches)));
  Nfa nfa = Nfa::Build(ast);
  return Dfa::FromNfa(nfa);
}

std::string EscapeRegexChar(char c) {
  switch (c) {
    case '.':
    case '*':
    case '+':
    case '?':
    case '(':
    case ')':
    case '[':
    case ']':
    case '{':
    case '}':
    case '|':
    case '^':
    case '$':
    case '\\':
    case '_':  // Cisco metacharacter in this dialect
      return std::string("\\") + c;
    default:
      return std::string(1, c);
  }
}

std::string CharSetToRegex(const CharSet& set) {
  assert(!set.Empty());
  std::vector<char> members;
  for (int b = 0; b < 256; ++b) {
    const char c = static_cast<char>(b);
    if (set.Contains(c)) {
      assert(c != kBeginSentinel && c != kEndSentinel);
      members.push_back(c);
    }
  }
  if (members.size() == 1) {
    return EscapeRegexChar(members[0]);
  }
  // Render as a class with ranges.
  std::string body;
  std::size_t i = 0;
  while (i < members.size()) {
    std::size_t j = i;
    while (j + 1 < members.size() && members[j + 1] == members[j] + 1) ++j;
    auto class_escape = [](char c) -> std::string {
      if (c == ']' || c == '\\' || c == '^' || c == '-') {
        return std::string("\\") + c;
      }
      return std::string(1, c);
    };
    if (j - i >= 2) {
      body += class_escape(members[i]);
      body += '-';
      body += class_escape(members[j]);
    } else {
      for (std::size_t k = i; k <= j; ++k) body += class_escape(members[k]);
    }
    i = j + 1;
  }
  return "[" + body + "]";
}

namespace {

/// True if `re` contains an alternation bar at nesting depth zero.
bool HasTopLevelAlternation(const std::string& re) {
  int depth = 0;
  bool in_class = false;
  for (std::size_t i = 0; i < re.size(); ++i) {
    const char c = re[i];
    if (c == '\\') {
      ++i;
      continue;
    }
    if (in_class) {
      if (c == ']') in_class = false;
      continue;
    }
    if (c == '[') {
      in_class = true;
    } else if (c == '(') {
      ++depth;
    } else if (c == ')') {
      --depth;
    } else if (c == '|' && depth == 0) {
      return true;
    }
  }
  return false;
}

/// True if `re` is one atomic unit (single possibly-escaped char, one
/// class, or one fully parenthesized group).
bool IsSingleUnit(const std::string& re) {
  if (re.empty()) return false;
  if (re.size() == 1) return true;
  if (re[0] == '\\' && re.size() == 2) return true;
  if (re.front() == '[') {
    // Exactly one class.
    bool escaped = false;
    for (std::size_t i = 1; i < re.size(); ++i) {
      if (escaped) {
        escaped = false;
        continue;
      }
      if (re[i] == '\\') {
        escaped = true;
      } else if (re[i] == ']') {
        return i == re.size() - 1;
      }
    }
    return false;
  }
  if (re.front() == '(') {
    int depth = 0;
    bool in_class = false;
    for (std::size_t i = 0; i < re.size(); ++i) {
      const char c = re[i];
      if (c == '\\') {
        ++i;
        continue;
      }
      if (in_class) {
        if (c == ']') in_class = false;
        continue;
      }
      if (c == '[') in_class = true;
      if (c == '(') ++depth;
      if (c == ')') {
        --depth;
        if (depth == 0) return i == re.size() - 1;
      }
    }
  }
  return false;
}

std::string Group(const std::string& re) {
  if (IsSingleUnit(re)) return re;
  return "(" + re + ")";
}

/// re1 . re2 with correct precedence.
std::string Concat(const std::string& a, const std::string& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  const std::string left = HasTopLevelAlternation(a) ? "(" + a + ")" : a;
  const std::string right = HasTopLevelAlternation(b) ? "(" + b + ")" : b;
  return left + right;
}

/// re1 | re2 over optional (absent = empty language) operands.
std::optional<std::string> Alternate(const std::optional<std::string>& a,
                                     const std::optional<std::string>& b) {
  if (!a) return b;
  if (!b) return a;
  if (*a == *b) return a;
  // Epsilon on either side renders as an optional group.
  if (a->empty()) return Group(*b) + "?";
  if (b->empty()) return Group(*a) + "?";
  return *a + "|" + *b;
}

std::string Star(const std::string& re) {
  if (re.empty()) return "";
  return Group(re) + "*";
}

}  // namespace

std::optional<std::string> DfaToRegex(const Dfa& dfa) {
  if (dfa.IsEmptyLanguage()) return std::nullopt;

  const int n = dfa.StateCount();
  // GNFA with super-start n and super-accept n+1.
  const int super_start = n;
  const int super_accept = n + 1;
  const int total = n + 2;

  // edge[i][j]: regex for i->j, nullopt if absent.
  std::vector<std::vector<std::optional<std::string>>> edge(
      static_cast<std::size_t>(total),
      std::vector<std::optional<std::string>>(
          static_cast<std::size_t>(total)));

  // Collapse class transitions into per-(i,j) CharSets.
  for (int i = 0; i < n; ++i) {
    std::map<int, CharSet> by_target;
    for (int k = 0; k < dfa.NumClasses(); ++k) {
      const int j = dfa.TransitionByClass(i, k);
      CharSet chars = dfa.ClassChars(k);
      // Sentinels can only appear in DFAs built over framed subjects;
      // finite-language DFAs (our callers) never transition on them from
      // reachable states, but the dead state has self-loops on everything.
      // Drop sentinel bytes: they are outside the output alphabet.
      CharSet cleaned;
      for (int b = 0; b < 256; ++b) {
        const char c = static_cast<char>(b);
        if (c == kBeginSentinel || c == kEndSentinel) continue;
        if (chars.Contains(c)) cleaned.Add(c);
      }
      if (cleaned.Empty()) continue;
      by_target[j] |= cleaned;
    }
    for (const auto& [j, chars] : by_target) {
      edge[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          CharSetToRegex(chars);
    }
  }

  edge[static_cast<std::size_t>(super_start)]
      [static_cast<std::size_t>(dfa.start())] = std::string();
  for (int s = 0; s < n; ++s) {
    if (dfa.IsAccepting(s)) {
      edge[static_cast<std::size_t>(s)]
          [static_cast<std::size_t>(super_accept)] = std::string();
    }
  }

  // Eliminate the original states in an order that prefers low-degree
  // states first (keeps intermediate expressions small).
  std::vector<int> order;
  for (int s = 0; s < n; ++s) order.push_back(s);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    auto degree = [&](int s) {
      int d = 0;
      for (int t = 0; t < total; ++t) {
        if (edge[static_cast<std::size_t>(s)][static_cast<std::size_t>(t)])
          ++d;
        if (edge[static_cast<std::size_t>(t)][static_cast<std::size_t>(s)])
          ++d;
      }
      return d;
    };
    return degree(a) < degree(b);
  });

  std::vector<bool> eliminated(static_cast<std::size_t>(total), false);
  for (int q : order) {
    eliminated[static_cast<std::size_t>(q)] = true;
    const std::optional<std::string> self =
        edge[static_cast<std::size_t>(q)][static_cast<std::size_t>(q)];
    const std::string loop = self ? Star(*self) : std::string();
    for (int i = 0; i < total; ++i) {
      if (eliminated[static_cast<std::size_t>(i)]) continue;
      const auto& in =
          edge[static_cast<std::size_t>(i)][static_cast<std::size_t>(q)];
      if (!in) continue;
      for (int j = 0; j < total; ++j) {
        if (eliminated[static_cast<std::size_t>(j)]) continue;
        const auto& out =
            edge[static_cast<std::size_t>(q)][static_cast<std::size_t>(j)];
        if (!out) continue;
        const std::string through = Concat(Concat(*in, loop), *out);
        edge[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
            Alternate(
                edge[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)],
                through);
      }
    }
    for (int t = 0; t < total; ++t) {
      edge[static_cast<std::size_t>(q)][static_cast<std::size_t>(t)].reset();
      edge[static_cast<std::size_t>(t)][static_cast<std::size_t>(q)].reset();
    }
  }

  return edge[static_cast<std::size_t>(super_start)]
             [static_cast<std::size_t>(super_accept)];
}

}  // namespace confanon::regex
