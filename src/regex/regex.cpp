#include "regex/regex.h"

namespace confanon::regex {

Regex Regex::Compile(std::string_view pattern, Options options) {
  Regex re;
  re.pattern_ = std::string(pattern);

  Ast ast;
  ParseOptions parse_options;
  parse_options.cisco_underscore = options.cisco_underscore;
  const NodeId body = ParsePattern(pattern, parse_options, ast);

  // Search semantics: .* body .* over the framed subject, where the
  // implicit dots may also consume the sentinels.
  const NodeId any_star_left =
      ast.AddRepeat(ast.AddCharSet(CharSet::Any()), 0, kUnbounded);
  const NodeId any_star_right =
      ast.AddRepeat(ast.AddCharSet(CharSet::Any()), 0, kUnbounded);
  ast.set_root(ast.AddConcat({any_star_left, body, any_star_right}));

  auto nfa = std::make_shared<Nfa>(Nfa::Build(ast));
  auto dfa = std::make_shared<Dfa>(Dfa::FromNfa(*nfa));
  re.nfa_ = std::move(nfa);
  re.dfa_ = std::move(dfa);
  return re;
}

bool Regex::Search(std::string_view text) const {
  return dfa_->FullMatch(FrameSubject(text));
}

bool SearchOnce(std::string_view pattern, std::string_view text) {
  return Regex::Compile(pattern).Search(text);
}

}  // namespace confanon::regex
