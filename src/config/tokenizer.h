// Word segmentation for config tokens (paper Section 4.2).
//
// "We use two rules to segment all words in the configs into tokens before
// consulting the pass-list, so identifiers like ethernet0/0 become a string
// ethernet that matches against the pass-list and a non-alphabetic
// remainder 0/0 that doesn't need anonymization."
//
// Rule 1 extracts maximal ASCII-alphabetic runs; rule 2 groups everything
// between them into non-alphabetic remainders. The anonymizer checks each
// alphabetic segment against the pass-list and hashes the whole word if any
// segment is unknown (a partial hash would still leak the unknown part's
// surroundings, and whole-word hashing keeps referential integrity at the
// identifier granularity configs actually use).
//
// Tokenization is zero-copy: every token is a std::string_view slice of
// the input line (boundaries found with the SWAR/SIMD scanners of
// util/charscan.h), so the tokenize step allocates nothing beyond the
// index vectors — and those are reused across lines via the *Into forms.
// A caller that rewrites a word repoints its view at replacement bytes it
// keeps alive itself (the engines use a per-file util::Arena).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace confanon::config {

struct Segment {
  /// True for an alphabetic run (candidate for pass-list lookup), false
  /// for a non-alphabetic remainder (digits, punctuation).
  bool alpha = false;
  std::string_view text;

  bool operator==(const Segment&) const = default;
};

/// Splits one whitespace-delimited word into alternating alpha / non-alpha
/// segments. The concatenation of all segment texts equals the input; the
/// segment views alias the input word's bytes.
std::vector<Segment> SegmentWord(std::string_view word);
/// Buffer-reusing form: clears and fills `out`.
void SegmentWordInto(std::string_view word, std::vector<Segment>& out);

/// True if the word consists only of non-alphabetic characters (so the
/// pass-list is irrelevant to it).
bool IsNonAlphabetic(std::string_view word);

/// Splits a raw config line into its leading indent width and
/// whitespace-separated words.
struct SplitLine {
  int indent = 0;
  std::vector<std::string_view> words;
};
SplitLine SplitConfigLine(std::string_view line);

/// A line split into words with the exact whitespace between them
/// preserved, so the anonymizer can rewrite individual words without
/// normalizing spacing ("even space is not consistently a separator"
/// across IOS versions — the rest of the line must survive untouched).
///
/// All views alias the tokenized line (or whatever buffer a caller
/// repointed a word at); the line must outlive the tokens.
///
/// Invariant: gaps.size() == words.size() + 1 and
/// Render() == gaps[0] + words[0] + gaps[1] + ... + words[n-1] + gaps[n].
struct LineTokens {
  std::vector<std::string_view> gaps;
  std::vector<std::string_view> words;

  /// Renders into a string reserved to the exact output length.
  std::string Render() const;
};
LineTokens TokenizeLine(std::string_view line);
/// Buffer-reusing form: clears and refills `out` (keeps capacity), so a
/// per-file loop tokenizes with zero allocations after the first lines.
void TokenizeLineInto(std::string_view line, LineTokens& out);

}  // namespace confanon::config
