// IOS dialect registry.
//
// The paper's dataset spans "over 200 different IOS versions", with small
// but syntactically significant differences between them — this is the core
// reason the anonymizer avoids a full grammar (Section 3.1). The generator
// uses this registry to emit configs across many dialects so the anonymizer
// is exercised against the same diversity: keyword spelling variants,
// optional statements that appear only on some versions, positional versus
// attribute-value parameter layouts, and inconsistent spacing.
#pragma once

#include <cstdint>
#include <string>

#include "util/rng.h"

namespace confanon::config {

/// Syntactic quirks of one emulated IOS version. Every flag corresponds to
/// a real cross-version variation class the paper calls out (keyword sets,
/// parameter ordering, spacing).
struct Dialect {
  /// e.g. "12.2(33)SRA" — written into the config's `version` line (major
  /// version only, as IOS does) and used to label the dialect.
  std::string version_string;

  /// Short version ("12.2") used on the `version` line.
  std::string version_line;

  /// Newer trains write "ip classless" explicitly.
  bool emits_ip_classless = false;
  /// Some versions write "bgp log-neighbor-changes" inside router bgp.
  bool emits_bgp_log_neighbor_changes = false;
  /// Newer versions write "no auto-summary" under BGP/EIGRP/RIP.
  bool emits_no_auto_summary = false;
  /// "service timestamps log datetime msec" vs plain "service timestamps".
  bool verbose_timestamps = false;
  /// Interface naming: older boxes say "Ethernet0", newer "FastEthernet0/0"
  /// or "GigabitEthernet0/1".
  int interface_generation = 0;  // 0=Ethernet, 1=FastEthernet, 2=GigE
  /// Some versions indent sub-commands with one space, others keep flush
  /// continuation blocks for route-maps.
  bool single_space_indent = true;
  /// "neighbor X.X.X.X remote-as N" vs the pre-11.x "neighbor X.X.X.X
  /// remote-as  N" double-space artifact (space is not consistently a
  /// separator across versions; the anonymizer must not care).
  bool double_space_artifact = false;
  /// RIP: "version 2" statement emitted.
  bool rip_version2 = false;
  /// Writes "ip subnet-zero" (pre-12.0 default off).
  bool emits_subnet_zero = false;
  /// snmp-server statements use "RO"/"RW" in upper case vs lower case.
  bool snmp_upper = false;
};

/// Deterministically synthesizes the `index`-th dialect of a family of
/// `count` versions (index < count). Spread over IOS-style trains
/// 11.x/12.0/12.1/.../12.4 with letter suffixes, with quirk flags
/// correlated to the train the way real IOS features were.
Dialect MakeDialect(std::uint32_t index);

}  // namespace confanon::config
