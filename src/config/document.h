// Config-file document model.
//
// A config is fundamentally a list of lines — there is no reliable grammar
// across the 200+ IOS versions the paper encountered, so the model stays
// deliberately line-oriented and the anonymizer works with regular-
// expression context rules over lines rather than a parse tree (paper
// Section 3.1). What the model does understand structurally:
//   * '!' comment lines,
//   * trailing free text after keywords like `description` and `remark`,
//   * banner blocks ("banner motd ^C ... ^C"), which span multiple lines
//     bracketed by an arbitrary delimiter character.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace confanon::config {

/// One router's configuration.
class ConfigFile {
 public:
  ConfigFile() = default;
  ConfigFile(std::string name, std::vector<std::string> lines)
      : name_(std::move(name)), lines_(std::move(lines)) {}

  /// Splits text on '\n' (a trailing newline does not create an empty
  /// final line).
  static ConfigFile FromText(std::string name, std::string_view text);

  const std::string& name() const { return name_; }
  const std::vector<std::string>& lines() const { return lines_; }
  std::vector<std::string>& mutable_lines() { return lines_; }

  std::string ToText() const;

  std::size_t LineCount() const { return lines_.size(); }

 private:
  std::string name_;
  std::vector<std::string> lines_;
};

/// A half-open line range [begin, end) within a ConfigFile.
struct LineRegion {
  std::size_t begin = 0;
  std::size_t end = 0;
  bool operator==(const LineRegion&) const = default;
};

/// Locates banner blocks: a line of the form
///   banner (motd|exec|login|incoming|prompt-timeout) <delim>[text]
/// opens a region that runs until the next line containing the delimiter
/// character (inclusive). The delimiter is the first character of the word
/// following the banner type (conventionally ^C or #). Unterminated
/// banners extend to end of file — the conservative reading for an
/// anonymizer.
std::vector<LineRegion> FindBannerRegions(const ConfigFile& config);

}  // namespace confanon::config
