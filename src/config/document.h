// Config-file document model.
//
// A config is fundamentally a list of lines — there is no reliable grammar
// across the 200+ IOS versions the paper encountered, so the model stays
// deliberately line-oriented and the anonymizer works with regular-
// expression context rules over lines rather than a parse tree (paper
// Section 3.1). What the model does understand structurally:
//   * '!' comment lines,
//   * trailing free text after keywords like `description` and `remark`,
//   * banner blocks ("banner motd ^C ... ^C"), which span multiple lines
//     bracketed by an arbitrary delimiter character.
//
// Storage model (zero-copy ingest): lines() are string_views over ONE of
// two backings —
//
//   * a single contiguous buffer (an owned string or a shared mmap) that
//     FromText/FromBuffer/FromContents split in place: paper-scale
//     corpora are ingested with zero per-line allocations, and an
//     mmap-backed file is never copied at all;
//   * a vector of owned line strings (the generator/engine output path,
//     and the copy-on-write escape hatch behind mutable_lines()).
//
// Copying a buffer-backed ConfigFile shares the backing (shared_ptr);
// copying a line-backed one deep-copies. Moves never invalidate views in
// either mode. mutable_lines() materializes owned lines on first use
// (COW) and is NOT thread-safe against concurrent lines() readers — the
// pipeline only ever mutates before fan-out, never during it.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace confanon::util {
class BufferedWriter;
}  // namespace confanon::util

namespace confanon::config {

/// One router's configuration.
class ConfigFile {
 public:
  ConfigFile() = default;
  /// Owned-lines mode: adopts rendered lines (generator/engine output).
  ConfigFile(std::string name, std::vector<std::string> lines);

  ConfigFile(const ConfigFile& other);
  ConfigFile& operator=(const ConfigFile& other);
  ConfigFile(ConfigFile&&) noexcept = default;
  ConfigFile& operator=(ConfigFile&&) noexcept = default;

  /// Splits text on '\n' (a trailing newline does not create an empty
  /// final line; a trailing '\r' per line is dropped). The text is
  /// copied ONCE into an owned backing buffer; lines are views into it.
  static ConfigFile FromText(std::string name, std::string_view text);

  /// Zero-copy form of FromText: adopts `text` as the backing buffer
  /// (no copy; use with ReadFileFully's result).
  static ConfigFile FromBuffer(std::string name, std::string&& text);

  /// Zero-copy over an externally owned backing (an mmap, a request
  /// body buffer): `text` must alias memory kept alive by `backing`.
  static ConfigFile FromBacking(std::string name, std::string_view text,
                                std::shared_ptr<const void> backing);

  const std::string& name() const { return name_; }

  /// The lines, as views into the backing buffer (or the owned lines).
  /// Valid until the ConfigFile is destroyed or mutated.
  const std::vector<std::string_view>& lines() const {
    if (views_stale_) RebuildViews();
    return views_;
  }

  /// Copy-on-write escape hatch: materializes owned per-line strings
  /// (detaching from any shared backing) and returns them mutably.
  /// lines() reflects mutations on its next call. Not thread-safe
  /// against concurrent readers.
  std::vector<std::string>& mutable_lines();

  /// Exact-reserve concatenation ("line\n" per line) — one allocation.
  std::string ToText() const;

  /// Streams every line + '\n' into `out` without materializing the
  /// ToText string (the zero-copy egress path).
  void AppendTo(util::BufferedWriter& out) const;

  /// Sum of line lengths plus one newline per line == ToText().size().
  std::size_t TextBytes() const;

  std::size_t LineCount() const { return lines().size(); }

 private:
  void RebuildViews() const;

  std::string name_;
  /// Keeps the bytes behind buffer-backed views alive (owned string or
  /// mmap). Null in owned-lines mode.
  std::shared_ptr<const void> backing_;
  /// Owned-lines mode storage; empty in buffer-backed mode.
  std::vector<std::string> owned_lines_;
  /// The authoritative line views. Stale only after mutable_lines().
  mutable std::vector<std::string_view> views_;
  mutable bool views_stale_ = false;
};

/// A half-open line range [begin, end) within a ConfigFile.
struct LineRegion {
  std::size_t begin = 0;
  std::size_t end = 0;
  bool operator==(const LineRegion&) const = default;
};

/// Locates banner blocks: a line of the form
///   banner (motd|exec|login|incoming|prompt-timeout) <delim>[text]
/// opens a region that runs until the next line containing the delimiter
/// character (inclusive). The delimiter is the first character of the word
/// following the banner type (conventionally ^C or #). Unterminated
/// banners extend to end of file — the conservative reading for an
/// anonymizer.
std::vector<LineRegion> FindBannerRegions(const ConfigFile& config);

}  // namespace confanon::config
