#include "config/document.h"

#include <utility>

#include "config/tokenizer.h"
#include "util/io.h"
#include "util/strings.h"

namespace confanon::config {

namespace {

/// Splits `text` on '\n' into views (dropping one trailing '\r' per
/// line; a trailing newline does not create an empty final line). The
/// views alias `text` — the caller owns the lifetime.
void SplitLinesInto(std::string_view text,
                    std::vector<std::string_view>& out) {
  out.clear();
  // One line per newline plus a possible unterminated tail.
  std::size_t newlines = 0;
  for (const char c : text) newlines += c == '\n';
  out.reserve(newlines + 1);
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '\n') {
      if (i == text.size() && i == start) break;  // no trailing empty line
      std::string_view line = text.substr(start, i - start);
      if (!line.empty() && line.back() == '\r') {
        line.remove_suffix(1);
      }
      out.push_back(line);
      start = i + 1;
    }
  }
}

}  // namespace

ConfigFile::ConfigFile(std::string name, std::vector<std::string> lines)
    : name_(std::move(name)), owned_lines_(std::move(lines)) {
  RebuildViews();
}

ConfigFile::ConfigFile(const ConfigFile& other)
    : name_(other.name_), backing_(other.backing_) {
  if (backing_ != nullptr) {
    // Buffer-backed: the views alias the shared backing — copy them.
    views_ = other.views_;
  } else {
    // Owned-lines: deep-copy and re-point the views at our strings.
    owned_lines_ = other.owned_lines_;
    RebuildViews();
  }
}

ConfigFile& ConfigFile::operator=(const ConfigFile& other) {
  if (this != &other) {
    *this = ConfigFile(other);  // copy-construct, then move into place
  }
  return *this;
}

ConfigFile ConfigFile::FromText(std::string name, std::string_view text) {
  return FromBuffer(std::move(name), std::string(text));
}

ConfigFile ConfigFile::FromBuffer(std::string name, std::string&& text) {
  auto backing = std::make_shared<const std::string>(std::move(text));
  const std::string_view view = *backing;
  return FromBacking(std::move(name), view, std::move(backing));
}

ConfigFile ConfigFile::FromBacking(std::string name, std::string_view text,
                                   std::shared_ptr<const void> backing) {
  ConfigFile file;
  file.name_ = std::move(name);
  file.backing_ = std::move(backing);
  SplitLinesInto(text, file.views_);
  return file;
}

std::vector<std::string>& ConfigFile::mutable_lines() {
  if (backing_ != nullptr) {
    // COW: materialize owned strings from the backing views, then drop
    // the backing — subsequent reads never touch the shared buffer.
    owned_lines_.assign(views_.begin(), views_.end());
    backing_.reset();
  }
  views_stale_ = true;
  return owned_lines_;
}

void ConfigFile::RebuildViews() const {
  views_.assign(owned_lines_.begin(), owned_lines_.end());
  views_stale_ = false;
}

std::size_t ConfigFile::TextBytes() const {
  std::size_t bytes = 0;
  for (const std::string_view line : lines()) bytes += line.size() + 1;
  return bytes;
}

std::string ConfigFile::ToText() const {
  std::string out;
  out.reserve(TextBytes());
  for (const std::string_view line : lines()) {
    out.append(line);
    out.push_back('\n');
  }
  return out;
}

void ConfigFile::AppendTo(util::BufferedWriter& out) const {
  for (const std::string_view line : lines()) {
    out.Append(line);
    out.Append('\n');
  }
}

std::vector<LineRegion> FindBannerRegions(const ConfigFile& config) {
  std::vector<LineRegion> regions;
  const auto& lines = config.lines();
  std::size_t i = 0;
  while (i < lines.size()) {
    // Fast reject: only lines whose first word can be "banner" pay the
    // full split (this pass runs over every line of every file, before
    // the tokenizer's own pass).
    const std::string_view raw = lines[i];
    std::size_t first = 0;
    while (first < raw.size() && util::IsBlank(raw[first])) ++first;
    if (first >= raw.size() ||
        (raw[first] != 'b' && raw[first] != 'B')) {
      ++i;
      continue;
    }
    const SplitLine split = SplitConfigLine(raw);
    const bool is_banner =
        split.words.size() >= 3 && util::ToLower(split.words[0]) == "banner";
    if (!is_banner) {
      ++i;
      continue;
    }
    // The delimiter is the first character of the word after the banner
    // type, e.g. '^' in "banner motd ^C" or '#' in "banner login #".
    const char delimiter = split.words[2].front();
    // If the opening line itself carries text after the delimiter AND
    // contains the delimiter again, the banner is single-line.
    const std::string_view after =
        split.words[2].size() > 1 ? split.words[2].substr(1)
                                  : std::string_view{};
    std::size_t end = i + 1;
    const bool closed_inline =
        after.find(delimiter) != std::string_view::npos;
    if (!closed_inline) {
      while (end < lines.size() &&
             lines[end].find(delimiter) == std::string_view::npos) {
        ++end;
      }
      // Include the closing-delimiter line when present.
      if (end < lines.size()) ++end;
    }
    regions.push_back(LineRegion{i, end});
    i = end;
  }
  return regions;
}

}  // namespace confanon::config
