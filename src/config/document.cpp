#include "config/document.h"

#include "config/tokenizer.h"
#include "util/strings.h"

namespace confanon::config {

ConfigFile ConfigFile::FromText(std::string name, std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '\n') {
      if (i == text.size() && i == start) break;  // no trailing empty line
      std::string_view line = text.substr(start, i - start);
      if (!line.empty() && line.back() == '\r') {
        line.remove_suffix(1);
      }
      lines.emplace_back(line);
      start = i + 1;
    }
  }
  return ConfigFile(std::move(name), std::move(lines));
}

std::string ConfigFile::ToText() const {
  std::string out;
  for (const std::string& line : lines_) {
    out += line;
    out += '\n';
  }
  return out;
}

std::vector<LineRegion> FindBannerRegions(const ConfigFile& config) {
  std::vector<LineRegion> regions;
  const auto& lines = config.lines();
  std::size_t i = 0;
  while (i < lines.size()) {
    const SplitLine split = SplitConfigLine(lines[i]);
    const bool is_banner =
        split.words.size() >= 3 && util::ToLower(split.words[0]) == "banner";
    if (!is_banner) {
      ++i;
      continue;
    }
    // The delimiter is the first character of the word after the banner
    // type, e.g. '^' in "banner motd ^C" or '#' in "banner login #".
    const char delimiter = split.words[2].front();
    // If the opening line itself carries text after the delimiter AND
    // contains the delimiter again, the banner is single-line.
    const std::string_view after =
        split.words[2].size() > 1 ? split.words[2].substr(1)
                                  : std::string_view{};
    std::size_t end = i + 1;
    const bool closed_inline =
        after.find(delimiter) != std::string_view::npos;
    if (!closed_inline) {
      while (end < lines.size() &&
             lines[end].find(delimiter) == std::string::npos) {
        ++end;
      }
      // Include the closing-delimiter line when present.
      if (end < lines.size()) ++end;
    }
    regions.push_back(LineRegion{i, end});
    i = end;
  }
  return regions;
}

}  // namespace confanon::config
