#include "config/tokenizer.h"

#include "util/strings.h"

namespace confanon::config {

std::vector<Segment> SegmentWord(std::string_view word) {
  std::vector<Segment> segments;
  std::size_t i = 0;
  while (i < word.size()) {
    const bool alpha = util::IsAsciiAlpha(word[i]);
    const std::size_t start = i;
    while (i < word.size() && util::IsAsciiAlpha(word[i]) == alpha) ++i;
    segments.push_back(Segment{alpha, word.substr(start, i - start)});
  }
  return segments;
}

bool IsNonAlphabetic(std::string_view word) {
  for (char c : word) {
    if (util::IsAsciiAlpha(c)) return false;
  }
  return true;
}

std::string LineTokens::Render() const {
  std::string out;
  for (std::size_t i = 0; i < words.size(); ++i) {
    out += gaps[i];
    out += words[i];
  }
  out += gaps.back();
  return out;
}

LineTokens TokenizeLine(std::string_view line) {
  LineTokens tokens;
  std::size_t i = 0;
  while (true) {
    const std::size_t gap_start = i;
    while (i < line.size() && util::IsBlank(line[i])) ++i;
    tokens.gaps.emplace_back(line.substr(gap_start, i - gap_start));
    if (i == line.size()) break;
    const std::size_t word_start = i;
    while (i < line.size() && !util::IsBlank(line[i])) ++i;
    tokens.words.emplace_back(line.substr(word_start, i - word_start));
    if (i == line.size()) {
      tokens.gaps.emplace_back();
      break;
    }
  }
  return tokens;
}

SplitLine SplitConfigLine(std::string_view line) {
  SplitLine result;
  std::size_t i = 0;
  while (i < line.size() && util::IsBlank(line[i])) ++i;
  result.indent = static_cast<int>(i);
  result.words = util::SplitWords(line.substr(i));
  return result;
}

}  // namespace confanon::config
