#include "config/tokenizer.h"

#include "util/charscan.h"
#include "util/strings.h"

namespace confanon::config {

void SegmentWordInto(std::string_view word, std::vector<Segment>& out) {
  out.clear();
  std::size_t i = 0;
  while (i < word.size()) {
    const bool alpha = util::IsAsciiAlpha(word[i]);
    const std::size_t end = util::FindAlphaBoundary(word, i + 1, alpha);
    out.push_back(Segment{alpha, word.substr(i, end - i)});
    i = end;
  }
}

std::vector<Segment> SegmentWord(std::string_view word) {
  std::vector<Segment> segments;
  SegmentWordInto(word, segments);
  return segments;
}

bool IsNonAlphabetic(std::string_view word) {
  return util::FindAlphaBoundary(word, 0, false) == word.size();
}

std::string LineTokens::Render() const {
  std::size_t total = 0;
  for (const std::string_view gap : gaps) total += gap.size();
  for (const std::string_view word : words) total += word.size();
  std::string out;
  out.reserve(total);
  for (std::size_t i = 0; i < words.size(); ++i) {
    out.append(gaps[i]);
    out.append(words[i]);
  }
  out.append(gaps.back());
  return out;
}

void TokenizeLineInto(std::string_view line, LineTokens& out) {
  out.gaps.clear();
  out.words.clear();
  std::size_t i = 0;
  while (true) {
    const std::size_t word_start = util::FindNonBlank(line, i);
    out.gaps.push_back(line.substr(i, word_start - i));
    if (word_start == line.size()) break;
    const std::size_t word_end = util::FindBlank(line, word_start + 1);
    out.words.push_back(line.substr(word_start, word_end - word_start));
    i = word_end;
    if (i == line.size()) {
      out.gaps.emplace_back();
      break;
    }
  }
}

LineTokens TokenizeLine(std::string_view line) {
  LineTokens tokens;
  TokenizeLineInto(line, tokens);
  return tokens;
}

SplitLine SplitConfigLine(std::string_view line) {
  SplitLine result;
  const std::size_t start = util::FindNonBlank(line, 0);
  result.indent = static_cast<int>(start);
  result.words = util::SplitWords(line.substr(start));
  return result;
}

}  // namespace confanon::config
