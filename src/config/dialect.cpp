#include "config/dialect.h"

#include <array>

namespace confanon::config {

Dialect MakeDialect(std::uint32_t index) {
  // The quirk mix is a pure function of the index so the generator can
  // reproduce any dialect on demand.
  util::Rng rng(0x105C0DEull + index, "dialect");

  static constexpr std::array<const char*, 7> kTrains = {
      "11.1", "11.2", "12.0", "12.1", "12.2", "12.3", "12.4"};
  static constexpr std::array<const char*, 6> kSuffixes = {"",  "T", "S",
                                                           "E", "SRA", "SB"};
  const std::size_t train =
      static_cast<std::size_t>(rng.Below(kTrains.size()));
  const int build = static_cast<int>(rng.Between(1, 33));
  const char* suffix =
      kSuffixes[static_cast<std::size_t>(rng.Below(kSuffixes.size()))];

  Dialect dialect;
  dialect.version_line = kTrains[train];
  dialect.version_string = std::string(kTrains[train]) + "(" +
                           std::to_string(build) + ")" + suffix;

  // Feature flags roughly track the train: newer trains gained the
  // explicit defaults and richer logging.
  const bool modern = train >= 2;   // 12.0+
  const bool recent = train >= 4;   // 12.2+
  dialect.emits_ip_classless = modern && rng.Chance(0.8);
  dialect.emits_bgp_log_neighbor_changes = recent && rng.Chance(0.7);
  dialect.emits_no_auto_summary = modern && rng.Chance(0.6);
  dialect.verbose_timestamps = modern && rng.Chance(0.7);
  dialect.interface_generation =
      train <= 1 ? 0 : static_cast<int>(rng.Below(recent ? 3 : 2));
  dialect.single_space_indent = rng.Chance(0.9);
  dialect.double_space_artifact = !modern && rng.Chance(0.5);
  dialect.rip_version2 = modern && rng.Chance(0.75);
  dialect.emits_subnet_zero = !recent && rng.Chance(0.5);
  dialect.snmp_upper = rng.Chance(0.5);
  return dialect;
}

}  // namespace confanon::config
