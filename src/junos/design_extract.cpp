#include "junos/design_extract.h"

#include <algorithm>
#include <map>
#include <set>

#include "junos/tokenizer.h"
#include "util/strings.h"

namespace confanon::junos {

namespace {

using analysis::BgpNeighborDesign;
using analysis::InterfaceDesign;
using analysis::NetworkDesign;
using analysis::PolicyClauseDesign;
using analysis::PrefixListEntryDesign;
using analysis::ProcessDesign;
using analysis::RouterDesign;

/// Per-BGP-group accumulation before neighbors are materialized.
struct GroupScratch {
  bool external = false;
  std::uint32_t peer_as = 0;
  std::string import_map;
  std::string export_map;
  std::vector<net::Ipv4Address> neighbors;
};

/// Parses "A.B.C.D/len" into (address, length).
bool ParseCidr(const std::string& text, net::Ipv4Address& address,
               int& length) {
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos) return false;
  const auto parsed =
      net::Ipv4Address::Parse(std::string_view(text).substr(0, slash));
  std::uint64_t len = 0;
  if (!parsed ||
      !util::ParseUint(std::string_view(text).substr(slash + 1), 32, len)) {
    return false;
  }
  address = *parsed;
  length = static_cast<int>(len);
  return true;
}

class Extractor {
 public:
  explicit Extractor(const config::ConfigFile& file) : file_(file) {
    router_.hostname = file.name();
  }

  RouterDesign Extract() {
    for (const std::string_view raw : file_.lines()) {
      // Block comments are irrelevant to the design; skip comment lines
      // conservatively (the writer emits them on their own lines).
      const auto trimmed = util::Trim(raw);
      if (trimmed.substr(0, 2) == std::string_view("/*")) continue;
      const JunosLine line = TokenizeJunosLine(raw);
      for (const Token& token : line.tokens) {
        switch (token.kind) {
          case Token::Kind::kWord:
            buffer_.emplace_back(token.text);
            break;
          case Token::Kind::kString: {
            std::string_view inner = token.text;
            if (inner.size() >= 2 && inner.front() == '"') {
              inner = inner.substr(1, inner.size() - 2);
            }
            buffer_.emplace_back(inner);
            break;
          }
          case Token::Kind::kPunct:
            if (token.text == "{") {
              stack_.push_back(buffer_);
              buffer_.clear();
            } else if (token.text == ";") {
              Statement();
              buffer_.clear();
            } else if (token.text == "}") {
              if (!stack_.empty()) {
                LeavingBlock(stack_.back());
                stack_.pop_back();
              }
            }
            // '[' / ']' just group member lists; the words accumulate.
            break;
          case Token::Kind::kComment:
            break;
        }
      }
    }
    Assemble();
    return std::move(router_);
  }

 private:
  /// First word of the enclosing block at depth `up` from the innermost
  /// (0 = innermost), or "" when out of range.
  std::string Block(std::size_t up) const {
    if (up >= stack_.size()) return {};
    const auto& header = stack_[stack_.size() - 1 - up];
    return header.empty() ? std::string() : util::ToLower(header[0]);
  }
  /// Second word of the enclosing block header (the block's name/arg).
  std::string BlockArg(std::size_t up) const {
    if (up >= stack_.size()) return {};
    const auto& header = stack_[stack_.size() - 1 - up];
    return header.size() >= 2 ? header[1] : std::string();
  }

  void Statement() {
    if (buffer_.empty()) return;
    const std::string head = util::ToLower(buffer_[0]);

    if (head == "host-name" && buffer_.size() >= 2) {
      router_.hostname = buffer_[1];
      return;
    }
    if (head == "autonomous-system" && buffer_.size() >= 2) {
      std::uint64_t asn = 0;
      if (util::ParseUint(buffer_[1], 65535, asn)) {
        local_asn_ = static_cast<std::uint32_t>(asn);
      }
      return;
    }

    // interfaces { <phys> { unit N { family inet { address A/len; } } } }
    if (head == "address" && buffer_.size() >= 2 && Block(0) == "family" &&
        Block(1) == "unit" && Block(3) == "interfaces") {
      net::Ipv4Address address;
      int length = 0;
      if (ParseCidr(buffer_[1], address, length)) {
        const auto& header = stack_[stack_.size() - 3];  // the <phys> block
        const std::string name =
            header.empty() ? "unknown" : header.front();
        const std::string unit = BlockArg(1);
        InterfaceDesign iface;
        iface.name = unit == "0" || unit.empty() ? name : name + "." + unit;
        iface.address = address;
        iface.subnet = net::Prefix(address, length);
        router_.interfaces.push_back(iface);
      }
      return;
    }

    // protocols { ospf { area N { interface IF; } } }
    if (head == "interface" && buffer_.size() >= 2 && Block(0) == "area" &&
        Block(1) == "ospf") {
      std::uint64_t area = 0;
      util::ParseUint(BlockArg(0), 1000000, area);
      ospf_areas_.insert(static_cast<int>(area));
      ospf_interfaces_.push_back(buffer_[1]);
      return;
    }
    // protocols { rip { group g { neighbor IF; } } }
    if (head == "neighbor" && buffer_.size() >= 2 && Block(0) == "group" &&
        Block(1) == "rip") {
      rip_interfaces_.push_back(buffer_[1]);
      return;
    }

    // protocols { bgp { group g { ... } } }
    if (Block(0) == "group" && Block(1) == "bgp") {
      GroupScratch& group = groups_[BlockArg(0)];
      if (head == "type" && buffer_.size() >= 2) {
        group.external = util::ToLower(buffer_[1]) == "external";
      } else if (head == "peer-as" && buffer_.size() >= 2) {
        std::uint64_t asn = 0;
        if (util::ParseUint(buffer_[1], 65535, asn)) {
          group.peer_as = static_cast<std::uint32_t>(asn);
        }
      } else if (head == "import" && buffer_.size() >= 2) {
        group.import_map = buffer_[1];
      } else if (head == "export" && buffer_.size() >= 2) {
        group.export_map = buffer_[1];
      } else if (head == "neighbor" && buffer_.size() >= 2) {
        if (const auto peer = net::Ipv4Address::Parse(buffer_[1])) {
          group.neighbors.push_back(*peer);
        }
      }
      has_bgp_ = true;
      return;
    }

    // policy-options { policy-statement P { term T { from {...} then {...} } } }
    if (Block(0) == "from" && Block(1) == "term" &&
        Block(2) == "policy-statement") {
      PolicyClauseDesign& clause = CurrentClause();
      if (buffer_.size() >= 2) {
        if (head == "as-path") {
          clause.references.emplace_back("as-path", buffer_[1]);
        } else if (head == "community") {
          clause.references.emplace_back("community", buffer_[1]);
        } else if (head == "prefix-list") {
          clause.references.emplace_back("prefix-list", buffer_[1]);
        }
      }
      return;
    }
    if (Block(0) == "then" && Block(1) == "term" &&
        Block(2) == "policy-statement") {
      PolicyClauseDesign& clause = CurrentClause();
      if (head == "accept") clause.permit = true;
      if (head == "reject") clause.permit = false;
      return;
    }

    // policy-options { prefix-list NAME { A/len; } }
    if (Block(0) == "prefix-list" && Block(1) == "policy-options" &&
        buffer_.size() >= 1) {
      net::Ipv4Address address;
      int length = 0;
      if (ParseCidr(buffer_[0], address, length)) {
        PrefixListEntryDesign entry;
        entry.sequence =
            static_cast<int>(router_.prefix_lists[BlockArg(0)].size() + 1) *
            5;
        entry.permit = true;
        entry.prefix = net::Prefix(address, length);
        router_.prefix_lists[BlockArg(0)].push_back(entry);
      }
      return;
    }
  }

  PolicyClauseDesign& CurrentClause() {
    // term block at depth 1, policy-statement at depth 2.
    const std::string policy = BlockArg(2);
    const std::string term = BlockArg(1);
    auto& clauses = router_.route_maps[policy];
    if (clauses.empty() || current_term_ != policy + "/" + term) {
      current_term_ = policy + "/" + term;
      PolicyClauseDesign clause;
      // Sequence numbers come from ordinal term position: term *names* are
      // identifiers and may be anonymized, so deriving sequence from them
      // would make the extracted design unstable across anonymization.
      clause.sequence = static_cast<int>(clauses.size() + 1) * 10;
      clauses.push_back(clause);
    }
    return clauses.back();
  }

  void LeavingBlock(const std::vector<std::string>& header) {
    (void)header;
  }

  void Assemble() {
    std::sort(router_.interfaces.begin(), router_.interfaces.end());

    if (!ospf_interfaces_.empty()) {
      ProcessDesign ospf;
      ospf.protocol = "ospf";
      ospf.process_id = 0;
      ospf.covered_interfaces = ospf_interfaces_;
      std::sort(ospf.covered_interfaces.begin(),
                ospf.covered_interfaces.end());
      ospf.ospf_areas.assign(ospf_areas_.begin(), ospf_areas_.end());
      router_.processes.push_back(std::move(ospf));
    }
    if (!rip_interfaces_.empty()) {
      ProcessDesign rip;
      rip.protocol = "rip";
      rip.process_id = 0;
      rip.covered_interfaces = rip_interfaces_;
      std::sort(rip.covered_interfaces.begin(),
                rip.covered_interfaces.end());
      router_.processes.push_back(std::move(rip));
    }

    if (has_bgp_) {
      router_.bgp_asn = local_asn_;
      for (const auto& [name, group] : groups_) {
        for (const net::Ipv4Address& peer : group.neighbors) {
          BgpNeighborDesign neighbor;
          neighbor.peer = peer;
          neighbor.external = group.external;
          neighbor.remote_asn =
              group.external ? group.peer_as : local_asn_;
          neighbor.import_map = group.import_map;
          neighbor.export_map = group.export_map;
          router_.bgp_neighbors.push_back(neighbor);
        }
      }
      std::sort(router_.bgp_neighbors.begin(), router_.bgp_neighbors.end());
    }
  }

  const config::ConfigFile& file_;
  RouterDesign router_;
  std::vector<std::vector<std::string>> stack_;
  std::vector<std::string> buffer_;
  std::uint32_t local_asn_ = 0;
  bool has_bgp_ = false;
  std::set<int> ospf_areas_;
  std::vector<std::string> ospf_interfaces_;
  std::vector<std::string> rip_interfaces_;
  std::map<std::string, GroupScratch> groups_;
  std::string current_term_;
};

}  // namespace

NetworkDesign ExtractJunosDesign(
    const std::vector<config::ConfigFile>& configs) {
  NetworkDesign design;
  for (const config::ConfigFile& file : configs) {
    Extractor extractor(file);
    design.routers.push_back(extractor.Extract());
  }
  analysis::FinalizeDesign(design);
  return design;
}

}  // namespace confanon::junos
