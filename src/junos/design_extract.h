// Routing-design extraction from JunOS-style configs.
//
// Produces the same language-neutral analysis::NetworkDesign that the IOS
// extractor produces, so validation suite 2 (paper Section 5) runs
// unchanged over JunOS corpora: extract the design pre- and
// post-anonymization, push the pre design through the anonymizer's maps,
// and demand field-by-field equality.
//
// The extractor walks the brace hierarchy with an explicit block stack
// (statements may share a line), recovering: hostnames, interface
// unit/address assignments, OSPF area membership, RIP groups, BGP groups
// (type, peer-as, neighbors, import/export policies), policy-statement
// terms with their from-references, and prefix-lists.
#pragma once

#include "analysis/design_extract.h"
#include "config/document.h"

namespace confanon::junos {

/// Extracts one network's design from JunOS config text.
analysis::NetworkDesign ExtractJunosDesign(
    const std::vector<config::ConfigFile>& configs);

}  // namespace confanon::junos
