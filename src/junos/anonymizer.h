// JunOS-mode anonymizer.
//
// Exercises the paper's claim (Section 1, footnote 2) that the IOS
// anonymization techniques "are directly applicable to JunOS and other
// router configuration languages": the same primitives — salted-SHA1
// hashing with referential integrity, the prefix-preserving IP map, the
// keyed ASN permutation, community anonymization and regexp language
// rewriting — are driven by a JunOS-specific rule pack over the
// hierarchical brace syntax:
//
//   * comments are '/* ... */' blocks and trailing '#' text, stripped;
//   * free text lives in quoted strings after `description` / `message`,
//     stripped;
//   * `host-name` / `domain-name` arguments are force-hashed;
//   * `peer-as N;` / `autonomous-system N;` carry ASNs;
//   * `as-path NAME "REGEX";` and `community NAME members "REGEX";` carry
//     policy regexps (rewritten by language computation);
//   * `members [ 701:120 ... ]` carries community literals;
//   * `as-path-prepend "N N";` carries ASNs inside a quoted string;
//   * addresses appear in CIDR form ("address 1.2.3.4/30;"), mapped by
//     the shared trie.
//
// JunosAnonymizer implements core::AnonymizerEngine over a
// core::NetworkState: construct it with the SAME state (or just the same
// salt) as an IOS engine and the mappings agree (tested) — which is how
// the pipeline routes a mixed IOS/JunOS corpus through one consistent
// mapping.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "asn/asn_map.h"
#include "asn/community.h"
#include "asn/regex_rewrite.h"
#include "config/document.h"
#include "core/engine.h"
#include "core/hash_batcher.h"
#include "core/leak_detector.h"
#include "core/network_state.h"
#include "core/report.h"
#include "core/string_hasher.h"
#include "ipanon/ip_anonymizer.h"
#include "junos/tokenizer.h"
#include "obs/hooks.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "obs/trace.h"
#include "passlist/passlist.h"
#include "util/arena.h"

namespace confanon::core {
class ServiceContext;
class Session;
}  // namespace confanon::core

namespace confanon::junos {

/// The embedded IOS corpus extended with JunOS keywords.
passlist::PassList JunosPassList();

struct JunosAnonymizerOptions {
  std::string salt = "default-salt";
  asn::RewriteForm regex_form = asn::RewriteForm::kAlternation;
  bool strip_comments = true;
  /// Additional entries merged on top of JunosPassList() — the JunOS leg
  /// of core::AnonymizerOptions::extra_pass_list (tenant pass-lists).
  passlist::PassList extra_pass_list;
};

class JunosAnonymizer : public core::AnonymizerEngine {
 public:
  /// Standalone engine owning a fresh NetworkState.
  explicit JunosAnonymizer(JunosAnonymizerOptions options);
  /// Engine over an existing (possibly shared) NetworkState — the mixed-
  /// dialect / pipeline-worker form; see core::Anonymizer's counterpart.
  JunosAnonymizer(JunosAnonymizerOptions options,
                  std::shared_ptr<core::NetworkState> state);
  /// Session-API form (see core/session.h): an engine over `session`'s
  /// shared state, taking the JunOS-applicable subset of the context's
  /// engine options with the session's salt. Equivalent to what the
  /// context's kJunos factory (pipeline::MakeServiceContext) builds.
  JunosAnonymizer(const core::ServiceContext& context,
                  const core::Session& session);

  std::vector<config::ConfigFile> AnonymizeNetwork(
      const std::vector<config::ConfigFile>& files) override;
  /// Anonymizes a single file. When no corpus-wide preload has happened
  /// yet, this file's own addresses are preloaded first (the file-local
  /// form of the IOS rule I7 guarantee).
  config::ConfigFile AnonymizeFile(const config::ConfigFile& file) override;

  /// JunOS options declare no known entities; writes nothing.
  void ExportKnownEntities(std::ostream& out) override;

  const core::AnonymizationReport& report() const override { return report_; }
  const core::LeakRecord& leak_record() const override { return leak_record_; }
  const asn::AsnMap& asn_map() const { return state_->asn_map; }
  ipanon::IpAnonymizer& ip_anonymizer() { return state_->ip; }
  core::StringHasher& string_hasher() { return state_->hasher; }

  const std::shared_ptr<core::NetworkState>& state() const override {
    return state_;
  }

  /// Collects every non-special IP address literal in `file` under JunOS
  /// tokenization (for the corpus-wide preload pass).
  static void CollectFileAddresses(const config::ConfigFile& file,
                                   std::vector<net::Ipv4Address>& out);

  /// JunOS counterpart of core::Anonymizer::CollectHashCandidates:
  /// unquoted word/string tokens whose segments fail `pass_list`. Views
  /// alias the file's lines; over-approximation is harmless (see core).
  static void CollectHashCandidates(const config::ConfigFile& file,
                                    const passlist::PassList& pass_list,
                                    std::vector<std::string_view>& out);

  // --- observability (optional, non-owning; see core::Anonymizer) ---
  // Metric names carry a "junos." prefix so a mixed IOS/JunOS run can
  // share one registry without colliding ("junos.report.*",
  // "junos.line_ns"); rule counters keep their globally unique "J." names
  // under "junos.rule.J.*".

  /// Installs all observability hooks in one shot.
  void install_hooks(const obs::Hooks& hooks) override;
  void SyncMetrics() override;

 private:
  void ApplyHooks();
  void ProcessLine(JunosLine& line);
  /// One raw input line end-to-end: block-comment handling, tokenization,
  /// rule pack, rendering.
  void AnonymizeLine(std::string_view raw,
                     std::vector<std::string>& out_lines);
  /// AnonymizeLine under timing + rule attribution (see core::Anonymizer).
  void ObserveLine(const std::string& file_name, std::size_t index,
                   std::string_view raw, std::vector<std::string>& out_lines,
                   std::map<std::string, std::uint64_t>& rule_ns);
  /// Force-hashes the word token at `index` (records it when unknown).
  void ForceHash(JunosLine& line, std::size_t index, const char* rule);
  /// Replaces `token` with its hash token (quoted for kString tokens):
  /// memo hits rewrite in place, misses register the token's text slot
  /// with the batcher and bump line_pending_ so the line is deferred.
  void HashToken(Token& token);
  /// Renders every deferred line whose pending hash tokens have been
  /// resolved, patching its placeholder in `out_lines`.
  void DrainDeferred(std::vector<std::string>& out_lines);
  std::string MapAsnText(std::string_view text);

  JunosAnonymizerOptions options_;
  passlist::PassList pass_list_;
  /// Whether state_ was handed in (pipeline worker / mixed-dialect run)
  /// rather than owned; shared trie counters are then synced centrally.
  bool shared_state_ = false;
  std::shared_ptr<core::NetworkState> state_;
  core::AnonymizationReport report_;
  core::LeakRecord leak_record_;
  bool in_block_comment_ = false;

  obs::Hooks hooks_;
  obs::Tracer tracer_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::ProvenanceLog* provenance_ = nullptr;
  obs::LatencyHistogram* line_hist_ = nullptr;
  obs::LatencyHistogram* file_hist_ = nullptr;
  obs::LatencyHistogram* tokenize_hist_ = nullptr;
  core::AnonymizationReport synced_report_;
  ipanon::IpAnonymizer::Stats synced_ip_;
  std::uint64_t synced_arena_bytes_ = 0;
  std::uint64_t synced_arena_resets_ = 0;

  /// Per-file scratch for rewritten/quoted token text; reset at file
  /// boundaries, after the file's lines have been rendered.
  util::Arena arena_;
  /// Reused across lines so tokenize allocates nothing in steady state.
  JunosLine line_buf_;

  /// Hash tokens of the current line still pending in the batcher.
  std::size_t line_pending_ = 0;
  /// Lines parked until the batcher resolves their tokens; see the core
  /// engine's DeferredLine (vector move keeps slot addresses stable).
  struct DeferredJunosLine {
    JunosLine line;
    std::size_t out_index;
    std::uint64_t seq;
  };
  std::deque<DeferredJunosLine> deferred_;
  /// Cross-line batcher over the shared hasher (declared after state_;
  /// construction order matters).
  core::HashBatcher batcher_;
};

}  // namespace confanon::junos
