// JunOS-mode anonymizer.
//
// Exercises the paper's claim (Section 1, footnote 2) that the IOS
// anonymization techniques "are directly applicable to JunOS and other
// router configuration languages": the same primitives — salted-SHA1
// hashing with referential integrity, the prefix-preserving IP map, the
// keyed ASN permutation, community anonymization and regexp language
// rewriting — are driven by a JunOS-specific rule pack over the
// hierarchical brace syntax:
//
//   * comments are '/* ... */' blocks and trailing '#' text, stripped;
//   * free text lives in quoted strings after `description` / `message`,
//     stripped;
//   * `host-name` / `domain-name` arguments are force-hashed;
//   * `peer-as N;` / `autonomous-system N;` carry ASNs;
//   * `as-path NAME "REGEX";` and `community NAME members "REGEX";` carry
//     policy regexps (rewritten by language computation);
//   * `members [ 701:120 ... ]` carries community literals;
//   * `as-path-prepend "N N";` carries ASNs inside a quoted string;
//   * addresses appear in CIDR form ("address 1.2.3.4/30;"), mapped by
//     the shared trie.
//
// An Anonymizer instance holds one network's state; for a mixed
// IOS/JunOS network, construct it with the SAME salt as the IOS
// anonymizer and the mappings agree (tested).
#pragma once

#include <string>
#include <vector>

#include "asn/asn_map.h"
#include "asn/community.h"
#include "asn/regex_rewrite.h"
#include "config/document.h"
#include "core/leak_detector.h"
#include "core/report.h"
#include "core/string_hasher.h"
#include "ipanon/ip_anonymizer.h"
#include "junos/tokenizer.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "obs/trace.h"
#include "passlist/passlist.h"

namespace confanon::junos {

/// The embedded IOS corpus extended with JunOS keywords.
passlist::PassList JunosPassList();

struct JunosAnonymizerOptions {
  std::string salt = "default-salt";
  asn::RewriteForm regex_form = asn::RewriteForm::kAlternation;
  bool strip_comments = true;
};

class JunosAnonymizer {
 public:
  explicit JunosAnonymizer(JunosAnonymizerOptions options);

  std::vector<config::ConfigFile> AnonymizeNetwork(
      const std::vector<config::ConfigFile>& files);
  config::ConfigFile AnonymizeFile(const config::ConfigFile& file);

  const core::AnonymizationReport& report() const { return report_; }
  const core::LeakRecord& leak_record() const { return leak_record_; }
  const asn::AsnMap& asn_map() const { return asn_map_; }
  ipanon::IpAnonymizer& ip_anonymizer() { return ip_; }
  core::StringHasher& string_hasher() { return hasher_; }

  // --- observability (optional, non-owning; see core::Anonymizer) ---
  // Metric names carry a "junos." prefix so a mixed IOS/JunOS run can
  // share one registry without colliding ("junos.report.*",
  // "junos.line_ns"); rule counters keep their globally unique "J." names
  // under "junos.rule.J.*".
  void set_metrics(obs::MetricsRegistry* metrics);
  void set_trace_sink(obs::TraceSink* sink) { tracer_.set_sink(sink); }
  void set_provenance(obs::ProvenanceLog* provenance) {
    provenance_ = provenance;
  }
  void SyncMetrics();

 private:
  void ProcessLine(JunosLine& line);
  /// One raw input line end-to-end: block-comment handling, tokenization,
  /// rule pack, rendering.
  void AnonymizeLine(const std::string& raw,
                     std::vector<std::string>& out_lines);
  /// AnonymizeLine under timing + rule attribution (see core::Anonymizer).
  void ObserveLine(const std::string& file_name, std::size_t index,
                   const std::string& raw, std::vector<std::string>& out_lines,
                   std::map<std::string, std::uint64_t>& rule_ns);
  /// Force-hashes the word token at `index` (records it when unknown).
  void ForceHash(JunosLine& line, std::size_t index, const char* rule);
  std::string MapAsnText(std::string_view text);

  JunosAnonymizerOptions options_;
  passlist::PassList pass_list_;
  core::StringHasher hasher_;
  ipanon::IpAnonymizer ip_;
  asn::AsnMap asn_map_;
  asn::Uint16Permutation community_values_;
  asn::CommunityAnonymizer community_;
  asn::AsnRegexRewriter aspath_rewriter_;
  asn::CommunityRegexRewriter community_rewriter_;
  core::AnonymizationReport report_;
  core::LeakRecord leak_record_;
  bool in_block_comment_ = false;
  bool preloaded_ = false;

  obs::Tracer tracer_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::ProvenanceLog* provenance_ = nullptr;
  obs::LatencyHistogram* line_hist_ = nullptr;
  obs::LatencyHistogram* file_hist_ = nullptr;
  core::AnonymizationReport synced_report_;
  ipanon::IpAnonymizer::Stats synced_ip_;
};

}  // namespace confanon::junos
