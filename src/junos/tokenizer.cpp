#include "junos/tokenizer.h"

#include "util/strings.h"

namespace confanon::junos {

std::string JunosLine::Render() const {
  std::string out;
  for (const Token& token : tokens) {
    out += token.leading_gap;
    out += token.text;
  }
  out += trailing_gap;
  return out;
}

JunosLine TokenizeJunosLine(std::string_view line) {
  JunosLine result;
  std::size_t i = 0;
  while (i < line.size()) {
    const std::size_t gap_start = i;
    while (i < line.size() && util::IsBlank(line[i])) ++i;
    std::string gap(line.substr(gap_start, i - gap_start));
    if (i == line.size()) {
      result.trailing_gap = std::move(gap);
      break;
    }

    Token token;
    token.leading_gap = std::move(gap);
    const char c = line[i];
    if (c == '{' || c == '}' || c == ';' || c == '[' || c == ']') {
      token.kind = Token::Kind::kPunct;
      token.text = std::string(1, c);
      ++i;
    } else if (c == '#') {
      token.kind = Token::Kind::kComment;
      token.text = std::string(line.substr(i));
      i = line.size();
    } else if (c == '"') {
      token.kind = Token::Kind::kString;
      std::size_t end = i + 1;
      while (end < line.size() && line[end] != '"') {
        if (line[end] == '\\' && end + 1 < line.size()) ++end;
        ++end;
      }
      if (end < line.size()) ++end;  // closing quote
      token.text = std::string(line.substr(i, end - i));
      i = end;
    } else {
      token.kind = Token::Kind::kWord;
      const std::size_t start = i;
      while (i < line.size() && !util::IsBlank(line[i]) && line[i] != '{' &&
             line[i] != '}' && line[i] != ';' && line[i] != '[' &&
             line[i] != ']' && line[i] != '"' && line[i] != '#') {
        ++i;
      }
      token.text = std::string(line.substr(start, i - start));
    }
    result.tokens.push_back(std::move(token));
  }
  return result;
}

std::vector<std::string> WordsOf(const JunosLine& line) {
  std::vector<std::string> words;
  for (const Token& token : line.tokens) {
    if (token.kind == Token::Kind::kWord) {
      words.push_back(token.text);
    } else if (token.kind == Token::Kind::kString) {
      std::string inner = token.text;
      if (inner.size() >= 2 && inner.front() == '"' && inner.back() == '"') {
        inner = inner.substr(1, inner.size() - 2);
      }
      words.push_back(inner);
    }
  }
  return words;
}

}  // namespace confanon::junos
