#include "junos/tokenizer.h"

#include "util/charscan.h"
#include "util/strings.h"

namespace confanon::junos {

namespace {

inline bool IsStructural(char c) {
  return c == '{' || c == '}' || c == ';' || c == '[' || c == ']' ||
         c == '"' || c == '#';
}

}  // namespace

std::string JunosLine::Render() const {
  std::size_t total = trailing_gap.size();
  for (const Token& token : tokens) {
    total += token.leading_gap.size() + token.text.size();
  }
  std::string out;
  out.reserve(total);
  for (const Token& token : tokens) {
    out.append(token.leading_gap);
    out.append(token.text);
  }
  out.append(trailing_gap);
  return out;
}

void TokenizeJunosLineInto(std::string_view line, JunosLine& out) {
  out.tokens.clear();
  out.trailing_gap = std::string_view();
  std::size_t i = 0;
  while (i < line.size()) {
    const std::size_t gap_start = i;
    i = util::FindNonBlank(line, i);
    const std::string_view gap = line.substr(gap_start, i - gap_start);
    if (i == line.size()) {
      out.trailing_gap = gap;
      break;
    }

    Token token;
    token.leading_gap = gap;
    const char c = line[i];
    if (c == '{' || c == '}' || c == ';' || c == '[' || c == ']') {
      token.kind = Token::Kind::kPunct;
      token.text = line.substr(i, 1);
      ++i;
    } else if (c == '#') {
      token.kind = Token::Kind::kComment;
      token.text = line.substr(i);
      i = line.size();
    } else if (c == '"') {
      token.kind = Token::Kind::kString;
      std::size_t end = i + 1;
      while (end < line.size() && line[end] != '"') {
        if (line[end] == '\\' && end + 1 < line.size()) ++end;
        ++end;
      }
      if (end < line.size()) ++end;  // closing quote
      token.text = line.substr(i, end - i);
      i = end;
    } else {
      token.kind = Token::Kind::kWord;
      const std::size_t start = i;
      // Words end at whitespace or structural punctuation; scan blanks
      // in bulk and stop early on punctuation.
      while (i < line.size() && !util::IsBlank(line[i]) &&
             !IsStructural(line[i])) {
        ++i;
      }
      token.text = line.substr(start, i - start);
    }
    out.tokens.push_back(token);
  }
}

JunosLine TokenizeJunosLine(std::string_view line) {
  JunosLine result;
  TokenizeJunosLineInto(line, result);
  return result;
}

std::vector<std::string_view> WordsOf(const JunosLine& line) {
  std::vector<std::string_view> words;
  for (const Token& token : line.tokens) {
    if (token.kind == Token::Kind::kWord) {
      words.push_back(token.text);
    } else if (token.kind == Token::Kind::kString) {
      std::string_view inner = token.text;
      if (inner.size() >= 2 && inner.front() == '"' && inner.back() == '"') {
        inner = inner.substr(1, inner.size() - 2);
      }
      words.push_back(inner);
    }
  }
  return words;
}

std::size_t WordCount(const JunosLine& line) {
  std::size_t count = 0;
  for (const Token& token : line.tokens) {
    count += token.kind == Token::Kind::kWord ||
             token.kind == Token::Kind::kString;
  }
  return count;
}

}  // namespace confanon::junos
