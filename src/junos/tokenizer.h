// Line tokenization for JunOS-style configuration text.
//
// JunOS configs are hierarchical: statements end with ';', blocks open
// with '{' and close with '}', string values can be quoted, and comments
// are '/* ... */' blocks or trailing '#' text. Punctuation attaches to
// words ("peer-as 701;"), so the IOS whitespace tokenizer would glue the
// semicolon to the value; this tokenizer splits the structural
// punctuation into standalone tokens while preserving the original
// spacing for exact re-rendering.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace confanon::junos {

struct Token {
  enum class Kind {
    kWord,        // identifier, number, address, ...
    kString,      // quoted string, quotes included in text
    kPunct,       // one of { } ; [ ]
    kComment,     // '#' to end of line (text includes the '#')
  };
  Kind kind = Kind::kWord;
  std::string text;
  /// Whitespace that preceded this token in the original line.
  std::string leading_gap;

  bool operator==(const Token&) const = default;
};

struct JunosLine {
  std::vector<Token> tokens;
  /// Whitespace after the last token.
  std::string trailing_gap;

  /// Re-renders exactly (concatenation of gaps and token texts).
  std::string Render() const;
};

/// Tokenizes one line. Quoted strings keep their quotes; an unterminated
/// quote runs to end of line.
JunosLine TokenizeJunosLine(std::string_view line);

/// Returns the word texts only (no punctuation/comments/gaps), unquoted.
std::vector<std::string> WordsOf(const JunosLine& line);

}  // namespace confanon::junos
