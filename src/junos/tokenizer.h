// Line tokenization for JunOS-style configuration text.
//
// JunOS configs are hierarchical: statements end with ';', blocks open
// with '{' and close with '}', string values can be quoted, and comments
// are '/* ... */' blocks or trailing '#' text. Punctuation attaches to
// words ("peer-as 701;"), so the IOS whitespace tokenizer would glue the
// semicolon to the value; this tokenizer splits the structural
// punctuation into standalone tokens while preserving the original
// spacing for exact re-rendering.
//
// Tokens are zero-copy std::string_view slices of the input line; the
// line must outlive the tokens. A caller that rewrites a token repoints
// its view at replacement bytes it keeps alive itself (the JunOS engine
// uses a per-file util::Arena).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace confanon::junos {

struct Token {
  enum class Kind {
    kWord,        // identifier, number, address, ...
    kString,      // quoted string, quotes included in text
    kPunct,       // one of { } ; [ ]
    kComment,     // '#' to end of line (text includes the '#')
  };
  Kind kind = Kind::kWord;
  std::string_view text;
  /// Whitespace that preceded this token in the original line.
  std::string_view leading_gap;

  bool operator==(const Token&) const = default;
};

struct JunosLine {
  std::vector<Token> tokens;
  /// Whitespace after the last token.
  std::string_view trailing_gap;

  /// Re-renders exactly (concatenation of gaps and token texts), into a
  /// string reserved to the exact output length.
  std::string Render() const;
};

/// Tokenizes one line. Quoted strings keep their quotes; an unterminated
/// quote runs to end of line.
JunosLine TokenizeJunosLine(std::string_view line);
/// Buffer-reusing form: clears and refills `out` (keeps capacity).
void TokenizeJunosLineInto(std::string_view line, JunosLine& out);

/// Returns the word texts only (no punctuation/comments/gaps), unquoted.
/// The views alias the tokenized line.
std::vector<std::string_view> WordsOf(const JunosLine& line);

/// Number of word/string tokens, without materializing them.
std::size_t WordCount(const JunosLine& line);

}  // namespace confanon::junos
