#include "junos/validate.h"

#include "config/tokenizer.h"
#include "junos/design_extract.h"

namespace confanon::junos {

analysis::ValidationResult ValidateJunosNetwork(
    const std::vector<config::ConfigFile>& pre,
    const std::vector<config::ConfigFile>& post,
    JunosAnonymizer& anonymizer) {
  analysis::ValidationResult result;

  const analysis::NetworkDesign pre_design = ExtractJunosDesign(pre);
  const analysis::NetworkDesign post_design = ExtractJunosDesign(post);

  const passlist::PassList junos_words = JunosPassList();
  const auto name_map = [&](const std::string& name) -> std::string {
    bool passes = true;
    for (const config::Segment& segment : config::SegmentWord(name)) {
      if (segment.alpha && !junos_words.Contains(segment.text)) {
        passes = false;
        break;
      }
    }
    if (passes) return name;
    return anonymizer.string_hasher().Hash(name);
  };
  const auto addr_map = [&](net::Ipv4Address address) {
    return anonymizer.ip_anonymizer().Map(address);
  };
  const auto asn_map = [&](std::uint32_t asn) {
    return anonymizer.asn_map().Map(asn);
  };

  const analysis::NetworkDesign expected =
      analysis::MapDesign(pre_design, name_map, addr_map, asn_map);
  result.design_diffs = analysis::CompareDesigns(expected, post_design);
  result.design_match = result.design_diffs.empty();

  result.structural_diffs =
      analysis::CompareStructural(pre_design, post_design);
  result.structural_match = result.structural_diffs.empty();

  // Suite 1 (characteristics) is IOS-syntax-specific; derive the
  // equivalent invariants from the designs instead.
  result.characteristics_match =
      pre_design.routers.size() == post_design.routers.size() &&
      pre_design.links.size() == post_design.links.size() &&
      pre_design.bgp_sessions.size() == post_design.bgp_sessions.size();
  if (!result.characteristics_match) {
    result.characteristics_diffs.push_back(
        "router/link/session counts differ");
  }
  return result;
}

}  // namespace confanon::junos
