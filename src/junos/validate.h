// Validation suites for JunOS corpora (paper Section 5, applied to the
// second configuration language).
//
// Mirrors analysis::ValidateNetwork: suite 2 extracts the routing design
// from the JunOS configs pre- and post-anonymization, pushes the pre
// design through the anonymizer's maps, and compares exactly.
#pragma once

#include "analysis/validate.h"
#include "junos/anonymizer.h"

namespace confanon::junos {

/// Runs suite 2 (design equality under maps) and the structural
/// projection over a JunOS corpus. `anonymizer` must be the instance that
/// produced `post` from `pre`.
analysis::ValidationResult ValidateJunosNetwork(
    const std::vector<config::ConfigFile>& pre,
    const std::vector<config::ConfigFile>& post,
    JunosAnonymizer& anonymizer);

}  // namespace confanon::junos
