#include "junos/writer.h"

#include <map>

#include "util/strings.h"

namespace confanon::junos {

namespace {

/// Splits "so-1/0.5" conventions: returns (physical, unit).
std::pair<std::string, int> SplitUnit(const std::string& junos_name) {
  const std::size_t dot = junos_name.find('.');
  if (dot == std::string::npos) return {junos_name, 0};
  std::uint64_t unit = 0;
  util::ParseUint(junos_name.substr(dot + 1), 16384, unit);
  return {junos_name.substr(0, dot), static_cast<int>(unit)};
}

class Writer {
 public:
  Writer(const gen::RouterSpec& router, const gen::NetworkSpec& network)
      : router_(router), network_(network) {}

  config::ConfigFile Render() {
    Line("/* " + router_.hostname + " */");
    System();
    Interfaces();
    RoutingOptions();
    Protocols();
    PolicyOptions();
    return config::ConfigFile(router_.hostname, std::move(lines_));
  }

 private:
  void Line(std::string text) {
    lines_.push_back(std::string(static_cast<std::size_t>(depth_) * 4, ' ') +
                     std::move(text));
  }
  void Open(const std::string& header) {
    Line(header + " {");
    ++depth_;
  }
  void Close() {
    --depth_;
    Line("}");
  }

  void System() {
    Open("system");
    Line("host-name " + router_.hostname + ";");
    if (!router_.domain_name.empty()) {
      Line("domain-name " + router_.domain_name + ";");
    }
    if (!router_.banner.empty()) {
      Line("login {");
      Line("    message \"" + router_.banner + "\";");
      Line("}");
    }
    for (const auto& server : router_.ntp_servers) {
      Line("ntp { server " + server.ToString() + "; }");
    }
    Close();
  }

  void Interfaces() {
    Open("interfaces");
    for (const gen::InterfaceSpec& iface : router_.interfaces) {
      const auto [physical, unit] =
          SplitUnit(JunosInterfaceName(iface.name));
      Open(physical);
      if (!iface.description.empty()) {
        Line("description \"" + iface.description + "\";");
      }
      Open("unit " + std::to_string(unit));
      Open("family inet");
      Line("address " + iface.address.ToString() + "/" +
           std::to_string(iface.prefix_length) + ";");
      Close();
      Close();
      if (iface.shutdown) Line("disable;");
      Close();
    }
    Close();
  }

  void RoutingOptions() {
    Open("routing-options");
    if (router_.bgp.has_value()) {
      Line("autonomous-system " + std::to_string(router_.bgp->asn) + ";");
    }
    if (!router_.static_routes.empty()) {
      Open("static");
      for (const auto& route : router_.static_routes) {
        Line("route " + route.destination.ToString() + " next-hop " +
             route.next_hop.ToString() + ";");
      }
      Close();
    }
    Close();
  }

  void Protocols() {
    Open("protocols");
    for (const gen::IgpSpec& igp : router_.igps) {
      switch (igp.kind) {
        case gen::IgpKind::kOspf:
        case gen::IgpKind::kEigrp: {  // no EIGRP on JunOS; see header
          Open("ospf");
          Open("area " + std::to_string(igp.ospf_area));
          for (const gen::InterfaceSpec& iface : router_.interfaces) {
            bool covered = false;
            for (const net::Prefix& network : igp.networks) {
              if (network.Contains(iface.address)) {
                covered = true;
                break;
              }
            }
            if (covered) {
              Line("interface " + JunosInterfaceName(iface.name) + ";");
            }
          }
          Close();
          Close();
          break;
        }
        case gen::IgpKind::kRip: {
          Open("rip");
          Open("group rip-edge");
          for (const gen::InterfaceSpec& iface : router_.interfaces) {
            for (const net::Prefix& network : igp.networks) {
              if (network.Contains(iface.address)) {
                Line("neighbor " + JunosInterfaceName(iface.name) + ";");
                break;
              }
            }
          }
          Close();
          Close();
          break;
        }
      }
    }

    if (router_.bgp.has_value()) {
      const gen::BgpSpec& bgp = *router_.bgp;
      Open("bgp");
      bool has_internal = false;
      for (const auto& neighbor : bgp.neighbors) {
        has_internal |= !neighbor.external;
      }
      if (has_internal) {
        Open("group internal-mesh");
        Line("type internal;");
        for (const auto& neighbor : bgp.neighbors) {
          if (neighbor.external) continue;
          Line("neighbor " + neighbor.address.ToString() + ";");
        }
        Close();
      }
      for (const auto& neighbor : bgp.neighbors) {
        if (!neighbor.external) continue;
        Open("group ext-" + (neighbor.peer_name.empty()
                                 ? neighbor.address.ToString()
                                 : neighbor.peer_name));
        Line("type external;");
        Line("peer-as " + std::to_string(neighbor.remote_asn) + ";");
        if (!neighbor.import_map.empty()) {
          Line("import " + neighbor.import_map + ";");
        }
        if (!neighbor.export_map.empty()) {
          Line("export " + neighbor.export_map + ";");
        }
        Line("neighbor " + neighbor.address.ToString() + ";");
        Close();
      }
      Close();
    }
    Close();
  }

  void PolicyOptions() {
    if (router_.route_maps.empty() && router_.prefix_lists.empty() &&
        router_.as_path_lists.empty() && router_.community_lists.empty()) {
      return;
    }
    Open("policy-options");
    for (const gen::PrefixListSpec& list : router_.prefix_lists) {
      Open("prefix-list " + list.name);
      for (const gen::PrefixListEntrySpec& entry : list.entries) {
        Line(entry.prefix.ToString() + ";");
      }
      Close();
    }
    for (const gen::AsPathListSpec& list : router_.as_path_lists) {
      Line("as-path aspath-" + std::to_string(list.number) + " \"" +
           list.regex + "\";");
    }
    for (const gen::CommunityListSpec& list : router_.community_lists) {
      const std::string name = "comm-" + list.Reference();
      if (list.expanded) {
        Line("community " + name + " members \"" + list.regex + "\";");
      } else {
        std::string members;
        for (std::size_t i = 0; i < list.literals.size(); ++i) {
          if (i > 0) members += " ";
          members += list.literals[i];
        }
        Line("community " + name + " members [ " + members + " ];");
      }
    }
    for (const gen::RouteMapSpec& map : router_.route_maps) {
      Open("policy-statement " + map.name);
      for (const gen::RouteMapClauseSpec& clause : map.clauses) {
        Open("term t" + std::to_string(clause.sequence));
        const bool has_from =
            clause.match_as_path || clause.match_community ||
            clause.match_acl || clause.match_prefix_list;
        if (has_from) {
          Open("from");
          if (clause.match_as_path) {
            Line("as-path aspath-" + std::to_string(*clause.match_as_path) +
                 ";");
          }
          if (clause.match_community) {
            Line("community comm-" + *clause.match_community + ";");
          }
          if (clause.match_prefix_list) {
            Line("prefix-list " + *clause.match_prefix_list + ";");
          }
          if (clause.match_acl) {
            // ACL-by-number has no JunOS analogue; reference a prefix-list
            // with the same id.
            Line("prefix-list acl-" + std::to_string(*clause.match_acl) +
                 ";");
          }
          Close();
        }
        Open("then");
        if (clause.set_local_preference) {
          Line("local-preference " +
               std::to_string(*clause.set_local_preference) + ";");
        }
        if (clause.set_med) {
          Line("metric " + std::to_string(*clause.set_med) + ";");
        }
        if (clause.set_community) {
          Line("community add " + SetCommunityName(*clause.set_community) +
               ";");
        }
        if (!clause.set_prepend.empty()) {
          std::string prepend;
          for (std::uint32_t asn : clause.set_prepend) {
            if (!prepend.empty()) prepend += " ";
            prepend += std::to_string(asn);
          }
          Line("as-path-prepend \"" + prepend + "\";");
        }
        Line(clause.permit ? "accept;" : "reject;");
        Close();
        Close();
      }
      Close();
    }
    // Communities referenced by `then community add set-N` need
    // definitions. Names are opaque indices — embedding the community
    // value in the name would leak it past the members rewriting.
    for (const auto& [literal, name] : set_communities_) {
      Line("community " + name + " members " + literal + ";");
    }
    Close();
  }

  /// Opaque, stable name for a set-community literal.
  std::string SetCommunityName(const std::string& literal) {
    const auto [it, inserted] = set_communities_.emplace(
        literal, "set-" + std::to_string(set_communities_.size() + 1));
    return it->second;
  }

  const gen::RouterSpec& router_;
  const gen::NetworkSpec& network_;
  int depth_ = 0;
  std::vector<std::string> lines_;
  std::map<std::string, std::string> set_communities_;
};

}  // namespace

std::string JunosInterfaceName(const std::string& ios_name) {
  const auto convert = [&](std::string_view prefix,
                           std::string_view junos) -> std::string {
    return std::string(junos) +
           std::string(ios_name.substr(prefix.size()));
  };
  if (ios_name.starts_with("Serial")) return convert("Serial", "so-");
  if (ios_name.starts_with("FastEthernet")) {
    return convert("FastEthernet", "fe-");
  }
  if (ios_name.starts_with("GigabitEthernet")) {
    return convert("GigabitEthernet", "ge-");
  }
  if (ios_name.starts_with("Ethernet")) {
    // Old single-number Ethernet ports get a slot: "Ethernet0" -> ge-0/0.
    return "ge-0/" + std::string(ios_name.substr(8));
  }
  if (ios_name.starts_with("Loopback")) {
    return "lo" + std::string(ios_name.substr(8));
  }
  return ios_name;
}

config::ConfigFile WriteJunosConfig(const gen::RouterSpec& router,
                                    const gen::NetworkSpec& network) {
  Writer writer(router, network);
  return writer.Render();
}

std::vector<config::ConfigFile> WriteJunosNetworkConfigs(
    const gen::NetworkSpec& network) {
  std::vector<config::ConfigFile> configs;
  configs.reserve(network.routers.size());
  for (const gen::RouterSpec& router : network.routers) {
    configs.push_back(WriteJunosConfig(router, network));
  }
  return configs;
}

}  // namespace confanon::junos
