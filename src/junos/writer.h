// Rendering RouterSpecs to JunOS-style configuration text.
//
// The paper implemented its anonymizer for Cisco IOS and noted "the
// techniques are directly applicable to JunOS and other router
// configuration languages as well" (Section 1, footnote 2). This writer
// renders the same generated network model to JunOS syntax so the claim
// can be exercised: junos::Anonymizer runs the same primitives (salted
// hashing, prefix-preserving IP map, ASN permutation, regexp language
// rewriting) over the hierarchical brace syntax.
//
// Dialect notes: interface names map to JunOS conventions (Serial ->
// so-*, FastEthernet -> fe-*, GigabitEthernet/Ethernet -> ge-*, Loopback
// -> lo0); EIGRP has no JunOS equivalent and is rendered as OSPF.
#pragma once

#include "config/document.h"
#include "gen/model.h"

namespace confanon::junos {

/// Renders one router's config in JunOS curly-brace syntax.
config::ConfigFile WriteJunosConfig(const gen::RouterSpec& router,
                                    const gen::NetworkSpec& network);

/// Renders every router of a network.
std::vector<config::ConfigFile> WriteJunosNetworkConfigs(
    const gen::NetworkSpec& network);

/// Maps an IOS-style interface name to the JunOS convention, e.g.
/// "Serial1/0.5" -> "so-1/0.5", "GigabitEthernet0/1" -> "ge-0/1",
/// "Loopback0" -> "lo0".
std::string JunosInterfaceName(const std::string& ios_name);

}  // namespace confanon::junos
