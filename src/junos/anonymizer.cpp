#include "junos/anonymizer.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "config/tokenizer.h"
#include "core/session.h"
#include "net/prefix.h"
#include "net/special.h"
#include "util/strings.h"

namespace confanon::junos {

namespace {

/// JunOS configuration keywords not already covered by the IOS corpus.
constexpr const char* kJunosWords[] = {
    "groups", "statement", "term", "accept", "reject", "members", "inet",
    "unit", "family", "lo", "so", "fe", "xe", "et", "mesh", "comm", "ext",
    "rib", "protocols", "interfaces", "neighbors", "units", "families",
};

bool IsQuoted(std::string_view text) {
  return text.size() >= 2 && text.front() == '"' && text.back() == '"';
}

std::string_view Unquote(std::string_view text) {
  if (IsQuoted(text)) return text.substr(1, text.size() - 2);
  return text;
}

/// Arena-backed quoting: the returned view lives until the next Reset().
std::string_view Quote(std::string_view text, util::Arena& arena) {
  char* out = arena.Allocate(text.size() + 2);
  out[0] = '"';
  if (!text.empty()) std::memcpy(out + 1, text.data(), text.size());
  out[text.size() + 1] = '"';
  return {out, text.size() + 2};
}

}  // namespace

passlist::PassList JunosPassList() {
  passlist::PassList list = passlist::PassList::Builtin();
  for (const char* word : kJunosWords) {
    list.Add(word);
  }
  return list;
}

JunosAnonymizer::JunosAnonymizer(JunosAnonymizerOptions options)
    : JunosAnonymizer(std::move(options), nullptr) {}

JunosAnonymizer::JunosAnonymizer(const core::ServiceContext& context,
                                 const core::Session& session)
    : JunosAnonymizer(
          [&] {
            core::AnonymizerOptions base = context.EngineOptions(session);
            return JunosAnonymizerOptions{base.salt, base.regex_form,
                                          base.strip_comments,
                                          std::move(base.extra_pass_list)};
          }(),
          session.state()) {}

JunosAnonymizer::JunosAnonymizer(JunosAnonymizerOptions options,
                                 std::shared_ptr<core::NetworkState> state)
    : options_(std::move(options)),
      pass_list_(JunosPassList()),
      shared_state_(state != nullptr),
      state_(shared_state_
                 ? std::move(state)
                 : std::make_shared<core::NetworkState>(options_.salt)),
      batcher_(state_->hasher) {
  pass_list_.Merge(options_.extra_pass_list);
}

void JunosAnonymizer::CollectFileAddresses(const config::ConfigFile& file,
                                           std::vector<net::Ipv4Address>& out) {
  JunosLine line;
  for (const std::string_view raw : file.lines()) {
    TokenizeJunosLineInto(raw, line);
    for (const Token& token : line.tokens) {
      if (token.kind != Token::Kind::kWord) continue;
      const std::string_view text = token.text;
      const std::size_t slash = text.find('/');
      const auto address = net::Ipv4Address::Parse(
          slash == std::string_view::npos ? text : text.substr(0, slash));
      if (address && !net::IsSpecial(*address)) {
        out.push_back(*address);
      }
    }
  }
}

void JunosAnonymizer::CollectHashCandidates(
    const config::ConfigFile& file, const passlist::PassList& pass_list,
    std::vector<std::string_view>& out) {
  JunosLine line;
  for (const std::string_view raw : file.lines()) {
    TokenizeJunosLineInto(raw, line);
    for (const Token& token : line.tokens) {
      if (token.kind != Token::Kind::kWord &&
          token.kind != Token::Kind::kString) {
        continue;
      }
      const std::string_view value = Unquote(token.text);
      if (value.empty() || config::IsNonAlphabetic(value)) continue;
      for (const config::Segment& segment : config::SegmentWord(value)) {
        if (segment.alpha && !pass_list.Contains(segment.text)) {
          out.push_back(value);
          break;
        }
      }
    }
  }
}

std::vector<config::ConfigFile> JunosAnonymizer::AnonymizeNetwork(
    const std::vector<config::ConfigFile>& files) {
  obs::ScopedTimer network_span(&tracer_, "junos-anonymize-network");
  network_span.AddArg("files", static_cast<std::int64_t>(files.size()));
  network_span.AddArg("phase", "anonymize");
  if (!state_->preloaded.load(std::memory_order_acquire)) {
    obs::ScopedTimer preload_span(&tracer_, "junos-preload");
    preload_span.AddArg("phase", "preload");
    std::vector<net::Ipv4Address> addresses;
    for (const config::ConfigFile& file : files) {
      CollectFileAddresses(file, addresses);
    }
    state_->ip.Preload(std::move(addresses));
    state_->preloaded.store(true, std::memory_order_release);
  }
  std::vector<config::ConfigFile> out;
  out.reserve(files.size());
  for (const config::ConfigFile& file : files) {
    out.push_back(AnonymizeFile(file));
  }
  SyncMetrics();
  return out;
}

config::ConfigFile JunosAnonymizer::AnonymizeFile(
    const config::ConfigFile& file) {
  // Standalone streaming use (no corpus-wide pass ran): preload this
  // file's own addresses so the subnet-address guarantee holds at least
  // file-locally. Within AnonymizeNetwork or the pipeline the corpus
  // preload already ran and this is skipped.
  if (!state_->preloaded.load(std::memory_order_acquire)) {
    std::vector<net::Ipv4Address> addresses;
    CollectFileAddresses(file, addresses);
    state_->ip.Preload(std::move(addresses));
  }

  std::vector<std::string> out_lines;
  out_lines.reserve(file.lines().size());
  in_block_comment_ = false;

  const bool observing =
      tracer_.enabled() || provenance_ != nullptr || metrics_ != nullptr;
  const std::int64_t file_start_us = tracer_.enabled() ? tracer_.NowUs() : 0;
  const auto file_start = std::chrono::steady_clock::now();
  std::map<std::string, std::uint64_t> rule_ns;

  for (std::size_t index = 0; index < file.lines().size(); ++index) {
    if (observing) {
      ObserveLine(file.name(), index, file.lines()[index], out_lines,
                  rule_ns);
    } else {
      AnonymizeLine(file.lines()[index], out_lines);
    }
  }
  // Resolve the remaining partial hash batch (dummy-padded lanes) and
  // render the lines waiting on it — pending words and deferred token
  // views are arena-backed, so this must precede the reset.
  batcher_.FlushAll();
  DrainDeferred(out_lines);
  // Every line has been rendered into an owned output string; no
  // arena-backed view survives past this point.
  arena_.Reset();

  if (observing) {
    const std::int64_t file_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - file_start)
            .count();
    if (file_hist_ != nullptr) {
      file_hist_->Record(static_cast<std::uint64_t>(file_ns));
    }
    if (tracer_.enabled()) {
      const std::int64_t file_end_us =
          file_start_us + std::max<std::int64_t>(file_ns / 1000, 1);
      std::int64_t cursor = file_start_us;
      for (const auto& [rule, ns] : rule_ns) {
        std::int64_t duration = std::max<std::int64_t>(
            static_cast<std::int64_t>(ns) / 1000, 1);
        duration = std::min(duration,
                            std::max<std::int64_t>(file_end_us - cursor, 1));
        tracer_.Complete("rule:" + rule, cursor, duration, "anonymize");
        cursor = std::min(cursor + duration, file_end_us - 1);
      }
      tracer_.Complete("file:" + file.name(), file_start_us,
                       file_end_us - file_start_us, "anonymize");
    }
    SyncMetrics();
  }

  std::string out_name = file.name();
  if (!out_name.empty() && !pass_list_.Contains(out_name)) {
    out_name = state_->hasher.Hash(out_name);
  }
  return config::ConfigFile(out_name, std::move(out_lines));
}

void JunosAnonymizer::AnonymizeLine(std::string_view raw,
                                    std::vector<std::string>& out_lines) {
  ++report_.total_lines;

  // '/* ... */' block comments (possibly multi-line): stripped whole.
  std::string_view text = raw;
  if (options_.strip_comments) {
    const bool opens =
        !in_block_comment_ &&
        util::Trim(text).substr(0, 2) == std::string_view("/*");
    if (opens || in_block_comment_) {
      const std::size_t close = text.find("*/");
      report_.total_words += util::SplitWords(text).size();
      report_.comment_words_removed += util::SplitWords(text).size();
      report_.CountRule("J.strip-block-comment");
      in_block_comment_ = close == std::string_view::npos;
      out_lines.push_back("/* */");
      return;
    }
  }

  JunosLine& line = line_buf_;
  if (tokenize_hist_ != nullptr) {
    const auto t0 = std::chrono::steady_clock::now();
    TokenizeJunosLineInto(raw, line);
    tokenize_hist_->Record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
  } else {
    TokenizeJunosLineInto(raw, line);
  }
  report_.total_words += WordCount(line);
  line_pending_ = 0;
  ProcessLine(line);
  if (line_pending_ == 0) {
    out_lines.push_back(line.Render());
  } else {
    // Hash tokens still pending in the batcher: park the line (the token
    // vector move keeps the registered slot addresses stable) and
    // reserve its output position.
    deferred_.push_back(DeferredJunosLine{std::move(line), out_lines.size(),
                                          batcher_.enqueued_seq()});
    out_lines.emplace_back();
  }
  // Same flush policy as the core engine: eager full batches, everything
  // per line when a provenance log needs the rendered output at once.
  if (provenance_ != nullptr) {
    batcher_.FlushAll();
  } else {
    batcher_.FlushFull();
  }
  DrainDeferred(out_lines);
}

void JunosAnonymizer::DrainDeferred(std::vector<std::string>& out_lines) {
  while (!deferred_.empty() &&
         deferred_.front().seq <= batcher_.resolved_seq()) {
    DeferredJunosLine& entry = deferred_.front();
    out_lines[entry.out_index] = entry.line.Render();
    deferred_.pop_front();
  }
}

void JunosAnonymizer::ObserveLine(const std::string& file_name,
                                  std::size_t index, std::string_view raw,
                                  std::vector<std::string>& out_lines,
                                  std::map<std::string, std::uint64_t>& rule_ns) {
  const std::uint64_t words_before = report_.total_words;
  const std::size_t out_count = out_lines.size();
  const std::map<std::string, std::uint64_t> fires_before = report_.rule_fires;
  const auto t0 = std::chrono::steady_clock::now();

  AnonymizeLine(raw, out_lines);

  const std::uint64_t elapsed_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  if (line_hist_ != nullptr) line_hist_->Record(elapsed_ns);

  const auto tokens_before =
      static_cast<std::uint32_t>(report_.total_words - words_before);
  const auto tokens_after = static_cast<std::uint32_t>(
      out_lines.size() > out_count ? util::SplitWords(out_lines.back()).size()
                                   : 0);

  std::vector<const std::string*> fired;
  for (const auto& [name, count] : report_.rule_fires) {
    const auto before = fires_before.find(name);
    if (before == fires_before.end() || before->second != count) {
      fired.push_back(&name);
    }
  }
  if (fired.empty()) return;
  const std::uint64_t share = elapsed_ns / fired.size();
  for (const std::string* rule : fired) {
    if (tracer_.enabled()) rule_ns[*rule] += share;
    if (provenance_ != nullptr) {
      provenance_->Record(obs::ProvenanceEntry{
          file_name, static_cast<std::uint64_t>(index), *rule, tokens_before,
          tokens_after});
    }
  }
}

void JunosAnonymizer::install_hooks(const obs::Hooks& hooks) {
  hooks_ = hooks;
  ApplyHooks();
}

void JunosAnonymizer::ApplyHooks() {
  tracer_.set_sink(hooks_.trace);
  provenance_ = hooks_.provenance;
  metrics_ = hooks_.metrics;
  line_hist_ = metrics_ != nullptr
                   ? &metrics_->HistogramNamed("junos.line_ns")
                   : nullptr;
  file_hist_ = metrics_ != nullptr
                   ? &metrics_->HistogramNamed("junos.file_ns")
                   : nullptr;
  tokenize_hist_ = metrics_ != nullptr
                       ? &metrics_->HistogramNamed("junos.tokenize_ns")
                       : nullptr;
  // The word-hash batch instruments are unprefixed ("hash.*"): the hasher
  // is dialect-agnostic shared state, so both engines feed the same
  // instruments.
  if (metrics_ != nullptr) {
    batcher_.set_metrics(&metrics_->HistogramNamed("hash.batch_ns"),
                         &metrics_->CounterNamed("hash.batched_words"),
                         &metrics_->CounterNamed("hash.batch_flushes"),
                         &metrics_->HistogramNamed("hash.lane_fill"));
  } else {
    batcher_.set_metrics(nullptr, nullptr, nullptr, nullptr);
  }
}

void JunosAnonymizer::ExportKnownEntities(std::ostream& out) { (void)out; }

void JunosAnonymizer::SyncMetrics() {
  if (metrics_ == nullptr) return;
  core::SyncReportDeltas(report_, synced_report_, *metrics_, "junos.");
  const auto sync = [&](const char* name, std::uint64_t current,
                        std::uint64_t& base) {
    if (current > base) {
      metrics_->CounterNamed(name).Add(current - base);
      base = current;
    }
  };
  // The arena is engine-local (one per worker), so its counters sync
  // here even under a shared NetworkState.
  sync("junos.arena.bytes", arena_.bytes_allocated(), synced_arena_bytes_);
  sync("junos.arena.resets", arena_.resets(), synced_arena_resets_);
  if (shared_state_) {
    // The trie belongs to the pipeline's shared NetworkState; per-worker
    // delta syncs would double count, so the pipeline syncs centrally.
    return;
  }
  const ipanon::IpAnonymizer::Stats ip_stats = state_->ip.stats();
  sync("junos.ipanon.cache_hits", ip_stats.cache_hits, synced_ip_.cache_hits);
  sync("junos.ipanon.cache_misses", ip_stats.cache_misses,
       synced_ip_.cache_misses);
  sync("junos.ipanon.collision_walks", ip_stats.collision_walks,
       synced_ip_.collision_walks);
  sync("junos.ipanon.preloaded_addresses", ip_stats.preloaded,
       synced_ip_.preloaded);
  metrics_->GaugeNamed("junos.ipanon.trie_nodes")
      .Set(static_cast<std::int64_t>(state_->ip.NodeCount()));
}

void JunosAnonymizer::ForceHash(JunosLine& line, std::size_t index,
                                const char* rule) {
  if (index >= line.tokens.size()) return;
  Token& token = line.tokens[index];
  const std::string_view original = Unquote(token.text);
  if (original.empty()) return;
  if (!pass_list_.Contains(original)) {
    leak_record_.hashed_words.insert(std::string(original));
  }
  // Memo hits rewrite immediately; misses batch through the 4-way SHA-1
  // kernel and patch the token text at flush time.
  HashToken(token);
  ++report_.words_hashed;
  report_.CountRule(rule);
}

void JunosAnonymizer::HashToken(Token& token) {
  const bool quoted = token.kind == Token::Kind::kString;
  const std::string_view original = Unquote(token.text);
  if (const std::string* hashed =
          batcher_.Lookup(original, arena_, &token.text, quoted)) {
    token.text = quoted ? Quote(*hashed, arena_) : std::string_view(*hashed);
  } else {
    ++line_pending_;
  }
}

std::string JunosAnonymizer::MapAsnText(std::string_view text) {
  std::uint64_t asn = 0;
  if (!util::ParseUint(text, asn::kMaxAsn, asn)) return std::string(text);
  if (asn::IsPublicAsn(static_cast<std::uint32_t>(asn))) {
    leak_record_.public_asns.insert(std::string(text));
  }
  const std::uint32_t mapped =
      state_->asn_map.Map(static_cast<std::uint32_t>(asn));
  if (mapped != asn) ++report_.asns_mapped;
  return std::to_string(mapped);
}

void JunosAnonymizer::ProcessLine(JunosLine& line) {
  auto& tokens = line.tokens;
  if (tokens.empty()) return;

  // Trailing '#' comments.
  if (options_.strip_comments &&
      tokens.back().kind == Token::Kind::kComment) {
    report_.comment_words_removed +=
        util::SplitWords(tokens.back().text).size();
    report_.CountRule("J.strip-hash-comment");
    tokens.pop_back();
    if (tokens.empty()) return;
  }

  // Word-token indices (skipping punctuation) for context matching.
  std::vector<std::size_t> word_at;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind == Token::Kind::kWord ||
        tokens[i].kind == Token::Kind::kString) {
      word_at.push_back(i);
    }
  }
  if (word_at.empty()) return;
  const auto word = [&](std::size_t w) -> std::string_view {
    return tokens[word_at[w]].text;
  };
  std::vector<bool> handled(tokens.size(), false);

  // JunOS allows several statements on one line ("group x { peer-as 701;
  // neighbor 4.4.4.4; }"), so context rules scan every word position, not
  // just the line head.
  for (std::size_t w = 0; w < word_at.size(); ++w) {
    // Already-rewritten tokens can never match a context keyword (hash
    // tokens are "h"+hex, mapped values are digits, rewritten strings
    // keep their quotes), so skipping them is behavior-preserving — and
    // required once hashing is batched, since a pending token still
    // shows its original text until the flush patches it.
    if (handled[word_at[w]]) continue;
    const std::string_view keyword = util::ToLowerArena(word(w), arena_);
    const bool has_next = w + 1 < word_at.size();

    // --- free text: description / message strings are comments ---
    if (options_.strip_comments &&
        (keyword == "description" || keyword == "message") && has_next &&
        tokens[word_at[w + 1]].kind == Token::Kind::kString) {
      report_.comment_words_removed +=
          util::SplitWords(Unquote(word(w + 1))).size();
      tokens[word_at[w + 1]].text = "\"\"";
      handled[word_at[w + 1]] = true;
      report_.CountRule("J.strip-free-text");
      continue;
    }

    // --- names that must be hashed even if pass-listed ---
    if ((keyword == "host-name" || keyword == "domain-name") && has_next) {
      ForceHash(line, word_at[w + 1], "J.name-arguments");
      handled[word_at[w + 1]] = true;
      continue;
    }

    // --- ASN-bearing statements ---
    if ((keyword == "peer-as" || keyword == "autonomous-system") &&
        has_next && util::IsAllDigits(word(w + 1))) {
      tokens[word_at[w + 1]].text = arena_.Store(MapAsnText(word(w + 1)));
      handled[word_at[w + 1]] = true;
      report_.CountRule("J.asn-statement");
      continue;
    }

    // `as-path NAME "REGEX";` (a definition carries a quoted regex; a
    // `from as-path NAME;` reference does not).
    if (keyword == "as-path" && w + 2 < word_at.size() &&
        tokens[word_at[w + 2]].kind == Token::Kind::kString) {
      const std::string pattern(Unquote(word(w + 2)));
      try {
        const asn::RewriteResult result =
            state_->aspath_rewriter.Rewrite(pattern, options_.regex_form);
        for (std::uint32_t a : asn::EnumerateLanguage(pattern)->accepted) {
          if (asn::IsPublicAsn(a)) {
            leak_record_.public_asns.insert(std::to_string(a));
          }
        }
        if (result.changed) {
          tokens[word_at[w + 2]].text = Quote(result.pattern, arena_);
          ++report_.aspath_regexps_rewritten;
          report_.CountRule("J.as-path-regex");
        }
      } catch (const regex::ParseError&) {
        // Leave for the leak grep.
      }
      handled[word_at[w + 2]] = true;
      continue;
    }

    // `as-path-prepend "701 701";`
    if (keyword == "as-path-prepend" && has_next &&
        tokens[word_at[w + 1]].kind == Token::Kind::kString) {
      std::vector<std::string> mapped;
      const std::string_view inner = Unquote(word(w + 1));
      for (const auto asn_text : util::SplitWords(inner)) {
        mapped.push_back(MapAsnText(asn_text));
      }
      tokens[word_at[w + 1]].text = Quote(util::Join(mapped, " "), arena_);
      handled[word_at[w + 1]] = true;
      report_.CountRule("J.as-path-prepend");
      continue;
    }

    // `... members <literals | "regex">` (community definitions).
    if (keyword == "members") {
      for (std::size_t v = w + 1; v < word_at.size(); ++v) {
        Token& value = tokens[word_at[v]];
        if (value.kind == Token::Kind::kString) {
          const std::string pattern(Unquote(value.text));
          try {
            const asn::RewriteResult result =
                state_->community_rewriter.Rewrite(pattern, options_.regex_form);
            if (result.changed) {
              value.text = Quote(result.pattern, arena_);
              ++report_.community_regexps_rewritten;
              report_.CountRule("J.community-regex");
            }
          } catch (const regex::ParseError&) {
          }
          handled[word_at[v]] = true;
        } else if (const auto literal = asn::ParseCommunity(value.text)) {
          if (asn::IsPublicAsn(literal->asn)) {
            leak_record_.public_asns.insert(std::to_string(literal->asn));
          }
          value.text = arena_.Store(state_->community.Map(*literal).ToString());
          ++report_.communities_mapped;
          handled[word_at[v]] = true;
          report_.CountRule("J.community-literal");
        }
      }
      continue;
    }
  }

  // --- IP pass over word tokens ---
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (handled[i] || tokens[i].kind != Token::Kind::kWord) continue;
    Token& token = tokens[i];
    const std::size_t slash = token.text.find('/');
    if (slash != std::string_view::npos) {
      const auto address = net::Ipv4Address::Parse(token.text.substr(0, slash));
      std::uint64_t length = 0;
      if (address &&
          util::ParseUint(token.text.substr(slash + 1), 32, length)) {
        if (net::IsSpecial(*address)) {
          handled[i] = true;
          ++report_.addresses_special;
          report_.CountRule("J.special-passthrough");
          continue;
        }
        leak_record_.addresses.insert(address->ToString());
        token.text = arena_.Store(state_->ip.Map(*address).ToString() + "/" +
                                  std::to_string(length));
        handled[i] = true;
        ++report_.addresses_mapped;
        report_.CountRule("J.map-prefixes");
        continue;
      }
    }
    if (const auto address = net::Ipv4Address::Parse(token.text)) {
      if (net::IsSpecial(*address)) {
        handled[i] = true;
        ++report_.addresses_special;
        report_.CountRule("J.special-passthrough");
        continue;
      }
      leak_record_.addresses.insert(address->ToString());
      token.text = arena_.Store(state_->ip.Map(*address).ToString());
      handled[i] = true;
      ++report_.addresses_mapped;
      report_.CountRule("J.map-addresses");
    }
  }

  // --- generic pass-list hashing over remaining words ---
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (handled[i]) continue;
    if (tokens[i].kind != Token::Kind::kWord &&
        tokens[i].kind != Token::Kind::kString) {
      continue;
    }
    const std::string_view value = Unquote(tokens[i].text);
    if (value.empty() || config::IsNonAlphabetic(value)) continue;
    bool all_passed = true;
    for (const config::Segment& segment : config::SegmentWord(value)) {
      if (segment.alpha && !pass_list_.Contains(segment.text)) {
        all_passed = false;
        break;
      }
    }
    if (all_passed) {
      ++report_.words_passed;
      continue;
    }
    leak_record_.hashed_words.insert(std::string(value));
    HashToken(tokens[i]);
    ++report_.words_hashed;
    report_.CountRule("J.passlist-hash");
  }
}

}  // namespace confanon::junos
