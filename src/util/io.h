// Zero-copy file ingest and batched egress.
//
// The paper's headline corpus is 4.3M config lines across 7655 files;
// at that scale the I/O layer — not the anonymization kernels — becomes
// the bottleneck if every file pays two full copies on the way in
// (ifstream -> stringstream -> string) and a per-line string round trip
// on the way out. This header centralizes both directions:
//
//   * MappedFile — a read-only mmap of a regular file. The kernel pages
//     the bytes in on demand and the tokenizer's string_views point
//     straight at the page cache: zero copies end to end.
//   * ReadFileFully — the fallback (and the non-Linux / non-regular-file
//     path): stat for the size, reserve once, read(2) in large chunks.
//     One allocation, one copy — still strictly better than the
//     historical double-copy stream idiom.
//   * ReadFileContents — policy front door: mmap when the file is a
//     regular file large enough to amortize the syscall, single-
//     allocation read otherwise. Returns a FileContents whose backing
//     (mapping or owned string) is shared_ptr-held, so config::ConfigFile
//     can alias it without copying.
//   * BufferedWriter — appends rendered output into one reusable buffer
//     and flushes with large write(2)s; no per-line ostream round trips.
//
// Every reader/writer reports bytes and nanoseconds so callers can feed
// the io.* metrics (io.bytes_read, io.bytes_written, io.read_ns,
// io.write_ns, io.mmap_files — see docs/OBSERVABILITY.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

namespace confanon::util {

/// A read-only memory mapping of a regular file. Move-only; the mapping
/// is released on destruction. Empty files map to an empty view without
/// touching mmap (POSIX forbids zero-length mappings).
class MappedFile {
 public:
  /// Maps `path` read-only. Returns nullopt (and an errno-bearing
  /// message in `error`, when non-null) if the file cannot be opened,
  /// statted, is not a regular file, or the mapping fails.
  static std::optional<MappedFile> Map(const std::string& path,
                                       std::string* error = nullptr);

  MappedFile() = default;
  ~MappedFile();
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  std::string_view view() const {
    return std::string_view(static_cast<const char*>(data_), size_);
  }
  std::size_t size() const { return size_; }

 private:
  void* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;  // false for the empty-file sentinel
};

/// The bytes of one file plus how they got here. `view` aliases
/// `backing`, which keeps either a MappedFile or the owned string alive;
/// copies share the backing.
struct FileContents {
  std::string_view view;
  std::shared_ptr<const void> backing;
  bool mapped = false;        // true when `view` aliases an mmap
  std::uint64_t read_ns = 0;  // open+map / open+read wall time
};

/// Single-allocation whole-file read: stat for the size hint, resize
/// once, then read(2) until EOF (files that grow between stat and read
/// are still read fully). Returns nullopt with an errno-bearing message
/// in `error` on failure. `read_ns`, when non-null, receives the wall
/// time spent in the open/read syscalls.
std::optional<std::string> ReadFileFully(const std::string& path,
                                         std::string* error = nullptr,
                                         std::uint64_t* read_ns = nullptr);

/// Policy front door: mmap regular files of at least `mmap_threshold`
/// bytes (pass 0 to force-map every regular file, SIZE_MAX to disable
/// mapping); everything else — small files, pipes, /dev/stdin, non-Linux
/// builds — goes through ReadFileFully. Returns nullopt with an
/// errno-bearing `error` when both paths fail.
std::optional<FileContents> ReadFileContents(
    const std::string& path, std::string* error = nullptr,
    std::size_t mmap_threshold = 16 * 1024);

/// Batched output writer: Append() into one reusable buffer, flushed
/// with large write(2)s whenever it crosses the flush threshold (and on
/// Close). The buffer is retained across Open() calls, so a steady-state
/// corpus writer performs no heap traffic at all.
class BufferedWriter {
 public:
  /// `flush_bytes` is the buffered high-water mark before an automatic
  /// flush; the buffer reserves this much up front.
  explicit BufferedWriter(std::size_t flush_bytes = 1 << 20);
  ~BufferedWriter();
  BufferedWriter(const BufferedWriter&) = delete;
  BufferedWriter& operator=(const BufferedWriter&) = delete;

  /// Opens (creates/truncates) `path`. Any previously open file is
  /// closed first. Returns false with an errno-bearing `error`.
  bool Open(const std::string& path, std::string* error = nullptr);

  /// Buffers `text`, flushing to the file when the threshold is crossed.
  /// Append never fails; write errors surface on the flush boundary via
  /// ok()/Close().
  void Append(std::string_view text) {
    buffer_.append(text.data(), text.size());
    if (buffer_.size() >= flush_bytes_) Flush();
  }
  void Append(char c) {
    buffer_.push_back(c);
    if (buffer_.size() >= flush_bytes_) Flush();
  }

  /// Writes the buffered bytes now. Returns false (and latches !ok())
  /// when the underlying write fails.
  bool Flush();

  /// Flushes and closes. Returns false if any write or the close failed
  /// since Open; the error message is available via error().
  bool Close();

  /// False once any write has failed; sticky until the next Open.
  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

  /// Bytes handed to write(2) and wall time spent there, across the
  /// writer's lifetime (monotonic; the io.bytes_written / io.write_ns
  /// source).
  std::uint64_t bytes_written() const { return bytes_written_; }
  std::uint64_t write_ns() const { return write_ns_; }

 private:
  int fd_ = -1;
  std::size_t flush_bytes_;
  std::string buffer_;
  bool ok_ = true;
  std::string error_;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t write_ns_ = 0;
};

/// "<verb> <path>: <strerror(errno)>" — the uniform errno-bearing
/// diagnostic used by every reader/writer above.
std::string ErrnoMessage(std::string_view verb, std::string_view path,
                         int errno_value);

}  // namespace confanon::util
