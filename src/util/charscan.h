// Bulk character classification for the tokenizer hot path.
//
// Tokenizing 4.3M config lines means finding, over and over, the next
// blank (space/tab), the next non-blank, and the next alpha/non-alpha
// boundary. Byte-at-a-time loops dominate `core.line_ns`; these
// scanners classify 8 bytes per step with portable SWAR bit tricks
// (exact per-byte masks — no carry bleeds across byte lanes), or 16
// bytes per step on SSE2/NEON hardware when the compiler advertises it.
//
// Dispatch is compile-time: SSE2 or NEON when available, SWAR
// otherwise, and the plain byte-at-a-time scalar path when the build
// defines CONFANON_FORCE_SCALAR_TOKENIZER (one CI leg does, so the
// fallback stays correct — no silent SIMD-only behavior). The `scalar`
// and `swar` namespaces are always compiled so property tests can
// compare every implementation against the reference on the same
// inputs regardless of what the top-level functions dispatch to.
#pragma once

#include <cstddef>
#include <string_view>

namespace confanon::util {

/// Index of the first blank (space or tab) at or after `pos`, or
/// `text.size()` when none remains.
std::size_t FindBlank(std::string_view text, std::size_t pos);

/// Index of the first non-blank at or after `pos`, or `text.size()`.
std::size_t FindNonBlank(std::string_view text, std::size_t pos);

/// Index of the first character at or after `pos` whose ASCII-alpha
/// classification differs from `alpha`, or `text.size()`. This is the
/// segment-boundary scan of the paper's rule T1.
std::size_t FindAlphaBoundary(std::string_view text, std::size_t pos,
                              bool alpha);

/// Name of the implementation the top-level functions dispatch to:
/// "sse2", "neon", "swar" or "scalar".
const char* CharScanImplName();

/// Byte-at-a-time reference implementations (always compiled).
namespace scalar {
std::size_t FindBlank(std::string_view text, std::size_t pos);
std::size_t FindNonBlank(std::string_view text, std::size_t pos);
std::size_t FindAlphaBoundary(std::string_view text, std::size_t pos,
                              bool alpha);
}  // namespace scalar

/// Portable 8-bytes-at-a-time implementations (always compiled).
namespace swar {
std::size_t FindBlank(std::string_view text, std::size_t pos);
std::size_t FindNonBlank(std::string_view text, std::size_t pos);
std::size_t FindAlphaBoundary(std::string_view text, std::size_t pos,
                              bool alpha);
}  // namespace swar

}  // namespace confanon::util
