// Descriptive statistics for experiment reporting.
//
// The paper reports its dataset through order statistics ("25th percentile
// was 183 lines and 90th percentile was 1123 lines", "average of 1.5% ...
// 90th percentile 6%"). The benches reproduce those rows, so we need a small
// percentile/summary helper with well-defined semantics.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace confanon::util {

/// Accumulates samples and answers summary queries. Percentiles use the
/// nearest-rank method on the sorted sample, matching the common operational
/// reading of "the 90th percentile config had N lines".
class Summary {
 public:
  void Add(double sample);
  void AddAll(const std::vector<double>& samples);

  std::size_t Count() const { return samples_.size(); }
  bool Empty() const { return samples_.empty(); }

  double Min() const;
  double Max() const;
  double Mean() const;
  /// Population standard deviation. Returns 0 for fewer than two samples.
  double StdDev() const;
  /// Nearest-rank percentile, p in [0, 100]. Requires a non-empty sample.
  double Percentile(double p) const;
  double Median() const { return Percentile(50); }

  /// One-line human-readable rendering used by the bench tables.
  std::string Describe() const;

 private:
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Histogram over integer-keyed buckets (e.g. subnet prefix lengths).
class Histogram {
 public:
  void Add(int bucket, std::uint64_t count = 1);
  std::uint64_t Get(int bucket) const;
  std::uint64_t Total() const;
  /// Buckets with nonzero counts, ascending.
  std::vector<int> Buckets() const;
  bool operator==(const Histogram& other) const;

  /// L1 distance between two histograms (used by fingerprint matching).
  static std::uint64_t L1Distance(const Histogram& a, const Histogram& b);

 private:
  std::vector<std::pair<int, std::uint64_t>> counts_;  // sorted by bucket
};

}  // namespace confanon::util
