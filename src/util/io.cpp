#include "util/io.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#if defined(__linux__) || defined(__APPLE__)
#include <sys/mman.h>
#define CONFANON_HAVE_MMAP 1
#endif

namespace confanon::util {

namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void SetError(std::string* error, std::string_view verb,
              std::string_view path, int errno_value) {
  if (error != nullptr) *error = ErrnoMessage(verb, path, errno_value);
}

}  // namespace

std::string ErrnoMessage(std::string_view verb, std::string_view path,
                         int errno_value) {
  std::string message;
  message.reserve(verb.size() + path.size() + 40);
  message.append(verb);
  message.append(" ");
  message.append(path);
  message.append(": ");
  message.append(std::strerror(errno_value));
  return message;
}

// --- MappedFile -----------------------------------------------------------

MappedFile::~MappedFile() {
#if defined(CONFANON_HAVE_MMAP)
  if (mapped_ && data_ != nullptr) {
    ::munmap(data_, size_);
  }
#endif
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_), size_(other.size_), mapped_(other.mapped_) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
#if defined(CONFANON_HAVE_MMAP)
    if (mapped_ && data_ != nullptr) ::munmap(data_, size_);
#endif
    data_ = other.data_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
  }
  return *this;
}

std::optional<MappedFile> MappedFile::Map(const std::string& path,
                                          std::string* error) {
#if !defined(CONFANON_HAVE_MMAP)
  SetError(error, "mmap", path, ENOTSUP);
  return std::nullopt;
#else
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    SetError(error, "open", path, errno);
    return std::nullopt;
  }
  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    SetError(error, "stat", path, errno);
    ::close(fd);
    return std::nullopt;
  }
  if (!S_ISREG(st.st_mode)) {
    // Pipes, devices and directories have no stable size to map; the
    // caller falls back to the streaming read.
    SetError(error, "mmap (not a regular file)", path, EINVAL);
    ::close(fd);
    return std::nullopt;
  }
  MappedFile file;
  file.size_ = static_cast<std::size_t>(st.st_size);
  if (file.size_ == 0) {
    // mmap rejects zero-length mappings; an empty view needs no mapping.
    ::close(fd);
    return file;
  }
  void* data = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping holds its own reference to the file; the descriptor is
  // not needed past this point either way.
  ::close(fd);
  if (data == MAP_FAILED) {
    SetError(error, "mmap", path, errno);
    return std::nullopt;
  }
  file.data_ = data;
  file.mapped_ = true;
  return file;
#endif
}

// --- whole-file read ------------------------------------------------------

std::optional<std::string> ReadFileFully(const std::string& path,
                                         std::string* error,
                                         std::uint64_t* read_ns) {
  const std::uint64_t start = NowNs();
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    SetError(error, "open", path, errno);
    return std::nullopt;
  }
  struct stat st = {};
  std::size_t size_hint = 0;
  if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode) && st.st_size > 0) {
    size_hint = static_cast<std::size_t>(st.st_size);
  }
  std::string contents;
  contents.resize(size_hint);
  std::size_t filled = 0;
  for (;;) {
    if (filled == contents.size()) {
      // stat lied (proc files, growing logs): extend in large steps.
      contents.resize(contents.size() + (64 << 10));
    }
    const ssize_t n =
        ::read(fd, contents.data() + filled, contents.size() - filled);
    if (n < 0) {
      if (errno == EINTR) continue;
      SetError(error, "read", path, errno);
      ::close(fd);
      return std::nullopt;
    }
    if (n == 0) break;
    filled += static_cast<std::size_t>(n);
  }
  ::close(fd);
  contents.resize(filled);
  if (read_ns != nullptr) *read_ns = NowNs() - start;
  return contents;
}

std::optional<FileContents> ReadFileContents(const std::string& path,
                                             std::string* error,
                                             std::size_t mmap_threshold) {
#if defined(CONFANON_HAVE_MMAP)
  {
    const std::uint64_t start = NowNs();
    std::string mmap_error;
    auto mapped = MappedFile::Map(path, &mmap_error);
    if (mapped && mapped->size() >= mmap_threshold) {
      FileContents contents;
      auto holder = std::make_shared<MappedFile>(std::move(*mapped));
      contents.view = holder->view();
      contents.backing = std::move(holder);
      contents.mapped = true;
      contents.read_ns = NowNs() - start;
      return contents;
    }
    // Small regular files fall through to the plain read (one tiny
    // allocation beats a page-granular mapping); so do mapping failures
    // of any kind — the read below produces the authoritative error.
  }
#else
  (void)mmap_threshold;
#endif
  std::uint64_t read_ns = 0;
  auto text = ReadFileFully(path, error, &read_ns);
  if (!text) return std::nullopt;
  FileContents contents;
  auto holder = std::make_shared<std::string>(std::move(*text));
  contents.view = *holder;
  contents.backing = std::move(holder);
  contents.read_ns = read_ns;
  return contents;
}

// --- BufferedWriter -------------------------------------------------------

BufferedWriter::BufferedWriter(std::size_t flush_bytes)
    : flush_bytes_(flush_bytes) {
  buffer_.reserve(flush_bytes_);
}

BufferedWriter::~BufferedWriter() {
  Close();
}

bool BufferedWriter::Open(const std::string& path, std::string* error) {
  Close();
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    ok_ = false;
    error_ = ErrnoMessage("open", path, errno);
    if (error != nullptr) *error = error_;
    return false;
  }
  ok_ = true;
  error_.clear();
  buffer_.clear();
  return true;
}

bool BufferedWriter::Flush() {
  if (fd_ < 0 || !ok_) {
    buffer_.clear();
    return ok_;
  }
  const std::uint64_t start = NowNs();
  std::size_t offset = 0;
  while (offset < buffer_.size()) {
    const ssize_t n =
        ::write(fd_, buffer_.data() + offset, buffer_.size() - offset);
    if (n < 0) {
      if (errno == EINTR) continue;
      ok_ = false;
      error_ = ErrnoMessage("write", "output", errno);
      break;
    }
    offset += static_cast<std::size_t>(n);
  }
  bytes_written_ += offset;
  write_ns_ += NowNs() - start;
  buffer_.clear();
  return ok_;
}

bool BufferedWriter::Close() {
  if (fd_ < 0) return ok_;
  Flush();
  if (::close(fd_) != 0 && ok_) {
    ok_ = false;
    error_ = ErrnoMessage("close", "output", errno);
  }
  fd_ = -1;
  return ok_;
}

}  // namespace confanon::util
