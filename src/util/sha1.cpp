#include "util/sha1.h"

#include <cstring>

namespace confanon::util {

namespace {

constexpr std::uint32_t RotL(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

}  // namespace

void Sha1::Reset() {
  h_[0] = 0x67452301u;
  h_[1] = 0xEFCDAB89u;
  h_[2] = 0x98BADCFEu;
  h_[3] = 0x10325476u;
  h_[4] = 0xC3D2E1F0u;
  buffer_len_ = 0;
  total_bits_ = 0;
}

void Sha1::Update(std::string_view data) {
  Update(reinterpret_cast<const std::uint8_t*>(data.data()), data.size());
}

void Sha1::Update(const std::uint8_t* data, std::size_t len) {
  total_bits_ += static_cast<std::uint64_t>(len) * 8;
  while (len > 0) {
    const std::size_t space = 64 - buffer_len_;
    const std::size_t take = len < space ? len : space;
    std::memcpy(buffer_ + buffer_len_, data, take);
    buffer_len_ += take;
    data += take;
    len -= take;
    if (buffer_len_ == 64) {
      ProcessBlock(buffer_);
      buffer_len_ = 0;
    }
  }
}

Sha1::Digest Sha1::Finalize() {
  // Append the 0x80 terminator, zero padding, and the 64-bit big-endian
  // length so the message is a whole number of 512-bit blocks.
  const std::uint64_t bits = total_bits_;
  const std::uint8_t terminator = 0x80;
  Update(&terminator, 1);
  const std::uint8_t zero = 0x00;
  while (buffer_len_ != 56) {
    Update(&zero, 1);
  }
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bits >> (56 - 8 * i));
  }
  // Update() would double-count these bytes in total_bits_, but total_bits_
  // is no longer read after this point, so feeding them through is safe.
  Update(len_bytes, 8);

  Digest digest;
  for (int i = 0; i < 5; ++i) {
    digest[4 * i + 0] = static_cast<std::uint8_t>(h_[i] >> 24);
    digest[4 * i + 1] = static_cast<std::uint8_t>(h_[i] >> 16);
    digest[4 * i + 2] = static_cast<std::uint8_t>(h_[i] >> 8);
    digest[4 * i + 3] = static_cast<std::uint8_t>(h_[i]);
  }
  return digest;
}

void Sha1::ProcessBlock(const std::uint8_t block[64]) {
  std::uint32_t w[80];
  for (int t = 0; t < 16; ++t) {
    w[t] = (static_cast<std::uint32_t>(block[4 * t]) << 24) |
           (static_cast<std::uint32_t>(block[4 * t + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * t + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * t + 3]);
  }
  for (int t = 16; t < 80; ++t) {
    w[t] = RotL(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
  }

  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int t = 0; t < 80; ++t) {
    std::uint32_t f;
    std::uint32_t k;
    if (t < 20) {
      f = (b & c) | ((~b) & d);
      k = 0x5A827999u;
    } else if (t < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (t < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t temp = RotL(a, 5) + f + e + w[t] + k;
    e = d;
    d = c;
    c = RotL(b, 30);
    b = a;
    a = temp;
  }

  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

Sha1::Digest Sha1::Hash(std::string_view data) {
  Sha1 hasher;
  hasher.Update(data);
  return hasher.Finalize();
}

std::string Sha1::HexDigest(std::string_view data) { return ToHex(Hash(data)); }

std::string ToHex(const Sha1::Digest& digest) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(digest.size() * 2);
  for (std::uint8_t byte : digest) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0x0F]);
  }
  return out;
}

Sha1::Digest SaltedDigest(std::string_view salt, std::string_view data) {
  Sha1 hasher;
  hasher.Update(salt);
  const std::uint8_t separator = 0x00;
  hasher.Update(&separator, 1);
  hasher.Update(data);
  return hasher.Finalize();
}

std::string SaltedHexToken(std::string_view salt, std::string_view data,
                           std::size_t hex_chars) {
  std::string hex = ToHex(SaltedDigest(salt, data));
  if (hex_chars < hex.size()) {
    hex.resize(hex_chars);
  }
  return hex;
}

}  // namespace confanon::util
