// SHA-1 message digest (RFC 3174), implemented from scratch.
//
// The paper anonymizes every string not found on the pass-list with a SHA1
// digest salted with a secret chosen by the network owner (Section 4.1 and
// Section 6.1). This module provides the digest primitive plus the salted
// convenience wrappers used by the anonymizer's string hasher.
//
// SHA-1 is used here for fidelity to the paper, not as a recommendation for
// new cryptographic designs.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace confanon::util {

/// Incremental SHA-1 hasher.
///
/// Usage:
///   Sha1 h;
///   h.Update("abc");
///   Sha1::Digest d = h.Finalize();
class Sha1 {
 public:
  using Digest = std::array<std::uint8_t, 20>;

  Sha1() { Reset(); }

  /// Resets the hasher to its initial state so it can be reused.
  void Reset();

  /// Absorbs `data` into the hash state. May be called repeatedly.
  void Update(std::string_view data);
  void Update(const std::uint8_t* data, std::size_t len);

  /// Completes the hash and returns the 160-bit digest. After Finalize the
  /// hasher must be Reset before further use.
  Digest Finalize();

  /// One-shot convenience: digest of `data`.
  static Digest Hash(std::string_view data);

  /// One-shot convenience: lowercase hex encoding of the digest of `data`.
  static std::string HexDigest(std::string_view data);

 private:
  void ProcessBlock(const std::uint8_t block[64]);

  std::uint32_t h_[5];
  std::uint8_t buffer_[64];
  std::size_t buffer_len_ = 0;
  std::uint64_t total_bits_ = 0;
};

/// Lowercase hex encoding of an arbitrary digest.
std::string ToHex(const Sha1::Digest& digest);

/// Salted digest, as used by the anonymizer: SHA1(salt || 0x00 || data).
/// The 0x00 separator prevents ambiguity between salt and data boundaries.
Sha1::Digest SaltedDigest(std::string_view salt, std::string_view data);

/// Salted digest truncated to `hex_chars` hex characters (default 10, which
/// keeps anonymized identifiers short while making collisions across a
/// single network's identifier population negligible).
std::string SaltedHexToken(std::string_view salt, std::string_view data,
                           std::size_t hex_chars = 10);

}  // namespace confanon::util
