#include "util/arena.h"

#include <cstring>

namespace confanon::util {

Arena::Arena(std::size_t block_bytes)
    : block_bytes_(block_bytes == 0 ? 1 : block_bytes) {}

void Arena::NextBlock(std::size_t size) {
  // Reuse a retained block if the next one is big enough; otherwise
  // insert a fresh block here (oversized requests get an exact fit).
  const std::size_t want = size > block_bytes_ ? size : block_bytes_;
  if (!blocks_.empty() && current_ + 1 < blocks_.size() &&
      blocks_[current_ + 1].size >= size) {
    ++current_;
  } else {
    Block block;
    block.data = std::make_unique<char[]>(want);
    block.size = want;
    const std::size_t at = blocks_.empty() ? 0 : current_ + 1;
    blocks_.insert(blocks_.begin() + static_cast<std::ptrdiff_t>(at),
                   std::move(block));
    current_ = at;
  }
  offset_ = 0;
}

char* Arena::Allocate(std::size_t size) {
  if (size == 0) size = 1;
  if (blocks_.empty() || offset_ + size > blocks_[current_].size) {
    NextBlock(size);
  }
  char* out = blocks_[current_].data.get() + offset_;
  offset_ += size;
  bytes_allocated_ += size;
  return out;
}

std::string_view Arena::Store(std::string_view text) {
  if (text.empty()) return std::string_view();
  char* out = Allocate(text.size());
  std::memcpy(out, text.data(), text.size());
  return std::string_view(out, text.size());
}

void Arena::Reset() {
  current_ = 0;
  offset_ = 0;
  ++resets_;
}

std::size_t Arena::bytes_reserved() const {
  std::size_t total = 0;
  for (const Block& block : blocks_) total += block.size;
  return total;
}

std::string_view ToLowerArena(std::string_view text, Arena& arena) {
  std::size_t first_upper = text.size();
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] >= 'A' && text[i] <= 'Z') {
      first_upper = i;
      break;
    }
  }
  if (first_upper == text.size()) return text;  // already lowercase
  char* out = arena.Allocate(text.size());
  std::memcpy(out, text.data(), first_upper);
  for (std::size_t i = first_upper; i < text.size(); ++i) {
    const char c = text[i];
    out[i] = (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
  }
  return std::string_view(out, text.size());
}

}  // namespace confanon::util
