// Batched 4-way SHA-1 for the word-hash hot path.
//
// The anonymizer's salted word hashes are tiny: salt + 0x00 + word almost
// always fits a single 512-bit SHA-1 block (message <= 55 bytes). Hashing
// such messages one at a time leaves 3/4 of a 128-bit vector unit idle;
// this kernel instead runs four independent single-block messages in
// lockstep, one 32-bit word per SIMD lane, so the 80 SHA-1 rounds are paid
// once for four digests. On hardware without SSE2/NEON (or when the build
// defines CONFANON_FORCE_SCALAR_SHA1 — one CI leg does) a scalar
// 4-at-a-time fallback keeps the same interface and bit-exact results.
//
// Dispatch is compile-time, mirroring util/charscan.h: the `sha1x4_scalar`
// namespace is always compiled so property tests can compare it and the
// dispatched implementation against the reference util::Sha1 on the same
// inputs regardless of the build's vector ISA.
#pragma once

#include <cstddef>
#include <string_view>

#include "util/sha1.h"

namespace confanon::util {

class Sha1Batch {
 public:
  /// Number of messages hashed per batch.
  static constexpr std::size_t kLanes = 4;

  /// Longest message that still fits one padded SHA-1 block: 64 bytes
  /// minus the 0x80 terminator and the 8-byte big-endian bit length.
  static constexpr std::size_t kMaxMessageLen = 55;

  /// Digests four independent messages, each at most kMaxMessageLen
  /// bytes, producing bit-identical results to util::Sha1::Hash on each
  /// message individually. Lanes are independent: duplicate, empty, and
  /// dummy messages are all fine (callers with fewer than four live
  /// messages pad with any valid lane and discard its digest).
  static void Hash4(const std::string_view messages[kLanes],
                    Sha1::Digest digests[kLanes]);
};

/// Name of the implementation Sha1Batch::Hash4 dispatches to:
/// "sse2", "neon" or "scalar4".
const char* Sha1BatchImplName();

/// Scalar 4-at-a-time reference implementation (always compiled).
namespace sha1x4_scalar {
void Hash4(const std::string_view messages[Sha1Batch::kLanes],
           Sha1::Digest digests[Sha1Batch::kLanes]);
}  // namespace sha1x4_scalar

}  // namespace confanon::util
