#include "util/rng.h"

#include <cassert>

namespace confanon::util {

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t HashSeed(std::string_view text) {
  // FNV-1a over the bytes, then one SplitMix64 finalization round to spread
  // the entropy across all 64 bits.
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (unsigned char c : text) {
    h ^= c;
    h *= 0x100000001B3ull;
  }
  return SplitMix64(h);
}

namespace {
constexpr std::uint64_t RotL(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // xoshiro's authors recommend seeding the full state from SplitMix64.
  for (auto& word : state_) {
    word = SplitMix64(seed);
  }
}

Rng::Rng(std::uint64_t seed, std::string_view stream_label)
    : Rng(seed ^ HashSeed(stream_label)) {}

std::uint64_t Rng::Next() {
  const std::uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

std::uint64_t Rng::Below(std::uint64_t bound) {
  assert(bound != 0);
  // Classic rejection sampling: discard values in the biased tail.
  const std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod bound
  for (;;) {
    const std::uint64_t r = Next();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

std::int64_t Rng::Between(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(Below(span));
}

double Rng::Unit() {
  // 53 high bits -> uniform double in [0,1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Unit() < p;
}

Rng Rng::Fork(std::string_view label) {
  return Rng(Next() ^ HashSeed(label));
}

}  // namespace confanon::util
