// Bump-pointer arena for per-file string scratch.
//
// The anonymization hot path rewrites a minority of the words on each
// line (hash tokens, mapped addresses, permuted ASNs). Routing those
// short-lived strings through the global heap costs an allocate/free
// pair per rewrite; the arena instead hands out slices of block-sized
// buffers and releases everything at once when the owning worker calls
// Reset() at the next file boundary. Blocks are retained across resets,
// so a steady-state worker performs no heap traffic at all.
//
// Lifetime rule: a view returned by Store()/Allocate() is valid until
// the next Reset(). The engines reset per file, after the file's lines
// have been rendered into owned output strings — so no arena-backed
// view ever outlives its region. Arenas are single-threaded by design:
// each pipeline worker owns its own.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

namespace confanon::util {

class Arena {
 public:
  /// `block_bytes` is the granularity of backing allocations; oversized
  /// requests get a dedicated block of their exact size.
  explicit Arena(std::size_t block_bytes = 16 * 1024);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `size` writable bytes valid until Reset().
  char* Allocate(std::size_t size);

  /// Copies `text` into the arena and returns the stable view.
  std::string_view Store(std::string_view text);

  /// Releases every allocation at once. Blocks are kept for reuse, so
  /// after warm-up a per-file reset touches no allocator.
  void Reset();

  /// Bytes handed out since construction (monotonic, survives Reset —
  /// the delta-synced source for the "arena.bytes" metric).
  std::uint64_t bytes_allocated() const { return bytes_allocated_; }
  /// Number of Reset() calls (the "arena.resets" metric).
  std::uint64_t resets() const { return resets_; }
  /// Bytes reserved in backing blocks (high-water memory footprint).
  std::size_t bytes_reserved() const;

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    std::size_t size = 0;
  };

  /// Makes `current_` point at a block with at least `size` bytes free.
  void NextBlock(std::size_t size);

  std::size_t block_bytes_;
  std::vector<Block> blocks_;
  std::size_t current_ = 0;  // index into blocks_
  std::size_t offset_ = 0;   // fill position within blocks_[current_]
  std::uint64_t bytes_allocated_ = 0;
  std::uint64_t resets_ = 0;
};

/// ASCII-lowercases `text` into `arena` — unless it contains no
/// uppercase letters, in which case the input view is returned as-is
/// (no copy). Config keywords are overwhelmingly already lowercase, so
/// the common case is allocation-free.
std::string_view ToLowerArena(std::string_view text, Arena& arena);

}  // namespace confanon::util
