// Deterministic pseudo-random number generation.
//
// Every randomized component in this repository (the ASN permutation, the
// tree-based IP mapping, the synthetic network generator) must be exactly
// reproducible from a seed: the paper's anonymizer has to produce consistent
// mappings across all files of a network, and our experiments have to be
// rerunnable. We therefore avoid std::mt19937's unspecified seeding paths and
// use a small, well-understood generator pair implemented here:
//   - SplitMix64 for seed expansion (Steele, Lea & Flood 2014)
//   - xoshiro256** for the stream (Blackman & Vigna 2018)
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace confanon::util {

/// SplitMix64 step: mixes a 64-bit state into a well-distributed output and
/// advances the state. Used for seeding and for hashing small keys.
std::uint64_t SplitMix64(std::uint64_t& state);

/// Deterministic 64-bit hash of a string (FNV-1a folded through SplitMix64).
/// Stable across platforms and runs; used to derive sub-seeds from salts.
std::uint64_t HashSeed(std::string_view text);

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator so it can be
/// used with <random> distributions, though the helpers below avoid
/// distribution objects to guarantee cross-platform determinism.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed);
  Rng(std::uint64_t seed, std::string_view stream_label);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }

  result_type operator()() { return Next(); }
  std::uint64_t Next();

  /// Uniform integer in [0, bound). bound must be nonzero. Uses rejection
  /// sampling (Lemire-style) so the result is exactly uniform.
  std::uint64_t Below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t Between(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double Unit();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Chance(double p);

  /// Fisher-Yates shuffle of a vector, deterministic for a given state.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(Below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Picks a uniformly random element (vector must be non-empty).
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    return items[static_cast<std::size_t>(Below(items.size()))];
  }

  /// Derives an independent child generator. The label decorrelates streams
  /// that share a parent seed (e.g. per-router sub-generators).
  Rng Fork(std::string_view label);

 private:
  std::uint64_t state_[4];
};

}  // namespace confanon::util
