#include "util/sha1_batch.h"

#include <cstdint>
#include <cstring>

#if !defined(CONFANON_FORCE_SCALAR_SHA1)
#if defined(__SSE2__)
#include <emmintrin.h>
#elif defined(__ARM_NEON)
#include <arm_neon.h>
#endif
#endif

namespace confanon::util {

namespace {

constexpr std::uint32_t kInit[5] = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu,
                                    0x10325476u, 0xC3D2E1F0u};
constexpr std::uint32_t kRoundK[4] = {0x5A827999u, 0x6ED9EBA1u, 0x8F1BBCDCu,
                                      0xCA62C1D6u};

/// Lays `msg` (at most 55 bytes) out as one padded 512-bit SHA-1 block:
/// message, 0x80 terminator, zero fill, 64-bit big-endian bit length.
void PadBlock(std::string_view msg, std::uint8_t block[64]) {
  const std::size_t len = msg.size();
  if (len != 0) std::memcpy(block, msg.data(), len);
  block[len] = 0x80;
  std::memset(block + len + 1, 0, 56 - len - 1);
  const std::uint64_t bits = static_cast<std::uint64_t>(len) * 8;
  for (int i = 0; i < 8; ++i) {
    block[56 + i] = static_cast<std::uint8_t>(bits >> (56 - 8 * i));
  }
}

inline std::uint32_t LoadBe32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

inline void StoreDigestWord(std::uint32_t h, std::uint8_t* out) {
  out[0] = static_cast<std::uint8_t>(h >> 24);
  out[1] = static_cast<std::uint8_t>(h >> 16);
  out[2] = static_cast<std::uint8_t>(h >> 8);
  out[3] = static_cast<std::uint8_t>(h);
}

constexpr std::uint32_t RotL(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

}  // namespace

namespace sha1x4_scalar {

// Same 80-round schedule as util::Sha1::ProcessBlock, but with every
// variable widened to a 4-element lane array so the compiler can keep the
// four interleaved states in flight (and auto-vectorize where profitable)
// without any ISA-specific intrinsics.
void Hash4(const std::string_view messages[Sha1Batch::kLanes],
           Sha1::Digest digests[Sha1Batch::kLanes]) {
  constexpr std::size_t kLanes = Sha1Batch::kLanes;
  std::uint8_t block[kLanes][64];
  for (std::size_t l = 0; l < kLanes; ++l) PadBlock(messages[l], block[l]);

  std::uint32_t w[80][kLanes];
  for (int t = 0; t < 16; ++t) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      w[t][l] = LoadBe32(block[l] + 4 * t);
    }
  }
  for (int t = 16; t < 80; ++t) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      w[t][l] =
          RotL(w[t - 3][l] ^ w[t - 8][l] ^ w[t - 14][l] ^ w[t - 16][l], 1);
    }
  }

  std::uint32_t a[kLanes], b[kLanes], c[kLanes], d[kLanes], e[kLanes];
  for (std::size_t l = 0; l < kLanes; ++l) {
    a[l] = kInit[0];
    b[l] = kInit[1];
    c[l] = kInit[2];
    d[l] = kInit[3];
    e[l] = kInit[4];
  }

  for (int t = 0; t < 80; ++t) {
    const std::uint32_t k = kRoundK[t / 20];
    for (std::size_t l = 0; l < kLanes; ++l) {
      std::uint32_t f;
      if (t < 20) {
        f = d[l] ^ (b[l] & (c[l] ^ d[l]));  // Ch
      } else if (t < 40 || t >= 60) {
        f = b[l] ^ c[l] ^ d[l];  // Parity
      } else {
        f = (b[l] & c[l]) | (d[l] & (b[l] | c[l]));  // Maj
      }
      const std::uint32_t temp = RotL(a[l], 5) + f + e[l] + w[t][l] + k;
      e[l] = d[l];
      d[l] = c[l];
      c[l] = RotL(b[l], 30);
      b[l] = a[l];
      a[l] = temp;
    }
  }

  for (std::size_t l = 0; l < kLanes; ++l) {
    StoreDigestWord(kInit[0] + a[l], digests[l].data() + 0);
    StoreDigestWord(kInit[1] + b[l], digests[l].data() + 4);
    StoreDigestWord(kInit[2] + c[l], digests[l].data() + 8);
    StoreDigestWord(kInit[3] + d[l], digests[l].data() + 12);
    StoreDigestWord(kInit[4] + e[l], digests[l].data() + 16);
  }
}

}  // namespace sha1x4_scalar

#if !defined(CONFANON_FORCE_SCALAR_SHA1) && defined(__SSE2__)

namespace {

inline __m128i RotL4(__m128i x, int n) {
  return _mm_or_si128(_mm_slli_epi32(x, n), _mm_srli_epi32(x, 32 - n));
}

// One 32-bit SHA-1 state word per 128-bit lane; the message schedule is
// transposed at load so round t's w[t] for all four messages sits in one
// vector. Every round primitive (rotate, Ch/Parity/Maj, modular add) maps
// 1:1 onto an SSE2 integer op, so the 80 rounds run once for 4 digests.
void Hash4Sse2(const std::string_view messages[Sha1Batch::kLanes],
               Sha1::Digest digests[Sha1Batch::kLanes]) {
  std::uint8_t block[Sha1Batch::kLanes][64];
  for (std::size_t l = 0; l < Sha1Batch::kLanes; ++l) {
    PadBlock(messages[l], block[l]);
  }

  __m128i w[80];
  for (int t = 0; t < 16; ++t) {
    w[t] = _mm_set_epi32(static_cast<int>(LoadBe32(block[3] + 4 * t)),
                         static_cast<int>(LoadBe32(block[2] + 4 * t)),
                         static_cast<int>(LoadBe32(block[1] + 4 * t)),
                         static_cast<int>(LoadBe32(block[0] + 4 * t)));
  }
  for (int t = 16; t < 80; ++t) {
    w[t] = RotL4(_mm_xor_si128(_mm_xor_si128(w[t - 3], w[t - 8]),
                               _mm_xor_si128(w[t - 14], w[t - 16])),
                 1);
  }

  __m128i a = _mm_set1_epi32(static_cast<int>(kInit[0]));
  __m128i b = _mm_set1_epi32(static_cast<int>(kInit[1]));
  __m128i c = _mm_set1_epi32(static_cast<int>(kInit[2]));
  __m128i d = _mm_set1_epi32(static_cast<int>(kInit[3]));
  __m128i e = _mm_set1_epi32(static_cast<int>(kInit[4]));

  for (int t = 0; t < 80; ++t) {
    __m128i f;
    if (t < 20) {
      f = _mm_xor_si128(d, _mm_and_si128(b, _mm_xor_si128(c, d)));  // Ch
    } else if (t < 40 || t >= 60) {
      f = _mm_xor_si128(b, _mm_xor_si128(c, d));  // Parity
    } else {
      f = _mm_or_si128(_mm_and_si128(b, c),
                       _mm_and_si128(d, _mm_or_si128(b, c)));  // Maj
    }
    const __m128i k = _mm_set1_epi32(static_cast<int>(kRoundK[t / 20]));
    const __m128i temp =
        _mm_add_epi32(_mm_add_epi32(_mm_add_epi32(RotL4(a, 5), f),
                                    _mm_add_epi32(e, w[t])),
                      k);
    e = d;
    d = c;
    c = RotL4(b, 30);
    b = a;
    a = temp;
  }

  alignas(16) std::uint32_t lanes[5][4];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes[0]),
                  _mm_add_epi32(a, _mm_set1_epi32(static_cast<int>(kInit[0]))));
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes[1]),
                  _mm_add_epi32(b, _mm_set1_epi32(static_cast<int>(kInit[1]))));
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes[2]),
                  _mm_add_epi32(c, _mm_set1_epi32(static_cast<int>(kInit[2]))));
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes[3]),
                  _mm_add_epi32(d, _mm_set1_epi32(static_cast<int>(kInit[3]))));
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes[4]),
                  _mm_add_epi32(e, _mm_set1_epi32(static_cast<int>(kInit[4]))));
  for (std::size_t l = 0; l < Sha1Batch::kLanes; ++l) {
    for (int i = 0; i < 5; ++i) {
      StoreDigestWord(lanes[i][l], digests[l].data() + 4 * i);
    }
  }
}

}  // namespace

void Sha1Batch::Hash4(const std::string_view messages[kLanes],
                      Sha1::Digest digests[kLanes]) {
  Hash4Sse2(messages, digests);
}

const char* Sha1BatchImplName() { return "sse2"; }

#elif !defined(CONFANON_FORCE_SCALAR_SHA1) && defined(__ARM_NEON)

namespace {

template <int N>
inline uint32x4_t RotL4(uint32x4_t x) {
  return vorrq_u32(vshlq_n_u32(x, N), vshrq_n_u32(x, 32 - N));
}

void Hash4Neon(const std::string_view messages[Sha1Batch::kLanes],
               Sha1::Digest digests[Sha1Batch::kLanes]) {
  std::uint8_t block[Sha1Batch::kLanes][64];
  for (std::size_t l = 0; l < Sha1Batch::kLanes; ++l) {
    PadBlock(messages[l], block[l]);
  }

  uint32x4_t w[80];
  for (int t = 0; t < 16; ++t) {
    const std::uint32_t words[4] = {
        LoadBe32(block[0] + 4 * t), LoadBe32(block[1] + 4 * t),
        LoadBe32(block[2] + 4 * t), LoadBe32(block[3] + 4 * t)};
    w[t] = vld1q_u32(words);
  }
  for (int t = 16; t < 80; ++t) {
    w[t] = RotL4<1>(veorq_u32(veorq_u32(w[t - 3], w[t - 8]),
                              veorq_u32(w[t - 14], w[t - 16])));
  }

  uint32x4_t a = vdupq_n_u32(kInit[0]);
  uint32x4_t b = vdupq_n_u32(kInit[1]);
  uint32x4_t c = vdupq_n_u32(kInit[2]);
  uint32x4_t d = vdupq_n_u32(kInit[3]);
  uint32x4_t e = vdupq_n_u32(kInit[4]);

  for (int t = 0; t < 80; ++t) {
    uint32x4_t f;
    if (t < 20) {
      f = veorq_u32(d, vandq_u32(b, veorq_u32(c, d)));  // Ch
    } else if (t < 40 || t >= 60) {
      f = veorq_u32(b, veorq_u32(c, d));  // Parity
    } else {
      f = vorrq_u32(vandq_u32(b, c), vandq_u32(d, vorrq_u32(b, c)));  // Maj
    }
    const uint32x4_t k = vdupq_n_u32(kRoundK[t / 20]);
    const uint32x4_t temp = vaddq_u32(
        vaddq_u32(vaddq_u32(RotL4<5>(a), f), vaddq_u32(e, w[t])), k);
    e = d;
    d = c;
    c = RotL4<30>(b);
    b = a;
    a = temp;
  }

  std::uint32_t lanes[5][4];
  vst1q_u32(lanes[0], vaddq_u32(a, vdupq_n_u32(kInit[0])));
  vst1q_u32(lanes[1], vaddq_u32(b, vdupq_n_u32(kInit[1])));
  vst1q_u32(lanes[2], vaddq_u32(c, vdupq_n_u32(kInit[2])));
  vst1q_u32(lanes[3], vaddq_u32(d, vdupq_n_u32(kInit[3])));
  vst1q_u32(lanes[4], vaddq_u32(e, vdupq_n_u32(kInit[4])));
  for (std::size_t l = 0; l < Sha1Batch::kLanes; ++l) {
    for (int i = 0; i < 5; ++i) {
      StoreDigestWord(lanes[i][l], digests[l].data() + 4 * i);
    }
  }
}

}  // namespace

void Sha1Batch::Hash4(const std::string_view messages[kLanes],
                      Sha1::Digest digests[kLanes]) {
  Hash4Neon(messages, digests);
}

const char* Sha1BatchImplName() { return "neon"; }

#else

void Sha1Batch::Hash4(const std::string_view messages[kLanes],
                      Sha1::Digest digests[kLanes]) {
  sha1x4_scalar::Hash4(messages, digests);
}

const char* Sha1BatchImplName() { return "scalar4"; }

#endif

}  // namespace confanon::util
