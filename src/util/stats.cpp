#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace confanon::util {

void Summary::Add(double sample) {
  samples_.push_back(sample);
  sorted_valid_ = false;
}

void Summary::AddAll(const std::vector<double>& samples) {
  samples_.insert(samples_.end(), samples.begin(), samples.end());
  sorted_valid_ = false;
}

void Summary::EnsureSorted() const {
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Summary::Min() const {
  EnsureSorted();
  if (sorted_.empty()) throw std::logic_error("Summary::Min on empty sample");
  return sorted_.front();
}

double Summary::Max() const {
  EnsureSorted();
  if (sorted_.empty()) throw std::logic_error("Summary::Max on empty sample");
  return sorted_.back();
}

double Summary::Mean() const {
  if (samples_.empty()) {
    throw std::logic_error("Summary::Mean on empty sample");
  }
  double sum = 0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double Summary::StdDev() const {
  if (samples_.size() < 2) return 0.0;
  const double mean = Mean();
  double sum_sq = 0;
  for (double s : samples_) {
    const double d = s - mean;
    sum_sq += d * d;
  }
  return std::sqrt(sum_sq / static_cast<double>(samples_.size()));
}

double Summary::Percentile(double p) const {
  EnsureSorted();
  if (sorted_.empty()) {
    throw std::logic_error("Summary::Percentile on empty sample");
  }
  if (p <= 0) return sorted_.front();
  if (p >= 100) return sorted_.back();
  // Nearest-rank: smallest index k with k/n >= p/100.
  const auto n = static_cast<double>(sorted_.size());
  const auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
  return sorted_[rank == 0 ? 0 : rank - 1];
}

std::string Summary::Describe() const {
  if (samples_.empty()) return "(empty)";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu min=%.1f p25=%.1f p50=%.1f p90=%.1f max=%.1f mean=%.1f",
                Count(), Min(), Percentile(25), Percentile(50), Percentile(90),
                Max(), Mean());
  return buf;
}

void Histogram::Add(int bucket, std::uint64_t count) {
  auto it = std::lower_bound(
      counts_.begin(), counts_.end(), bucket,
      [](const auto& entry, int key) { return entry.first < key; });
  if (it != counts_.end() && it->first == bucket) {
    it->second += count;
  } else {
    counts_.insert(it, {bucket, count});
  }
}

std::uint64_t Histogram::Get(int bucket) const {
  auto it = std::lower_bound(
      counts_.begin(), counts_.end(), bucket,
      [](const auto& entry, int key) { return entry.first < key; });
  if (it != counts_.end() && it->first == bucket) return it->second;
  return 0;
}

std::uint64_t Histogram::Total() const {
  std::uint64_t total = 0;
  for (const auto& [bucket, count] : counts_) total += count;
  return total;
}

std::vector<int> Histogram::Buckets() const {
  std::vector<int> buckets;
  buckets.reserve(counts_.size());
  for (const auto& [bucket, count] : counts_) buckets.push_back(bucket);
  return buckets;
}

bool Histogram::operator==(const Histogram& other) const {
  // Zero-count buckets never exist in counts_, so elementwise equality is
  // exactly multiset equality.
  return counts_ == other.counts_;
}

std::uint64_t Histogram::L1Distance(const Histogram& a, const Histogram& b) {
  std::uint64_t distance = 0;
  std::size_t i = 0, j = 0;
  while (i < a.counts_.size() || j < b.counts_.size()) {
    if (j == b.counts_.size() ||
        (i < a.counts_.size() && a.counts_[i].first < b.counts_[j].first)) {
      distance += a.counts_[i].second;
      ++i;
    } else if (i == a.counts_.size() ||
               b.counts_[j].first < a.counts_[i].first) {
      distance += b.counts_[j].second;
      ++j;
    } else {
      const std::uint64_t x = a.counts_[i].second;
      const std::uint64_t y = b.counts_[j].second;
      distance += x > y ? x - y : y - x;
      ++i;
      ++j;
    }
  }
  return distance;
}

}  // namespace confanon::util
