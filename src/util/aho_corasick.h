// Aho-Corasick multi-pattern string matching.
//
// The leak detector greps every anonymized line for every recorded
// identifier (paper Section 6.1). A naive scan is O(lines x identifiers)
// substring searches — noticeable at corpus scale (the paper's corpus was
// 4.3M lines with thousands of recorded identifiers). This automaton
// finds all occurrences of all patterns in a single pass per line.
//
// Matching is case-insensitive (patterns and text are folded to ASCII
// lowercase), which is what identifier leak scanning needs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace confanon::util {

class AhoCorasick {
 public:
  /// Builds the automaton over `patterns`. Empty patterns are ignored.
  explicit AhoCorasick(const std::vector<std::string>& patterns);

  struct Match {
    std::size_t pattern_index;  // index into the constructor's vector
    std::size_t begin;          // offset of the match in the text
    std::size_t end;            // one past the last matched byte
  };

  /// All matches (including overlapping ones) in `text`, in end-position
  /// order.
  std::vector<Match> FindAll(std::string_view text) const;

  /// FindAll into a caller-owned buffer (cleared first). Per-line scan
  /// loops reuse one buffer instead of allocating a vector per line.
  void FindAllInto(std::string_view text, std::vector<Match>& out) const;

  /// True if any pattern occurs in `text`.
  bool AnyMatch(std::string_view text) const;

  std::size_t PatternCount() const { return pattern_lengths_.size(); }

 private:
  struct Node {
    std::map<unsigned char, std::int32_t> children;
    std::int32_t fail = 0;
    /// Pattern indices ending at this node (including via fail chain
    /// compression: `output_link` points at the nearest ancestor-by-fail
    /// that ends a pattern).
    std::vector<std::size_t> ends_here;
    std::int32_t output_link = -1;
  };

  std::int32_t Step(std::int32_t state, unsigned char c) const;

  std::vector<Node> nodes_;
  std::vector<std::size_t> pattern_lengths_;
};

}  // namespace confanon::util
