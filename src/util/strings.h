// Small string utilities shared across the library.
//
// Config-file processing is overwhelmingly text manipulation; these helpers
// centralize the handful of operations (splitting, trimming, case folding,
// character classification) so the tokenizer and rule engine stay readable.
// All functions are locale-independent: config files are ASCII and the
// classification must not vary with the host locale.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace confanon::util {

/// True for ASCII a-z / A-Z only (locale-independent).
bool IsAsciiAlpha(char c);
/// True for ASCII 0-9 only.
bool IsAsciiDigit(char c);
/// True for ASCII alphanumerics.
bool IsAsciiAlnum(char c);
/// True for ASCII space or tab (config files never use other whitespace
/// significantly; CR is stripped at line level).
bool IsBlank(char c);

/// ASCII-lowercases a string (locale-independent).
std::string ToLower(std::string_view text);

/// Removes leading and trailing blanks (space/tab) and trailing CR.
std::string_view Trim(std::string_view text);

/// Splits on runs of blanks; no empty fields are produced.
std::vector<std::string_view> SplitWords(std::string_view line);

/// Splits on a single character delimiter; empty fields are preserved.
std::vector<std::string_view> Split(std::string_view text, char delimiter);

/// Joins pieces with a separator.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator);
std::string Join(const std::vector<std::string_view>& pieces,
                 std::string_view separator);

/// True if `text` begins with `prefix` / ends with `suffix`.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// True if the string is a non-empty run of ASCII digits (an unsigned
/// decimal integer literal, possibly with leading zeros).
bool IsAllDigits(std::string_view text);

/// Parses a non-negative decimal integer. Returns false on empty input,
/// non-digit characters, or overflow past `max_value`.
bool ParseUint(std::string_view text, std::uint64_t max_value,
               std::uint64_t& out);

}  // namespace confanon::util
