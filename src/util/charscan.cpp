#include "util/charscan.h"

#include <bit>
#include <cstdint>
#include <cstring>

#include "util/strings.h"

#if !defined(CONFANON_FORCE_SCALAR_TOKENIZER)
#if defined(__SSE2__)
#include <emmintrin.h>
#define CONFANON_CHARSCAN_SSE2 1
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
#include <arm_neon.h>
#define CONFANON_CHARSCAN_NEON 1
#endif
#endif

namespace confanon::util {

namespace scalar {

std::size_t FindBlank(std::string_view text, std::size_t pos) {
  while (pos < text.size() && !IsBlank(text[pos])) ++pos;
  return pos;
}

std::size_t FindNonBlank(std::string_view text, std::size_t pos) {
  while (pos < text.size() && IsBlank(text[pos])) ++pos;
  return pos;
}

std::size_t FindAlphaBoundary(std::string_view text, std::size_t pos,
                              bool alpha) {
  while (pos < text.size() && IsAsciiAlpha(text[pos]) == alpha) ++pos;
  return pos;
}

}  // namespace scalar

namespace swar {

namespace {

constexpr std::uint64_t kOnes = 0x0101010101010101ULL;
constexpr std::uint64_t kHigh = 0x8080808080808080ULL;
constexpr std::uint64_t kLow7 = 0x7f7f7f7f7f7f7f7fULL;

inline std::uint64_t Load64(const char* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// Exact per-byte zero detector: 0x80 in every byte lane that is zero,
/// 0x00 elsewhere. Unlike the classic `(v - kOnes) & ~v & kHigh` trick,
/// no borrow crosses byte lanes, so *every* lane is exact — required
/// because the scanners combine and invert these masks.
inline std::uint64_t ZeroBytes(std::uint64_t v) {
  return ~(((v & kLow7) + kLow7) | v | kLow7);
}

inline std::uint64_t EqBytes(std::uint64_t v, char c) {
  return ZeroBytes(v ^ (kOnes * static_cast<std::uint8_t>(c)));
}

/// 0x80 per byte lane holding space or tab.
inline std::uint64_t BlankMask(std::uint64_t v) {
  return EqBytes(v, ' ') | EqBytes(v, '\t');
}

/// 0x80 per byte lane holding an ASCII letter. Case-fold with |0x20,
/// then an exact in-lane range check against ['a','z']; lanes with the
/// top bit set (non-ASCII) are excluded explicitly.
inline std::uint64_t AlphaMask(std::uint64_t v) {
  const std::uint64_t low7 = (v | (kOnes * 0x20)) & kLow7;
  const std::uint64_t ge_a = (low7 + kOnes * (0x80 - 'a')) & kHigh;
  const std::uint64_t gt_z = (low7 + kOnes * (0x7f - 'z')) & kHigh;
  return ge_a & ~gt_z & ~(v & kHigh);
}

/// Byte index of the lowest set lane in a 0x80-per-lane mask.
inline std::size_t FirstLane(std::uint64_t mask) {
  if constexpr (std::endian::native == std::endian::little) {
    return static_cast<std::size_t>(std::countr_zero(mask)) >> 3;
  } else {
    return static_cast<std::size_t>(std::countl_zero(mask)) >> 3;
  }
}

template <typename MaskFn, typename ScalarFn>
inline std::size_t Scan(std::string_view text, std::size_t pos, MaskFn mask_of,
                        ScalarFn scalar_tail) {
  const char* data = text.data();
  const std::size_t size = text.size();
  while (pos + 8 <= size) {
    const std::uint64_t mask = mask_of(Load64(data + pos));
    if (mask != 0) return pos + FirstLane(mask);
    pos += 8;
  }
  return scalar_tail(text, pos);
}

}  // namespace

std::size_t FindBlank(std::string_view text, std::size_t pos) {
  return Scan(
      text, pos, [](std::uint64_t v) { return BlankMask(v); },
      scalar::FindBlank);
}

std::size_t FindNonBlank(std::string_view text, std::size_t pos) {
  return Scan(
      text, pos, [](std::uint64_t v) { return ~BlankMask(v) & kHigh; },
      scalar::FindNonBlank);
}

std::size_t FindAlphaBoundary(std::string_view text, std::size_t pos,
                              bool alpha) {
  if (alpha) {
    return Scan(
        text, pos, [](std::uint64_t v) { return ~AlphaMask(v) & kHigh; },
        [](std::string_view t, std::size_t p) {
          return scalar::FindAlphaBoundary(t, p, true);
        });
  }
  return Scan(
      text, pos, [](std::uint64_t v) { return AlphaMask(v); },
      [](std::string_view t, std::size_t p) {
        return scalar::FindAlphaBoundary(t, p, false);
      });
}

}  // namespace swar

#if defined(CONFANON_CHARSCAN_SSE2)

namespace {

/// 16-bytes-at-a-time scans; the movemask bit index is the byte index.
template <typename MaskFn, typename ScalarFn>
inline std::size_t ScanSse2(std::string_view text, std::size_t pos,
                            MaskFn mask_of, ScalarFn scalar_tail) {
  const char* data = text.data();
  const std::size_t size = text.size();
  while (pos + 16 <= size) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + pos));
    const int mask = _mm_movemask_epi8(mask_of(v));
    if (mask != 0) {
      return pos + static_cast<std::size_t>(
                       std::countr_zero(static_cast<unsigned>(mask)));
    }
    pos += 16;
  }
  return scalar_tail(text, pos);
}

inline __m128i BlankMask128(__m128i v) {
  return _mm_or_si128(_mm_cmpeq_epi8(v, _mm_set1_epi8(' ')),
                      _mm_cmpeq_epi8(v, _mm_set1_epi8('\t')));
}

inline __m128i AlphaMask128(__m128i v) {
  // Case-fold, then signed compares: non-ASCII lanes are negative and
  // fail the >= 'a' side, so they classify as non-alpha.
  const __m128i fold = _mm_or_si128(v, _mm_set1_epi8(0x20));
  const __m128i ge_a = _mm_cmpgt_epi8(fold, _mm_set1_epi8('a' - 1));
  const __m128i le_z = _mm_cmplt_epi8(fold, _mm_set1_epi8('z' + 1));
  return _mm_and_si128(ge_a, le_z);
}

inline __m128i Not128(__m128i m) {
  return _mm_xor_si128(m, _mm_set1_epi8(static_cast<char>(0xFF)));
}

}  // namespace

std::size_t FindBlank(std::string_view text, std::size_t pos) {
  return ScanSse2(text, pos, BlankMask128, scalar::FindBlank);
}

std::size_t FindNonBlank(std::string_view text, std::size_t pos) {
  return ScanSse2(
      text, pos, [](__m128i v) { return Not128(BlankMask128(v)); },
      scalar::FindNonBlank);
}

std::size_t FindAlphaBoundary(std::string_view text, std::size_t pos,
                              bool alpha) {
  if (alpha) {
    return ScanSse2(
        text, pos, [](__m128i v) { return Not128(AlphaMask128(v)); },
        [](std::string_view t, std::size_t p) {
          return scalar::FindAlphaBoundary(t, p, true);
        });
  }
  return ScanSse2(text, pos, AlphaMask128,
                  [](std::string_view t, std::size_t p) {
                    return scalar::FindAlphaBoundary(t, p, false);
                  });
}

const char* CharScanImplName() { return "sse2"; }

#elif defined(CONFANON_CHARSCAN_NEON)

namespace {

/// NEON has no movemask; narrow each 16x8 lane mask to a 64-bit value
/// with 4 bits per lane (the shrn-by-4 idiom) and count trailing zeros.
template <typename MaskFn, typename ScalarFn>
inline std::size_t ScanNeon(std::string_view text, std::size_t pos,
                            MaskFn mask_of, ScalarFn scalar_tail) {
  const char* data = text.data();
  const std::size_t size = text.size();
  while (pos + 16 <= size) {
    const uint8x16_t v =
        vld1q_u8(reinterpret_cast<const std::uint8_t*>(data + pos));
    const uint8x16_t m = mask_of(v);
    const std::uint64_t bits = vget_lane_u64(
        vreinterpret_u64_u8(vshrn_n_u16(vreinterpretq_u16_u8(m), 4)), 0);
    if (bits != 0) {
      return pos +
             (static_cast<std::size_t>(std::countr_zero(bits)) >> 2);
    }
    pos += 16;
  }
  return scalar_tail(text, pos);
}

inline uint8x16_t BlankMaskNeon(uint8x16_t v) {
  return vorrq_u8(vceqq_u8(v, vdupq_n_u8(' ')),
                  vceqq_u8(v, vdupq_n_u8('\t')));
}

inline uint8x16_t AlphaMaskNeon(uint8x16_t v) {
  // Unsigned range check on the case-folded value; non-ASCII lanes
  // (>= 0x80) fold to >= 0xA0 and fail the <= 'z' side.
  const uint8x16_t fold = vorrq_u8(v, vdupq_n_u8(0x20));
  const uint8x16_t ge_a = vcgeq_u8(fold, vdupq_n_u8('a'));
  const uint8x16_t le_z = vcleq_u8(fold, vdupq_n_u8('z'));
  return vandq_u8(ge_a, le_z);
}

}  // namespace

std::size_t FindBlank(std::string_view text, std::size_t pos) {
  return ScanNeon(text, pos, BlankMaskNeon, scalar::FindBlank);
}

std::size_t FindNonBlank(std::string_view text, std::size_t pos) {
  return ScanNeon(
      text, pos, [](uint8x16_t v) { return vmvnq_u8(BlankMaskNeon(v)); },
      scalar::FindNonBlank);
}

std::size_t FindAlphaBoundary(std::string_view text, std::size_t pos,
                              bool alpha) {
  if (alpha) {
    return ScanNeon(
        text, pos, [](uint8x16_t v) { return vmvnq_u8(AlphaMaskNeon(v)); },
        [](std::string_view t, std::size_t p) {
          return scalar::FindAlphaBoundary(t, p, true);
        });
  }
  return ScanNeon(text, pos, AlphaMaskNeon,
                  [](std::string_view t, std::size_t p) {
                    return scalar::FindAlphaBoundary(t, p, false);
                  });
}

const char* CharScanImplName() { return "neon"; }

#elif defined(CONFANON_FORCE_SCALAR_TOKENIZER)

std::size_t FindBlank(std::string_view text, std::size_t pos) {
  return scalar::FindBlank(text, pos);
}

std::size_t FindNonBlank(std::string_view text, std::size_t pos) {
  return scalar::FindNonBlank(text, pos);
}

std::size_t FindAlphaBoundary(std::string_view text, std::size_t pos,
                              bool alpha) {
  return scalar::FindAlphaBoundary(text, pos, alpha);
}

const char* CharScanImplName() { return "scalar"; }

#else

std::size_t FindBlank(std::string_view text, std::size_t pos) {
  return swar::FindBlank(text, pos);
}

std::size_t FindNonBlank(std::string_view text, std::size_t pos) {
  return swar::FindNonBlank(text, pos);
}

std::size_t FindAlphaBoundary(std::string_view text, std::size_t pos,
                              bool alpha) {
  return swar::FindAlphaBoundary(text, pos, alpha);
}

const char* CharScanImplName() { return "swar"; }

#endif

}  // namespace confanon::util
