#include "util/strings.h"

namespace confanon::util {

bool IsAsciiAlpha(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

bool IsAsciiDigit(char c) { return c >= '0' && c <= '9'; }

bool IsAsciiAlnum(char c) { return IsAsciiAlpha(c) || IsAsciiDigit(c); }

bool IsBlank(char c) { return c == ' ' || c == '\t'; }

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') {
      c = static_cast<char>(c - 'A' + 'a');
    }
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (end > begin && (text[end - 1] == '\r' || text[end - 1] == '\n' ||
                         IsBlank(text[end - 1]))) {
    --end;
  }
  while (begin < end && IsBlank(text[begin])) {
    ++begin;
  }
  return text.substr(begin, end - begin);
}

std::vector<std::string_view> SplitWords(std::string_view line) {
  std::vector<std::string_view> words;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && IsBlank(line[i])) ++i;
    const std::size_t start = i;
    while (i < line.size() && !IsBlank(line[i])) ++i;
    if (i > start) {
      words.push_back(line.substr(start, i - start));
    }
  }
  return words;
}

std::vector<std::string_view> Split(std::string_view text, char delimiter) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delimiter) {
      fields.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return fields;
}

namespace {
template <typename Piece>
std::string JoinImpl(const std::vector<Piece>& pieces,
                     std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(pieces[i]);
  }
  return out;
}
}  // namespace

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view separator) {
  return JoinImpl(pieces, separator);
}

std::string Join(const std::vector<std::string_view>& pieces,
                 std::string_view separator) {
  return JoinImpl(pieces, separator);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool IsAllDigits(std::string_view text) {
  if (text.empty()) return false;
  for (char c : text) {
    if (!IsAsciiDigit(c)) return false;
  }
  return true;
}

bool ParseUint(std::string_view text, std::uint64_t max_value,
               std::uint64_t& out) {
  if (!IsAllDigits(text)) return false;
  std::uint64_t value = 0;
  for (char c : text) {
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (digit > max_value || value > (max_value - digit) / 10) return false;
    value = value * 10 + digit;
  }
  out = value;
  return true;
}

}  // namespace confanon::util
