#include "util/aho_corasick.h"

#include <deque>

namespace confanon::util {

namespace {

unsigned char Fold(char c) {
  if (c >= 'A' && c <= 'Z') return static_cast<unsigned char>(c - 'A' + 'a');
  return static_cast<unsigned char>(c);
}

}  // namespace

AhoCorasick::AhoCorasick(const std::vector<std::string>& patterns) {
  nodes_.emplace_back();  // root
  pattern_lengths_.resize(patterns.size(), 0);

  // Trie construction.
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    const std::string& pattern = patterns[p];
    pattern_lengths_[p] = pattern.size();
    if (pattern.empty()) continue;
    std::int32_t node = 0;
    for (char c : pattern) {
      const unsigned char folded = Fold(c);
      auto it = nodes_[static_cast<std::size_t>(node)].children.find(folded);
      if (it == nodes_[static_cast<std::size_t>(node)].children.end()) {
        nodes_.emplace_back();
        const auto fresh = static_cast<std::int32_t>(nodes_.size() - 1);
        nodes_[static_cast<std::size_t>(node)].children.emplace(folded, fresh);
        node = fresh;
      } else {
        node = it->second;
      }
    }
    nodes_[static_cast<std::size_t>(node)].ends_here.push_back(p);
  }

  // BFS to set failure and output links.
  std::deque<std::int32_t> queue;
  for (const auto& [c, child] : nodes_[0].children) {
    nodes_[static_cast<std::size_t>(child)].fail = 0;
    queue.push_back(child);
  }
  while (!queue.empty()) {
    const std::int32_t node = queue.front();
    queue.pop_front();
    const std::int32_t fail = nodes_[static_cast<std::size_t>(node)].fail;
    // Output link: nearest fail-ancestor that ends a pattern.
    const Node& fail_node = nodes_[static_cast<std::size_t>(fail)];
    nodes_[static_cast<std::size_t>(node)].output_link =
        fail_node.ends_here.empty() ? fail_node.output_link : fail;

    for (const auto& [c, child] : nodes_[static_cast<std::size_t>(node)]
                                      .children) {
      // Follow fail links to find the longest proper suffix state with a
      // transition on c.
      std::int32_t probe = fail;
      for (;;) {
        const auto it =
            nodes_[static_cast<std::size_t>(probe)].children.find(c);
        if (it != nodes_[static_cast<std::size_t>(probe)].children.end() &&
            it->second != child) {
          nodes_[static_cast<std::size_t>(child)].fail = it->second;
          break;
        }
        if (probe == 0) {
          nodes_[static_cast<std::size_t>(child)].fail = 0;
          break;
        }
        probe = nodes_[static_cast<std::size_t>(probe)].fail;
      }
      queue.push_back(child);
    }
  }
}

std::int32_t AhoCorasick::Step(std::int32_t state, unsigned char c) const {
  for (;;) {
    const auto it = nodes_[static_cast<std::size_t>(state)].children.find(c);
    if (it != nodes_[static_cast<std::size_t>(state)].children.end()) {
      return it->second;
    }
    if (state == 0) return 0;
    state = nodes_[static_cast<std::size_t>(state)].fail;
  }
}

std::vector<AhoCorasick::Match> AhoCorasick::FindAll(
    std::string_view text) const {
  std::vector<Match> matches;
  FindAllInto(text, matches);
  return matches;
}

void AhoCorasick::FindAllInto(std::string_view text,
                              std::vector<Match>& out) const {
  out.clear();
  std::int32_t state = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    state = Step(state, Fold(text[i]));
    for (std::int32_t node = state; node != -1;
         node = nodes_[static_cast<std::size_t>(node)].output_link) {
      for (std::size_t p : nodes_[static_cast<std::size_t>(node)].ends_here) {
        out.push_back(Match{p, i + 1 - pattern_lengths_[p], i + 1});
      }
    }
  }
}

bool AhoCorasick::AnyMatch(std::string_view text) const {
  std::int32_t state = 0;
  for (char c : text) {
    state = Step(state, Fold(c));
    if (!nodes_[static_cast<std::size_t>(state)].ends_here.empty() ||
        nodes_[static_cast<std::size_t>(state)].output_link != -1) {
      return true;
    }
  }
  return false;
}

}  // namespace confanon::util
