// One-stop observability wiring for anonymization engines.
//
// The three observability substrates (metrics registry, Chrome-trace
// sink, provenance log) used to be installed through three separate
// setters on every engine. Hooks bundles them into a single value that
// travels through one call (`install_hooks`), so call sites — and the
// corpus pipeline, which re-installs hooks on every worker engine —
// configure observability atomically instead of in three steps.
//
// All pointers are optional and non-owning; a default-constructed Hooks
// disables observability entirely. The pointed-to objects must outlive
// every engine they are installed on.
#pragma once

namespace confanon::obs {

class MetricsRegistry;
class TraceSink;
class ProvenanceLog;
class PhaseProfiler;

struct Hooks {
  /// Counters/gauges/latency histograms (see metrics.h). Thread-safe:
  /// multiple pipeline workers may share one registry.
  MetricsRegistry* metrics = nullptr;
  /// Chrome-trace span sink (see trace.h). JsonlTraceSink serializes
  /// writes internally, so workers may share one sink.
  TraceSink* trace = nullptr;
  /// Per-line rule-firing record (see provenance.h). Single-writer: the
  /// pipeline gives each file its own log and merges in corpus order.
  ProvenanceLog* provenance = nullptr;
  /// Phase window aggregator (see profiler.h). When set, the pipeline
  /// brackets its sequential phases so the profiler can attribute wall
  /// time and hardware counters per phase. Usually the same object as
  /// `trace` (PhaseProfiler is a TraceSink), but kept separate so a
  /// plain JSONL trace can coexist with phase accounting.
  PhaseProfiler* profiler = nullptr;

  bool any() const {
    return metrics != nullptr || trace != nullptr || provenance != nullptr ||
           profiler != nullptr;
  }
};

}  // namespace confanon::obs
