#include "obs/trace.h"

#include "obs/json.h"
#include "obs/metrics.h"

namespace confanon::obs {

JsonlTraceSink::JsonlTraceSink(std::ostream& out) : out_(out) {
  out_ << "[\n";
}

JsonlTraceSink::~JsonlTraceSink() { Close(); }

void JsonlTraceSink::Close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) return;
  closed_ = true;
  out_ << "{}]\n";
  out_.flush();
}

void JsonlTraceSink::Write(const TraceEvent& event) {
  JsonWriter json;
  json.BeginObject();
  json.Key("name").Value(event.name);
  json.Key("cat").Value(event.category);
  json.Key("ph").Value(std::string_view(&event.phase, 1));
  json.Key("ts").Value(event.ts_us);
  if (event.phase == 'X') {
    json.Key("dur").Value(event.dur_us);
  }
  json.Key("pid").Value(std::int64_t{1});
  json.Key("tid").Value(std::int64_t{1});
  if (event.phase == 'C') {
    // Counter events carry their samples in args.
    json.Key("args").BeginObject();
    for (const auto& [key, value] : event.num_args) {
      json.Key(key).Value(value);
    }
    json.EndObject();
  } else if (!event.str_args.empty() || !event.num_args.empty()) {
    json.Key("args").BeginObject();
    for (const auto& [key, value] : event.str_args) {
      json.Key(key).Value(value);
    }
    for (const auto& [key, value] : event.num_args) {
      json.Key(key).Value(value);
    }
    json.EndObject();
  }
  json.EndObject();
  std::lock_guard<std::mutex> lock(mutex_);
  out_ << json.str() << ",\n";
  ++event_count_;
}

void Tracer::Emit(TraceEvent event) {
  if (sink_ == nullptr) return;
  sink_->Write(event);
}

std::chrono::steady_clock::time_point Tracer::ProcessEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

void Tracer::Complete(std::string name, std::int64_t ts_us,
                      std::int64_t dur_us, std::string_view phase) {
  if (sink_ == nullptr) return;
  TraceEvent event;
  event.name = std::move(name);
  event.phase = 'X';
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  if (!phase.empty()) {
    event.str_args.emplace_back("phase", std::string(phase));
  }
  sink_->Write(event);
}

void Tracer::Instant(std::string name) {
  if (sink_ == nullptr) return;
  TraceEvent event;
  event.name = std::move(name);
  event.phase = 'i';
  event.ts_us = NowUs();
  sink_->Write(event);
}

void Tracer::CounterSample(std::string name, std::int64_t value) {
  if (sink_ == nullptr) return;
  TraceEvent event;
  event.name = std::move(name);
  event.phase = 'C';
  event.ts_us = NowUs();
  event.num_args.emplace_back("value", value);
  sink_->Write(event);
}

Tracer& GlobalTracer() {
  static Tracer tracer;
  return tracer;
}

void InstallGlobalTraceSink(TraceSink* sink) { GlobalTracer().set_sink(sink); }

ScopedTimer::~ScopedTimer() {
  if (tracer_ == nullptr && histogram_ == nullptr) return;
  const auto end = std::chrono::steady_clock::now();
  const std::int64_t elapsed_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_)
          .count();
  if (histogram_ != nullptr) {
    histogram_->Record(static_cast<std::uint64_t>(elapsed_ns < 0 ? 0 : elapsed_ns));
  }
  if (tracer_ != nullptr) {
    TraceEvent event;
    event.name = std::move(name_);
    event.phase = 'X';
    event.ts_us = start_us_;
    // Sub-microsecond spans still get a visible 1us sliver.
    event.dur_us = std::max<std::int64_t>(elapsed_ns / 1000, 1);
    event.str_args = std::move(str_args_);
    event.num_args = std::move(num_args_);
    tracer_->Emit(std::move(event));
  }
}

}  // namespace confanon::obs
