// Minimal streaming JSON writer for the observability outputs.
//
// The instrumentation layer emits three machine-readable artifacts —
// Chrome-trace JSONL events, RunMetrics snapshots, and the anonymization
// run report — and all of them go through this writer so escaping and
// number formatting are decided once. No DOM, no allocation beyond the
// output string: callers open objects/arrays, write keyed values, close.
// The writer tracks nesting so commas are inserted correctly.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace confanon::obs {

/// Escapes `text` per RFC 8259 (quotes, backslash, control characters)
/// and returns it wrapped in double quotes.
std::string JsonQuote(std::string_view text);

class JsonWriter {
 public:
  JsonWriter() { out_.reserve(256); }

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Starts a keyed member inside an object; follow with a value or a
  /// Begin{Object,Array} call.
  JsonWriter& Key(std::string_view key);

  JsonWriter& Value(std::string_view text);
  JsonWriter& Value(const char* text) { return Value(std::string_view(text)); }
  JsonWriter& Value(std::uint64_t value);
  JsonWriter& Value(std::int64_t value);
  JsonWriter& Value(std::uint32_t v) { return Value(std::uint64_t{v}); }
  JsonWriter& Value(std::int32_t v) { return Value(std::int64_t{v}); }
  JsonWriter& Value(double value);
  JsonWriter& Value(bool value);
  JsonWriter& Null();

  /// Splices a pre-rendered JSON fragment in value position (used to embed
  /// one artifact inside another, e.g. a report inside a bench summary).
  JsonWriter& Raw(std::string_view json);

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void BeforeValue();

  std::string out_;
  /// One char per nesting level: 'o' = object, 'a' = array.
  std::string stack_;
  bool need_comma_ = false;
  bool after_key_ = false;
};

}  // namespace confanon::obs
