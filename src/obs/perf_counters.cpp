#include "obs/perf_counters.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#endif

namespace confanon::obs {

PerfSample PerfSample::Since(const PerfSample& earlier) const {
  PerfSample d;
  d.valid = valid && earlier.valid;
  if (!d.valid) return d;
  auto sub = [](std::uint64_t a, std::uint64_t b) { return a >= b ? a - b : 0; };
  d.cycles = sub(cycles, earlier.cycles);
  d.instructions = sub(instructions, earlier.instructions);
  d.branch_misses = sub(branch_misses, earlier.branch_misses);
  d.cache_misses = sub(cache_misses, earlier.cache_misses);
  d.time_enabled_ns = sub(time_enabled_ns, earlier.time_enabled_ns);
  d.time_running_ns = sub(time_running_ns, earlier.time_running_ns);
  return d;
}

#if defined(__linux__)

namespace {

/// Opens one hardware event for this process + inherited threads.
/// Independent fds rather than a kernel fd-group: inherit=1 (required to
/// count pipeline worker threads) is incompatible with
/// PERF_FORMAT_GROUP reads, so the "group" is an API-level bundle.
int OpenHardwareEvent(std::uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof attr);
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof attr;
  attr.config = config;
  attr.disabled = 0;  // count from open; callers difference readings
  attr.inherit = 1;   // follow threads spawned after open (worker pool)
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format =
      PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(
      ::syscall(SYS_perf_event_open, &attr, 0 /* this process */,
                -1 /* any cpu */, -1 /* no group: see above */, 0));
}

/// read() layout under the two time fields: value, time_enabled,
/// time_running.
struct ReadBuffer {
  std::uint64_t value;
  std::uint64_t time_enabled;
  std::uint64_t time_running;
};

bool ReadEvent(int fd, ReadBuffer& out) {
  if (fd < 0) return false;
  const ssize_t n = ::read(fd, &out, sizeof out);
  return n == static_cast<ssize_t>(sizeof out);
}

}  // namespace

bool PerfCounterGroup::Open() {
  Close();
  static constexpr std::uint64_t kConfigs[kEvents] = {
      PERF_COUNT_HW_CPU_CYCLES, PERF_COUNT_HW_INSTRUCTIONS,
      PERF_COUNT_HW_BRANCH_MISSES, PERF_COUNT_HW_CACHE_MISSES};
  for (int i = 0; i < kEvents; ++i) {
    fds_[i] = OpenHardwareEvent(kConfigs[i]);
  }
  if (fds_[0] < 0 || fds_[1] < 0) {
    Close();  // cycles+instructions are the minimum useful set
    return false;
  }
  return true;
}

void PerfCounterGroup::Close() {
  for (int& fd : fds_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

PerfCounterGroup::~PerfCounterGroup() { Close(); }

PerfSample PerfCounterGroup::Read() const {
  PerfSample sample;
  if (!ok()) return sample;
  ReadBuffer buf{};
  if (!ReadEvent(fds_[0], buf)) return sample;
  sample.cycles = buf.value;
  sample.time_enabled_ns = buf.time_enabled;
  sample.time_running_ns = buf.time_running;
  if (!ReadEvent(fds_[1], buf)) return sample;
  sample.instructions = buf.value;
  if (ReadEvent(fds_[2], buf)) sample.branch_misses = buf.value;
  if (ReadEvent(fds_[3], buf)) sample.cache_misses = buf.value;
  sample.valid = true;
  return sample;
}

bool PerfCounterGroup::Supported() {
  static const bool supported = [] {
    const int fd = OpenHardwareEvent(PERF_COUNT_HW_INSTRUCTIONS);
    if (fd < 0) return false;
    ::close(fd);
    return true;
  }();
  return supported;
}

#else  // !__linux__: permanent null implementation

bool PerfCounterGroup::Open() { return false; }
void PerfCounterGroup::Close() {}
PerfCounterGroup::~PerfCounterGroup() = default;
PerfSample PerfCounterGroup::Read() const { return {}; }
bool PerfCounterGroup::Supported() { return false; }

#endif

}  // namespace confanon::obs
