// Telemetry export: point-in-time registry snapshots, snapshot
// differencing, and Prometheus text exposition.
//
// The metrics registry (metrics.h) was built for one-shot batch runs —
// freeze everything at exit, write BENCH_perf.json, done. A long-running
// service (the ROADMAP's `confanond`) instead needs the registry to be
// observable *while it runs*: scrape-safe snapshots that can be ordered
// (sequence numbers), turned into rates (differencing), and rendered in
// the one format every metrics stack already ingests (Prometheus text
// exposition, content type text/plain; version=0.0.4).
//
// Everything here reads the registry through MetricsRegistry::Snapshot(),
// which is safe to call concurrently with writers, so a scrape never
// blocks the anonymization hot path.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace confanon::obs {

/// One frozen view of a registry plus the bookkeeping a scraper needs to
/// order and difference it: a monotonic per-exporter sequence number and
/// both clock readings (wall for display, steady for rate math).
struct MetricsSnapshot {
  std::uint64_t sequence = 0;
  std::int64_t wall_ms = 0;   // milliseconds since the Unix epoch
  std::int64_t mono_ns = 0;   // steady-clock nanoseconds (rate denominator)
  RunMetrics metrics;
};

/// Stamps registry snapshots with monotonically increasing sequence
/// numbers. Thread-safe: concurrent Capture() calls get distinct,
/// strictly ordered sequence numbers (though their registry views may
/// interleave — compare sequences, not contents, to order them).
class SnapshotExporter {
 public:
  explicit SnapshotExporter(const MetricsRegistry* registry)
      : registry_(registry) {}

  MetricsSnapshot Capture();
  std::uint64_t last_sequence() const {
    return sequence_.load(std::memory_order_relaxed);
  }

 private:
  const MetricsRegistry* registry_;
  std::atomic<std::uint64_t> sequence_{0};
};

/// The change between two snapshots of the same registry, as a service
/// dashboard wants it: counter deltas and per-second rates, gauge
/// changes, and bucket-wise histogram deltas (the samples recorded in
/// the interval). Counters that went backwards (registry replaced,
/// process restarted) clamp to zero rather than going negative.
struct SnapshotDelta {
  double interval_s = 0.0;
  std::map<std::string, std::uint64_t> counter_deltas;
  std::map<std::string, double> counter_rates;  // deltas / interval_s
  std::map<std::string, std::int64_t> gauge_changes;
  std::map<std::string, HistogramSnapshot> histogram_deltas;
};

/// Differences `later` against `earlier`. Instruments present only in
/// `later` (registered mid-interval) are treated as starting from zero.
SnapshotDelta DiffSnapshots(const MetricsSnapshot& earlier,
                            const MetricsSnapshot& later);

/// Maps a registry instrument name to a legal Prometheus metric name:
/// every character outside [a-zA-Z0-9_:] becomes '_', and a leading
/// digit gets a '_' prefix ("core.line_ns" -> "core_line_ns").
std::string SanitizeMetricName(std::string_view name);

struct PrometheusOptions {
  /// Namespace prepended to every family ("confanon" -> the registry's
  /// "core.line_ns" histogram becomes "confanon_core_line_ns").
  std::string prefix = "confanon";
  /// Emit "# TYPE" comment lines (scrapers require them for counters to
  /// be treated as counters; turn off only for size-constrained tests).
  bool type_comments = true;
};

/// Renders a RunMetrics value in Prometheus text exposition format
/// (version 0.0.4). Deterministic: families appear counters first, then
/// gauges, then histograms, each sorted by instrument name. Counters get
/// the conventional "_total" suffix; histograms emit cumulative
/// "_bucket{le=...}" series at every occupied log-scale bucket boundary
/// plus "+Inf", then "_sum" and "_count".
std::string RenderPrometheus(const RunMetrics& metrics,
                             const PrometheusOptions& options = {});

/// Snapshot variant: everything above plus the exporter's own meta
/// families ("<prefix>_export_sequence", "<prefix>_export_timestamp_ms")
/// so scrape staleness is itself observable.
std::string RenderPrometheus(const MetricsSnapshot& snapshot,
                             const PrometheusOptions& options = {});

}  // namespace confanon::obs
