#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace confanon::obs {

// --- bucket layout -------------------------------------------------------
//
// HdrHistogram-style: values below kSubBuckets get one bucket each
// (exact); above that, each power-of-two octave is split into kSubBuckets
// linear sub-buckets, so a bucket's width is always < 1/kSubBuckets of
// its lower bound.

int LatencyHistogram::BucketIndex(std::uint64_t value) {
  if (value < static_cast<std::uint64_t>(kSubBuckets)) {
    return static_cast<int>(value);
  }
  const int exponent = 63 - std::countl_zero(value);  // MSB position
  const int shift = exponent - kSubBucketBits;
  const int sub =
      static_cast<int>((value >> shift) - static_cast<std::uint64_t>(kSubBuckets));
  const int index = (exponent - kSubBucketBits + 1) * kSubBuckets + sub;
  return std::min(index, kBucketCount - 1);
}

std::uint64_t LatencyHistogram::BucketLowerBound(int index) {
  if (index < kSubBuckets) return static_cast<std::uint64_t>(index);
  const int block = index / kSubBuckets;
  const int sub = index % kSubBuckets;
  return static_cast<std::uint64_t>(kSubBuckets + sub) << (block - 1);
}

void LatencyHistogram::Record(std::uint64_t value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  buckets_[static_cast<std::size_t>(BucketIndex(value))].fetch_add(
      1, std::memory_order_relaxed);
  // Lock-free running min/max; contention on these CAS loops is benign
  // (they only retry while another writer is improving the bound).
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  if (snapshot.count > 0) {
    snapshot.min = min_.load(std::memory_order_relaxed);
    snapshot.max = max_.load(std::memory_order_relaxed);
  }
  snapshot.buckets.resize(kBucketCount);
  for (int i = 0; i < kBucketCount; ++i) {
    snapshot.buckets[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }
  return snapshot;
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0 || buckets.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Nearest rank on the bucketized sample, linear interpolation inside the
  // resolved bucket: the rank-th sample is the (rank - cumulative)-th of
  // the bucket's `n` occupants, placed at the start of its 1/n slice of
  // the bucket's value range. A single-occupant bucket therefore reports
  // its LOWER bound — the only value the recorded sample is known to have
  // reached — not the bucket's upper edge.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(p / 100.0 * static_cast<double>(count))));
  if (rank >= count) return static_cast<double>(max);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    if (cumulative + buckets[i] >= rank) {
      const double lower =
          static_cast<double>(LatencyHistogram::BucketLowerBound(static_cast<int>(i)));
      const double upper =
          i + 1 < buckets.size()
              ? static_cast<double>(
                    LatencyHistogram::BucketLowerBound(static_cast<int>(i) + 1))
              : static_cast<double>(max);
      const double within = static_cast<double>(rank - cumulative - 1) /
                            static_cast<double>(buckets[i]);
      const double estimate = lower + within * (upper - lower);
      return std::clamp(estimate, static_cast<double>(min),
                        static_cast<double>(max));
    }
    cumulative += buckets[i];
  }
  return static_cast<double>(max);
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  if (count == 0) {
    min = other.min;
    max = other.max;
  } else {
    min = std::min(min, other.min);
    max = std::max(max, other.max);
  }
  count += other.count;
  sum += other.sum;
  if (buckets.size() < other.buckets.size()) {
    buckets.resize(other.buckets.size());
  }
  for (std::size_t i = 0; i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
}

void HistogramSnapshot::WriteJson(JsonWriter& out) const {
  out.BeginObject();
  out.Key("count").Value(count);
  out.Key("sum").Value(sum);
  out.Key("min").Value(count == 0 ? 0 : min);
  out.Key("max").Value(max);
  out.Key("mean").Value(Mean());
  out.Key("p50").Value(Percentile(50));
  out.Key("p90").Value(Percentile(90));
  out.Key("p95").Value(Percentile(95));
  out.Key("p99").Value(Percentile(99));
  out.EndObject();
}

void RunMetrics::Merge(const RunMetrics& other) {
  for (const auto& [name, value] : other.counters) {
    counters[name] += value;
  }
  for (const auto& [name, value] : other.gauges) {
    gauges[name] = value;
  }
  for (const auto& [name, histogram] : other.histograms) {
    histograms[name].Merge(histogram);
  }
}

void RunMetrics::WriteJson(JsonWriter& out) const {
  out.BeginObject();
  out.Key("counters").BeginObject();
  for (const auto& [name, value] : counters) {
    out.Key(name).Value(value);
  }
  out.EndObject();
  out.Key("gauges").BeginObject();
  for (const auto& [name, value] : gauges) {
    out.Key(name).Value(value);
  }
  out.EndObject();
  out.Key("histograms").BeginObject();
  for (const auto& [name, histogram] : histograms) {
    out.Key(name);
    histogram.WriteJson(out);
  }
  out.EndObject();
  out.EndObject();
}

std::string RunMetrics::ToJson() const {
  JsonWriter out;
  WriteJson(out);
  return out.Take();
}

Counter& MetricsRegistry::CounterNamed(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GaugeNamed(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

LatencyHistogram& MetricsRegistry::HistogramNamed(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<LatencyHistogram>())
             .first;
  }
  return *it->second;
}

RunMetrics MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RunMetrics out;
  for (const auto& [name, counter] : counters_) {
    out.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    out.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    out.histograms[name] = histogram->Snapshot();
  }
  return out;
}

}  // namespace confanon::obs
