#include "obs/export.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace confanon::obs {

MetricsSnapshot SnapshotExporter::Capture() {
  MetricsSnapshot snapshot;
  // Sequence is assigned before the registry read: a snapshot with a
  // higher sequence was *started* later, which is the ordering a scraper
  // can act on without coordinating with other scrapers.
  snapshot.sequence = sequence_.fetch_add(1, std::memory_order_relaxed) + 1;
  snapshot.wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                         std::chrono::system_clock::now().time_since_epoch())
                         .count();
  snapshot.mono_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now().time_since_epoch())
                         .count();
  if (registry_ != nullptr) snapshot.metrics = registry_->Snapshot();
  return snapshot;
}

SnapshotDelta DiffSnapshots(const MetricsSnapshot& earlier,
                            const MetricsSnapshot& later) {
  SnapshotDelta delta;
  delta.interval_s =
      static_cast<double>(later.mono_ns - earlier.mono_ns) / 1e9;

  for (const auto& [name, value] : later.metrics.counters) {
    const auto it = earlier.metrics.counters.find(name);
    const std::uint64_t base = it == earlier.metrics.counters.end() ? 0 : it->second;
    const std::uint64_t d = value >= base ? value - base : 0;
    delta.counter_deltas[name] = d;
    delta.counter_rates[name] =
        delta.interval_s > 0.0 ? static_cast<double>(d) / delta.interval_s : 0.0;
  }
  for (const auto& [name, value] : later.metrics.gauges) {
    const auto it = earlier.metrics.gauges.find(name);
    const std::int64_t base = it == earlier.metrics.gauges.end() ? 0 : it->second;
    delta.gauge_changes[name] = value - base;
  }
  for (const auto& [name, snap] : later.metrics.histograms) {
    HistogramSnapshot d;
    const auto it = earlier.metrics.histograms.find(name);
    if (it == earlier.metrics.histograms.end()) {
      d = snap;
    } else {
      const HistogramSnapshot& base = it->second;
      d.count = snap.count >= base.count ? snap.count - base.count : 0;
      d.sum = snap.sum >= base.sum ? snap.sum - base.sum : 0;
      // Interval min/max are unrecoverable from cumulative snapshots;
      // carry the later run-wide extrema, which is what a dashboard
      // annotates the interval with anyway.
      d.min = snap.min;
      d.max = snap.max;
      d.buckets.resize(snap.buckets.size());
      for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
        const std::uint64_t b = i < base.buckets.size() ? base.buckets[i] : 0;
        d.buckets[i] = snap.buckets[i] >= b ? snap.buckets[i] - b : 0;
      }
    }
    delta.histogram_deltas[name] = d;
  }
  return delta;
}

std::string SanitizeMetricName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  if (!name.empty() && name.front() >= '0' && name.front() <= '9') {
    out.push_back('_');
  }
  for (const char c : name) {
    const bool legal = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(legal ? c : '_');
  }
  return out;
}

namespace {

void AppendFamilyName(std::string& out, const PrometheusOptions& options,
                      std::string_view name, std::string_view suffix) {
  if (!options.prefix.empty()) {
    out += options.prefix;
    out += '_';
  }
  out += SanitizeMetricName(name);
  out += suffix;
}

void AppendType(std::string& out, const PrometheusOptions& options,
                std::string_view name, std::string_view suffix,
                std::string_view type) {
  if (!options.type_comments) return;
  out += "# TYPE ";
  AppendFamilyName(out, options, name, suffix);
  out += ' ';
  out += type;
  out += '\n';
}

void AppendUint(std::string& out, std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(value));
  out += buf;
}

void AppendInt(std::string& out, std::int64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
  out += buf;
}

}  // namespace

std::string RenderPrometheus(const RunMetrics& metrics,
                             const PrometheusOptions& options) {
  std::string out;
  out.reserve(4096);

  for (const auto& [name, value] : metrics.counters) {
    AppendType(out, options, name, "_total", "counter");
    AppendFamilyName(out, options, name, "_total");
    out += ' ';
    AppendUint(out, value);
    out += '\n';
  }
  for (const auto& [name, value] : metrics.gauges) {
    AppendType(out, options, name, "", "gauge");
    AppendFamilyName(out, options, name, "");
    out += ' ';
    AppendInt(out, value);
    out += '\n';
  }
  for (const auto& [name, snap] : metrics.histograms) {
    AppendType(out, options, name, "", "histogram");
    // Cumulative buckets at every occupied boundary. Emitting all 512
    // log-scale buckets would bloat every scrape ~50x; a subset of
    // boundaries (always including +Inf) is valid exposition and loses
    // nothing — an empty bucket's cumulative count equals its
    // predecessor's.
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
      if (snap.buckets[i] == 0) continue;
      cumulative += snap.buckets[i];
      // The top bucket has no finite upper edge; its samples are covered
      // by the +Inf series below.
      if (static_cast<int>(i) + 1 >= LatencyHistogram::kBucketCount) continue;
      AppendFamilyName(out, options, name, "_bucket");
      out += "{le=\"";
      // The bucket's inclusive upper edge is the next bucket's lower
      // bound minus one; exposition convention is "le" (<=), so that
      // edge is exact for our integer-valued histograms.
      const std::uint64_t upper =
          LatencyHistogram::BucketLowerBound(static_cast<int>(i) + 1) - 1;
      AppendUint(out, upper);
      out += "\"} ";
      AppendUint(out, cumulative);
      out += '\n';
    }
    AppendFamilyName(out, options, name, "_bucket");
    out += "{le=\"+Inf\"} ";
    AppendUint(out, snap.count);
    out += '\n';
    AppendFamilyName(out, options, name, "_sum");
    out += ' ';
    AppendUint(out, snap.sum);
    out += '\n';
    AppendFamilyName(out, options, name, "_count");
    out += ' ';
    AppendUint(out, snap.count);
    out += '\n';
  }
  return out;
}

std::string RenderPrometheus(const MetricsSnapshot& snapshot,
                             const PrometheusOptions& options) {
  std::string out = RenderPrometheus(snapshot.metrics, options);
  AppendType(out, options, "export.sequence", "", "counter");
  AppendFamilyName(out, options, "export.sequence", "");
  out += ' ';
  AppendUint(out, snapshot.sequence);
  out += '\n';
  AppendType(out, options, "export.timestamp_ms", "", "gauge");
  AppendFamilyName(out, options, "export.timestamp_ms", "");
  out += ' ';
  AppendInt(out, snapshot.wall_ms);
  out += '\n';
  return out;
}

}  // namespace confanon::obs
