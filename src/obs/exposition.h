// Minimal self-contained HTTP/1.1 listener.
//
// Grown from the PR 6 metrics endpoint into the shared front door for
// everything in-process that speaks HTTP: the Prometheus scrape, the
// health probe, and the anonymization daemon's API routes all hang off
// ONE ExpositionServer instance (one port, one accept loop) instead of
// each feature binding its own socket.
//
// Built-in endpoints (always served):
//
//   GET /metrics  -> whatever the installed producer returns (Prometheus
//                    text exposition by convention; see export.h)
//   GET /healthz  -> "ok\n" (liveness for load balancers / systemd)
//
// Additional routes are registered with AddRoute(method, path, handler)
// before Start(). A handler receives the parsed request (method, path,
// lowercased headers, fully read body) and a response writer that can
// either send one buffered response or stream a chunked one
// (Transfer-Encoding: chunked) — the daemon streams anonymized configs
// back without buffering bookkeeping on top of the socket.
//
// Concurrency and admission control: with handler_threads == 0 (the
// metrics default) connections are handled one at a time on the accept
// thread, exactly the PR 6 behavior. With handler_threads > 0 the accept
// thread only enqueues connections into a bounded queue drained by that
// many handler threads; when the queue is full the connection is
// answered immediately with `overload_status` (the daemon sets 429) and
// closed — overload never builds an unbounded backlog, and the counter
// is readable through rejected(). Every socket gets a receive/send
// timeout and oversized or malformed requests are dropped with 4xx.
// Nothing here ever blocks or allocates on the anonymization hot path.
//
// Start() binds immediately (port 0 picks an ephemeral port, readable
// through port() — tests and "--metrics-listen=127.0.0.1:0" rely on it);
// Stop() closes the listener and joins all threads, and is safe to call
// twice. The destructor stops the server.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace confanon::obs {

/// One fully read request, as a route handler sees it.
struct HttpRequest {
  std::string method;  // as sent ("GET", "POST", ...)
  std::string path;    // query string stripped
  std::string query;   // text after '?', empty when absent
  /// Header fields in arrival order, names lowercased.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First value of `name` (lowercase), or "" when absent.
  std::string_view Header(std::string_view name) const;
};

/// Writes one response for one connection. Either Send() a buffered
/// response, or BeginChunked() + WriteChunk()* + EndChunked() to stream.
/// All writers honor the connection's I/O timeout; a handler that never
/// writes gets a 500 from the server.
class HttpResponseWriter {
 public:
  HttpResponseWriter(int fd, int timeout_ms, bool head_only)
      : fd_(fd), timeout_ms_(timeout_ms), head_only_(head_only) {}

  /// One buffered response with Content-Length; finishes the exchange.
  bool Send(int status, std::string_view content_type, std::string_view body);

  /// Starts a chunked response (Transfer-Encoding: chunked). `extra`
  /// headers are emitted verbatim after the standard set.
  bool BeginChunked(
      int status, std::string_view content_type,
      const std::vector<std::pair<std::string, std::string>>& extra = {});
  /// One chunk; empty data is skipped (an empty chunk would terminate).
  bool WriteChunk(std::string_view data);
  /// Terminating 0-chunk.
  bool EndChunked();

  /// True once any response head has been written.
  bool sent() const { return sent_; }

  /// "200 OK"-style status line text for the handful of codes the server
  /// uses; unknown codes render as "<code> Status".
  static std::string StatusLine(int status);

 private:
  int fd_;
  int timeout_ms_;
  bool head_only_;
  bool sent_ = false;
  bool chunked_ = false;
};

class ExpositionServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;  // 0 = ephemeral, see port()
    int backlog = 16;        // bounded kernel accept queue
    int io_timeout_ms = 2000;
    /// 0: handle connections on the accept thread (metrics-scrape mode).
    /// > 0: that many handler threads drain a bounded connection queue.
    int handler_threads = 0;
    /// Admission control (handler_threads > 0): connections beyond this
    /// many waiting are answered with `overload_status` and closed.
    std::size_t max_pending = 16;
    /// Request bodies beyond this are answered with 413 and dropped.
    std::size_t max_body_bytes = 1 << 20;
    /// Status for connections rejected by the bounded queue. 503 by
    /// default; the anonymization daemon sets 429 (Too Many Requests).
    int overload_status = 503;
  };

  /// Called per /metrics request, on the handling thread.
  using MetricsProducer = std::function<std::string()>;
  /// Called per matched route, on the handling thread.
  using HttpHandler =
      std::function<void(const HttpRequest&, HttpResponseWriter&)>;

  ExpositionServer(Options options, MetricsProducer producer);
  ~ExpositionServer();

  ExpositionServer(const ExpositionServer&) = delete;
  ExpositionServer& operator=(const ExpositionServer&) = delete;

  /// Registers `handler` for exact (method, path) matches. Must be
  /// called before Start(). A path registered under one method answers
  /// 405 for other methods.
  void AddRoute(std::string method, std::string path, HttpHandler handler);

  /// Binds, listens, and starts the accept (and handler) threads.
  /// Returns false (with a diagnostic in *error when non-null) on
  /// bind/listen failure; the server is then inert and Stop() is a
  /// no-op.
  bool Start(std::string* error = nullptr);

  /// Closes the listener and joins all threads. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The actual bound port (resolves port 0 after Start()).
  std::uint16_t port() const { return bound_port_; }
  const std::string& host() const { return options_.host; }

  std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }
  /// Connections rejected by the bounded queue (admission control).
  std::uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

  /// Parses "HOST:PORT" ("127.0.0.1:9464", "localhost:0"). Returns false
  /// on a missing colon or an unparseable port.
  static bool ParseListenSpec(std::string_view spec, std::string& host,
                              std::uint16_t& port);

 private:
  struct Route {
    std::string method;
    std::string path;
    HttpHandler handler;
  };

  void Serve();                   // accept-thread main loop
  void HandlerLoop();             // handler-thread main loop
  void Dispatch(int fd);          // queue or reject one connection
  void HandleConnection(int fd);  // one request/response cycle

  Options options_;
  MetricsProducer producer_;
  std::vector<Route> routes_;
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::thread thread_;
  std::vector<std::thread> handlers_;
  std::mutex pending_mutex_;
  std::condition_variable pending_cv_;
  std::deque<int> pending_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

}  // namespace confanon::obs
