// Minimal self-contained HTTP/1.1 metrics listener.
//
// Serves two endpoints from a dedicated accept thread:
//
//   GET /metrics  -> whatever the installed producer returns (Prometheus
//                    text exposition by convention; see export.h)
//   GET /healthz  -> "ok\n" (liveness for load balancers / systemd)
//
// Scope is deliberately tiny: one listening socket with a bounded accept
// backlog, one connection handled at a time, Connection: close on every
// response. A metrics scrape arrives every few seconds and reads a few
// kilobytes — the failure mode worth engineering against is a wedged or
// slow scraper holding the thread, so every socket gets a receive/send
// timeout and oversized or malformed requests are dropped with 4xx.
// Nothing here ever blocks or allocates on the anonymization hot path;
// the producer runs on the accept thread.
//
// Start() binds immediately (port 0 picks an ephemeral port, readable
// through port() — tests and "--metrics-listen=127.0.0.1:0" rely on it);
// Stop() closes the listener and joins the thread, and is safe to call
// twice. The destructor stops the server.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <thread>

namespace confanon::obs {

class ExpositionServer {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;  // 0 = ephemeral, see port()
    int backlog = 16;        // bounded kernel accept queue
    int io_timeout_ms = 2000;
  };

  /// Called per /metrics request, on the accept thread.
  using MetricsProducer = std::function<std::string()>;

  ExpositionServer(Options options, MetricsProducer producer);
  ~ExpositionServer();

  ExpositionServer(const ExpositionServer&) = delete;
  ExpositionServer& operator=(const ExpositionServer&) = delete;

  /// Binds, listens, and starts the accept thread. Returns false (with a
  /// diagnostic in *error when non-null) on bind/listen failure; the
  /// server is then inert and Stop() is a no-op.
  bool Start(std::string* error = nullptr);

  /// Closes the listener and joins the accept thread. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// The actual bound port (resolves port 0 after Start()).
  std::uint16_t port() const { return bound_port_; }
  const std::string& host() const { return options_.host; }

  std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Parses "HOST:PORT" ("127.0.0.1:9464", "localhost:0"). Returns false
  /// on a missing colon or an unparseable port.
  static bool ParseListenSpec(std::string_view spec, std::string& host,
                              std::uint16_t& port);

 private:
  void Serve();                    // accept-thread main loop
  void HandleConnection(int fd);   // one request/response cycle

  Options options_;
  MetricsProducer producer_;
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_{0};
};

}  // namespace confanon::obs
