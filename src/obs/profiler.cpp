#include "obs/profiler.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ostream>

namespace confanon::obs {

namespace {

std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

PhaseProfiler::PhaseProfiler(Options options) : options_(options) {
  if (options_.enable_perf_counters) {
    perf_.Open();  // silently null on failure — the degradation contract
  }
}

void PhaseProfiler::Write(const TraceEvent& event) {
  if (event.phase == 'X') {  // only complete spans carry durations
    SpanRecord record;
    record.name = event.name;
    record.ts_us = event.ts_us;
    record.dur_us = event.dur_us;
    for (const auto& [key, value] : event.str_args) {
      if (key == "phase") {
        record.phase = value;
        break;
      }
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (span_count_ < options_.max_spans) {
      spans_[std::this_thread::get_id()].push_back(std::move(record));
      ++span_count_;
    } else {
      ++dropped_spans_;
    }
  }
  if (downstream_ != nullptr) downstream_->Write(event);
}

void PhaseProfiler::BeginPhase(std::string_view phase) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = phases_.find(phase);
  if (it == phases_.end()) {
    PhaseRecord record;
    record.name = std::string(phase);
    record.order = next_phase_order_++;
    it = phases_.emplace(record.name, std::move(record)).first;
  }
  PhaseRecord& record = it->second;
  ++record.invocations;
  if (record.active++ == 0) {
    record.window_start_ns = NowNs();
    record.window_baseline = perf_.Read();
  }
}

void PhaseProfiler::EndPhase(std::string_view phase) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = phases_.find(phase);
  if (it == phases_.end() || it->second.active == 0) return;  // unbalanced
  PhaseRecord& record = it->second;
  if (--record.active == 0) {
    record.wall_ns +=
        static_cast<std::uint64_t>(NowNs() - record.window_start_ns);
    const PerfSample delta = perf_.Read().Since(record.window_baseline);
    if (delta.valid) {
      record.counters.cycles += delta.cycles;
      record.counters.instructions += delta.instructions;
      record.counters.branch_misses += delta.branch_misses;
      record.counters.cache_misses += delta.cache_misses;
      record.counters.time_enabled_ns += delta.time_enabled_ns;
      record.counters.time_running_ns += delta.time_running_ns;
      record.counters.valid = true;
    }
  }
}

PhaseProfiler::ScopedPhase::ScopedPhase(PhaseProfiler* profiler,
                                        Tracer* tracer,
                                        std::string_view phase)
    : profiler_(profiler),
      tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
      phase_(phase) {
  if (profiler_ != nullptr) profiler_->BeginPhase(phase_);
  if (tracer_ != nullptr) start_us_ = tracer_->NowUs();
}

PhaseProfiler::ScopedPhase::~ScopedPhase() {
  if (profiler_ != nullptr) profiler_->EndPhase(phase_);
  if (tracer_ != nullptr) {
    tracer_->Complete("phase:" + phase_, start_us_,
                      std::max<std::int64_t>(tracer_->NowUs() - start_us_, 1),
                      phase_);
  }
}

std::uint64_t PhaseProfiler::Profile::PhaseWallNsTotal() const {
  std::uint64_t total = 0;
  for (const PhaseStats& phase : phases) total += phase.wall_ns;
  return total;
}

PhaseProfiler::Profile PhaseProfiler::Finish() {
  std::lock_guard<std::mutex> lock(mutex_);
  Profile profile;
  profile.perf_available = perf_.ok();
  profile.dropped_spans = dropped_spans_;

  // Phase table, in first-begin order; close any still-open window.
  std::vector<const PhaseRecord*> ordered;
  ordered.reserve(phases_.size());
  for (auto& [name, record] : phases_) {
    if (record.active > 0) {  // defensive: profile of a live run
      record.wall_ns +=
          static_cast<std::uint64_t>(NowNs() - record.window_start_ns);
      record.window_start_ns = NowNs();
    }
    ordered.push_back(&record);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const PhaseRecord* a, const PhaseRecord* b) {
              return a->order < b->order;
            });
  for (const PhaseRecord* record : ordered) {
    PhaseStats stats;
    stats.name = record->name;
    stats.wall_ns = record->wall_ns;
    stats.invocations = record->invocations;
    stats.counters = record->counters;
    profile.phases.push_back(std::move(stats));
  }

  // Folded stacks: per emitting thread, sort spans into pre-order
  // (start ascending, longer-first on ties puts parents before their
  // children) and sweep with an explicit stack. A span is a child of the
  // deepest open span that contains it; otherwise it roots a new stack
  // labeled by its phase tag.
  struct Frame {
    const SpanRecord* span;
    std::int64_t end_us;
    std::uint64_t child_us = 0;
    std::string path;
  };
  struct Aggregate {
    std::uint64_t total_us = 0;
    std::uint64_t self_us = 0;
    std::uint64_t count = 0;
  };
  std::map<std::string, Aggregate> folded;

  for (auto& [tid, records] : spans_) {
    (void)tid;
    std::vector<const SpanRecord*> sorted;
    sorted.reserve(records.size());
    for (const SpanRecord& record : records) sorted.push_back(&record);
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const SpanRecord* a, const SpanRecord* b) {
                       if (a->ts_us != b->ts_us) return a->ts_us < b->ts_us;
                       return a->dur_us > b->dur_us;
                     });

    std::vector<Frame> stack;
    const auto pop_frame = [&] {
      const Frame& frame = stack.back();
      Aggregate& aggregate = folded[frame.path];
      aggregate.total_us += static_cast<std::uint64_t>(frame.span->dur_us);
      const std::uint64_t dur = static_cast<std::uint64_t>(frame.span->dur_us);
      aggregate.self_us += dur > frame.child_us ? dur - frame.child_us : 0;
      aggregate.count += 1;
      stack.pop_back();
    };

    for (const SpanRecord* span : sorted) {
      const std::int64_t end = span->ts_us + span->dur_us;
      while (!stack.empty() &&
             (span->ts_us >= stack.back().end_us || end > stack.back().end_us)) {
        pop_frame();
      }
      Frame frame;
      frame.span = span;
      frame.end_us = end;
      if (!stack.empty()) {
        stack.back().child_us += static_cast<std::uint64_t>(span->dur_us);
        frame.path = stack.back().path + ";" + span->name;
      } else {
        const std::string& root =
            span->phase.empty() ? std::string("unphased") : span->phase;
        frame.path = root + ";" + span->name;
      }
      stack.push_back(std::move(frame));
    }
    while (!stack.empty()) pop_frame();
  }

  profile.spans.reserve(folded.size());
  for (const auto& [path, aggregate] : folded) {
    SpanStats stats;
    stats.path = path;
    stats.total_us = aggregate.total_us;
    stats.self_us = aggregate.self_us;
    stats.count = aggregate.count;
    profile.total_self_us += aggregate.self_us;
    profile.spans.push_back(std::move(stats));
  }
  return profile;
}

std::string PhaseProfiler::RenderTable(const Profile& profile) {
  std::string out;
  char line[192];
  std::snprintf(line, sizeof line, "%-12s %12s %7s %8s %6s %12s %12s\n",
                "phase", "wall_ms", "share", "begins", "IPC", "br-miss/kI",
                "$-miss/kI");
  out += line;
  const double total_ns =
      static_cast<double>(std::max<std::uint64_t>(profile.PhaseWallNsTotal(), 1));
  for (const PhaseStats& phase : profile.phases) {
    const double wall_ms = static_cast<double>(phase.wall_ns) / 1e6;
    const double share = static_cast<double>(phase.wall_ns) / total_ns * 100.0;
    if (phase.counters.valid && phase.counters.instructions > 0) {
      const double per_ki =
          1000.0 / static_cast<double>(phase.counters.instructions);
      std::snprintf(line, sizeof line,
                    "%-12s %12.2f %6.1f%% %8llu %6.2f %12.3f %12.3f\n",
                    phase.name.c_str(), wall_ms, share,
                    static_cast<unsigned long long>(phase.invocations),
                    phase.Ipc(),
                    static_cast<double>(phase.counters.branch_misses) * per_ki,
                    static_cast<double>(phase.counters.cache_misses) * per_ki);
    } else {
      std::snprintf(line, sizeof line,
                    "%-12s %12.2f %6.1f%% %8llu %6s %12s %12s\n",
                    phase.name.c_str(), wall_ms, share,
                    static_cast<unsigned long long>(phase.invocations), "n/a",
                    "n/a", "n/a");
    }
    out += line;
  }
  if (!profile.perf_available) {
    out += "(hardware counters unavailable: perf_event_open denied or "
           "unsupported — wall-clock columns only)\n";
  }
  if (profile.dropped_spans > 0) {
    std::snprintf(line, sizeof line,
                  "(span buffer full: %llu spans dropped from the folded "
                  "profile)\n",
                  static_cast<unsigned long long>(profile.dropped_spans));
    out += line;
  }
  return out;
}

void PhaseProfiler::WriteFolded(const Profile& profile, std::ostream& out) {
  for (const SpanStats& span : profile.spans) {
    if (span.self_us == 0) continue;
    out << span.path << ' ' << span.self_us << '\n';
  }
}

}  // namespace confanon::obs
