#include "obs/exposition.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace confanon::obs {

namespace {

constexpr std::size_t kMaxHeadBytes = 8192;

/// Blocking full write with a poll-guarded retry on partial sends.
bool SendAll(int fd, std::string_view data, int timeout_ms) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd, POLLOUT, 0};
      if (::poll(&pfd, 1, timeout_ms) <= 0) return false;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

std::string MakeResponse(std::string_view status, std::string_view content_type,
                         std::string_view body) {
  std::string out;
  out.reserve(body.size() + 128);
  out += "HTTP/1.1 ";
  out += status;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

std::string AsciiLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string_view TrimSpaces(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

}  // namespace

std::string_view HttpRequest::Header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return value;
  }
  return {};
}

std::string HttpResponseWriter::StatusLine(int status) {
  switch (status) {
    case 200: return "200 OK";
    case 400: return "400 Bad Request";
    case 404: return "404 Not Found";
    case 405: return "405 Method Not Allowed";
    case 411: return "411 Length Required";
    case 413: return "413 Payload Too Large";
    case 429: return "429 Too Many Requests";
    case 431: return "431 Request Header Fields Too Large";
    case 500: return "500 Internal Server Error";
    case 503: return "503 Service Unavailable";
    default: return std::to_string(status) + " Status";
  }
}

bool HttpResponseWriter::Send(int status, std::string_view content_type,
                              std::string_view body) {
  if (sent_) return false;
  sent_ = true;
  std::string response = MakeResponse(StatusLine(status), content_type, body);
  if (head_only_) response.resize(response.find("\r\n\r\n") + 4);
  return SendAll(fd_, response, timeout_ms_);
}

bool HttpResponseWriter::BeginChunked(
    int status, std::string_view content_type,
    const std::vector<std::pair<std::string, std::string>>& extra) {
  if (sent_) return false;
  sent_ = true;
  chunked_ = true;
  std::string head;
  head.reserve(192);
  head += "HTTP/1.1 ";
  head += StatusLine(status);
  head += "\r\nContent-Type: ";
  head += content_type;
  for (const auto& [name, value] : extra) {
    head += "\r\n";
    head += name;
    head += ": ";
    head += value;
  }
  head += "\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n";
  return SendAll(fd_, head, timeout_ms_);
}

bool HttpResponseWriter::WriteChunk(std::string_view data) {
  if (!chunked_ || head_only_) return chunked_;
  if (data.empty()) return true;  // an empty chunk would terminate
  char size_line[32];
  const int n = std::snprintf(size_line, sizeof size_line, "%zx\r\n",
                              data.size());
  if (n <= 0) return false;
  std::string frame;
  frame.reserve(static_cast<std::size_t>(n) + data.size() + 2);
  frame.append(size_line, static_cast<std::size_t>(n));
  frame.append(data);
  frame += "\r\n";
  return SendAll(fd_, frame, timeout_ms_);
}

bool HttpResponseWriter::EndChunked() {
  if (!chunked_ || head_only_) return chunked_;
  return SendAll(fd_, "0\r\n\r\n", timeout_ms_);
}

ExpositionServer::ExpositionServer(Options options, MetricsProducer producer)
    : options_(std::move(options)), producer_(std::move(producer)) {}

ExpositionServer::~ExpositionServer() { Stop(); }

void ExpositionServer::AddRoute(std::string method, std::string path,
                                HttpHandler handler) {
  routes_.push_back(
      Route{std::move(method), std::move(path), std::move(handler)});
}

bool ExpositionServer::ParseListenSpec(std::string_view spec,
                                       std::string& host,
                                       std::uint16_t& port) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string_view::npos || colon == 0) return false;
  const std::string_view port_text = spec.substr(colon + 1);
  if (port_text.empty() || port_text.size() > 5) return false;
  std::uint32_t value = 0;
  for (const char c : port_text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint32_t>(c - '0');
  }
  if (value > 65535) return false;
  host = std::string(spec.substr(0, colon));
  port = static_cast<std::uint16_t>(value);
  return true;
}

bool ExpositionServer::Start(std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };
  if (running_.load(std::memory_order_acquire)) {
    if (error != nullptr) *error = "already running";
    return false;
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  const std::string& host =
      options_.host == "localhost" ? std::string("127.0.0.1") : options_.host;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    return fail("inet_pton(" + host + ")");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, options_.backlog) != 0) return fail("listen");

  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return fail("getsockname");
  }
  bound_port_ = ntohs(bound.sin_port);

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  for (int i = 0; i < options_.handler_threads; ++i) {
    handlers_.emplace_back([this] { HandlerLoop(); });
  }
  thread_ = std::thread([this] { Serve(); });
  return true;
}

void ExpositionServer::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  // The accept loop polls with a timeout, so it observes stopping_ even
  // if no connection ever arrives; shutdown() additionally wakes a poll
  // that is already parked on the fd.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  pending_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  for (std::thread& handler : handlers_) {
    if (handler.joinable()) handler.join();
  }
  handlers_.clear();
  {
    // Connections still queued when the handlers exited: close without a
    // response (the peer sees a reset, which is what a shutdown means).
    const std::lock_guard<std::mutex> lock(pending_mutex_);
    for (const int fd : pending_) ::close(fd);
    pending_.clear();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void ExpositionServer::Serve() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (stopping_.load(std::memory_order_acquire)) break;
    if (ready <= 0) continue;
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == ECONNABORTED) continue;
      break;  // listener shut down or unrecoverable
    }
    const timeval timeout{options_.io_timeout_ms / 1000,
                          static_cast<suseconds_t>(
                              (options_.io_timeout_ms % 1000) * 1000)};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof timeout);
    Dispatch(fd);
  }
}

void ExpositionServer::Dispatch(int fd) {
  if (options_.handler_threads <= 0) {
    // Metrics-scrape mode: one connection at a time, on this thread.
    HandleConnection(fd);
    ::close(fd);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(pending_mutex_);
    if (pending_.size() < options_.max_pending) {
      pending_.push_back(fd);
      pending_cv_.notify_one();
      return;
    }
  }
  // Admission control: bounded queue full — answer immediately instead
  // of building a backlog the handlers can never drain.
  rejected_.fetch_add(1, std::memory_order_relaxed);
  SendAll(fd,
          MakeResponse(HttpResponseWriter::StatusLine(options_.overload_status),
                       "text/plain", "service overloaded, retry later\n"),
          options_.io_timeout_ms);
  ::close(fd);
}

void ExpositionServer::HandlerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(pending_mutex_);
      pending_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) || !pending_.empty();
      });
      if (pending_.empty()) return;  // stopping and drained
      fd = pending_.front();
      pending_.pop_front();
    }
    HandleConnection(fd);
    ::close(fd);
  }
}

void ExpositionServer::HandleConnection(int fd) {
  // Read until the end of the request head; drop oversized heads.
  std::string request;
  char buf[4096];
  std::size_t head_end = std::string::npos;
  while ((head_end = request.find("\r\n\r\n")) == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) return;  // timeout, reset, or EOF before a full head
    request.append(buf, static_cast<std::size_t>(n));
    if (request.size() > kMaxHeadBytes &&
        request.find("\r\n\r\n") == std::string::npos) {
      SendAll(fd,
              MakeResponse("431 Request Header Fields Too Large",
                           "text/plain", "request too large\n"),
              options_.io_timeout_ms);
      return;
    }
  }

  // "METHOD SP PATH SP VERSION" — everything else is a 400.
  const std::size_t line_end = request.find("\r\n");
  const std::string_view line = std::string_view(request).substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    SendAll(fd, MakeResponse("400 Bad Request", "text/plain", "bad request\n"),
            options_.io_timeout_ms);
    return;
  }
  const std::string_view method = line.substr(0, sp1);
  std::string_view path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string query;
  const std::size_t query_mark = path.find('?');
  if (query_mark != std::string_view::npos) {
    query = std::string(path.substr(query_mark + 1));
    path = path.substr(0, query_mark);
  }

  // Header fields: "name: value" per line, names lowercased.
  HttpRequest parsed;
  parsed.method = std::string(method);
  parsed.path = std::string(path);
  parsed.query = std::move(query);
  {
    std::string_view head =
        std::string_view(request).substr(line_end + 2, head_end - line_end - 2);
    while (!head.empty()) {
      const std::size_t eol = head.find("\r\n");
      const std::string_view field =
          eol == std::string_view::npos ? head : head.substr(0, eol);
      head.remove_prefix(eol == std::string_view::npos ? head.size() : eol + 2);
      const std::size_t colon = field.find(':');
      if (colon == std::string_view::npos) continue;
      parsed.headers.emplace_back(
          AsciiLower(TrimSpaces(field.substr(0, colon))),
          std::string(TrimSpaces(field.substr(colon + 1))));
    }
  }

  requests_.fetch_add(1, std::memory_order_relaxed);
  const bool head_only = parsed.method == "HEAD";
  HttpResponseWriter writer(fd, options_.io_timeout_ms, head_only);

  // Request body: Content-Length only (chunked uploads answer 411).
  std::size_t content_length = 0;
  if (const std::string_view length_text = parsed.Header("content-length");
      !length_text.empty()) {
    for (const char c : length_text) {
      if (c < '0' || c > '9') {
        writer.Send(400, "text/plain", "bad content-length\n");
        return;
      }
      content_length = content_length * 10 + static_cast<std::size_t>(c - '0');
      if (content_length > options_.max_body_bytes) {
        writer.Send(413, "text/plain", "request body too large\n");
        return;
      }
    }
  } else if (!parsed.Header("transfer-encoding").empty()) {
    writer.Send(411, "text/plain", "chunked uploads not supported\n");
    return;
  }
  parsed.body = request.substr(head_end + 4);
  while (parsed.body.size() < content_length) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) return;  // timeout or reset mid-body
    parsed.body.append(buf, static_cast<std::size_t>(n));
  }
  parsed.body.resize(std::min(parsed.body.size(), content_length));

  // Registered routes first (exact method + path), then the built-ins.
  bool path_known = false;
  for (const Route& route : routes_) {
    if (route.path != parsed.path) continue;
    path_known = true;
    if (route.method != parsed.method) continue;
    route.handler(parsed, writer);
    if (!writer.sent()) {
      writer.Send(500, "text/plain", "handler wrote no response\n");
    }
    return;
  }
  if (path_known) {
    writer.Send(405, "text/plain", "method not allowed for this path\n");
    return;
  }

  if (parsed.method != "GET" && parsed.method != "HEAD") {
    writer.Send(405, "text/plain", "only GET is supported\n");
    return;
  }
  if (parsed.path == "/metrics") {
    writer.Send(200, "text/plain; version=0.0.4; charset=utf-8",
                producer_ ? producer_() : std::string());
  } else if (parsed.path == "/healthz") {
    writer.Send(200, "text/plain", "ok\n");
  } else {
    writer.Send(404, "text/plain", "not found\n");
  }
}

}  // namespace confanon::obs
