#include "obs/exposition.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace confanon::obs {

namespace {

constexpr std::size_t kMaxRequestBytes = 8192;

/// Blocking full write with a poll-guarded retry on partial sends.
bool SendAll(int fd, std::string_view data, int timeout_ms) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd, POLLOUT, 0};
      if (::poll(&pfd, 1, timeout_ms) <= 0) return false;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

std::string MakeResponse(std::string_view status, std::string_view content_type,
                         std::string_view body) {
  std::string out;
  out.reserve(body.size() + 128);
  out += "HTTP/1.1 ";
  out += status;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

ExpositionServer::ExpositionServer(Options options, MetricsProducer producer)
    : options_(std::move(options)), producer_(std::move(producer)) {}

ExpositionServer::~ExpositionServer() { Stop(); }

bool ExpositionServer::ParseListenSpec(std::string_view spec,
                                       std::string& host,
                                       std::uint16_t& port) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string_view::npos || colon == 0) return false;
  const std::string_view port_text = spec.substr(colon + 1);
  if (port_text.empty() || port_text.size() > 5) return false;
  std::uint32_t value = 0;
  for (const char c : port_text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint32_t>(c - '0');
  }
  if (value > 65535) return false;
  host = std::string(spec.substr(0, colon));
  port = static_cast<std::uint16_t>(value);
  return true;
}

bool ExpositionServer::Start(std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) *error = what + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };
  if (running_.load(std::memory_order_acquire)) {
    if (error != nullptr) *error = "already running";
    return false;
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  const std::string& host =
      options_.host == "localhost" ? std::string("127.0.0.1") : options_.host;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    return fail("inet_pton(" + host + ")");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, options_.backlog) != 0) return fail("listen");

  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return fail("getsockname");
  }
  bound_port_ = ntohs(bound.sin_port);

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  return true;
}

void ExpositionServer::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  // The accept loop polls with a timeout, so it observes stopping_ even
  // if no connection ever arrives; shutdown() additionally wakes a poll
  // that is already parked on the fd.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  running_.store(false, std::memory_order_release);
}

void ExpositionServer::Serve() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (stopping_.load(std::memory_order_acquire)) break;
    if (ready <= 0) continue;
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == ECONNABORTED) continue;
      break;  // listener shut down or unrecoverable
    }
    const timeval timeout{options_.io_timeout_ms / 1000,
                          static_cast<suseconds_t>(
                              (options_.io_timeout_ms % 1000) * 1000)};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof timeout);
    HandleConnection(fd);
    ::close(fd);
  }
}

void ExpositionServer::HandleConnection(int fd) {
  // Read until the end of the request head; drop oversized requests.
  std::string request;
  char buf[2048];
  while (request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) return;  // timeout, reset, or EOF before a full head
    request.append(buf, static_cast<std::size_t>(n));
    if (request.size() > kMaxRequestBytes) {
      SendAll(fd,
              MakeResponse("431 Request Header Fields Too Large",
                           "text/plain", "request too large\n"),
              options_.io_timeout_ms);
      return;
    }
  }

  // "METHOD SP PATH SP VERSION" — everything else is a 400.
  const std::size_t line_end = request.find("\r\n");
  const std::string_view line = std::string_view(request).substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    SendAll(fd, MakeResponse("400 Bad Request", "text/plain", "bad request\n"),
            options_.io_timeout_ms);
    return;
  }
  const std::string_view method = line.substr(0, sp1);
  std::string_view path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::size_t query = path.find('?');
  if (query != std::string_view::npos) path = path.substr(0, query);

  requests_.fetch_add(1, std::memory_order_relaxed);
  if (method != "GET" && method != "HEAD") {
    SendAll(fd,
            MakeResponse("405 Method Not Allowed", "text/plain",
                         "only GET is supported\n"),
            options_.io_timeout_ms);
    return;
  }

  std::string response;
  if (path == "/metrics") {
    response = MakeResponse("200 OK",
                            "text/plain; version=0.0.4; charset=utf-8",
                            producer_ ? producer_() : std::string());
  } else if (path == "/healthz") {
    response = MakeResponse("200 OK", "text/plain", "ok\n");
  } else {
    response = MakeResponse("404 Not Found", "text/plain", "not found\n");
  }
  if (method == "HEAD") {
    response.resize(response.find("\r\n\r\n") + 4);
  }
  SendAll(fd, response, options_.io_timeout_ms);
}

}  // namespace confanon::obs
