#include "obs/provenance.h"

#include "obs/json.h"

namespace confanon::obs {

std::vector<ProvenanceEntry> ProvenanceLog::ForRule(
    const std::string& rule) const {
  std::vector<ProvenanceEntry> out;
  for (const ProvenanceEntry& entry : entries_) {
    if (entry.rule == rule) out.push_back(entry);
  }
  return out;
}

std::vector<ProvenanceEntry> ProvenanceLog::ForLine(const std::string& file,
                                                    std::uint64_t line) const {
  std::vector<ProvenanceEntry> out;
  for (const ProvenanceEntry& entry : entries_) {
    if (entry.line == line && entry.file == file) out.push_back(entry);
  }
  return out;
}

void ProvenanceLog::WriteJsonl(std::ostream& out) const {
  for (const ProvenanceEntry& entry : entries_) {
    JsonWriter json;
    json.BeginObject();
    json.Key("file").Value(entry.file);
    json.Key("line").Value(std::uint64_t{entry.line});
    json.Key("rule").Value(entry.rule);
    json.Key("tokens_before").Value(std::uint64_t{entry.tokens_before});
    json.Key("tokens_after").Value(std::uint64_t{entry.tokens_after});
    json.EndObject();
    out << json.str() << '\n';
  }
}

}  // namespace confanon::obs
