#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace confanon::obs {

std::string JsonQuote(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (need_comma_) out_ += ',';
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_ += 'o';
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  if (!stack_.empty()) stack_.pop_back();
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_ += 'a';
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  if (!stack_.empty()) stack_.pop_back();
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  if (need_comma_) out_ += ',';
  out_ += JsonQuote(key);
  out_ += ':';
  need_comma_ = false;
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view text) {
  BeforeValue();
  out_ += JsonQuote(text);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(std::int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(double value) {
  BeforeValue();
  if (std::isfinite(value)) {
    char buffer[40];
    std::snprintf(buffer, sizeof(buffer), "%.6g", value);
    out_ += buffer;
  } else {
    // JSON has no Inf/NaN literals; null is the conventional stand-in.
    out_ += "null";
  }
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::Raw(std::string_view json) {
  BeforeValue();
  out_ += json;
  need_comma_ = true;
  return *this;
}

}  // namespace confanon::obs
