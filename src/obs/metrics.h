// Metrics registry: named counters, gauges, and log-scale latency
// histograms with a lock-free hot path.
//
// The paper's evaluation is quantitative throughout — per-rule fire
// counts (Section 4.2), regexp-rewrite counts (Sections 4.4-4.5), and the
// leak-driven refinement loop (Section 6.1) all need the anonymizer to
// measure itself. This registry is the substrate: instruments are created
// once (under a mutex), after which every Add/Record is a relaxed atomic
// operation on a stable address — safe to hammer from the per-line hot
// path of a multi-million-line corpus, and safe to read from another
// thread while a run is in flight.
//
// Snapshot() freezes the registry into a plain RunMetrics value that can
// be Merge()d across networks/shards and serialized to JSON; that is what
// BENCH_perf.json is built from.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"

namespace confanon::obs {

/// Monotonic event count. Relaxed atomics: totals are exact once the
/// writers quiesce, which is all run reporting needs.
class Counter {
 public:
  void Add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time level (trie node count, live regex DFA states, ...).
class Gauge {
 public:
  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Frozen histogram state: what Snapshot() captures and Merge() combines.
/// Percentiles use the log-scale bucket layout described on
/// LatencyHistogram; within the resolved bucket the estimate interpolates
/// linearly, so the error is bounded by the bucket width (< 1/8 of the
/// value with 8 sub-buckets per octave).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  // meaningful only when count > 0
  std::uint64_t max = 0;
  std::vector<std::uint64_t> buckets;  // kBucketCount entries (or empty)

  double Mean() const { return count == 0 ? 0.0 : static_cast<double>(sum) / static_cast<double>(count); }
  /// Nearest-rank-with-interpolation percentile estimate, p in [0, 100].
  /// Returns 0 for an empty histogram.
  double Percentile(double p) const;
  void Merge(const HistogramSnapshot& other);
  void WriteJson(JsonWriter& out) const;
};

/// Log-scale histogram for latency-like values (nanoseconds by
/// convention). Buckets cover the full 64-bit range: one octave per power
/// of two, split into kSubBuckets linear sub-buckets, so relative
/// resolution is constant (~12.5%) from nanoseconds to hours. Record() is
/// two relaxed atomic RMWs plus two relaxed min/max updates — no locks,
/// no allocation.
class LatencyHistogram {
 public:
  static constexpr int kSubBucketBits = 3;  // 8 sub-buckets per octave
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kOctaves = 64;
  static constexpr int kBucketCount = kOctaves * kSubBuckets;

  void Record(std::uint64_t value);

  std::uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }

  HistogramSnapshot Snapshot() const;

  /// Maps a value to its bucket index (exposed for tests).
  static int BucketIndex(std::uint64_t value);
  /// Inclusive lower bound of bucket `index`.
  static std::uint64_t BucketLowerBound(int index);

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
  std::atomic<std::uint64_t> buckets_[kBucketCount] = {};
};

/// A frozen, mergeable, serializable view of one run's instruments.
/// This is the unit of aggregation across networks (the paper anonymizes
/// 31 of them) and the payload of BENCH_perf.json.
struct RunMetrics {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Field-by-field aggregation: counters add, gauges take the other
  /// side's value when present (last-writer-wins, matching "level"
  /// semantics), histograms merge bucket-wise.
  void Merge(const RunMetrics& other);

  void WriteJson(JsonWriter& out) const;
  std::string ToJson() const;
};

/// Owner of named instruments. Lookup takes a mutex; returned references
/// are stable for the registry's lifetime, so hot paths resolve their
/// instruments once and then touch only atomics.
class MetricsRegistry {
 public:
  Counter& CounterNamed(std::string_view name);
  Gauge& GaugeNamed(std::string_view name);
  LatencyHistogram& HistogramNamed(std::string_view name);

  RunMetrics Snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      histograms_;
};

}  // namespace confanon::obs
