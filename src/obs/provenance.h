// Per-line provenance: which rule fired on which input line, and what it
// did to the token count.
//
// This is the record the paper's Section 6.1 iterative-refinement loop
// needs: when the leak detector flags a surviving identifier, the
// provenance log answers *why* — which rules touched (or failed to touch)
// the line it survived on, and whether tokens were removed, replaced, or
// left alone. Collection is opt-in: the anonymizer only pays for it when
// a log is installed.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace confanon::obs {

struct ProvenanceEntry {
  std::string file;
  std::uint64_t line = 0;  // zero-based input line number
  std::string rule;        // stable rule name (core::rules / "J.*")
  std::uint32_t tokens_before = 0;  // word count entering the line's passes
  std::uint32_t tokens_after = 0;   // word count after all passes
};

/// Append-only record of rule firings. Single-writer by design (one
/// anonymizer instance == one network == one thread); merge across
/// networks by concatenation.
class ProvenanceLog {
 public:
  void Record(ProvenanceEntry entry) { entries_.push_back(std::move(entry)); }

  const std::vector<ProvenanceEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void Clear() { entries_.clear(); }

  /// Entries whose rule name equals `rule`.
  std::vector<ProvenanceEntry> ForRule(const std::string& rule) const;
  /// Entries recorded for line `line` of file `file` — the leak-triage
  /// query ("what ran on the line this identifier survived on?").
  std::vector<ProvenanceEntry> ForLine(const std::string& file,
                                       std::uint64_t line) const;

  /// One JSON object per line: {"file":...,"line":N,"rule":...,
  /// "tokens_before":N,"tokens_after":N}. Pure JSONL (no framing).
  void WriteJsonl(std::ostream& out) const;

 private:
  std::vector<ProvenanceEntry> entries_;
};

}  // namespace confanon::obs
